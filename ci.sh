#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. No network access required —
# the workspace has no external dependencies (see the comment in the root
# Cargo.toml for re-enabling the optional `ext-tests` extras).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"

#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. No network access required —
# the workspace has no external dependencies (see the comment in the root
# Cargo.toml for re-enabling the optional `ext-tests` extras).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== allocation regression (steady-state hot path)"
cargo test -q --release --test alloc_steady_state

echo "== columnar bit-identity (transpose-free column passes)"
cargo test -q --release --test columnar_identity

echo "== depth-k pipelining bit-identity (incl. the release-only VGA matrix)"
# Depth {1,2,3} x threads {1,2,4} x frame sizes must reproduce the serial
# pixel stream exactly; the 640x480 matrix is debug-ignored and runs here.
cargo test -q --release --test depth_identity -- --include-ignored

echo "== strip-parallel fusion bit-identity (rules x radii x threads x strips)"
# The strip-parallel SIMD fusion path must reproduce the scalar reference
# bit for bit at every layer: raw ring jobs, the pooled engine, depth-k
# pipelining, and the shared serve fleet.
cargo test -q --release --test fusion_identity

echo "== throughput bench smoke (repro bench --frames 16)"
# Smoke only: must run to completion and emit the JSON report; the
# numbers themselves are host-dependent and not asserted here.
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 16 --bench-out target/BENCH_smoke.json
test -s target/BENCH_smoke.json

echo "== threaded bench smoke (repro bench --frames 16 --threads 2)"
# Exercises the worker-pool rows explicitly even on single-core CI hosts
# (the default thread count is derived from host parallelism).
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 16 --threads 2 --bench-out target/BENCH_smoke_t2.json
test -s target/BENCH_smoke_t2.json

echo "== bench regression gate (repro bench --check, serial rows, ±25%)"
# Gates a fresh serial measurement against the committed baseline: fps
# must not drop — and energy/p99 must not climb — beyond ±25% per
# (backend, threads, columnar) row, else the gate exits non-zero and
# fails CI. `--threads 1` restricts the run to the serial rows: the
# pooled rows oversubscribe single-vCPU CI hosts and their wall-clock is
# too noisy to gate (the baseline's threads=2 rows are simply skipped).
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 16 --threads 1 --bench-out target/BENCH_gate.json \
    --check BENCH_pipeline.json --tolerance 25

echo "== large-frame bench smoke (repro bench --frame-size 640x480, serial)"
# One reduced-frame VGA serial row: large-frame geometry must stay
# runnable end to end and the row must record its own size.
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 4 --threads 1 --frame-size 640x480 \
    --bench-out target/BENCH_smoke_vga.json
grep -q '"frame_size":\[640,480\]' target/BENCH_smoke_vga.json

echo "== depth-2 bench smoke (repro bench --depth 2 --threads 2)"
# A depth-2 pooled run must complete and record the effective depth on
# its threaded rows (serial rows degrade to depth 1 by design).
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 8 --threads 2 --depth 2 \
    --bench-out target/BENCH_smoke_d2.json
grep -q '"depth":2' target/BENCH_smoke_d2.json

echo "== fusion-rule bench smoke (repro bench --rule, choose-max + weighted)"
# The --rule flag must plumb through to the engine and stamp each row's
# identity key, so rule-keyed rows gate independently of the default
# window-energy rows.
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 8 --threads 2 --rule choose-max \
    --bench-out target/BENCH_smoke_choosemax.json
grep -q '"rule":"choose-max"' target/BENCH_smoke_choosemax.json
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 8 --threads 1 --rule weighted \
    --bench-out target/BENCH_smoke_weighted.json
grep -q '"rule":"weighted"' target/BENCH_smoke_weighted.json

echo "== flight recorder smoke (repro eval --flight-record)"
# The eval reconciles the flight recorder's per-frame energy sum against
# the pipeline total (0.1% limit) and must round-trip both export files.
cargo run --release -q -p wavefuse-bench --bin repro -- \
    eval --frames 12 --flight-record target/flight.jsonl
test -s target/flight.jsonl
grep -q '"energy_mj"' target/flight.jsonl
grep -q '"traceEvents"' target/flight.jsonl.trace.json

echo "== fallback bench smoke (repro bench --frames 16 --no-columnar)"
# The staged-transpose fallback must stay runnable end to end; the report
# rows record columnar=false so regressions in the flag plumbing surface.
cargo run --release -q -p wavefuse-bench --bin repro -- \
    bench --frames 16 --no-columnar --bench-out target/BENCH_smoke_fallback.json
grep -q '"columnar":false' target/BENCH_smoke_fallback.json

echo "== multi-stream serving smoke (repro serve --streams 8 --frames 32)"
# The shared-fleet serving path must drive 8 concurrent streams end to
# end: full per-stream report, serve JSON export, and a SERVE row upsert.
# CI upserts into a scratch copy so the committed baseline stays untouched
# (serve wall-clock is host-dependent and not gated here).
cp BENCH_pipeline.json target/BENCH_serve_smoke.json
cargo run --release -q -p wavefuse-bench --bin repro -- \
    serve --streams 8 --frames 32 \
    --bench-out target/BENCH_serve_smoke.json \
    --serve-out target/SERVE_smoke.json
grep -q '"backend":"SERVE-8"' target/BENCH_serve_smoke.json
grep -q '"per_stream"' target/SERVE_smoke.json

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"

//! `wavefuse` — command-line front-end to the fusion system.
//!
//! ```text
//! wavefuse fuse <visible.pgm> <thermal.pgm> -o fused.pgm [--backend neon]
//!          [--levels 3] [--rule window|maxmag|average|activity]
//!          [--threads 1] [--trace t.json] [--metrics m.prom]
//! wavefuse denoise <in.pgm> -o out.pgm [--strength 1.0] [--levels 3]
//! wavefuse demo -o out/ [--frames 5] [--size 88x72] [--seed 42]
//!          [--threads 1] [--trace t.json] [--metrics m.prom]
//! ```
//!
//! Works on binary PGM (`P5`) images, the format the examples emit.
//! `--trace` writes a Chrome trace of the run (open in Perfetto or
//! `chrome://tracing`); `--metrics` writes a Prometheus text exposition.

use std::process::ExitCode;
use std::sync::Arc;

use wavefuse::core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse::core::rules::{FusionRule, LowpassRule};
use wavefuse::core::{Backend, FusionEngine};
use wavefuse::dtcwt::denoise::denoise;
use wavefuse::dtcwt::{Dtcwt, Dwt2d};
use wavefuse::trace::{export, Telemetry};
use wavefuse::video::pgm;
use wavefuse::video::scene::ScenePair;

struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                options.push((name.to_string(), value.clone()));
            } else if a == "-o" {
                let value = it.next().ok_or("option -o needs a value")?;
                options.push(("output".to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn opt_or(&self, name: &str, default: &str) -> String {
        self.opt(name).unwrap_or(default).to_string()
    }
}

fn parse_backend(s: &str) -> Result<Option<Backend>, String> {
    Ok(Some(match s {
        "arm" => Backend::Arm,
        "neon" => Backend::Neon,
        "fpga" => Backend::Fpga,
        "hybrid" => Backend::Hybrid,
        "auto" => return Ok(None),
        other => {
            return Err(format!(
                "unknown backend '{other}' (arm|neon|fpga|hybrid|auto)"
            ))
        }
    }))
}

fn parse_rule(s: &str) -> Result<FusionRule, String> {
    Ok(match s {
        "window" => FusionRule::WindowEnergy { radius: 1 },
        "maxmag" => FusionRule::MaxMagnitude,
        "average" => FusionRule::Weighted { alpha: 0.5 },
        "activity" => FusionRule::ActivityGuided {
            radius: 1,
            match_threshold: 0.75,
        },
        other => {
            return Err(format!(
                "unknown rule '{other}' (window|maxmag|average|activity)"
            ))
        }
    })
}

/// Builds a telemetry handle if `--trace` or `--metrics` was given.
fn telemetry_for(args: &Args) -> Option<Arc<Telemetry>> {
    if args.opt("trace").is_some() || args.opt("metrics").is_some() {
        Some(Telemetry::shared())
    } else {
        None
    }
}

/// Writes the exports requested by `--trace` / `--metrics`.
fn write_telemetry(args: &Args, tel: &Arc<Telemetry>) -> Result<(), String> {
    if let Some(path) = args.opt("trace") {
        std::fs::write(path, export::chrome_trace(tel.tracer()))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (load in Perfetto)");
    }
    if let Some(path) = args.opt("metrics") {
        std::fs::write(path, export::prometheus_text(tel.metrics()))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Prometheus metrics to {path}");
    }
    Ok(())
}

/// Parses `--threads N` (default 1 = serial; larger spawns the engine's
/// persistent worker pool for the CPU backends).
fn parse_threads(args: &Args) -> Result<usize, String> {
    args.opt_or("threads", "1")
        .parse()
        .map_err(|_| "bad --threads".to_string())
}

fn parse_size(s: &str) -> Result<(usize, usize), String> {
    let (w, h) = s.split_once('x').ok_or("size must look like 88x72")?;
    Ok((
        w.parse().map_err(|_| "bad width")?,
        h.parse().map_err(|_| "bad height")?,
    ))
}

fn cmd_fuse(args: &Args) -> Result<(), String> {
    let [a_path, b_path] = &args.positional[..] else {
        return Err("fuse needs exactly two input images".into());
    };
    let out_path = args.opt("output").ok_or("fuse needs -o <output.pgm>")?;
    let levels: usize = args
        .opt_or("levels", "3")
        .parse()
        .map_err(|_| "bad --levels")?;
    let rule = parse_rule(&args.opt_or("rule", "window"))?;
    let backend = parse_backend(&args.opt_or("backend", "auto"))?;
    let threads = parse_threads(args)?;

    let a = pgm::read_pgm(a_path).map_err(|e| format!("{a_path}: {e}"))?;
    let b = pgm::read_pgm(b_path).map_err(|e| format!("{b_path}: {e}"))?;
    if a.dims() != b.dims() {
        return Err(format!(
            "inputs differ in size: {}x{} vs {}x{}",
            a.width(),
            a.height(),
            b.width(),
            b.height()
        ));
    }
    let max_levels = Dwt2d::max_levels(a.width(), a.height());
    if levels > max_levels {
        return Err(format!(
            "--levels {levels} unsupported for this size (max {max_levels})"
        ));
    }

    let backend = match backend {
        Some(b) => b,
        None => {
            let mut sched = AdaptiveScheduler::new(Policy::Model(Objective::Energy), levels);
            sched
                .choose(a.width(), a.height())
                .map_err(|e| e.to_string())?
        }
    };
    let mut engine =
        FusionEngine::with_rules(levels, rule, LowpassRule::Average).map_err(|e| e.to_string())?;
    engine.set_threads(threads);
    let telemetry = telemetry_for(args);
    if let Some(tel) = &telemetry {
        engine.set_telemetry(Arc::clone(tel));
    }
    let out = engine.fuse(&a, &b, backend).map_err(|e| e.to_string())?;
    if let Some(tel) = &telemetry {
        write_telemetry(args, tel)?;
    }
    pgm::write_pgm(&out.image, out_path).map_err(|e| format!("{out_path}: {e}"))?;
    eprintln!(
        "fused {}x{} on {} in {:.2} ms (modeled), {:.3} mJ -> {out_path}",
        a.width(),
        a.height(),
        out.backend.label(),
        out.timing.total_seconds() * 1e3,
        out.energy_mj
    );
    Ok(())
}

fn cmd_denoise(args: &Args) -> Result<(), String> {
    let [in_path] = &args.positional[..] else {
        return Err("denoise needs exactly one input image".into());
    };
    let out_path = args.opt("output").ok_or("denoise needs -o <output.pgm>")?;
    let levels: usize = args
        .opt_or("levels", "3")
        .parse()
        .map_err(|_| "bad --levels")?;
    let strength: f32 = args
        .opt_or("strength", "1.0")
        .parse()
        .map_err(|_| "bad --strength")?;
    let img = pgm::read_pgm(in_path).map_err(|e| format!("{in_path}: {e}"))?;
    let t = Dtcwt::new(levels).map_err(|e| e.to_string())?;
    let out = denoise(&t, &img, strength).map_err(|e| e.to_string())?;
    pgm::write_pgm(&out, out_path).map_err(|e| format!("{out_path}: {e}"))?;
    eprintln!(
        "denoised {}x{} (strength {strength}) -> {out_path}",
        img.width(),
        img.height()
    );
    Ok(())
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let out_dir = args.opt_or("output", "out");
    let frames: usize = args
        .opt_or("frames", "5")
        .parse()
        .map_err(|_| "bad --frames")?;
    let (w, h) = parse_size(&args.opt_or("size", "88x72"))?;
    let seed: u64 = args
        .opt_or("seed", "42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let threads = parse_threads(args)?;

    let scene = ScenePair::new(seed);
    let mut engine = FusionEngine::new(3).map_err(|e| e.to_string())?;
    engine.set_threads(threads);
    let mut sched = AdaptiveScheduler::new(Policy::Model(Objective::Energy), 3);
    let telemetry = telemetry_for(args);
    if let Some(tel) = &telemetry {
        engine.set_telemetry(Arc::clone(tel));
        sched.set_telemetry(Arc::clone(tel));
    }
    for i in 0..frames {
        let t = i as f64 / 10.0;
        let vis = scene.render_visible(w, h, t);
        let ir = scene.render_thermal(w, h, t);
        let backend = sched.choose(w, h).map_err(|e| e.to_string())?;
        let out = engine.fuse(&vis, &ir, backend).map_err(|e| e.to_string())?;
        pgm::write_pgm(&vis, format!("{out_dir}/demo_{i:03}_visible.pgm"))
            .map_err(|e| e.to_string())?;
        pgm::write_pgm(&ir, format!("{out_dir}/demo_{i:03}_thermal.pgm"))
            .map_err(|e| e.to_string())?;
        pgm::write_pgm(&out.image, format!("{out_dir}/demo_{i:03}_fused.pgm"))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "frame {i}: {} | {:.2} ms | {:.3} mJ",
            out.backend.label(),
            out.timing.total_seconds() * 1e3,
            out.energy_mj
        );
    }
    if let Some(tel) = &telemetry {
        write_telemetry(args, tel)?;
    }
    eprintln!("wrote {frames} frame triples under {out_dir}/");
    Ok(())
}

fn usage() -> &'static str {
    "usage:\n  \
     wavefuse fuse <visible.pgm> <thermal.pgm> -o <fused.pgm> \
     [--backend arm|neon|fpga|hybrid|auto] [--levels N] [--rule window|maxmag|average|activity] \
     [--threads N] [--trace <t.json>] [--metrics <m.prom>]\n  \
     wavefuse denoise <in.pgm> -o <out.pgm> [--strength S] [--levels N]\n  \
     wavefuse demo [-o <dir>] [--frames N] [--size WxH] [--seed S] \
     [--threads N] [--trace <t.json>] [--metrics <m.prom>]"
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "fuse" => cmd_fuse(&args),
        "denoise" => cmd_denoise(&args),
        "demo" => cmd_demo(&args),
        "--help" | "-h" | "help" => {
            eprintln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wavefuse: {e}");
            ExitCode::FAILURE
        }
    }
}

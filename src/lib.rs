//! # wavefuse
//!
//! Umbrella crate for the wavefuse workspace: an energy-efficient DT-CWT
//! video-fusion system with heterogeneous CPU / SIMD / (simulated) FPGA
//! backends, reproducing Nunez-Yanez & Sun, *"Energy Efficient Video Fusion
//! with Heterogeneous CPU-FPGA Devices"*, DATE 2016.
//!
//! This crate re-exports every member crate under a short module name so
//! examples and downstream users need a single dependency:
//!
//! ```
//! use wavefuse::dtcwt::Dtcwt;
//! use wavefuse::video::Frame;
//!
//! let frame = Frame::filled(16, 16, 0.5f32);
//! let transform = Dtcwt::new(2)?;
//! let pyramid = transform.forward(&frame.into_image())?;
//! assert_eq!(pyramid.levels(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the repository `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the paper-reproduction results.

pub use wavefuse_core as core;
pub use wavefuse_dtcwt as dtcwt;
pub use wavefuse_metrics as metrics;
pub use wavefuse_numerics as numerics;
pub use wavefuse_power as power;
pub use wavefuse_simd as simd;
pub use wavefuse_trace as trace;
pub use wavefuse_video as video;
pub use wavefuse_zynq as zynq;

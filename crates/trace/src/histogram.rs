//! Allocation-free, lock-free log-bucketed histogram.
//!
//! [`LogHistogram`] is the always-on companion to the mutex-guarded
//! [`MetricsRegistry`](crate::MetricsRegistry) histograms: all allocation
//! happens at construction time, and `observe()` is a handful of relaxed
//! atomic operations, so the pipeline can record per-frame latency and
//! energy samples inside the zero-allocation steady state that the
//! counting-allocator tests enforce.
//!
//! Contention is kept off the hot path by *sharding*: each observing
//! thread is assigned a stable ordinal (process-wide, handed out on first
//! observation) and writes to `ordinal % shards`. Readers merge the shard
//! counters on the fly — quantile estimation walks at most
//! `buckets × shards` atomic loads and never allocates either.
//!
//! Buckets are the same power-of-two ladder the registry uses
//! (`min_bound · 2^i`), and [`LogHistogram::snapshot`] converts to a
//! [`HistogramData`] so existing Prometheus export applies unchanged.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::metrics::{HistogramData, DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_HISTOGRAM_MIN};

/// Default number of per-thread shards (worker pools top out well below
/// this, and excess shards only cost idle cache lines).
pub const DEFAULT_SHARDS: usize = 8;

/// Process-wide thread ordinal source. Ordinals are dense and stable for
/// the life of a thread, so every [`LogHistogram`] maps a given thread to
/// the same shard index.
static NEXT_THREAD_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns the calling thread's stable observation ordinal, assigning one
/// on first use. Assignment allocates nothing; it is a single relaxed
/// `fetch_add` on a process-wide counter.
fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|cell| {
        let cur = cell.get();
        if cur != usize::MAX {
            return cur;
        }
        let assigned = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
        cell.set(assigned);
        assigned
    })
}

/// Adds `v` to an `f64` accumulator stored as bits in an `AtomicU64`.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Raises an `f64` maximum stored as bits in an `AtomicU64` to at least `v`.
fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One thread-shard of counters. Padding is deliberately not attempted —
/// the observation rate is one sample per frame, far below the contention
/// regime where false sharing matters.
#[derive(Debug)]
struct Shard {
    /// Per-bucket sample counts; the final slot is the +Inf overflow bucket.
    counts: Box<[AtomicU64]>,
    /// Total samples recorded in this shard.
    count: AtomicU64,
    /// Sum of samples, stored as `f64` bits.
    sum_bits: AtomicU64,
    /// Largest sample, stored as `f64` bits.
    max_bits: AtomicU64,
}

impl Shard {
    fn new(buckets: usize) -> Self {
        let counts: Vec<AtomicU64> = (0..=buckets).map(|_| AtomicU64::new(0)).collect();
        Shard {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

/// Allocation-free, lock-free log-bucketed histogram.
///
/// Bucket upper bounds follow `min_bound · 2^i` for `i in 0..buckets`,
/// matching the registry's `observe_log2` ladder, plus one overflow
/// bucket. `observe` is wait-free apart from two short CAS loops on the
/// shard's sum/max cells; quantiles are estimated by linear interpolation
/// inside the covering bucket.
///
/// # Examples
///
/// ```
/// use wavefuse_trace::LogHistogram;
///
/// let h = LogHistogram::with_defaults();
/// for i in 1..=100u32 {
///     h.observe(i as f64 * 1e-3);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.5);
/// // The true median (0.0505) lies in the (0.032, 0.064] bucket.
/// assert!(p50 > 0.032 && p50 <= 0.064);
/// assert!((h.max() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    /// Upper bound of the first bucket.
    min_bound: f64,
    /// Number of finite buckets (the overflow bucket is extra).
    buckets: usize,
    shards: Box<[Shard]>,
}

impl LogHistogram {
    /// Creates a histogram with explicit shard count, first bucket bound
    /// and finite bucket count. All allocation happens here.
    ///
    /// `shards` and `buckets` are clamped to at least 1; `min_bound` must
    /// be positive and finite.
    pub fn new(shards: usize, min_bound: f64, buckets: usize) -> Self {
        assert!(
            min_bound.is_finite() && min_bound > 0.0,
            "min_bound must be positive and finite"
        );
        let shards = shards.max(1);
        let buckets = buckets.max(1);
        let built: Vec<Shard> = (0..shards).map(|_| Shard::new(buckets)).collect();
        LogHistogram {
            min_bound,
            buckets,
            shards: built.into_boxed_slice(),
        }
    }

    /// Creates a histogram with the registry's default ladder
    /// (1 µs · 2^i, 28 buckets) and [`DEFAULT_SHARDS`] shards.
    pub fn with_defaults() -> Self {
        LogHistogram::new(
            DEFAULT_SHARDS,
            DEFAULT_HISTOGRAM_MIN,
            DEFAULT_HISTOGRAM_BUCKETS,
        )
    }

    /// Upper bound of finite bucket `i` (`min_bound · 2^i`).
    fn bound(&self, i: usize) -> f64 {
        self.min_bound * f64::powi(2.0, i as i32)
    }

    /// Index of the bucket covering `value`: the first bucket whose upper
    /// bound is `>= value` (bounds are inclusive), or the overflow bucket.
    /// Matches [`HistogramData`]'s linear-scan placement exactly.
    fn bucket_index(&self, value: f64) -> usize {
        if value.is_nan() || value <= self.min_bound {
            return 0;
        }
        let guess = (value / self.min_bound).log2().ceil();
        let mut i = if guess.is_finite() && guess > 0.0 {
            (guess as usize).min(self.buckets)
        } else {
            0
        };
        // log2 rounding can land one bucket off near the power-of-two
        // boundaries; nudge until the invariant bounds[i-1] < v <= bounds[i]
        // holds (or we sit in the overflow bucket).
        while i > 0 && value <= self.bound(i - 1) {
            i -= 1;
        }
        while i < self.buckets && value > self.bound(i) {
            i += 1;
        }
        i
    }

    /// Records one sample. Allocation-free and lock-free.
    pub fn observe(&self, value: f64) {
        let shard = &self.shards[thread_ordinal() % self.shards.len()];
        let idx = self.bucket_index(value);
        shard.counts[idx].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&shard.sum_bits, value);
        atomic_f64_max(&shard.max_bits, value);
    }

    /// Total samples across all shards. Allocation-free.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples across shards. Allocation-free.
    pub fn sum(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| f64::from_bits(s.sum_bits.load(Ordering::Relaxed)))
            .sum()
    }

    /// Largest sample observed (0.0 when empty). Allocation-free.
    pub fn max(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| f64::from_bits(s.max_bits.load(Ordering::Relaxed)))
            .fold(0.0, f64::max)
    }

    /// Merged count of finite bucket `i` (or the overflow bucket when
    /// `i == buckets`).
    fn merged_bucket(&self, i: usize) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counts[i].load(Ordering::Relaxed))
            .sum()
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation within the covering log bucket. Returns 0.0 when
    /// empty; the overflow bucket reports the observed maximum.
    /// Allocation-free.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut below = 0u64;
        for i in 0..=self.buckets {
            let c = self.merged_bucket(i);
            if c > 0 && below + c >= rank {
                let lo = if i == 0 { 0.0 } else { self.bound(i - 1) };
                let hi = if i == self.buckets {
                    self.max().max(lo)
                } else {
                    self.bound(i)
                };
                let frac = (rank - below) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            below += c;
        }
        self.max()
    }

    /// Materializes the merged shard counters into a [`HistogramData`] for
    /// registry publication and Prometheus export. This path allocates;
    /// call it from export code, not from the frame loop.
    pub fn snapshot(&self) -> HistogramData {
        let bounds: Vec<f64> = (0..self.buckets).map(|i| self.bound(i)).collect();
        let counts: Vec<u64> = (0..=self.buckets).map(|i| self.merged_bucket(i)).collect();
        HistogramData {
            bounds,
            counts,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for oracle sampling.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    #[test]
    fn bucket_index_matches_registry_linear_scan() {
        let h = LogHistogram::new(2, DEFAULT_HISTOGRAM_MIN, DEFAULT_HISTOGRAM_BUCKETS);
        let oracle = HistogramData {
            bounds: (0..DEFAULT_HISTOGRAM_BUCKETS)
                .map(|i| DEFAULT_HISTOGRAM_MIN * f64::powi(2.0, i as i32))
                .collect(),
            counts: vec![0; DEFAULT_HISTOGRAM_BUCKETS + 1],
            sum: 0.0,
            count: 0,
        };
        let linear = |v: f64| {
            oracle
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(oracle.bounds.len())
        };
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..10_000 {
            let r = xorshift(&mut state) as f64 / u64::MAX as f64;
            // Span well below the first bound to well above the last.
            let v = 1e-8 * f64::powf(10.0, r * 12.0);
            assert_eq!(h.bucket_index(v), linear(v), "value {v}");
        }
        // Exact bucket boundaries are inclusive, as in the registry.
        for i in 0..DEFAULT_HISTOGRAM_BUCKETS {
            let b = DEFAULT_HISTOGRAM_MIN * f64::powi(2.0, i as i32);
            assert_eq!(h.bucket_index(b), linear(b), "boundary {b}");
        }
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(-1.0), 0);
        assert_eq!(h.bucket_index(f64::NAN), 0);
    }

    #[test]
    fn quantiles_bracket_the_sorted_sample_oracle() {
        let h = LogHistogram::new(4, 1e-6, 28);
        let mut state = 2016u64;
        let mut samples = Vec::new();
        for _ in 0..5_000 {
            let r = xorshift(&mut state) as f64 / u64::MAX as f64;
            // Log-uniform over [1 µs, ~1 s] — every bucket gets traffic.
            let v = 1e-6 * f64::powf(10.0, r * 6.0);
            samples.push(v);
            h.observe(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let truth = samples[rank];
            let est = h.quantile(q);
            // The estimate must land within the truth's covering bucket,
            // i.e. within a factor of 2 of the exact order statistic.
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: estimate {est} vs oracle {truth}"
            );
        }
        assert_eq!(h.count(), 5_000);
        let sum: f64 = samples.iter().sum();
        assert!((h.sum() - sum).abs() / sum < 1e-9);
        assert!((h.max() - samples[samples.len() - 1]).abs() < 1e-18);
    }

    #[test]
    fn quantile_edges_and_empty_are_defined() {
        let h = LogHistogram::new(1, 1e-6, 8);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.is_empty());
        h.observe(1.0); // overflow bucket (last bound = 128 µs)
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = std::sync::Arc::new(LogHistogram::with_defaults());
        let threads = 4;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.observe((t * per_thread + i) as f64 * 1e-7 + 1e-7);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.counts.iter().sum::<u64>(), threads * per_thread);
    }

    #[test]
    fn snapshot_mirrors_merged_counters() {
        let h = LogHistogram::new(3, 1e-3, 6);
        for v in [5e-4, 1e-3, 3e-3, 0.02, 10.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.bounds.len(), 6);
        assert_eq!(snap.counts.len(), 7);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.counts[0], 2); // 5e-4 and the inclusive 1e-3 bound
        assert_eq!(*snap.counts.last().unwrap(), 1); // 10.0 overflows
        assert!((snap.sum - (5e-4 + 1e-3 + 3e-3 + 0.02 + 10.0)).abs() < 1e-12);
    }
}

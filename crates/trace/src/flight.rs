//! Per-frame flight recorder: a fixed-capacity ring of [`FrameRecord`]s.
//!
//! The pipeline owns one recorder and overwrites the oldest record once
//! the ring fills — like an aircraft flight recorder, the last N frames
//! are always available for post-mortem without unbounded growth. Every
//! field of a [`FrameRecord`] is `Copy` (labels are `&'static str`), so
//! recording a frame is a plain slot write: no allocation, no locking,
//! safe inside the zero-allocation steady state.
//!
//! Records carry both clocks (host wall microseconds and the modeled
//! platform clock), the per-phase time and energy split, the governor's
//! decision rationale (deadline, predicted vs measured cost), pool and
//! scheduler counters, and the PS/PL energy split for FPGA-routed work.
//! [`FlightRecorder::jsonl`] and [`FlightRecorder::chrome_trace`] export
//! in the same shapes as [`crate::export`].

use crate::json::JsonValue;

/// Phase labels, index-aligned with [`FrameRecord::phase_s`] and
/// [`FrameRecord::phase_mj`] (and with the engine's phase ordering).
pub const PHASES: [&str; 5] = ["capture", "forward", "fusion", "inverse", "overhead"];

/// Everything the pipeline knows about one fused frame, captured at
/// `fuse_finish` time. All fields are plain `Copy` data so the record can
/// be written into a preallocated ring slot without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Zero-based frame index since pipeline construction.
    pub frame: u64,
    /// Serving stream this frame belongs to, or -1 for a single-stream
    /// pipeline (one recorder can then interleave a whole fleet's frames).
    pub stream: i64,
    /// Backend label (e.g. `"NEON"`), `""` in a default record.
    pub backend: &'static str,
    /// Kernel name (e.g. `"neon-simd"`).
    pub kernel: &'static str,
    /// Governor decision rationale: `"fixed"` for a pinned backend, or
    /// the adaptive policy label (e.g. `"online-energy"`).
    pub decision: &'static str,
    /// Whether the columnar (transpose-free) column passes were active.
    pub columnar: bool,
    /// Worker threads configured on the engine (1 = serial).
    pub threads: u64,
    /// Pipeline depth: frames the in-flight ring may hold (1 = no
    /// software pipelining beyond the single-frame capture overlap).
    pub depth: u64,
    /// Engine ring slot this frame's inverse ran in, or -1 when the
    /// frame completed outside the slot ring (serial/FPGA/hybrid paths).
    pub slot: i64,
    /// Host wall-clock start of the step, µs since pipeline construction.
    pub wall_start_us: f64,
    /// Host wall-clock duration of the step in µs.
    pub wall_dur_us: f64,
    /// Modeled platform clock at frame start, seconds.
    pub model_start_s: f64,
    /// Modeled frame duration in seconds (sum of `phase_s`).
    pub model_dur_s: f64,
    /// Modeled per-phase seconds, ordered as [`PHASES`].
    pub phase_s: [f64; 5],
    /// Modeled per-phase energy in mJ, ordered as [`PHASES`].
    pub phase_mj: [f64; 5],
    /// Modeled total frame energy in mJ (exactly what the pipeline's
    /// `PipelineStats.energy_mj` accumulated for this frame).
    pub energy_mj: f64,
    /// PS (ARM + static) share of `energy_mj`, in mJ.
    pub ps_mj: f64,
    /// PL active share of `energy_mj`: the 19.2 mW increment charged over
    /// the PL engine's busy seconds. Zero on CPU-only backends.
    pub pl_mj: f64,
    /// Seconds the PL engine was busy this frame (from the cycle ledger).
    pub pl_busy_s: f64,
    /// Cost model's predicted frame seconds for this backend/geometry.
    pub predicted_s: f64,
    /// Row-strip fusion jobs fanned out across the worker pool for this
    /// frame (0 = fusion ran serially on the dispatcher thread).
    pub fusion_strips: u64,
    /// Real-time budget the governor works against (camera frame period).
    pub deadline_s: f64,
    /// Whether the output buffer came from the pool (vs a fresh allocation).
    pub pool_hit: bool,
    /// Capture-gate frames dropped while producing this frame.
    pub gate_drops: u64,
    /// Work-stealing batches claimed by the pool during this frame.
    pub batches_claimed: u64,
    /// Cross-worker steals during this frame.
    pub steals: u64,
    /// Nanoseconds workers spent parked during this frame.
    pub parked_ns: u64,
}

impl Default for FrameRecord {
    fn default() -> Self {
        FrameRecord {
            frame: 0,
            stream: -1,
            backend: "",
            kernel: "",
            decision: "",
            columnar: false,
            threads: 1,
            depth: 1,
            slot: -1,
            wall_start_us: 0.0,
            wall_dur_us: 0.0,
            model_start_s: 0.0,
            model_dur_s: 0.0,
            phase_s: [0.0; 5],
            phase_mj: [0.0; 5],
            energy_mj: 0.0,
            ps_mj: 0.0,
            pl_mj: 0.0,
            pl_busy_s: 0.0,
            predicted_s: 0.0,
            fusion_strips: 0,
            deadline_s: 0.0,
            pool_hit: false,
            gate_drops: 0,
            batches_claimed: 0,
            steals: 0,
            parked_ns: 0,
        }
    }
}

impl FrameRecord {
    /// Renders the record as a flat JSON object (one JSONL line's worth).
    fn to_json(self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("frame".into(), JsonValue::Num(self.frame as f64)),
            ("stream".into(), JsonValue::Num(self.stream as f64)),
            ("backend".into(), JsonValue::Str(self.backend.into())),
            ("kernel".into(), JsonValue::Str(self.kernel.into())),
            ("decision".into(), JsonValue::Str(self.decision.into())),
            ("columnar".into(), JsonValue::Bool(self.columnar)),
            ("threads".into(), JsonValue::Num(self.threads as f64)),
            ("depth".into(), JsonValue::Num(self.depth as f64)),
            ("slot".into(), JsonValue::Num(self.slot as f64)),
            ("wall_start_us".into(), JsonValue::Num(self.wall_start_us)),
            ("wall_dur_us".into(), JsonValue::Num(self.wall_dur_us)),
            ("model_start_s".into(), JsonValue::Num(self.model_start_s)),
            ("model_dur_s".into(), JsonValue::Num(self.model_dur_s)),
        ];
        for (i, phase) in PHASES.iter().enumerate() {
            fields.push((format!("{phase}_s"), JsonValue::Num(self.phase_s[i])));
        }
        for (i, phase) in PHASES.iter().enumerate() {
            fields.push((format!("{phase}_mj"), JsonValue::Num(self.phase_mj[i])));
        }
        fields.extend([
            ("energy_mj".into(), JsonValue::Num(self.energy_mj)),
            ("ps_mj".into(), JsonValue::Num(self.ps_mj)),
            ("pl_mj".into(), JsonValue::Num(self.pl_mj)),
            ("pl_busy_s".into(), JsonValue::Num(self.pl_busy_s)),
            ("predicted_s".into(), JsonValue::Num(self.predicted_s)),
            (
                "fusion_strips".into(),
                JsonValue::Num(self.fusion_strips as f64),
            ),
            ("deadline_s".into(), JsonValue::Num(self.deadline_s)),
            ("pool_hit".into(), JsonValue::Bool(self.pool_hit)),
            ("gate_drops".into(), JsonValue::Num(self.gate_drops as f64)),
            (
                "batches_claimed".into(),
                JsonValue::Num(self.batches_claimed as f64),
            ),
            ("steals".into(), JsonValue::Num(self.steals as f64)),
            ("parked_ns".into(), JsonValue::Num(self.parked_ns as f64)),
        ]);
        JsonValue::Obj(fields)
    }
}

/// Fixed-capacity ring of [`FrameRecord`]s, oldest overwritten first.
///
/// The recorder is single-writer by construction (the pipeline owns it
/// behind `&mut self`), so no atomics are needed; `record` is one slot
/// write plus a counter increment.
///
/// # Examples
///
/// ```
/// use wavefuse_trace::{FlightRecorder, FrameRecord};
///
/// let mut rec = FlightRecorder::new(2);
/// for frame in 0..3 {
///     rec.record(FrameRecord { frame, ..FrameRecord::default() });
/// }
/// // Capacity 2: frame 0 was overwritten; iteration is oldest→newest.
/// let frames: Vec<u64> = rec.iter().map(|r| r.frame).collect();
/// assert_eq!(frames, [1, 2]);
/// assert_eq!(rec.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    records: Box<[FrameRecord]>,
    /// Total records ever written (monotonic; `>= len()`).
    total: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` frames
    /// (`capacity` is clamped to at least 1). All allocation happens here.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            records: vec![FrameRecord::default(); capacity].into_boxed_slice(),
            total: 0,
        }
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.records.len()
    }

    /// Total records ever written, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records currently held (`min(total, capacity)`).
    pub fn len(&self) -> usize {
        (self.total as usize).min(self.records.len())
    }

    /// Returns `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Returns `true` once the ring has overwritten at least one record.
    pub fn wrapped(&self) -> bool {
        self.total as usize > self.records.len()
    }

    /// Writes one record, overwriting the oldest slot when full.
    /// Allocation-free.
    pub fn record(&mut self, rec: FrameRecord) {
        let slot = (self.total as usize) % self.records.len();
        self.records[slot] = rec;
        self.total += 1;
    }

    /// Iterates the held records oldest→newest. Allocation-free.
    pub fn iter(&self) -> impl Iterator<Item = &FrameRecord> {
        let cap = self.records.len();
        if self.total as usize > cap {
            // Wrapped: the slot about to be overwritten is the oldest.
            let start = self.total as usize % cap;
            self.records[start..]
                .iter()
                .chain(self.records[..start].iter())
        } else {
            self.records[..self.len()]
                .iter()
                .chain(self.records[..0].iter())
        }
    }

    /// Exports the held records as JSON Lines (one object per frame,
    /// oldest first), mirroring [`crate::export::jsonl`]'s shape.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.iter() {
            rec.to_json().write(&mut out);
            out.push('\n');
        }
        out
    }

    /// Exports the held records in the Chrome trace-event format on the
    /// modeled clock: one `"frame"` span plus one span per phase, with
    /// the energy split attached as args. Load in Perfetto or
    /// `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<JsonValue> = vec![JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("process_name".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Num(1.0)),
            ("tid".into(), JsonValue::Num(0.0)),
            (
                "args".into(),
                JsonValue::Obj(vec![(
                    "name".into(),
                    JsonValue::Str("wavefuse flight recorder (modeled clock)".into()),
                )]),
            ),
        ])];
        for rec in self.iter() {
            let span =
                |name: String, cat: &str, ts_s: f64, dur_s: f64, args: Vec<(String, JsonValue)>| {
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::Str(name)),
                        ("cat".into(), JsonValue::Str(cat.into())),
                        ("ph".into(), JsonValue::Str("X".into())),
                        ("pid".into(), JsonValue::Num(1.0)),
                        ("tid".into(), JsonValue::Num(0.0)),
                        ("ts".into(), JsonValue::Num(ts_s * 1e6)),
                        ("dur".into(), JsonValue::Num(dur_s * 1e6)),
                        ("args".into(), JsonValue::Obj(args)),
                    ])
                };
            events.push(span(
                format!("frame {} [{}]", rec.frame, rec.backend),
                "flight",
                rec.model_start_s,
                rec.model_dur_s,
                vec![
                    ("energy_mj".into(), JsonValue::Num(rec.energy_mj)),
                    ("ps_mj".into(), JsonValue::Num(rec.ps_mj)),
                    ("pl_mj".into(), JsonValue::Num(rec.pl_mj)),
                    ("predicted_s".into(), JsonValue::Num(rec.predicted_s)),
                    ("decision".into(), JsonValue::Str(rec.decision.into())),
                    ("kernel".into(), JsonValue::Str(rec.kernel.into())),
                ],
            ));
            let mut ts = rec.model_start_s;
            for (i, phase) in PHASES.iter().enumerate() {
                events.push(span(
                    (*phase).into(),
                    "phase",
                    ts,
                    rec.phase_s[i],
                    vec![("energy_mj".into(), JsonValue::Num(rec.phase_mj[i]))],
                ));
                ts += rec.phase_s[i];
            }
        }
        let doc = JsonValue::Obj(vec![
            ("traceEvents".into(), JsonValue::Arr(events)),
            ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
            (
                "otherData".into(),
                JsonValue::Obj(vec![
                    (
                        "dropped_frames".into(),
                        JsonValue::Num((self.total - self.len() as u64) as f64),
                    ),
                    ("total_frames".into(), JsonValue::Num(self.total as f64)),
                ]),
            ),
        ]);
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(frame: u64) -> FrameRecord {
        FrameRecord {
            frame,
            backend: "NEON",
            kernel: "neon-simd",
            decision: "fixed",
            energy_mj: frame as f64 * 0.5,
            phase_s: [5e-4, 1e-3, 2e-3, 3e-3, 4e-4],
            model_dur_s: 6.9e-3,
            ..FrameRecord::default()
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = FlightRecorder::new(4);
        assert!(r.is_empty() && !r.wrapped());
        for f in 0..3 {
            r.record(rec(f));
        }
        assert_eq!(r.len(), 3);
        assert!(!r.wrapped());
        let got: Vec<u64> = r.iter().map(|x| x.frame).collect();
        assert_eq!(got, [0, 1, 2]);

        for f in 3..11 {
            r.record(rec(f));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 11);
        assert!(r.wrapped());
        // Oldest→newest ordering survives an arbitrary number of wraps.
        let got: Vec<u64> = r.iter().map(|x| x.frame).collect();
        assert_eq!(got, [7, 8, 9, 10]);
    }

    #[test]
    fn exact_capacity_boundary_is_not_wrapped() {
        let mut r = FlightRecorder::new(3);
        for f in 0..3 {
            r.record(rec(f));
        }
        assert!(!r.wrapped());
        assert_eq!(r.iter().map(|x| x.frame).collect::<Vec<_>>(), [0, 1, 2]);
        r.record(rec(3));
        assert!(r.wrapped());
        assert_eq!(r.iter().map(|x| x.frame).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn jsonl_lines_parse_and_match_records() {
        let mut r = FlightRecorder::new(8);
        for f in 0..5 {
            r.record(rec(f));
        }
        let text = r.jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (f, line) in lines.iter().enumerate() {
            let v = JsonValue::parse(line).expect("valid JSONL line");
            assert_eq!(v.get("frame").and_then(JsonValue::as_f64), Some(f as f64));
            assert_eq!(v.get("backend").and_then(JsonValue::as_str), Some("NEON"));
            assert_eq!(
                v.get("energy_mj").and_then(JsonValue::as_f64),
                Some(f as f64 * 0.5)
            );
            assert!(v.get("forward_s").is_some());
            assert!(v.get("overhead_mj").is_some());
            assert_eq!(v.get("depth").and_then(JsonValue::as_f64), Some(1.0));
            assert_eq!(v.get("slot").and_then(JsonValue::as_f64), Some(-1.0));
        }
    }

    #[test]
    fn chrome_trace_has_frame_and_phase_spans() {
        let mut r = FlightRecorder::new(8);
        r.record(rec(0));
        let doc = JsonValue::parse(&r.chrome_trace()).expect("valid trace JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        // 1 metadata + 1 frame span + 5 phase spans.
        assert_eq!(events.len(), 7);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .collect();
        assert!(names.contains(&"frame 0 [NEON]"));
        for phase in PHASES {
            assert!(names.contains(&phase), "missing {phase} span");
        }
    }
}

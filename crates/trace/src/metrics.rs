//! Counters, gauges and log2-bucketed histograms with labels.
//!
//! The registry is a flat map from `(name, sorted labels)` to a metric
//! value, behind one mutex — the hot paths here are a few `HashMap`-free
//! `BTreeMap` lookups per fused frame, far below the modeled work they
//! measure. `BTreeMap` keeps the Prometheus exposition deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A metric series key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name (Prometheus conventions: `wavefuse_frames_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key with the labels sorted.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramData {
    /// Log2-spaced upper bounds: `min_bound * 2^i` for `i in 0..buckets`.
    pub fn log2_bounds(min_bound: f64, buckets: usize) -> Vec<f64> {
        (0..buckets as i32)
            .map(|i| min_bound * f64::powi(2.0, i))
            .collect()
    }

    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        HistogramData {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Index of the bucket `value` lands in (the first bound `>= value`,
    /// or the overflow bucket).
    pub fn bucket_index(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    fn observe(&mut self, value: f64) {
        let i = self.bucket_index(value);
        self.counts[i] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// A metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing.
    Counter(f64),
    /// Last-set value.
    Gauge(f64),
    /// Log2-bucketed distribution.
    Histogram(HistogramData),
}

/// Default histogram floor: 1 µs — per-phase latencies at the paper's
/// smallest frames sit around tens of µs.
pub const DEFAULT_HISTOGRAM_MIN: f64 = 1e-6;
/// Default bucket count: 1 µs · 2^27 ≈ 134 s, covering whole-run totals.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 28;

/// The metrics registry.
///
/// # Examples
///
/// ```
/// use wavefuse_trace::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.counter_add("wavefuse_frames_total", &[("backend", "NEON")], 1.0);
/// m.gauge_set("wavefuse_power_watts", &[], 0.533);
/// m.observe("wavefuse_frame_seconds", &[("backend", "NEON")], 0.012);
/// assert_eq!(m.counter_value("wavefuse_frames_total", &[("backend", "NEON")]), 1.0);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<SeriesKey, MetricValue>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers help text rendered as `# HELP` in the exposition.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .expect("help map")
            .insert(name.to_string(), help.to_string());
    }

    /// Adds `v` to a counter series, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut series = self.series.lock().expect("series map");
        let entry = series
            .entry(SeriesKey::new(name, labels))
            .or_insert(MetricValue::Counter(0.0));
        match entry {
            MetricValue::Counter(c) => *c += v,
            other => panic!("{name} is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge series to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut series = self.series.lock().expect("series map");
        let entry = series
            .entry(SeriesKey::new(name, labels))
            .or_insert(MetricValue::Gauge(0.0));
        match entry {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("{name} is not a gauge: {other:?}"),
        }
    }

    /// Observes `v` into a histogram with the default log2 buckets
    /// (1 µs · 2^i, 28 buckets).
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.observe_log2(
            name,
            labels,
            v,
            DEFAULT_HISTOGRAM_MIN,
            DEFAULT_HISTOGRAM_BUCKETS,
        );
    }

    /// Observes `v` into a histogram with log2 buckets starting at
    /// `min_bound`. The bucket layout is fixed by the first observation
    /// of each series.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn observe_log2(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        v: f64,
        min_bound: f64,
        buckets: usize,
    ) {
        let mut series = self.series.lock().expect("series map");
        let entry = series
            .entry(SeriesKey::new(name, labels))
            .or_insert_with(|| {
                MetricValue::Histogram(HistogramData::new(HistogramData::log2_bounds(
                    min_bound, buckets,
                )))
            });
        match entry {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("{name} is not a histogram: {other:?}"),
        }
    }

    /// Inserts or replaces a histogram series with an externally built
    /// [`HistogramData`] — the publication path for
    /// [`LogHistogram`](crate::LogHistogram) snapshots, which maintain
    /// their counters outside the registry for allocation-free recording.
    pub fn set_histogram(&self, name: &str, labels: &[(&str, &str)], data: HistogramData) {
        let mut series = self.series.lock().expect("series map");
        series.insert(SeriesKey::new(name, labels), MetricValue::Histogram(data));
    }

    /// Current value of a counter (0 if the series does not exist).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self
            .series
            .lock()
            .expect("series map")
            .get(&SeriesKey::new(name, labels))
        {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0.0,
        }
    }

    /// Current value of a gauge (`None` if the series does not exist).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .series
            .lock()
            .expect("series map")
            .get(&SeriesKey::new(name, labels))
        {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramData> {
        match self
            .series
            .lock()
            .expect("series map")
            .get(&SeriesKey::new(name, labels))
        {
            Some(MetricValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Snapshot of every series, sorted by key.
    pub fn snapshot(&self) -> Vec<(SeriesKey, MetricValue)> {
        self.series
            .lock()
            .expect("series map")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Registered help texts.
    pub fn help_texts(&self) -> BTreeMap<String, String> {
        self.help.lock().expect("help map").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.counter_add("f", &[("b", "neon")], 1.0);
        m.counter_add("f", &[("b", "neon")], 2.0);
        m.counter_add("f", &[("b", "fpga")], 5.0);
        assert_eq!(m.counter_value("f", &[("b", "neon")]), 3.0);
        assert_eq!(m.counter_value("f", &[("b", "fpga")]), 5.0);
        assert_eq!(m.counter_value("f", &[]), 0.0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let m = MetricsRegistry::new();
        m.counter_add("f", &[("a", "1"), ("b", "2")], 1.0);
        m.counter_add("f", &[("b", "2"), ("a", "1")], 1.0);
        assert_eq!(m.counter_value("f", &[("a", "1"), ("b", "2")]), 2.0);
    }

    #[test]
    fn log2_bucket_boundaries() {
        let bounds = HistogramData::log2_bounds(1e-6, 4);
        assert_eq!(bounds, vec![1e-6, 2e-6, 4e-6, 8e-6]);
        let h = HistogramData::new(bounds);
        assert_eq!(h.bucket_index(1e-6), 0, "boundary value is inclusive");
        assert_eq!(h.bucket_index(1.5e-6), 1);
        assert_eq!(h.bucket_index(8e-6), 3);
        assert_eq!(h.bucket_index(9e-6), 4, "overflow bucket");
    }

    #[test]
    fn histogram_observations_accumulate() {
        let m = MetricsRegistry::new();
        for v in [0.5e-6, 3e-6, 1e3] {
            m.observe_log2("lat", &[], v, 1e-6, 4);
        }
        let h = m.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.counts, vec![1, 0, 1, 0, 1]);
        assert!((h.sum - (0.5e-6 + 3e-6 + 1e3)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let m = MetricsRegistry::new();
        m.gauge_set("x", &[], 1.0);
        m.counter_add("x", &[], 1.0);
    }
}

//! # wavefuse-trace — zero-dependency observability
//!
//! The paper's whole argument rests on *measuring* per-phase time and
//! energy per backend (Figs. 8–10, Table I). This crate gives the rest of
//! the workspace that same instrumentation discipline as a first-class
//! subsystem, with no external dependencies (the build environment is
//! offline):
//!
//! * [`tracer::Tracer`] — a structured span/event tracer with a bounded
//!   ring buffer, span attributes, per-thread span nesting, and **two
//!   clocks**: the host's monotonic wall clock and the *modeled* platform
//!   clock that the cost models and the cycle-level ZYNQ simulator advance.
//! * [`metrics::MetricsRegistry`] — counters, gauges and log2-bucketed
//!   histograms with label support (backend, phase, frame size).
//! * [`histogram::LogHistogram`] — an allocation-free, lock-free,
//!   thread-sharded log-bucketed histogram for hot-path samples
//!   (per-frame latency, per-phase durations, per-frame energy); its
//!   snapshots publish into the registry for Prometheus export.
//! * [`flight::FlightRecorder`] — a fixed-capacity per-frame flight
//!   recorder ring ([`flight::FrameRecord`] per fused frame: dual-clock
//!   timestamps, phase/energy splits, governor rationale, scheduler
//!   counters) with JSONL and Chrome-trace export.
//! * [`export`] — three exporters: Prometheus text exposition,
//!   JSON Lines, and the Chrome trace-event format (loadable in Perfetto
//!   or `chrome://tracing`).
//! * [`json`] — the hand-rolled JSON writer/parser the exporters (and the
//!   bench harness) share.
//!
//! The [`Telemetry`] facade bundles a tracer and a registry behind one
//! `Arc`-shareable handle that the pipeline, engine, scheduler, ZYNQ
//! driver and power recorder all accept.
//!
//! # Examples
//!
//! ```
//! use wavefuse_trace::Telemetry;
//!
//! let tel = Telemetry::shared();
//! {
//!     let _frame = tel.tracer().span("frame", "pipeline");
//!     tel.tracer().advance_model(0.010); // the cost model says 10 ms
//!     tel.metrics().counter_add("frames_total", &[("backend", "NEON")], 1.0);
//! }
//! let chrome = wavefuse_trace::export::chrome_trace(tel.tracer());
//! assert!(chrome.contains("\"frame\""));
//! let prom = wavefuse_trace::export::prometheus_text(tel.metrics());
//! assert!(prom.contains("frames_total{backend=\"NEON\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod metrics;
mod telemetry;
pub mod tracer;

pub use flight::{FlightRecorder, FrameRecord};
pub use histogram::LogHistogram;
pub use json::{JsonValue, ToJson};
pub use metrics::{MetricValue, MetricsRegistry, SeriesKey};
pub use telemetry::Telemetry;
pub use tracer::{AttrValue, EventKind, SpanGuard, TraceEvent, Tracer};

//! A minimal hand-rolled JSON value tree, writer and parser.
//!
//! Shared by the trace exporters and the bench harness (which previously
//! leaned on `serde` derives it never actually serialized with). The
//! parser exists so tests can load exported traces back and assert their
//! structure — and so downstream tooling has a reader for the JSONL event
//! stream without external crates.

use std::fmt::Write as _;

/// A JSON value.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a
/// map), which keeps exported documents deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed and written as `f64`; non-finite values
    /// are written as `null`, which JSON cannot represent otherwise).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    // Integral values within f64's exact-integer range
                    // serialize as integers ("64", not "64.0") — counts and
                    // sizes round-trip as what they are.
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // `{:?}` round-trips f64 ("0.1", "1e300") and is always
                    // a valid JSON number for finite values.
                    let _ = write!(out, "{n:?}");
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes and quotes `s` per RFC 8259.
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON value tree. The bench harness implements this
/// for its experiment rows in place of the old `serde::Serialize` derives.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl ToJson for (usize, usize) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![
            JsonValue::Num(self.0 as f64),
            JsonValue::Num(self.1 as f64),
        ])
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // byte-wise walk stays on char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("fwd \"x\"\n".into())),
            ("dur".into(), JsonValue::Num(12.5)),
            ("n".into(), JsonValue::Num(3.0)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "args".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Str("µs".into())]),
            ),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn escapes_control_characters() {
        let s = JsonValue::Str("a\u{1}b".into()).render();
        assert_eq!(s, "\"a\\u0001b\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_values_render_without_fraction() {
        assert_eq!(JsonValue::Num(64.0).render(), "64");
        assert_eq!(JsonValue::Num(-3.0).render(), "-3");
        assert_eq!(JsonValue::Num(0.0).render(), "0");
        assert_eq!(88usize.to_json().render(), "88");
        assert_eq!(
            JsonValue::Arr(vec![JsonValue::Num(88.0), JsonValue::Num(72.0)]).render(),
            "[88,72]"
        );
        // Non-integral and huge values keep the round-trippable float form.
        assert_eq!(JsonValue::Num(12.5).render(), "12.5");
        assert_eq!(JsonValue::Num(1e300).render(), "1e300");
        let big = 9_007_199_254_740_992.0f64; // 2^53: not exactly integral-safe
        assert!(JsonValue::parse(&JsonValue::Num(big).render())
            .unwrap()
            .as_f64()
            .unwrap()
            .eq(&big));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("nulL").is_err());
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = JsonValue::parse("[-1.5e3, \"\\u0041\\n\", 7]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1500.0));
        assert_eq!(a[1].as_str(), Some("A\n"));
        assert_eq!(a[2].as_f64(), Some(7.0));
    }
}

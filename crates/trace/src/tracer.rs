//! The structured span/event tracer.
//!
//! Two clocks run side by side:
//!
//! * the **wall clock** — host-monotonic microseconds since the tracer was
//!   created ([`Tracer::now_wall_us`]); it measures how long this
//!   *simulation* takes on the development machine;
//! * the **modeled clock** — seconds of simulated platform time
//!   ([`Tracer::model_now`]), advanced explicitly by the cost models and
//!   the cycle-level ZYNQ ledger. All exported span placement uses the
//!   modeled clock, so a Chrome trace of a run shows the paper's Fig. 2/5
//!   timeline, not host noise.
//!
//! Events land in a bounded ring buffer: when full, the oldest events are
//! evicted and counted in [`Tracer::dropped`] — tracing never grows
//! without bound under a production frame rate.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// What kind of record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (Chrome `ph:"X"`).
    Span,
    /// A point-in-time event (Chrome `ph:"i"`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Unique id within the tracer.
    pub id: u64,
    /// Enclosing span id on the same thread, if any.
    pub parent: Option<u64>,
    /// Dense per-process thread id (not the OS tid).
    pub tid: u64,
    /// Event name (e.g. `"forward"`, `"frame"`, `"decision"`).
    pub name: String,
    /// Category (e.g. `"phase"`, `"pipeline"`, `"scheduler"`, `"dma"`).
    pub category: String,
    /// Wall-clock start, microseconds since tracer creation.
    pub wall_start_us: f64,
    /// Wall-clock duration in microseconds (0 for instants and for spans
    /// recorded retroactively from modeled time).
    pub wall_dur_us: f64,
    /// Modeled-clock start, seconds.
    pub model_start_s: f64,
    /// Modeled-clock duration, seconds (0 for instants).
    pub model_dur_s: f64,
    /// Span or instant.
    pub kind: EventKind,
    /// Attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// Global tracer-instance counter (to keep per-thread span stacks of
/// distinct tracers from interleaving).
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);
/// Global dense thread-id counter.
static THREAD_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of (tracer id, span id) for parent attribution.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense id.
    static THREAD_ID: u64 = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
}

/// The bounded-buffer tracer. All methods take `&self`; the tracer is
/// safe to share behind an `Arc` across pipeline threads.
#[derive(Debug)]
pub struct Tracer {
    tracer_id: u64,
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    model_clock_s: Mutex<f64>,
    next_id: AtomicU64,
    dropped: AtomicU64,
}

/// Default ring capacity: enough for ~10k frames of pipeline-level spans.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a tracer with the default ring capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a tracer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            tracer_id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            model_clock_s: Mutex::new(0.0),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds of wall time since the tracer was created.
    pub fn now_wall_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// The modeled platform clock, seconds.
    pub fn model_now(&self) -> f64 {
        *self.model_clock_s.lock().expect("model clock")
    }

    /// Advances the modeled clock by `dt` seconds, returning the time
    /// *before* the advance (the natural span start).
    pub fn advance_model(&self, dt: f64) -> f64 {
        let mut clock = self.model_clock_s.lock().expect("model clock");
        let start = *clock;
        *clock += dt.max(0.0);
        start
    }

    /// This thread's dense id.
    pub fn thread_id(&self) -> u64 {
        THREAD_ID.with(|id| *id)
    }

    /// Opens a wall-clock span; the returned guard records the span (with
    /// both wall and modeled durations) when dropped. Nested spans on the
    /// same thread get their parent attributed automatically.
    pub fn span(&self, name: &str, category: &str) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tracer_id)
                .map(|(_, id)| *id);
            s.push((self.tracer_id, id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name: name.to_string(),
            category: category.to_string(),
            wall_start_us: self.now_wall_us(),
            model_start_s: self.model_now(),
            attrs: Vec::new(),
        }
    }

    /// Records a complete span placed on the **modeled** timeline — how
    /// the engine reports its per-phase times retroactively (the phases
    /// are modeled, not host-measured). The parent is the innermost open
    /// span on this thread.
    pub fn complete_span(
        &self,
        name: &str,
        category: &str,
        model_start_s: f64,
        model_dur_s: f64,
        attrs: Vec<(String, AttrValue)>,
    ) {
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tracer_id)
                .map(|(_, id)| *id)
        });
        let event = TraceEvent {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            tid: self.thread_id(),
            name: name.to_string(),
            category: category.to_string(),
            wall_start_us: self.now_wall_us(),
            wall_dur_us: 0.0,
            model_start_s,
            model_dur_s,
            kind: EventKind::Span,
            attrs,
        };
        self.push(event);
    }

    /// Records an instant event at the current clocks.
    pub fn instant(&self, name: &str, category: &str, attrs: Vec<(String, AttrValue)>) {
        self.instant_at(name, category, self.model_now(), attrs);
    }

    /// Records an instant event at an explicit modeled timestamp (e.g. a
    /// power sample whose recorder clock is already model-relative).
    pub fn instant_at(
        &self,
        name: &str,
        category: &str,
        model_ts_s: f64,
        attrs: Vec<(String, AttrValue)>,
    ) {
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tracer_id)
                .map(|(_, id)| *id)
        });
        let event = TraceEvent {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            tid: self.thread_id(),
            name: name.to_string(),
            category: category.to_string(),
            wall_start_us: self.now_wall_us(),
            wall_dur_us: 0.0,
            model_start_s: model_ts_s,
            model_dur_s: 0.0,
            kind: EventKind::Instant,
            attrs,
        };
        self.push(event);
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("event ring");
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("event ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event ring").len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// RAII guard for an open span; records the event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    category: String,
    wall_start_us: f64,
    model_start_s: f64,
    attrs: Vec<(String, AttrValue)>,
}

impl SpanGuard<'_> {
    /// Attaches an attribute to the span.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        self.attrs.push((key.to_string(), value.into()));
        self
    }

    /// The span's id (usable as an explicit parent reference).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(t, id)| t == self.tracer.tracer_id && id == self.id)
            {
                s.remove(pos);
            }
        });
        let event = TraceEvent {
            id: self.id,
            parent: self.parent,
            tid: self.tracer.thread_id(),
            name: std::mem::take(&mut self.name),
            category: std::mem::take(&mut self.category),
            wall_start_us: self.wall_start_us,
            wall_dur_us: self.tracer.now_wall_us() - self.wall_start_us,
            model_start_s: self.model_start_s,
            model_dur_s: self.tracer.model_now() - self.model_start_s,
            kind: EventKind::Span,
            attrs: std::mem::take(&mut self.attrs),
        };
        self.tracer.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let t = Tracer::new();
        {
            let _outer = t.span("outer", "test");
            let _inner = t.span("inner", "test");
        }
        let events = t.events();
        // Inner closes (and records) first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent, Some(events[1].id));
        assert_eq!(events[1].parent, None);
    }

    #[test]
    fn complete_spans_attach_to_open_parent() {
        let t = Tracer::new();
        {
            let _frame = t.span("frame", "pipeline");
            t.complete_span("forward", "phase", 0.0, 0.5, Vec::new());
        }
        let events = t.events();
        assert_eq!(events[0].name, "forward");
        assert_eq!(events[0].parent, Some(events[1].id));
    }

    #[test]
    fn model_clock_advances_and_spans_measure_it() {
        let t = Tracer::new();
        {
            let _s = t.span("frame", "pipeline");
            assert_eq!(t.advance_model(0.25), 0.0);
            t.advance_model(0.75);
        }
        assert!((t.model_now() - 1.0).abs() < 1e-12);
        let e = &t.events()[0];
        assert!((e.model_dur_s - 1.0).abs() < 1e-12);
        assert_eq!(e.model_start_s, 0.0);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.instant(&format!("e{i}"), "test", Vec::new());
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.events()[0].name, "e6");
    }

    #[test]
    fn two_tracers_do_not_cross_parents() {
        let a = Tracer::new();
        let b = Tracer::new();
        let _sa = a.span("a", "test");
        {
            let _sb = b.span("b", "test");
            b.instant("in_b", "test", Vec::new());
        }
        let eb = b.events();
        assert_eq!(eb[0].name, "in_b");
        assert_eq!(eb[0].parent, Some(eb[1].id), "parent is b's span, not a's");
    }
}

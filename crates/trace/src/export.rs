//! The three exporters: Prometheus text exposition, Chrome trace-event
//! JSON (Perfetto / `chrome://tracing` compatible), and JSON Lines.

use std::fmt::Write as _;

use crate::json::JsonValue;
use crate::metrics::{MetricValue, MetricsRegistry};
use crate::tracer::{AttrValue, EventKind, TraceEvent, Tracer};

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes Prometheus HELP text (`\` and newline).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric or label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per metric family,
/// cumulative `_bucket`/`_sum`/`_count` series for histograms.
pub fn prometheus_text(metrics: &MetricsRegistry) -> String {
    let snapshot = metrics.snapshot();
    let help = metrics.help_texts();
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for (key, value) in &snapshot {
        let family = sanitize_name(&key.name);
        if last_family.as_deref() != Some(family.as_str()) {
            if let Some(h) = help.get(&key.name) {
                let _ = writeln!(out, "# HELP {family} {}", escape_help(h));
            }
            let ty = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {family} {ty}");
            last_family = Some(family.clone());
        }
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{family}{} {}",
                    render_labels(&key.labels, None),
                    fmt_value(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.counts[i];
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {cumulative}",
                        render_labels(&key.labels, Some(("le", &fmt_value(*bound))))
                    );
                }
                cumulative += h.counts[h.bounds.len()];
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {cumulative}",
                    render_labels(&key.labels, Some(("le", "+Inf")))
                );
                let _ = writeln!(
                    out,
                    "{family}_sum{} {}",
                    render_labels(&key.labels, None),
                    fmt_value(h.sum)
                );
                let _ = writeln!(
                    out,
                    "{family}_count{} {cumulative}",
                    render_labels(&key.labels, None)
                );
            }
        }
    }
    out
}

fn attr_to_json(v: &AttrValue) -> JsonValue {
    match v {
        AttrValue::I64(i) => JsonValue::Num(*i as f64),
        AttrValue::U64(u) => JsonValue::Num(*u as f64),
        AttrValue::F64(f) => JsonValue::Num(*f),
        AttrValue::Bool(b) => JsonValue::Bool(*b),
        AttrValue::Str(s) => JsonValue::Str(s.clone()),
    }
}

fn event_args(e: &TraceEvent) -> JsonValue {
    let mut args: Vec<(String, JsonValue)> = e
        .attrs
        .iter()
        .map(|(k, v)| (k.clone(), attr_to_json(v)))
        .collect();
    args.push(("span_id".into(), JsonValue::Num(e.id as f64)));
    if let Some(p) = e.parent {
        args.push(("parent_id".into(), JsonValue::Num(p as f64)));
    }
    args.push(("wall_start_us".into(), JsonValue::Num(e.wall_start_us)));
    if e.wall_dur_us > 0.0 {
        args.push(("wall_dur_us".into(), JsonValue::Num(e.wall_dur_us)));
    }
    JsonValue::Obj(args)
}

/// Renders the buffered events as a Chrome trace-event JSON document
/// (object form, `{"traceEvents": [...]}`), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Spans are emitted as complete (`ph:"X"`) events **on the modeled
/// clock** — `ts`/`dur` are modeled microseconds — so the rendered
/// timeline shows the platform the cost models simulate. Wall-clock data
/// rides along in `args`.
pub fn chrome_trace(tracer: &Tracer) -> String {
    chrome_trace_from(&tracer.events(), tracer.dropped())
}

/// [`chrome_trace`] over an explicit event snapshot.
pub fn chrome_trace_from(events: &[TraceEvent], dropped: u64) -> String {
    let mut trace_events = vec![JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str("process_name".into())),
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Num(1.0)),
        ("tid".into(), JsonValue::Num(0.0)),
        (
            "args".into(),
            JsonValue::Obj(vec![(
                "name".into(),
                JsonValue::Str("wavefuse (modeled platform time)".into()),
            )]),
        ),
    ])];
    for e in events {
        let mut obj = vec![
            ("name".into(), JsonValue::Str(e.name.clone())),
            ("cat".into(), JsonValue::Str(e.category.clone())),
            ("pid".into(), JsonValue::Num(1.0)),
            ("tid".into(), JsonValue::Num(e.tid as f64)),
            ("ts".into(), JsonValue::Num(e.model_start_s * 1e6)),
        ];
        match e.kind {
            EventKind::Span => {
                obj.push(("ph".into(), JsonValue::Str("X".into())));
                obj.push(("dur".into(), JsonValue::Num(e.model_dur_s * 1e6)));
            }
            EventKind::Instant => {
                obj.push(("ph".into(), JsonValue::Str("i".into())));
                obj.push(("s".into(), JsonValue::Str("t".into())));
            }
        }
        obj.push(("args".into(), event_args(e)));
        trace_events.push(JsonValue::Obj(obj));
    }
    JsonValue::Obj(vec![
        ("traceEvents".into(), JsonValue::Arr(trace_events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
        (
            "otherData".into(),
            JsonValue::Obj(vec![(
                "dropped_events".into(),
                JsonValue::Num(dropped as f64),
            )]),
        ),
    ])
    .render()
}

/// Renders the buffered events as JSON Lines: one self-contained JSON
/// object per event, both clocks included — the format for piping into
/// `jq` or a log shipper.
pub fn jsonl(tracer: &Tracer) -> String {
    let mut out = String::new();
    for e in tracer.events() {
        let attrs: Vec<(String, JsonValue)> = e
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), attr_to_json(v)))
            .collect();
        let obj = JsonValue::Obj(vec![
            ("id".into(), JsonValue::Num(e.id as f64)),
            (
                "parent".into(),
                e.parent
                    .map_or(JsonValue::Null, |p| JsonValue::Num(p as f64)),
            ),
            ("tid".into(), JsonValue::Num(e.tid as f64)),
            ("name".into(), JsonValue::Str(e.name.clone())),
            ("cat".into(), JsonValue::Str(e.category.clone())),
            (
                "kind".into(),
                JsonValue::Str(
                    match e.kind {
                        EventKind::Span => "span",
                        EventKind::Instant => "instant",
                    }
                    .into(),
                ),
            ),
            ("model_ts_s".into(), JsonValue::Num(e.model_start_s)),
            ("model_dur_s".into(), JsonValue::Num(e.model_dur_s)),
            ("wall_ts_us".into(), JsonValue::Num(e.wall_start_us)),
            ("wall_dur_us".into(), JsonValue::Num(e.wall_dur_us)),
            ("attrs".into(), JsonValue::Obj(attrs)),
        ]);
        obj.write(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_escapes_label_values_and_help() {
        let m = MetricsRegistry::new();
        m.describe("weird", "line1\nline2 \\ backslash");
        m.counter_add("weird", &[("path", "a\\b\"c\nd")], 1.0);
        let text = prometheus_text(&m);
        assert!(text.contains("# HELP weird line1\\nline2 \\\\ backslash"));
        assert!(text.contains("path=\"a\\\\b\\\"c\\nd\""));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let m = MetricsRegistry::new();
        for v in [1.5e-6, 1.5e-6, 3e-6, 1.0] {
            m.observe_log2("lat_seconds", &[], v, 1e-6, 3);
        }
        let text = prometheus_text(&m);
        assert!(text.contains("lat_seconds_bucket{le=\"0.000001\"} 0"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.000002\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.000004\"} 3"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_seconds_count 4"));
    }

    #[test]
    fn chrome_trace_parses_back() {
        let t = Tracer::new();
        t.complete_span("forward", "phase", 0.0, 0.5, Vec::new());
        let doc = JsonValue::parse(&chrome_trace(&t)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("forward"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(500_000.0));
    }

    #[test]
    fn jsonl_one_valid_object_per_line() {
        let t = Tracer::new();
        t.instant("a", "test", vec![("k".into(), AttrValue::Str("v".into()))]);
        t.instant("b", "test", Vec::new());
        let text = jsonl(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            JsonValue::parse(line).unwrap();
        }
    }
}

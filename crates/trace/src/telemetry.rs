//! The `Telemetry` facade: one handle bundling a tracer and a metrics
//! registry, shared by every instrumented component.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::metrics::MetricsRegistry;
use crate::tracer::Tracer;

/// A tracer plus a metrics registry behind one handle.
///
/// Components accept `Arc<Telemetry>` via a `set_telemetry` method; the
/// same handle threaded through the pipeline, engine, scheduler, ZYNQ
/// driver and power recorder yields one coherent timeline and one metric
/// namespace. Instance-based (not a process global) so concurrent
/// pipelines — e.g. parallel tests — never share state by accident.
#[derive(Debug, Default)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: MetricsRegistry,
    detailed: AtomicBool,
}

impl Telemetry {
    /// Creates a telemetry handle with the default ring-buffer capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Creates a telemetry handle whose tracer keeps at most `capacity`
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            tracer: Tracer::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
            detailed: AtomicBool::new(false),
        }
    }

    /// Convenience: a fresh handle already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Telemetry::new())
    }

    /// The span/event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether high-volume instrumentation (per-row FPGA spans) is on.
    /// Defaults to off: a 512×512 frame runs thousands of row passes and
    /// would flood the ring buffer.
    pub fn detailed(&self) -> bool {
        self.detailed.load(Ordering::Relaxed)
    }

    /// Enables or disables high-volume instrumentation.
    pub fn set_detailed(&self, on: bool) {
        self.detailed.store(on, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detailed_flag_defaults_off() {
        let tel = Telemetry::new();
        assert!(!tel.detailed());
        tel.set_detailed(true);
        assert!(tel.detailed());
    }

    #[test]
    fn shared_handles_alias_one_registry() {
        let tel = Telemetry::shared();
        let other = Arc::clone(&tel);
        other.metrics().counter_add("c", &[], 2.0);
        assert_eq!(tel.metrics().counter_value("c", &[]), 2.0);
    }
}

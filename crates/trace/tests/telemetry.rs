//! Integration tests: concurrent span nesting and round-tripping the
//! exporters through the hand-rolled JSON parser.

use std::sync::Arc;
use std::thread;

use wavefuse_trace::{export, EventKind, JsonValue, Telemetry};

#[test]
fn concurrent_threads_keep_independent_span_stacks() {
    let tel = Telemetry::shared();
    let mut handles = Vec::new();
    for t in 0..4 {
        let tel = Arc::clone(&tel);
        handles.push(thread::spawn(move || {
            for i in 0..8 {
                let mut outer = tel.tracer().span("frame", "pipeline");
                outer.attr("thread", t as u64);
                outer.attr("frame", i as u64);
                {
                    let _inner = tel.tracer().span("phase", "engine");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let events = tel.tracer().events();
    assert_eq!(events.len(), 4 * 8 * 2);
    let mut tids = std::collections::BTreeSet::new();
    for e in &events {
        tids.insert(e.tid);
        match e.name.as_str() {
            "frame" => assert!(e.parent.is_none(), "frame spans are roots"),
            "phase" => {
                let parent = e.parent.expect("phase spans nest under a frame");
                let frame = events
                    .iter()
                    .find(|f| f.id == parent)
                    .expect("parent span is in the buffer");
                assert_eq!(frame.name, "frame");
                assert_eq!(
                    frame.tid, e.tid,
                    "a span never nests under another thread's span"
                );
            }
            other => panic!("unexpected event {other}"),
        }
    }
    assert_eq!(tids.len(), 4, "each thread gets its own dense tid");
}

#[test]
fn chrome_trace_round_trips_through_own_parser() {
    let tel = Telemetry::new();
    {
        let mut frame = tel.tracer().span("frame", "pipeline");
        frame.attr("backend", "FPGA");
        let start = tel.tracer().model_now();
        tel.tracer().complete_span(
            "forward",
            "phase",
            start,
            0.004,
            vec![("backend".into(), "FPGA".into())],
        );
        tel.tracer().advance_model(0.004);
    }
    tel.tracer().instant("gate_drop", "pipeline", Vec::new());

    let doc = JsonValue::parse(&export::chrome_trace(tel.tracer())).expect("valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let phs: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
        .collect();
    assert!(phs.contains(&"M"), "metadata record present");
    assert!(phs.contains(&"X"), "complete spans present");
    assert!(phs.contains(&"i"), "instant events present");

    let forward = events
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("forward"))
        .unwrap();
    assert_eq!(forward.get("dur").unwrap().as_f64(), Some(4_000.0));
    assert!(
        forward.get("args").unwrap().get("parent_id").is_some(),
        "retroactive span is parented to the open frame span"
    );
}

#[test]
fn jsonl_carries_both_clocks() {
    let tel = Telemetry::new();
    {
        let _s = tel.tracer().span("frame", "pipeline");
        tel.tracer().advance_model(0.25);
    }
    let line = export::jsonl(tel.tracer());
    let obj = JsonValue::parse(line.lines().next().unwrap()).unwrap();
    assert_eq!(obj.get("kind").unwrap().as_str(), Some("span"));
    assert_eq!(obj.get("model_dur_s").unwrap().as_f64(), Some(0.25));
    assert!(obj.get("wall_dur_us").unwrap().as_f64().unwrap() >= 0.0);
}

#[test]
fn ring_buffer_reports_drops_in_chrome_export() {
    let tel = Telemetry::with_capacity(4);
    for i in 0..10 {
        tel.tracer().instant(&format!("e{i}"), "test", Vec::new());
    }
    assert_eq!(tel.tracer().len(), 4);
    assert_eq!(tel.tracer().dropped(), 6);
    let doc = JsonValue::parse(&export::chrome_trace(tel.tracer())).unwrap();
    assert_eq!(
        doc.get("otherData")
            .unwrap()
            .get("dropped_events")
            .unwrap()
            .as_f64(),
        Some(6.0)
    );
}

#[test]
fn instants_have_no_duration() {
    let tel = Telemetry::new();
    tel.tracer().instant("mark", "test", Vec::new());
    let events = tel.tracer().events();
    assert_eq!(events[0].kind, EventKind::Instant);
    assert_eq!(events[0].model_dur_s, 0.0);
}

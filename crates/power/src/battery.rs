//! Battery-budget estimates.
//!
//! The paper's motivation is *energy-constrained* deployment (UAVs and
//! portable surveillance in its related work). This module turns the
//! per-frame energy numbers into the quantity a system designer asks for:
//! how long, or how many fused frames, a given battery sustains.

use crate::model::{ExecutionMode, PowerModel};

/// An ideal battery with a usable energy capacity.
///
/// # Examples
///
/// ```
/// use wavefuse_power::battery::Battery;
///
/// // A small 2 Wh pack fusing at 50 mJ/frame sustains 144k frames.
/// let pack = Battery::from_watt_hours(2.0);
/// assert_eq!(pack.fused_frames(50.0), 144_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_mj: f64,
}

impl Battery {
    /// A battery holding `wh` watt-hours of usable energy.
    ///
    /// # Panics
    ///
    /// Panics if `wh` is not a positive finite number.
    pub fn from_watt_hours(wh: f64) -> Self {
        assert!(wh.is_finite() && wh > 0.0, "capacity must be positive");
        Battery {
            capacity_mj: wh * 3600.0 * 1e3,
        }
    }

    /// Usable capacity in millijoules.
    pub fn capacity_mj(&self) -> f64 {
        self.capacity_mj
    }

    /// Number of fused frames this battery sustains at the given per-frame
    /// energy (millijoules), rounded down.
    pub fn fused_frames(&self, energy_per_frame_mj: f64) -> u64 {
        if energy_per_frame_mj <= 0.0 {
            return u64::MAX;
        }
        (self.capacity_mj / energy_per_frame_mj) as u64
    }

    /// Continuous runtime, in hours, at the given platform mode's power
    /// draw (the fusion process keeps the platform at its active power).
    pub fn runtime_hours(&self, power: &PowerModel, mode: ExecutionMode) -> f64 {
        let watts = power.power_w(mode);
        self.capacity_mj / 1e3 / watts / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion() {
        let b = Battery::from_watt_hours(1.0);
        assert!((b.capacity_mj() - 3.6e6).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::from_watt_hours(0.0);
    }

    #[test]
    fn runtime_reflects_mode_power() {
        let pm = PowerModel::zc702();
        let b = Battery::from_watt_hours(5.0);
        let arm = b.runtime_hours(&pm, ExecutionMode::ArmOnly);
        let fpga = b.runtime_hours(&pm, ExecutionMode::ArmFpga);
        // Higher power, shorter runtime — but only by the 3.6 % increment.
        assert!(fpga < arm);
        assert!((arm / fpga - 1.036).abs() < 1e-3);
        // ~533 mW from 5 Wh: around 9.4 hours.
        assert!((arm - 9.38).abs() < 0.1, "{arm}");
    }

    #[test]
    fn frame_budget_rewards_efficiency() {
        // The paper's 88x72 numbers: ~91 mJ/frame on ARM, ~50 mJ on FPGA.
        let b = Battery::from_watt_hours(2.0);
        let arm_frames = b.fused_frames(91.4);
        let fpga_frames = b.fused_frames(50.1);
        assert!(fpga_frames as f64 / arm_frames as f64 > 1.7);
        assert_eq!(b.fused_frames(0.0), u64::MAX);
    }
}

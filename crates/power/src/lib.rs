//! Power and energy models of the ZC702 platform.
//!
//! The paper measures board power with "power-recording software running
//! simultaneously with the fusion process" and reports three facts this
//! module encodes directly:
//!
//! * fusing on the ARM alone and on ARM+NEON draws *approximately the same
//!   power* (the NEON unit sits inside the already-powered A9);
//! * ARM+FPGA draws **19.2 mW more (+3.6 %)** — the net of extra PL power
//!   minus the reduced PS load — which pins the baseline at ≈533 mW;
//! * energy is power × total time (Fig. 10 = Fig. 9b × the power model).
//!
//! [`model::PowerModel`] holds those constants; [`recorder::PowerRecorder`]
//! reproduces the sampling-and-integration method of the measurement
//! software.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod model;
pub mod recorder;

pub use battery::Battery;
pub use model::{ExecutionMode, PowerModel};
pub use recorder::PowerRecorder;

//! The calibrated platform power model.

/// Which engines participate in the fusion computation — the paper's three
/// execution configurations of §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Software only, on the ARM Cortex-A9.
    ArmOnly,
    /// ARM plus the NEON SIMD engine.
    ArmNeon,
    /// ARM plus the PL wavelet engine.
    ArmFpga,
}

impl ExecutionMode {
    /// All three modes, in the paper's reporting order.
    pub const ALL: [ExecutionMode; 3] = [
        ExecutionMode::ArmOnly,
        ExecutionMode::ArmNeon,
        ExecutionMode::ArmFpga,
    ];

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::ArmOnly => "ARM Only",
            ExecutionMode::ArmNeon => "ARM+NEON",
            ExecutionMode::ArmFpga => "ARM+FPGA",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Platform power in each execution mode.
///
/// # Examples
///
/// ```
/// use wavefuse_power::{ExecutionMode, PowerModel};
///
/// let pm = PowerModel::zc702();
/// let p_arm = pm.power_w(ExecutionMode::ArmOnly);
/// let p_fpga = pm.power_w(ExecutionMode::ArmFpga);
/// // The paper: +19.2 mW, a 3.6 % increment.
/// assert!((p_fpga - p_arm - 0.0192).abs() < 1e-12);
/// assert!(((p_fpga / p_arm - 1.0) * 100.0 - 3.6).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Board power while the fusion process runs on the PS (ARM, with or
    /// without NEON), in watts.
    ps_active_w: f64,
    /// Net extra power with the PL wavelet engine active, in watts
    /// (the paper's +19.2 mW: PL dynamic power minus the PS load relief).
    pl_increment_w: f64,
}

impl PowerModel {
    /// The ZC702 model calibrated to the paper: 19.2 mW = 3.6 % of the
    /// baseline, so the baseline is 19.2 / 0.036 ≈ 533 mW.
    pub fn zc702() -> Self {
        PowerModel {
            ps_active_w: 0.0192 / 0.036,
            pl_increment_w: 0.0192,
        }
    }

    /// A custom model.
    pub fn new(ps_active_w: f64, pl_increment_w: f64) -> Self {
        PowerModel {
            ps_active_w,
            pl_increment_w,
        }
    }

    /// Board power in the given mode, watts.
    pub fn power_w(&self, mode: ExecutionMode) -> f64 {
        match mode {
            // The NEON engine is part of the A9: same board power.
            ExecutionMode::ArmOnly | ExecutionMode::ArmNeon => self.ps_active_w,
            ExecutionMode::ArmFpga => self.ps_active_w + self.pl_increment_w,
        }
    }

    /// Energy for a run of `seconds` in the given mode, in millijoules.
    pub fn energy_mj(&self, mode: ExecutionMode, seconds: f64) -> f64 {
        self.power_w(mode) * seconds * 1e3
    }

    /// The PS-side active power, watts.
    pub fn ps_active_w(&self) -> f64 {
        self.ps_active_w
    }

    /// The PL increment, watts.
    pub fn pl_increment_w(&self) -> f64 {
        self.pl_increment_w
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::zc702()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neon_draws_same_power_as_arm() {
        let pm = PowerModel::zc702();
        assert_eq!(
            pm.power_w(ExecutionMode::ArmOnly),
            pm.power_w(ExecutionMode::ArmNeon)
        );
    }

    #[test]
    fn fpga_increment_matches_paper() {
        let pm = PowerModel::zc702();
        let inc = pm.power_w(ExecutionMode::ArmFpga) - pm.power_w(ExecutionMode::ArmOnly);
        assert!((inc - 0.0192).abs() < 1e-12);
        let pct = inc / pm.power_w(ExecutionMode::ArmOnly) * 100.0;
        assert!((pct - 3.6).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let pm = PowerModel::zc702();
        let e1 = pm.energy_mj(ExecutionMode::ArmOnly, 1.0);
        let e2 = pm.energy_mj(ExecutionMode::ArmOnly, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        // ~533 mJ per second.
        assert!((e1 - 533.333).abs() < 0.5);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ExecutionMode::ArmOnly.to_string(), "ARM Only");
        assert_eq!(ExecutionMode::ALL.len(), 3);
    }
}

//! The power-recording software model.
//!
//! The paper obtains its energy numbers from power samples logged by a
//! recorder running alongside the fusion process, multiplied by the total
//! time of Fig. 9b. [`PowerRecorder`] reproduces that pipeline: timestamped
//! samples, trapezoidal integration to energy, and mean-power reporting.

use std::sync::Arc;

use wavefuse_trace::Telemetry;

/// One timestamped power sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Seconds since the start of the recording.
    pub t: f64,
    /// Instantaneous board power, watts.
    pub watts: f64,
}

/// A power-sample log with energy integration.
///
/// # Examples
///
/// ```
/// use wavefuse_power::PowerRecorder;
///
/// let mut rec = PowerRecorder::new();
/// rec.record(0.0, 0.5);
/// rec.record(1.0, 0.5);
/// rec.record(2.0, 0.7);
/// // Trapezoids: 0.5 J over [0,1], 0.6 J over [1,2].
/// assert!((rec.energy_joules() - 1.1).abs() < 1e-12);
/// assert!((rec.mean_power_w() - 0.55).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerRecorder {
    samples: Vec<PowerSample>,
    telemetry: Option<Arc<Telemetry>>,
}

/// Equality compares the recorded samples; an attached telemetry handle is
/// an observer, not part of the recording.
impl PartialEq for PowerRecorder {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl PowerRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        PowerRecorder::default()
    }

    /// Attaches a telemetry handle: every sample emits a `power_sample`
    /// event and updates the `wavefuse_power_watts` gauge.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_power_watts",
            "Most recent board power sample, watts",
        );
        telemetry.metrics().describe(
            "wavefuse_power_samples_total",
            "Power samples logged by the recorder",
        );
        self.telemetry = Some(telemetry);
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous sample (the recorder's
    /// clock is monotonic).
    pub fn record(&mut self, t: f64, watts: f64) {
        if let Some(last) = self.samples.last() {
            assert!(t >= last.t, "samples must be time-ordered");
        }
        self.samples.push(PowerSample { t, watts });
        if let Some(tel) = &self.telemetry {
            tel.metrics().gauge_set("wavefuse_power_watts", &[], watts);
            tel.metrics()
                .counter_add("wavefuse_power_samples_total", &[], 1.0);
            // Sample timestamps are recorder-relative model time, so the
            // event can sit directly on the modeled timeline.
            tel.tracer().instant_at(
                "power_sample",
                "power",
                t,
                vec![("watts".into(), watts.into())],
            );
        }
    }

    /// Records a constant-power phase of `duration` seconds at `sample_hz`,
    /// continuing from the last timestamp — how a constant-load fusion run
    /// appears in the log.
    pub fn record_phase(&mut self, duration: f64, watts: f64, sample_hz: f64) {
        let t0 = self.samples.last().map_or(0.0, |s| s.t);
        let n = (duration * sample_hz).ceil().max(1.0) as usize;
        for i in 0..=n {
            self.record(t0 + duration * i as f64 / n as f64, watts);
        }
    }

    /// The raw samples.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Recording span in seconds.
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Trapezoidal energy integral over the recording, joules.
    pub fn energy_joules(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| 0.5 * (w[0].watts + w[1].watts) * (w[1].t - w[0].t))
            .sum()
    }

    /// Energy in millijoules (the unit of the paper's Fig. 10).
    pub fn energy_mj(&self) -> f64 {
        self.energy_joules() * 1e3
    }

    /// Time-weighted mean power, watts (0 for fewer than two samples).
    pub fn mean_power_w(&self) -> f64 {
        let d = self.duration();
        if d == 0.0 {
            0.0
        } else {
            self.energy_joules() / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_zero() {
        let rec = PowerRecorder::new();
        assert_eq!(rec.energy_joules(), 0.0);
        assert_eq!(rec.mean_power_w(), 0.0);
        assert_eq!(rec.duration(), 0.0);
    }

    #[test]
    fn constant_power_integrates_exactly() {
        let mut rec = PowerRecorder::new();
        rec.record_phase(2.0, 0.533, 100.0);
        assert!((rec.energy_joules() - 1.066).abs() < 1e-9);
        assert!((rec.mean_power_w() - 0.533).abs() < 1e-9);
        assert!((rec.duration() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phases_accumulate() {
        let mut rec = PowerRecorder::new();
        rec.record_phase(1.0, 0.5, 10.0);
        rec.record_phase(1.0, 0.7, 10.0); // e.g. the FPGA phase
        assert!((rec.energy_joules() - 1.2).abs() < 1e-6);
        assert!((rec.duration() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn non_monotonic_time_panics() {
        let mut rec = PowerRecorder::new();
        rec.record(1.0, 0.5);
        rec.record(0.5, 0.5);
    }

    #[test]
    fn ramp_integrates_as_trapezoid() {
        let mut rec = PowerRecorder::new();
        rec.record(0.0, 0.0);
        rec.record(1.0, 1.0);
        assert!((rec.energy_joules() - 0.5).abs() < 1e-12);
        assert!((rec.energy_mj() - 500.0).abs() < 1e-9);
    }
}

//! Minimal PGM (portable graymap) reader/writer.
//!
//! The paper demonstrates its system by displaying captured and fused
//! frames (Fig. 8); this reproduction writes them as binary PGM (`P5`)
//! files, which every image viewer opens and which keep the examples free
//! of image-codec dependencies.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::Frame;
use wavefuse_dtcwt::Image;

/// Writes an image as an 8-bit binary PGM file, clamping pixel values to
/// `[0, 1]`.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
///
/// # Examples
///
/// ```no_run
/// use wavefuse_dtcwt::Image;
/// use wavefuse_video::pgm;
///
/// let img = Image::filled(8, 8, 0.5);
/// pgm::write_pgm(&img, "out/frame.pgm")?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_pgm(img: &Image, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let (w, h) = img.dims();
    let mut out = Vec::with_capacity(32 + w * h);
    write!(&mut out, "P5\n{w} {h}\n255\n")?;
    out.extend(
        img.as_slice()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    fs::write(path, out)
}

/// Writes a frame (convenience wrapper over [`write_pgm`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame_pgm(frame: &Frame, path: impl AsRef<Path>) -> io::Result<()> {
    write_pgm(frame.image(), path)
}

/// Reads an 8-bit binary PGM file back into an image with values in
/// `[0, 1]`.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for malformed headers or
/// truncated payloads, and propagates file-read errors.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<Image> {
    let bytes = fs::read(path)?;
    parse_pgm(&bytes)
}

fn parse_pgm(bytes: &[u8]) -> io::Result<Image> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("pgm: {why}"));
    // Header: "P5" then three whitespace-separated integers (w, h, maxval),
    // with '#' comments allowed, then a single whitespace before the raster.
    if bytes.len() < 2 || &bytes[0..2] != b"P5" {
        return Err(bad("missing P5 magic"));
    }
    let mut pos = 2;
    let mut fields = [0usize; 3];
    for field in &mut fields {
        // Skip whitespace and comments.
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("truncated header"));
        }
        *field = std::str::from_utf8(&bytes[start..pos])
            .map_err(|_| bad("non-utf8 header"))?
            .parse()
            .map_err(|_| bad("unparseable header field"))?;
    }
    let [w, h, maxval] = fields;
    if maxval == 0 || maxval > 255 {
        return Err(bad("unsupported maxval"));
    }
    // Single whitespace separator before the raster.
    if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
        return Err(bad("missing raster separator"));
    }
    pos += 1;
    let raster = &bytes[pos..];
    if raster.len() != w * h {
        return Err(bad("raster length mismatch"));
    }
    let data: Vec<f32> = raster.iter().map(|&b| b as f32 / maxval as f32).collect();
    Image::from_vec(w, h, data).map_err(|_| bad("inconsistent dimensions"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wavefuse-pgm-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let img = Image::from_fn(7, 5, |x, y| ((x + y * 7) as f32 / 34.0).clamp(0.0, 1.0));
        let path = tmp("roundtrip.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.dims(), (7, 5));
        // 8-bit quantization error bound.
        assert!(back.max_abs_diff(&img) <= 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut img = Image::filled(2, 1, 2.0);
        img.set(1, 0, -3.0);
        let path = tmp("clamp.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.get(0, 0), 1.0);
        assert_eq!(back.get(1, 0), 0.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_pgm(b"P6\n1 1\n255\n\0").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\n\0\0\0").is_err()); // short raster
        assert!(parse_pgm(b"P5\n2").is_err());
        assert!(parse_pgm(b"P5\n1 1\n0\n\0").is_err());
    }

    #[test]
    fn parses_comments() {
        let img = parse_pgm(b"P5\n# a comment\n2 1\n255\n\x00\xff").unwrap();
        assert_eq!(img.dims(), (2, 1));
        assert_eq!(img.get(1, 0), 1.0);
    }

    #[test]
    fn creates_parent_directories() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("wavefuse-pgm-dir-{}", std::process::id()));
        let path = dir.join("nested/frame.pgm");
        write_pgm(&Image::filled(2, 2, 0.5), &path).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! ITU-R BT.656 stream encoder and decoder.
//!
//! The paper's thermal camera delivers its video as a BT.656 byte stream
//! over an FMC connector, decoded by a custom block on the PL (Fig. 7).
//! This module implements the wire format: every line is framed by timing
//! reference codes `FF 00 00 XY`, where the `XY` byte carries the field bit
//! `F`, vertical-blanking bit `V` and horizontal bit `H` (0 = SAV, start of
//! active video; 1 = EAV, end of active video) plus four Hamming protection
//! bits. Active lines carry packed YUV 4:2:2 payload (`Cb Y Cr Y`).
//!
//! The decoder is a small state machine that hunts for sync words, checks
//! the protection bits, skips blanking, and reassembles the active field —
//! faithfully rejecting corrupted streams.

use crate::{PixelFormat, RawFrame, VideoError};

/// Number of vertical-blanking lines the encoder emits before the active
/// field (compact stand-in for the analog blanking interval).
pub const VBLANK_LINES: usize = 20;

/// Horizontal-blanking words between EAV and SAV (`0x80 0x10` pairs).
pub const HBLANK_WORDS: usize = 8;

/// Builds the timing-reference `XY` byte for the given flags, including the
/// standard protection bits.
pub fn xy_byte(f: bool, v: bool, h: bool) -> u8 {
    let (fb, vb, hb) = (f as u8, v as u8, h as u8);
    let p3 = vb ^ hb;
    let p2 = fb ^ hb;
    let p1 = fb ^ vb;
    let p0 = fb ^ vb ^ hb;
    0x80 | (fb << 6) | (vb << 5) | (hb << 4) | (p3 << 3) | (p2 << 2) | (p1 << 1) | p0
}

/// Validates an `XY` byte's protection bits and extracts `(F, V, H)`.
pub fn parse_xy(xy: u8) -> Option<(bool, bool, bool)> {
    if xy & 0x80 == 0 {
        return None;
    }
    let f = xy & 0x40 != 0;
    let v = xy & 0x20 != 0;
    let h = xy & 0x10 != 0;
    if xy == xy_byte(f, v, h) {
        Some((f, v, h))
    } else {
        None
    }
}

/// Encodes a YUV 4:2:2 frame into a BT.656 byte stream (single progressive
/// field, `F = 0`).
///
/// # Panics
///
/// Panics if the frame is not [`PixelFormat::Yuv422`] (encoder contract).
pub fn encode(frame: &RawFrame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(frame, &mut out);
    out
}

/// Allocation-free variant of [`encode`]: serializes into `out` (cleared,
/// capacity reused).
///
/// # Panics
///
/// As [`encode`].
pub fn encode_into(frame: &RawFrame, out: &mut Vec<u8>) {
    assert_eq!(
        frame.format(),
        PixelFormat::Yuv422,
        "bt656 payload must be yuv 4:2:2"
    );
    let (w, h) = frame.dims();
    let line_bytes = w * 2;
    out.clear();
    out.reserve((h + VBLANK_LINES) * (line_bytes + 8 + HBLANK_WORDS * 2));

    let mut push_line = |payload: Option<&[u8]>, v: bool| {
        // EAV of previous line, horizontal blanking, then SAV.
        out.extend_from_slice(&[0xff, 0x00, 0x00, xy_byte(false, v, true)]);
        for _ in 0..HBLANK_WORDS {
            out.extend_from_slice(&[0x80, 0x10]);
        }
        out.extend_from_slice(&[0xff, 0x00, 0x00, xy_byte(false, v, false)]);
        match payload {
            Some(p) => out.extend_from_slice(p),
            None => out.extend(std::iter::repeat_n([0x80u8, 0x10], w).flatten()),
        }
    };

    for _ in 0..VBLANK_LINES {
        push_line(None, true);
    }
    for y in 0..h {
        push_line(
            Some(&frame.bytes()[y * line_bytes..(y + 1) * line_bytes]),
            false,
        );
    }
}

/// Decodes a BT.656 byte stream back into a YUV 4:2:2 frame of the given
/// active dimensions.
///
/// # Errors
///
/// * [`VideoError::Bt656Sync`] on malformed sync words, failed protection
///   bits, or truncated lines.
/// * [`VideoError::Bt656LineCount`] if the stream does not contain exactly
///   `height` active lines.
pub fn decode(stream: &[u8], width: usize, height: usize) -> Result<RawFrame, VideoError> {
    let mut out = RawFrame::empty();
    decode_into(stream, width, height, &mut out)?;
    Ok(out)
}

/// Allocation-free variant of [`decode`]: reuses `out`'s byte storage. On
/// error, `out` is left as a valid empty frame (its capacity is kept).
///
/// # Errors
///
/// As [`decode`].
pub fn decode_into(
    stream: &[u8],
    width: usize,
    height: usize,
    out: &mut RawFrame,
) -> Result<(), VideoError> {
    let mut lines = out.take_storage();
    lines.reserve(width * 2 * height);
    match scan_active_lines(stream, width, height, &mut lines) {
        Ok(()) => out.assign(PixelFormat::Yuv422, width, height, lines),
        Err(e) => {
            lines.clear();
            out.assign(PixelFormat::Gray8, 0, 0, lines)
                .expect("empty frame is always valid");
            Err(e)
        }
    }
}

/// The decoder's sync-hunting state machine, appending active-line payload
/// to `lines`.
fn scan_active_lines(
    stream: &[u8],
    width: usize,
    height: usize,
    lines: &mut Vec<u8>,
) -> Result<(), VideoError> {
    let line_bytes = width * 2;
    let mut active_lines = 0usize;
    let mut i = 0usize;

    while i + 4 <= stream.len() {
        // Hunt for a timing reference code.
        if stream[i] != 0xff {
            i += 1;
            continue;
        }
        if stream[i + 1] != 0x00 || stream[i + 2] != 0x00 {
            return Err(VideoError::Bt656Sync {
                offset: i,
                reason: "sync prefix ff not followed by 00 00",
            });
        }
        let Some((_f, v, h)) = parse_xy(stream[i + 3]) else {
            return Err(VideoError::Bt656Sync {
                offset: i + 3,
                reason: "protection bits failed",
            });
        };
        i += 4;
        if h || v {
            // EAV or blanking SAV: payload until the next sync is blanking.
            continue;
        }
        // SAV of an active line: exactly line_bytes of payload follow.
        if i + line_bytes > stream.len() {
            return Err(VideoError::Bt656Sync {
                offset: i,
                reason: "active line truncated",
            });
        }
        lines.extend_from_slice(&stream[i..i + line_bytes]);
        active_lines += 1;
        i += line_bytes;
    }

    if active_lines != height {
        return Err(VideoError::Bt656LineCount {
            expected: height,
            actual: active_lines,
        });
    }
    Ok(())
}

/// Statistics of a resilient decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Active lines recovered intact.
    pub good_lines: usize,
    /// Lines concealed (replaced by the previous good line or mid-gray).
    pub concealed_lines: usize,
    /// Bytes skipped while re-hunting for sync.
    pub resync_bytes: usize,
}

/// Decodes a possibly-corrupted BT.656 stream with error concealment, as a
/// real capture front-end must (glitches on the FMC wires cannot crash the
/// pipeline). Corrupt sync words are skipped until the next valid timing
/// reference; missing or damaged active lines are concealed by repeating
/// the previous good line (or mid-gray for a leading loss).
///
/// Always returns a full-size frame plus a report of what was concealed.
///
/// # Errors
///
/// Returns [`VideoError::EmptyImage`] only for zero dimensions — stream
/// corruption is *not* an error for this decoder.
pub fn decode_resilient(
    stream: &[u8],
    width: usize,
    height: usize,
) -> Result<(RawFrame, ResilienceReport), VideoError> {
    if width == 0 || height == 0 {
        return Err(VideoError::EmptyImage);
    }
    let line_bytes = width * 2;
    let mut lines: Vec<Vec<u8>> = Vec::with_capacity(height);
    let mut report = ResilienceReport::default();
    let mut i = 0usize;

    while i + 4 <= stream.len() && lines.len() < height {
        if stream[i] != 0xff {
            i += 1;
            continue;
        }
        if stream[i + 1] != 0x00 || stream[i + 2] != 0x00 {
            report.resync_bytes += 1;
            i += 1;
            continue;
        }
        let Some((_f, v, h)) = parse_xy(stream[i + 3]) else {
            report.resync_bytes += 4;
            i += 4;
            continue;
        };
        i += 4;
        if h || v {
            continue;
        }
        if i + line_bytes > stream.len() {
            break; // truncated final line: concealed below
        }
        let payload = &stream[i..i + line_bytes];
        // A sync pattern inside the payload means the line was cut short by
        // a glitch; drop it and resume at the embedded sync.
        if let Some(pos) = payload.windows(3).position(|w| w == [0xff, 0x00, 0x00]) {
            report.concealed_lines += 1;
            report.resync_bytes += pos;
            lines.push(conceal_line(&lines, line_bytes));
            i += pos;
            continue;
        }
        lines.push(payload.to_vec());
        report.good_lines += 1;
        i += line_bytes;
    }

    while lines.len() < height {
        lines.push(conceal_line(&lines, line_bytes));
        report.concealed_lines += 1;
    }

    let mut bytes = Vec::with_capacity(line_bytes * height);
    for line in &lines {
        bytes.extend_from_slice(line);
    }
    Ok((
        RawFrame::new(PixelFormat::Yuv422, width, height, bytes)?,
        report,
    ))
}

fn conceal_line(lines: &[Vec<u8>], line_bytes: usize) -> Vec<u8> {
    match lines.last() {
        Some(prev) => prev.clone(),
        // Mid-gray YUV: neutral chroma, mid luma.
        None => std::iter::repeat_n([0x80u8, 0x80], line_bytes / 2)
            .flatten()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame(w: usize, h: usize) -> RawFrame {
        let bytes: Vec<u8> = (0..w * h * 2).map(|i| (i * 7 % 251) as u8).collect();
        RawFrame::new(PixelFormat::Yuv422, w, h, bytes).unwrap()
    }

    #[test]
    fn xy_byte_protection_round_trip() {
        for f in [false, true] {
            for v in [false, true] {
                for h in [false, true] {
                    let xy = xy_byte(f, v, h);
                    assert_eq!(parse_xy(xy), Some((f, v, h)));
                }
            }
        }
    }

    #[test]
    fn known_xy_values() {
        // Standard BT.656 codes: SAV active = 0x80, EAV active = 0x9d,
        // SAV blanking = 0xab, EAV blanking = 0xb6 (field 0).
        assert_eq!(xy_byte(false, false, false), 0x80);
        assert_eq!(xy_byte(false, false, true), 0x9d);
        assert_eq!(xy_byte(false, true, false), 0xab);
        assert_eq!(xy_byte(false, true, true), 0xb6);
    }

    #[test]
    fn corrupt_xy_rejected() {
        assert_eq!(parse_xy(0x00), None); // bit 7 clear
        assert_eq!(parse_xy(0x81), None); // wrong protection bits
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = test_frame(16, 12);
        let stream = encode(&frame);
        let back = decode(&stream, 16, 12).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn round_trip_paper_field_geometry() {
        // The paper's decoder handles 720x243 fields; keep the width real
        // but the height small for test speed.
        let frame = test_frame(720, 9);
        let back = decode(&encode(&frame), 720, 9).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn corrupted_sync_detected() {
        let frame = test_frame(8, 4);
        let mut stream = encode(&frame);
        // Find the first SAV of an active line and corrupt its XY byte to an
        // invalid protection pattern.
        let sav_active = xy_byte(false, false, false);
        let pos = stream
            .windows(4)
            .position(|w| w == [0xff, 0x00, 0x00, sav_active])
            .unwrap();
        stream[pos + 3] = 0x81;
        assert!(matches!(
            decode(&stream, 8, 4),
            Err(VideoError::Bt656Sync {
                reason: "protection bits failed",
                ..
            })
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let frame = test_frame(8, 4);
        let mut stream = encode(&frame);
        stream.truncate(stream.len() - 3); // cut into the last active line
        assert!(matches!(
            decode(&stream, 8, 4),
            Err(VideoError::Bt656Sync {
                reason: "active line truncated",
                ..
            }) | Err(VideoError::Bt656LineCount { .. })
        ));
    }

    #[test]
    fn wrong_line_count_detected() {
        let frame = test_frame(8, 4);
        let stream = encode(&frame);
        assert!(matches!(
            decode(&stream, 8, 5),
            Err(VideoError::Bt656LineCount {
                expected: 5,
                actual: 4
            })
        ));
    }

    #[test]
    fn resilient_decode_matches_strict_on_clean_streams() {
        let frame = test_frame(16, 8);
        let stream = encode(&frame);
        let (decoded, report) = decode_resilient(&stream, 16, 8).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(report.good_lines, 8);
        assert_eq!(report.concealed_lines, 0);
        assert_eq!(report.resync_bytes, 0);
    }

    #[test]
    fn resilient_decode_conceals_a_corrupt_sync() {
        let frame = test_frame(8, 6);
        let mut stream = encode(&frame);
        // Corrupt the XY byte of the third active line's SAV.
        let sav = xy_byte(false, false, false);
        let pos = stream
            .windows(4)
            .enumerate()
            .filter(|(_, w)| *w == [0xff, 0x00, 0x00, sav])
            .map(|(i, _)| i)
            .nth(2)
            .unwrap();
        stream[pos + 3] = 0x81;
        let (decoded, report) = decode_resilient(&stream, 8, 6).unwrap();
        assert_eq!(decoded.dims(), (8, 6));
        assert_eq!(report.concealed_lines, 1);
        assert_eq!(report.good_lines, 5);
        // BT.656 carries no line numbers, so a dropped line shifts the rest
        // up and concealment lands at the frame bottom: the last line
        // repeats the previous good one.
        let lb = 16;
        assert_eq!(
            &decoded.bytes()[5 * lb..6 * lb],
            &decoded.bytes()[4 * lb..5 * lb],
            "conceal-by-repeat at frame bottom"
        );
        // Surviving lines are intact (line 2 of the output is source line 3).
        assert_eq!(
            &decoded.bytes()[2 * lb..3 * lb],
            &frame.bytes()[3 * lb..4 * lb]
        );
        // The strict decoder would have refused this stream.
        assert!(decode(&stream, 8, 6).is_err());
    }

    #[test]
    fn resilient_decode_fills_truncated_streams() {
        let frame = test_frame(8, 6);
        let mut stream = encode(&frame);
        stream.truncate(stream.len() / 2);
        let (decoded, report) = decode_resilient(&stream, 8, 6).unwrap();
        assert_eq!(decoded.dims(), (8, 6));
        assert!(report.concealed_lines > 0);
        assert_eq!(report.good_lines + report.concealed_lines, 6);
    }

    #[test]
    fn resilient_decode_survives_garbage() {
        // Pure noise: everything concealed, nothing panics.
        let garbage: Vec<u8> = (0..4096).map(|i| (i * 37 % 251) as u8).collect();
        let (decoded, report) = decode_resilient(&garbage, 8, 4).unwrap();
        assert_eq!(decoded.dims(), (8, 4));
        assert_eq!(report.good_lines + report.concealed_lines, 4);
        assert!(decode_resilient(&[], 8, 4).is_ok());
        assert!(decode_resilient(&garbage, 0, 4).is_err());
    }

    #[test]
    fn blanking_lines_are_skipped() {
        // The stream contains VBLANK_LINES of blanking; the decoder must
        // not mistake 0x80 0x10 blanking payload for active video.
        let frame = test_frame(4, 2);
        let stream = encode(&frame);
        let decoded = decode(&stream, 4, 2).unwrap();
        assert_eq!(decoded.bytes(), frame.bytes());
    }
}

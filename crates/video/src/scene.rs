//! Synthetic dual-modality scene.
//!
//! Stands in for the paper's physical scene (Fig. 8): the two sensors view
//! the same world but measure different things, and fusion is only
//! meaningful because their information is complementary. The parametric
//! scene here provides exactly that structure:
//!
//! * the **visible** rendering carries background texture, a striped
//!   calibration board, and a *cold occluder* box that hides part of the
//!   scene — none of which radiate heat;
//! * the **thermal** rendering carries a moving warm body and a hot lamp
//!   spot, both nearly invisible in the visible band, and sees *through*
//!   the visually opaque occluder;
//! * each modality adds its own sensor noise (fine shot noise for the
//!   CMOS webcam, coarser NETD-style noise for the microbolometer).
//!
//! Rendering is deterministic in `(seed, time, pixel)`, so every experiment
//! is reproducible bit-for-bit.

use wavefuse_dtcwt::Image;

/// A deterministic two-modality scene generator.
///
/// # Examples
///
/// ```
/// use wavefuse_video::scene::ScenePair;
///
/// let scene = ScenePair::new(42);
/// let vis = scene.render_visible(64, 48, 0.0);
/// let ir = scene.render_thermal(64, 48, 0.0);
/// assert_eq!(vis.dims(), ir.dims());
/// // Determinism: same seed and time give the same pixels.
/// assert_eq!(vis, ScenePair::new(42).render_visible(64, 48, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenePair {
    seed: u64,
}

/// Reusable per-column tables for the procedural renders.
///
/// Every term of the scene that depends on the horizontal coordinate alone
/// (texture sinusoids, board stripes, occluder shading, the horizontal
/// falloff of the warm body and lamp) is evaluated once per column here
/// instead of once per pixel; the row-only terms hoist into the row loop.
/// Holding one across frames makes steady-state rendering allocation-free.
#[derive(Debug, Clone, Default)]
pub struct RenderScratch {
    /// Texture/ambient sinusoid per column.
    tex: Vec<f64>,
    /// Calibration-board stripe value per column (`NaN` outside the board).
    stripe: Vec<f64>,
    /// Occluder-panel value per column (`NaN` outside the panel).
    occ: Vec<f64>,
    /// Horizontal warm-body falloff term per column.
    body: Vec<f64>,
    /// Horizontal lamp falloff term per column.
    lamp: Vec<f64>,
    /// NETD noise per column pair (the grain is 2x2 blocks), refreshed
    /// every other row.
    noise_row: Vec<f64>,
}

impl RenderScratch {
    /// Sizes every table to `w` columns (capacity reused).
    fn fit(&mut self, w: usize) {
        for table in [
            &mut self.tex,
            &mut self.stripe,
            &mut self.occ,
            &mut self.body,
            &mut self.lamp,
        ] {
            table.resize(w, 0.0);
        }
        self.noise_row.resize(w.div_ceil(2), 0.0);
    }
}

impl ScenePair {
    /// Creates a scene from a seed controlling noise and object placement.
    pub fn new(seed: u64) -> Self {
        ScenePair { seed }
    }

    /// The seed this scene was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Normalized center of the warm body at time `t` seconds (it patrols
    /// horizontally).
    pub fn body_center(&self, t: f64) -> (f64, f64) {
        let phase = (self.seed % 7) as f64 * 0.37;
        let x = 0.5 + 0.3 * (0.4 * t + phase).sin();
        let y = 0.55 + 0.05 * (0.9 * t + phase).cos();
        (x, y)
    }

    /// Renders the visible-band view in `[0, 1]`.
    pub fn render_visible(&self, w: usize, h: usize, t: f64) -> Image {
        let mut out = Image::zeros(0, 0);
        self.render_visible_into(w, h, t, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ScenePair::render_visible`]: renders
    /// into `out` (reshaped, capacity reused). Identical pixels. Builds a
    /// one-shot [`RenderScratch`]; steady-state callers should hold one and
    /// use [`ScenePair::render_visible_scratch`] instead.
    pub fn render_visible_into(&self, w: usize, h: usize, t: f64, out: &mut Image) {
        self.render_visible_scratch(w, h, t, &mut RenderScratch::default(), out);
    }

    /// Renders the visible-band view through caller-held column tables, so
    /// repeated renders allocate nothing. Identical pixels to
    /// [`ScenePair::render_visible`].
    pub fn render_visible_scratch(
        &self,
        w: usize,
        h: usize,
        t: f64,
        scratch: &mut RenderScratch,
        out: &mut Image,
    ) {
        let (bx, by) = self.body_center(t);
        let tn = (t * 1000.0) as u64;
        out.reshape(w, h);
        scratch.fit(w);
        // Per-column terms, same expressions as the per-pixel form so the
        // assembled value is bit-identical.
        for px in 0..w {
            let x = (px as f64 + 0.5) / w as f64;
            scratch.tex[px] = (x * 40.0).sin();
            // Striped calibration board (visible only); NaN = outside.
            scratch.stripe[px] = if (0.08..0.30).contains(&x) {
                if (((x - 0.08) * 50.0) as u64).is_multiple_of(2) {
                    0.9
                } else {
                    0.15
                }
            } else {
                f64::NAN
            };
            // Cold occluder: a dark panel the visible camera cannot see
            // past; NaN = outside.
            scratch.occ[px] = if (0.55..0.85).contains(&x) {
                0.12 + 0.02 * ((x * 90.0).sin())
            } else {
                f64::NAN
            };
            scratch.body[px] = ((x - bx) / 0.06).powi(2);
        }
        let data = out.as_mut_slice();
        for py in 0..h {
            let y = (py as f64 + 0.5) / h as f64;
            let base = 0.45 + 0.25 * (1.0 - y);
            let cosy = (y * 31.0).cos();
            let dy2 = ((y - by) / 0.16).powi(2);
            let stripe_row = (0.15..0.45).contains(&y);
            let occ_row = (0.35..0.8).contains(&y);
            let row = &mut data[py * w..(py + 1) * w];
            for (px, o) in row.iter_mut().enumerate() {
                // Illumination gradient + wall texture.
                let mut v = base + 0.08 * (scratch.tex[px] * cosy);
                if stripe_row && !scratch.stripe[px].is_nan() {
                    v = scratch.stripe[px];
                }
                if occ_row && !scratch.occ[px].is_nan() {
                    v = scratch.occ[px];
                }
                // The warm body is barely visible (low-contrast silhouette).
                if scratch.body[px] + dy2 < 1.0 {
                    v = v * 0.8 + 0.05;
                }
                // CMOS shot noise.
                v += 0.015 * self.noise(px as u64, py as u64, tn, 1);
                *o = (v.clamp(0.0, 1.0)) as f32;
            }
        }
    }

    /// Renders the thermal (LWIR) view in `[0, 1]`.
    pub fn render_thermal(&self, w: usize, h: usize, t: f64) -> Image {
        let mut out = Image::zeros(0, 0);
        self.render_thermal_into(w, h, t, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ScenePair::render_thermal`]: renders
    /// into `out` (reshaped, capacity reused). Identical pixels. Builds a
    /// one-shot [`RenderScratch`]; steady-state callers should hold one and
    /// use [`ScenePair::render_thermal_scratch`] instead.
    pub fn render_thermal_into(&self, w: usize, h: usize, t: f64, out: &mut Image) {
        self.render_thermal_scratch(w, h, t, &mut RenderScratch::default(), out);
    }

    /// Renders the thermal view through caller-held column tables, so
    /// repeated renders allocate nothing. Identical pixels to
    /// [`ScenePair::render_thermal`].
    pub fn render_thermal_scratch(
        &self,
        w: usize,
        h: usize,
        t: f64,
        scratch: &mut RenderScratch,
        out: &mut Image,
    ) {
        let (bx, by) = self.body_center(t);
        let lampx = 0.72;
        let lampy = 0.22;
        let tn = (t * 1000.0) as u64;
        out.reshape(w, h);
        scratch.fit(w);
        // Per-column terms, same expressions as the per-pixel form so the
        // assembled value is bit-identical.
        for px in 0..w {
            let x = (px as f64 + 0.5) / w as f64;
            scratch.tex[px] = (x * 3.0).sin();
            // The Gaussian falloffs are separable: exp(-(dx2 + dy2)) =
            // exp(-dx2) * exp(-dy2), so each axis is exponentiated once
            // per row/column instead of once per pixel.
            scratch.body[px] = (-((x - bx) / 0.07).powi(2)).exp();
            scratch.lamp[px] = (-((x - lampx) / 0.035).powi(2)).exp();
        }
        let data = out.as_mut_slice();
        for py in 0..h {
            let y = (py as f64 + 0.5) / h as f64;
            let cosy = (y * 2.0).cos();
            let body_y = (-((y - by) / 0.18).powi(2)).exp();
            let lamp_y = (-((y - lampy) / 0.05).powi(2)).exp();
            if py % 2 == 0 {
                // NETD grain is constant over 2x2 blocks; hash each block
                // once and reuse it for four pixels.
                for (i, n) in scratch.noise_row.iter_mut().enumerate() {
                    *n = self.noise(i as u64, py as u64 / 2, tn, 2);
                }
            }
            let row = &mut data[py * w..(py + 1) * w];
            for (px, o) in row.iter_mut().enumerate() {
                // Ambient temperature field: smooth, no visible-band
                // texture — the visible occluder is transparent at LWIR.
                let mut v = 0.25 + 0.05 * (scratch.tex[px] + cosy);
                // Warm body: bright ellipse with a soft falloff.
                v += 0.55 * (scratch.body[px] * body_y);
                // Hot lamp spot.
                v += 0.7 * (scratch.lamp[px] * lamp_y);
                // Microbolometer NETD noise: coarser spatial grain.
                v += 0.02 * scratch.noise_row[px / 2];
                *o = (v.clamp(0.0, 1.0)) as f32;
            }
        }
    }

    /// Deterministic noise in `[-1, 1]` from a SplitMix64-style hash.
    fn noise(&self, x: u64, y: u64, t: u64, channel: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(x.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(y.wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(t.wrapping_mul(0xd6e8_feb8_6659_fd93))
            .wrapping_add(channel);
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f32]) -> f32 {
        xs.iter().sum::<f32>() / xs.len() as f32
    }

    #[test]
    fn hoisted_renders_match_per_pixel_reference_exactly() {
        // The column-table renders must be bit-identical to the direct
        // per-pixel evaluation of the scene formulas.
        let scene = ScenePair::new(11);
        let (w, h) = (97, 61);
        for t in [0.0, 0.73, 4.2] {
            let tn = (t * 1000.0) as u64;
            let (bx, by) = scene.body_center(t);
            let vis_ref = Image::from_fn(w, h, |px, py| {
                let x = (px as f64 + 0.5) / w as f64;
                let y = (py as f64 + 0.5) / h as f64;
                let mut v = 0.45 + 0.25 * (1.0 - y) + 0.08 * ((x * 40.0).sin() * (y * 31.0).cos());
                if (0.08..0.30).contains(&x) && (0.15..0.45).contains(&y) {
                    v = if (((x - 0.08) * 50.0) as u64).is_multiple_of(2) {
                        0.9
                    } else {
                        0.15
                    };
                }
                if (0.55..0.85).contains(&x) && (0.35..0.8).contains(&y) {
                    v = 0.12 + 0.02 * ((x * 90.0).sin());
                }
                let d2 = ((x - bx) / 0.06).powi(2) + ((y - by) / 0.16).powi(2);
                if d2 < 1.0 {
                    v = v * 0.8 + 0.05;
                }
                v += 0.015 * scene.noise(px as u64, py as u64, tn, 1);
                (v.clamp(0.0, 1.0)) as f32
            });
            let ir_ref = Image::from_fn(w, h, |px, py| {
                let x = (px as f64 + 0.5) / w as f64;
                let y = (py as f64 + 0.5) / h as f64;
                let mut v = 0.25 + 0.05 * ((x * 3.0).sin() + (y * 2.0).cos());
                v += 0.55
                    * ((-((x - bx) / 0.07).powi(2)).exp() * (-((y - by) / 0.18).powi(2)).exp());
                v += 0.7
                    * ((-((x - 0.72) / 0.035).powi(2)).exp()
                        * (-((y - 0.22) / 0.05).powi(2)).exp());
                v += 0.02 * scene.noise(px as u64 / 2, py as u64 / 2, tn, 2);
                (v.clamp(0.0, 1.0)) as f32
            });
            assert_eq!(scene.render_visible(w, h, t), vis_ref);
            assert_eq!(scene.render_thermal(w, h, t), ir_ref);
        }
    }

    #[test]
    fn deterministic_rendering() {
        let a = ScenePair::new(5).render_thermal(32, 32, 1.5);
        let b = ScenePair::new(5).render_thermal(32, 32, 1.5);
        assert_eq!(a, b);
        let c = ScenePair::new(6).render_thermal(32, 32, 1.5);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn values_in_unit_range() {
        let scene = ScenePair::new(1);
        for img in [
            scene.render_visible(48, 40, 0.3),
            scene.render_thermal(48, 40, 0.3),
        ] {
            for &v in img.as_slice() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn body_moves_over_time() {
        let scene = ScenePair::new(3);
        let (x0, _) = scene.body_center(0.0);
        let (x1, _) = scene.body_center(2.0);
        assert!((x0 - x1).abs() > 0.01);
        let a = scene.render_thermal(64, 48, 0.0);
        let b = scene.render_thermal(64, 48, 2.0);
        assert!(a.max_abs_diff(&b) > 0.1, "thermal view must change");
    }

    #[test]
    fn modalities_are_complementary() {
        // Inside the occluder box the visible image is dark and flat while
        // the thermal image can still show the lamp-side warmth; and the
        // lamp region is hot in thermal but unremarkable in visible.
        let scene = ScenePair::new(9);
        let vis = scene.render_visible(100, 100, 0.0);
        let ir = scene.render_thermal(100, 100, 0.0);
        // Occluder interior (visible): dark.
        let occ: Vec<f32> = (40..75)
            .flat_map(|y| (58..82).map(move |x| (x, y)))
            .map(|(x, y)| vis.get(x, y))
            .collect();
        assert!(mean(&occ) < 0.25, "occluder should look dark in visible");
        // Lamp core: thermal much brighter than visible at the same spot.
        let lamp_ir = ir.get(72, 22);
        let lamp_vis = vis.get(72, 22);
        assert!(lamp_ir > lamp_vis + 0.3, "{lamp_ir} vs {lamp_vis}");
        // Calibration-board stripes exist only in visible: spread check.
        let stripe_vis: Vec<f32> = (20..40).map(|x| vis.get(x, 25)).collect();
        let stripe_ir: Vec<f32> = (20..40).map(|x| ir.get(x, 25)).collect();
        let spread = |v: &[f32]| {
            v.iter().cloned().fold(f32::MIN, f32::max) - v.iter().cloned().fold(f32::MAX, f32::min)
        };
        assert!(spread(&stripe_vis) > 4.0 * spread(&stripe_ir));
    }
}

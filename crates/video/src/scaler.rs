//! Bilinear video scaler.
//!
//! Models the paper's `Video_Scale` block, which resamples the thermal
//! decoder's 720x243 field into the webcam-matched 640x480 raster before
//! fusion. The implementation is a standard separable bilinear resampler
//! with edge clamping, usable for both the upscale in the capture path and
//! the downscale to the paper's 88x72 evaluation frames.

use crate::VideoError;
use wavefuse_dtcwt::Image;

/// Resamples `src` to `dst_w` x `dst_h` with bilinear interpolation
/// (pixel-center aligned, edges clamped).
///
/// # Errors
///
/// Returns [`VideoError::EmptyImage`] if the source or destination is
/// zero-sized.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::Image;
/// use wavefuse_video::scaler::resize_bilinear;
///
/// let src = Image::from_fn(720, 243, |x, y| (x + y) as f32);
/// let dst = resize_bilinear(&src, 640, 480)?; // the paper's scaling step
/// assert_eq!(dst.dims(), (640, 480));
/// # Ok::<(), wavefuse_video::VideoError>(())
/// ```
pub fn resize_bilinear(src: &Image, dst_w: usize, dst_h: usize) -> Result<Image, VideoError> {
    let mut out = Image::zeros(0, 0);
    resize_bilinear_into(src, dst_w, dst_h, &mut out)?;
    Ok(out)
}

/// Buffer-reusing variant of [`resize_bilinear`]: resamples into `out`
/// (reshaped, capacity reused). The identity geometry degenerates to a
/// plain copy. Identical pixels to the allocating path. Builds a one-shot
/// [`BilinearPlan`]; hold a plan directly to resample repeatedly at a
/// fixed geometry without any allocation.
///
/// # Errors
///
/// As [`resize_bilinear`].
pub fn resize_bilinear_into(
    src: &Image,
    dst_w: usize,
    dst_h: usize,
    out: &mut Image,
) -> Result<(), VideoError> {
    let (sw, sh) = src.dims();
    if sw == 0 || sh == 0 || dst_w == 0 || dst_h == 0 {
        return Err(VideoError::EmptyImage);
    }
    BilinearPlan::new(sw, sh, dst_w, dst_h)?.apply(src, out)
}

/// Source tap pair and interpolation weight for one destination row or
/// column under pixel-center mapping: dst center `(i + 0.5)` maps to
/// clamped src coordinate `i0 + w` with neighbour `i1`.
fn tap(i: usize, scale: f32, src_len: usize) -> (usize, usize, f32) {
    let f = ((i as f32 + 0.5) * scale - 0.5).clamp(0.0, (src_len - 1) as f32);
    let i0 = f.floor() as usize;
    let i1 = (i0 + 1).min(src_len - 1);
    (i0, i1, f - i0 as f32)
}

/// A prepared bilinear resample for one fixed geometry.
///
/// Precomputes the per-column and per-row source taps and weights so
/// repeated resamples (the capture path runs two per thermal frame) skip
/// the per-pixel coordinate math and bounds checks. [`BilinearPlan::apply`]
/// produces bit-identical pixels to [`resize_bilinear_into`].
#[derive(Debug, Clone)]
pub struct BilinearPlan {
    src: (usize, usize),
    dst: (usize, usize),
    /// `(x0, x1, wx)` per destination column.
    xmap: Vec<(usize, usize, f32)>,
    /// `(y0, y1, wy)` per destination row.
    ymap: Vec<(usize, usize, f32)>,
}

impl BilinearPlan {
    /// Prepares a `src_w` x `src_h` to `dst_w` x `dst_h` resample.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptyImage`] if either geometry is zero-sized.
    pub fn new(src_w: usize, src_h: usize, dst_w: usize, dst_h: usize) -> Result<Self, VideoError> {
        if src_w == 0 || src_h == 0 || dst_w == 0 || dst_h == 0 {
            return Err(VideoError::EmptyImage);
        }
        let sx = src_w as f32 / dst_w as f32;
        let sy = src_h as f32 / dst_h as f32;
        Ok(BilinearPlan {
            src: (src_w, src_h),
            dst: (dst_w, dst_h),
            xmap: (0..dst_w).map(|x| tap(x, sx, src_w)).collect(),
            ymap: (0..dst_h).map(|y| tap(y, sy, src_h)).collect(),
        })
    }

    /// The planned source geometry.
    pub fn src_dims(&self) -> (usize, usize) {
        self.src
    }

    /// The planned destination geometry.
    pub fn dst_dims(&self) -> (usize, usize) {
        self.dst
    }

    /// Resamples `src` into `out` (reshaped, capacity reused) using the
    /// prepared taps. The identity geometry degenerates to a plain copy.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptyImage`] if `src` does not match the
    /// planned source geometry.
    pub fn apply(&self, src: &Image, out: &mut Image) -> Result<(), VideoError> {
        if src.dims() != self.src {
            return Err(VideoError::EmptyImage);
        }
        if self.src == self.dst {
            out.copy_from(src);
            return Ok(());
        }
        let (sw, _) = self.src;
        let (dst_w, dst_h) = self.dst;
        out.reshape(dst_w, dst_h);
        let data = src.as_slice();
        let dst = out.as_mut_slice();
        for y in 0..dst_h {
            let (y0, y1, wy) = self.ymap[y];
            let top_row = &data[y0 * sw..y0 * sw + sw];
            let bot_row = &data[y1 * sw..y1 * sw + sw];
            let out_row = &mut dst[y * dst_w..(y + 1) * dst_w];
            for (o, &(x0, x1, wx)) in out_row.iter_mut().zip(&self.xmap) {
                let top = top_row[x0] * (1.0 - wx) + top_row[x1] * wx;
                let bot = bot_row[x0] * (1.0 - wx) + bot_row[x1] * wx;
                *o = top * (1.0 - wy) + bot * wy;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scale_is_clone() {
        let src = Image::from_fn(10, 8, |x, y| (x * y) as f32);
        let out = resize_bilinear(&src, 10, 8).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn empty_rejected() {
        let src = Image::zeros(0, 0);
        assert_eq!(resize_bilinear(&src, 4, 4), Err(VideoError::EmptyImage));
        let ok = Image::zeros(4, 4);
        assert_eq!(resize_bilinear(&ok, 0, 4), Err(VideoError::EmptyImage));
    }

    #[test]
    fn constant_image_stays_constant() {
        let src = Image::filled(7, 5, 3.25);
        let out = resize_bilinear(&src, 29, 17).unwrap();
        for &v in out.as_slice() {
            assert!((v - 3.25).abs() < 1e-6);
        }
    }

    #[test]
    fn upscale_by_two_interpolates_midpoints() {
        // A horizontal ramp upscaled 2x must remain a (piecewise) ramp.
        let src = Image::from_fn(4, 1, |x, _| x as f32);
        let out = resize_bilinear(&src, 8, 1).unwrap();
        // Monotone non-decreasing, endpoints clamped.
        for i in 1..8 {
            assert!(out.get(i, 0) >= out.get(i - 1, 0));
        }
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(7, 0), 3.0);
        // Interior midpoints are true averages: dst x=2 maps to src 0.75.
        assert!((out.get(2, 0) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn downscale_averages_locally() {
        // 2x2 checkerboard downscaled to 1x1 lands between the extremes.
        let src = Image::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let out = resize_bilinear(&src, 1, 1).unwrap();
        assert!((out.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn plan_matches_per_pixel_reference_exactly() {
        // The prepared-tap resample must be bit-identical to the direct
        // per-pixel bilinear evaluation.
        let src = Image::from_fn(53, 37, |x, y| ((x * 31 + y * 17) % 101) as f32 * 0.01);
        for (dw, dh) in [(88, 72), (17, 90), (120, 11)] {
            let (sw, sh) = src.dims();
            let sx = sw as f32 / dw as f32;
            let sy = sh as f32 / dh as f32;
            let reference = Image::from_fn(dw, dh, |x, y| {
                let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, (sh - 1) as f32);
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(sh - 1);
                let wy = fy - y0 as f32;
                let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, (sw - 1) as f32);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(sw - 1);
                let wx = fx - x0 as f32;
                let top = src.get(x0, y0) * (1.0 - wx) + src.get(x1, y0) * wx;
                let bot = src.get(x0, y1) * (1.0 - wx) + src.get(x1, y1) * wx;
                top * (1.0 - wy) + bot * wy
            });
            let plan = BilinearPlan::new(sw, sh, dw, dh).unwrap();
            let mut out = Image::zeros(0, 0);
            plan.apply(&src, &mut out).unwrap();
            assert_eq!(out, reference);
            assert_eq!(resize_bilinear(&src, dw, dh).unwrap(), reference);
        }
    }

    #[test]
    fn plan_rejects_mismatched_source() {
        let plan = BilinearPlan::new(8, 6, 4, 3).unwrap();
        assert_eq!(plan.src_dims(), (8, 6));
        assert_eq!(plan.dst_dims(), (4, 3));
        let wrong = Image::zeros(9, 6);
        let mut out = Image::zeros(0, 0);
        assert_eq!(plan.apply(&wrong, &mut out), Err(VideoError::EmptyImage));
    }

    #[test]
    fn paper_thermal_scaling_geometry() {
        let src = Image::from_fn(720, 243, |x, y| ((x ^ y) % 97) as f32);
        let out = resize_bilinear(&src, 640, 480).unwrap();
        assert_eq!(out.dims(), (640, 480));
        // Range preserved (bilinear is a convex combination).
        let (lo, hi) = out
            .as_slice()
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(lo >= 0.0 && hi <= 96.0);
    }
}

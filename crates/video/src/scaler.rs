//! Bilinear video scaler.
//!
//! Models the paper's `Video_Scale` block, which resamples the thermal
//! decoder's 720x243 field into the webcam-matched 640x480 raster before
//! fusion. The implementation is a standard separable bilinear resampler
//! with edge clamping, usable for both the upscale in the capture path and
//! the downscale to the paper's 88x72 evaluation frames.

use crate::VideoError;
use wavefuse_dtcwt::Image;

/// Resamples `src` to `dst_w` x `dst_h` with bilinear interpolation
/// (pixel-center aligned, edges clamped).
///
/// # Errors
///
/// Returns [`VideoError::EmptyImage`] if the source or destination is
/// zero-sized.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::Image;
/// use wavefuse_video::scaler::resize_bilinear;
///
/// let src = Image::from_fn(720, 243, |x, y| (x + y) as f32);
/// let dst = resize_bilinear(&src, 640, 480)?; // the paper's scaling step
/// assert_eq!(dst.dims(), (640, 480));
/// # Ok::<(), wavefuse_video::VideoError>(())
/// ```
pub fn resize_bilinear(src: &Image, dst_w: usize, dst_h: usize) -> Result<Image, VideoError> {
    let (sw, sh) = src.dims();
    if sw == 0 || sh == 0 || dst_w == 0 || dst_h == 0 {
        return Err(VideoError::EmptyImage);
    }
    if (sw, sh) == (dst_w, dst_h) {
        return Ok(src.clone());
    }
    let sx = sw as f32 / dst_w as f32;
    let sy = sh as f32 / dst_h as f32;
    let mut out = Image::zeros(dst_w, dst_h);
    for y in 0..dst_h {
        // Pixel-center mapping: dst center (y + 0.5) maps to src coords.
        let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, (sh - 1) as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(sh - 1);
        let wy = fy - y0 as f32;
        for x in 0..dst_w {
            let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, (sw - 1) as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(sw - 1);
            let wx = fx - x0 as f32;
            let top = src.get(x0, y0) * (1.0 - wx) + src.get(x1, y0) * wx;
            let bot = src.get(x0, y1) * (1.0 - wx) + src.get(x1, y1) * wx;
            out.set(x, y, top * (1.0 - wy) + bot * wy);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scale_is_clone() {
        let src = Image::from_fn(10, 8, |x, y| (x * y) as f32);
        let out = resize_bilinear(&src, 10, 8).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn empty_rejected() {
        let src = Image::zeros(0, 0);
        assert_eq!(resize_bilinear(&src, 4, 4), Err(VideoError::EmptyImage));
        let ok = Image::zeros(4, 4);
        assert_eq!(resize_bilinear(&ok, 0, 4), Err(VideoError::EmptyImage));
    }

    #[test]
    fn constant_image_stays_constant() {
        let src = Image::filled(7, 5, 3.25);
        let out = resize_bilinear(&src, 29, 17).unwrap();
        for &v in out.as_slice() {
            assert!((v - 3.25).abs() < 1e-6);
        }
    }

    #[test]
    fn upscale_by_two_interpolates_midpoints() {
        // A horizontal ramp upscaled 2x must remain a (piecewise) ramp.
        let src = Image::from_fn(4, 1, |x, _| x as f32);
        let out = resize_bilinear(&src, 8, 1).unwrap();
        // Monotone non-decreasing, endpoints clamped.
        for i in 1..8 {
            assert!(out.get(i, 0) >= out.get(i - 1, 0));
        }
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(7, 0), 3.0);
        // Interior midpoints are true averages: dst x=2 maps to src 0.75.
        assert!((out.get(2, 0) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn downscale_averages_locally() {
        // 2x2 checkerboard downscaled to 1x1 lands between the extremes.
        let src = Image::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let out = resize_bilinear(&src, 1, 1).unwrap();
        assert!((out.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn paper_thermal_scaling_geometry() {
        let src = Image::from_fn(720, 243, |x, y| ((x ^ y) % 97) as f32);
        let out = resize_bilinear(&src, 640, 480).unwrap();
        assert_eq!(out.dims(), (640, 480));
        // Range preserved (bilinear is a convex combination).
        let (lo, hi) = out
            .as_slice()
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(lo >= 0.0 && hi <= 96.0);
    }
}

//! Frame types and pixel-format conversions.

use crate::VideoError;
use wavefuse_dtcwt::Image;

/// Raw pixel formats produced by the capture front-ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 8-bit grayscale, one byte per pixel.
    Gray8,
    /// Packed YUV 4:2:2 (`Cb Y0 Cr Y1`), two bytes per pixel — the thermal
    /// camera's BT.656 payload format in the paper.
    Yuv422,
    /// Packed 24-bit RGB (`R G B`), the webcam's native USB format; the
    /// paper gray-scales this stream before fusion.
    Rgb888,
}

impl PixelFormat {
    /// Bytes per pixel of the packed representation.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Gray8 => 1,
            PixelFormat::Yuv422 => 2,
            PixelFormat::Rgb888 => 3,
        }
    }
}

/// An undecoded frame straight from a capture device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    format: PixelFormat,
    width: usize,
    height: usize,
    bytes: Vec<u8>,
}

impl RawFrame {
    /// Wraps raw bytes as a frame.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BadFrameLength`] if `bytes` does not match
    /// `width * height * bytes_per_pixel`.
    pub fn new(
        format: PixelFormat,
        width: usize,
        height: usize,
        bytes: Vec<u8>,
    ) -> Result<Self, VideoError> {
        let expected = width * height * format.bytes_per_pixel();
        if bytes.len() != expected {
            return Err(VideoError::BadFrameLength {
                expected,
                actual: bytes.len(),
            });
        }
        Ok(RawFrame {
            format,
            width,
            height,
            bytes,
        })
    }

    /// An empty placeholder frame (zero-sized, no allocation), for use as a
    /// reusable output slot of the `_into` capture-path functions.
    pub fn empty() -> Self {
        RawFrame {
            format: PixelFormat::Gray8,
            width: 0,
            height: 0,
            bytes: Vec::new(),
        }
    }

    /// Moves this frame's byte storage out for reuse (cleared, capacity
    /// kept), leaving the frame empty.
    pub(crate) fn take_storage(&mut self) -> Vec<u8> {
        self.width = 0;
        self.height = 0;
        self.format = PixelFormat::Gray8;
        let mut bytes = std::mem::take(&mut self.bytes);
        bytes.clear();
        bytes
    }

    /// Adopts `bytes` as this frame's payload, validating the length like
    /// [`RawFrame::new`].
    pub(crate) fn assign(
        &mut self,
        format: PixelFormat,
        width: usize,
        height: usize,
        bytes: Vec<u8>,
    ) -> Result<(), VideoError> {
        let expected = width * height * format.bytes_per_pixel();
        if bytes.len() != expected {
            return Err(VideoError::BadFrameLength {
                expected,
                actual: bytes.len(),
            });
        }
        self.format = format;
        self.width = width;
        self.height = height;
        self.bytes = bytes;
        Ok(())
    }

    /// Pixel format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// `(width, height)` in pixels.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Raw byte payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Converts to a grayscale [`Frame`] (luma extraction for YUV, `[0, 1]`
    /// normalization for both) — the paper gray-scales the webcam stream
    /// before fusion.
    pub fn to_gray(&self, seq: u64) -> Frame {
        let mut out = Frame::new(Image::zeros(0, 0), 0);
        self.to_gray_into(seq, &mut out);
        out
    }

    /// Allocation-free variant of [`RawFrame::to_gray`]: converts into
    /// `out`'s image buffer (reshaped, capacity reused) and stamps its
    /// sequence number.
    pub fn to_gray_into(&self, seq: u64, out: &mut Frame) {
        out.seq = seq;
        let img = &mut out.image;
        img.reshape(self.width, self.height);
        match self.format {
            PixelFormat::Gray8 => {
                for (dst, &b) in img.as_mut_slice().iter_mut().zip(&self.bytes) {
                    *dst = b as f32 / 255.0;
                }
            }
            PixelFormat::Yuv422 => {
                // Packed Cb Y0 Cr Y1: luma sits at odd byte positions.
                // Paired iteration keeps the loop free of bounds checks.
                for (dst, pair) in img
                    .as_mut_slice()
                    .iter_mut()
                    .zip(self.bytes.chunks_exact(2))
                {
                    *dst = pair[1] as f32 / 255.0;
                }
            }
            PixelFormat::Rgb888 => {
                // ITU-R BT.601 luma weights, as OpenCV's grayscale
                // conversion (the paper's display path) uses.
                for (i, dst) in img.as_mut_slice().iter_mut().enumerate() {
                    let r = self.bytes[3 * i] as f32;
                    let g = self.bytes[3 * i + 1] as f32;
                    let b = self.bytes[3 * i + 2] as f32;
                    *dst = (0.299 * r + 0.587 * g + 0.114 * b) / 255.0;
                }
            }
        }
    }
}

/// A decoded single-channel `f32` frame with a sequence number.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::Image;
/// use wavefuse_video::Frame;
///
/// let f = Frame::filled(8, 8, 0.25f32);
/// assert_eq!(f.seq(), 0);
/// assert_eq!(f.image().get(3, 3), 0.25);
/// let img: Image = f.into_image();
/// assert_eq!(img.dims(), (8, 8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    image: Image,
    seq: u64,
}

impl Frame {
    /// Wraps a decoded image with a sequence number.
    pub fn new(image: Image, seq: u64) -> Self {
        Frame { image, seq }
    }

    /// A constant-valued frame with sequence number 0 (handy in tests and
    /// docs).
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Frame::new(Image::filled(width, height, value), 0)
    }

    /// The pixel data.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Mutable pixel data.
    pub fn image_mut(&mut self) -> &mut Image {
        &mut self.image
    }

    /// Capture sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overwrites the sequence number (used by the pooled capture path,
    /// which reuses frame buffers across captures).
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Consumes the frame, returning the image.
    pub fn into_image(self) -> Image {
        self.image
    }

    /// Quantizes back to 8-bit grayscale bytes (clamping to `[0, 1]`),
    /// for display or re-encoding.
    pub fn to_gray8_bytes(&self) -> Vec<u8> {
        self.image
            .as_slice()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect()
    }
}

impl From<Frame> for Image {
    fn from(f: Frame) -> Image {
        f.into_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_frame_length_validated() {
        assert!(RawFrame::new(PixelFormat::Gray8, 4, 4, vec![0; 15]).is_err());
        assert!(RawFrame::new(PixelFormat::Gray8, 4, 4, vec![0; 16]).is_ok());
        assert!(RawFrame::new(PixelFormat::Yuv422, 4, 4, vec![0; 32]).is_ok());
    }

    #[test]
    fn gray8_to_gray_normalizes() {
        let raw = RawFrame::new(PixelFormat::Gray8, 2, 1, vec![0, 255]).unwrap();
        let f = raw.to_gray(3);
        assert_eq!(f.seq(), 3);
        assert_eq!(f.image().get(0, 0), 0.0);
        assert_eq!(f.image().get(1, 0), 1.0);
    }

    #[test]
    fn yuv422_extracts_luma() {
        // Cb=128 Y0=100 Cr=128 Y1=200
        let raw = RawFrame::new(PixelFormat::Yuv422, 2, 1, vec![128, 100, 128, 200]).unwrap();
        let f = raw.to_gray(0);
        assert!((f.image().get(0, 0) - 100.0 / 255.0).abs() < 1e-6);
        assert!((f.image().get(1, 0) - 200.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn rgb888_uses_bt601_luma() {
        // Pure red / green / blue pixels map to their BT.601 weights.
        let raw = RawFrame::new(
            PixelFormat::Rgb888,
            3,
            1,
            vec![255, 0, 0, 0, 255, 0, 0, 0, 255],
        )
        .unwrap();
        let f = raw.to_gray(0);
        assert!((f.image().get(0, 0) - 0.299).abs() < 1e-5);
        assert!((f.image().get(1, 0) - 0.587).abs() < 1e-5);
        assert!((f.image().get(2, 0) - 0.114).abs() < 1e-5);
        // White maps to 1.0, black to 0.0.
        let wb = RawFrame::new(PixelFormat::Rgb888, 2, 1, vec![255, 255, 255, 0, 0, 0]).unwrap();
        let g = wb.to_gray(0);
        assert!((g.image().get(0, 0) - 1.0).abs() < 1e-5);
        assert_eq!(g.image().get(1, 0), 0.0);
    }

    #[test]
    fn gray8_round_trip() {
        let raw = RawFrame::new(PixelFormat::Gray8, 3, 2, vec![10, 20, 30, 40, 50, 60]).unwrap();
        let f = raw.to_gray(0);
        assert_eq!(f.to_gray8_bytes(), vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn to_gray8_clamps() {
        let mut f = Frame::filled(2, 1, 2.0);
        f.image_mut().set(1, 0, -1.0);
        assert_eq!(f.to_gray8_bytes(), vec![255, 0]);
    }
}

use std::error::Error;
use std::fmt;

/// Error type for video capture and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VideoError {
    /// A raw frame's byte length does not match its format and dimensions.
    BadFrameLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes provided.
        actual: usize,
    },
    /// The BT.656 stream is malformed (bad sync word, failed protection
    /// bits, truncated line).
    Bt656Sync {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// What went wrong.
        reason: &'static str,
    },
    /// The decoded stream did not contain the expected number of active
    /// lines.
    Bt656LineCount {
        /// Active lines expected.
        expected: usize,
        /// Active lines found.
        actual: usize,
    },
    /// A scaler was asked to produce or consume an empty image.
    EmptyImage,
    /// A frame FIFO refused a frame (back-pressure); the frame was dropped.
    FifoFull,
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::BadFrameLength { expected, actual } => {
                write!(f, "frame buffer of {actual} bytes, format needs {expected}")
            }
            VideoError::Bt656Sync { offset, reason } => {
                write!(f, "bt656 stream error at byte {offset}: {reason}")
            }
            VideoError::Bt656LineCount { expected, actual } => {
                write!(
                    f,
                    "bt656 stream held {actual} active lines, expected {expected}"
                )
            }
            VideoError::EmptyImage => write!(f, "empty image in video path"),
            VideoError::FifoFull => write!(f, "frame fifo full, frame dropped"),
        }
    }
}

impl Error for VideoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VideoError>();
        assert!(VideoError::FifoFull.to_string().contains("fifo"));
    }
}

//! Camera models: the two capture front-ends of the paper's Fig. 7.
//!
//! * [`WebCamera`] models the Logitech C160 USB webcam: frames are decoded
//!   on the PS side, arriving as 8-bit grayscale (the paper gray-scales the
//!   webcam stream before fusion).
//! * [`ThermalCamera`] models the Thermoteknix MicroCAM 384H XTi: the
//!   sensor's native raster is formatted into a 720x243 YUV 4:2:2 field,
//!   serialized as a BT.656 byte stream (what crosses the FMC connector),
//!   decoded by the [`crate::bt656`] decoder, and resampled by the
//!   [`crate::scaler`] — the full PL-side path of the paper.

use crate::bt656;
use crate::frame::{Frame, PixelFormat, RawFrame};
use crate::scaler::resize_bilinear;
use crate::scene::ScenePair;
use crate::VideoError;
use wavefuse_dtcwt::Image;

/// Native raster of the modeled MicroCAM 384H XTi sensor.
pub const THERMAL_SENSOR_DIMS: (usize, usize) = (384, 288);

/// BT.656 field geometry the thermal camera emits (as in the paper's
/// `Video_Scale (720x243 to 640x480, 60Hz)` block).
pub const THERMAL_FIELD_DIMS: (usize, usize) = (720, 243);

/// USB webcam model (PS-side decode).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct WebCamera {
    scene: ScenePair,
    width: usize,
    height: usize,
    fps: f64,
    seq: u64,
}

impl WebCamera {
    /// Creates a webcam delivering `width` x `height` frames at 30 fps.
    pub fn new(scene: ScenePair, width: usize, height: usize) -> Self {
        WebCamera {
            scene,
            width,
            height,
            fps: 30.0,
            seq: 0,
        }
    }

    /// Frames per second of the capture clock.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The raw RGB frame as the USB stack would deliver it (the visible
    /// scene is near-monochrome with a slight warm cast, as cheap webcam
    /// sensors render indoor scenes).
    pub fn next_raw_rgb(&mut self) -> RawFrame {
        let t = self.seq as f64 / self.fps;
        self.seq += 1;
        let img = self.scene.render_visible(self.width, self.height, t);
        let mut bytes = Vec::with_capacity(self.width * self.height * 3);
        for &v in img.as_slice() {
            let v = v.clamp(0.0, 1.0);
            // Warm cast: slightly boosted red, slightly cut blue, chosen so
            // the BT.601 luma recovers the rendered value exactly
            // (0.299*1.04 + 0.587*1.0 + 0.114*0.895 = 1.0).
            bytes.push(((v * 1.04).min(1.0) * 255.0).round() as u8);
            bytes.push((v * 255.0).round() as u8);
            bytes.push((v * 0.895 * 255.0).round() as u8);
        }
        RawFrame::new(PixelFormat::Rgb888, self.width, self.height, bytes)
            .expect("sensor geometry is consistent")
    }

    /// Captures the next frame: render → RGB sensor quantization → USB
    /// decode → grayscale conversion (the paper gray-scales the webcam
    /// stream before fusion).
    pub fn capture(&mut self) -> Frame {
        let seq = self.seq;
        self.next_raw_rgb().to_gray(seq)
    }
}

/// Thermal camera model (PL-side BT.656 decode + scaling).
#[derive(Debug, Clone)]
pub struct ThermalCamera {
    scene: ScenePair,
    out_width: usize,
    out_height: usize,
    field_fps: f64,
    seq: u64,
}

impl ThermalCamera {
    /// Creates a thermal camera delivering `out_width` x `out_height`
    /// frames (after decode and scaling) at 60 fields/s.
    pub fn new(scene: ScenePair, out_width: usize, out_height: usize) -> Self {
        ThermalCamera {
            scene,
            out_width,
            out_height,
            field_fps: 60.0,
            seq: 0,
        }
    }

    /// Fields per second on the wire.
    pub fn field_rate(&self) -> f64 {
        self.field_fps
    }

    /// The raw BT.656 byte stream of the next field — what the FMC pins
    /// carry. Exposed so tests and examples can exercise the decoder
    /// directly.
    pub fn next_field_stream(&mut self) -> Vec<u8> {
        let t = self.seq as f64 / self.field_fps;
        self.seq += 1;
        let (sw, sh) = THERMAL_SENSOR_DIMS;
        let native = self.scene.render_thermal(sw, sh, t);
        let (fw, fh) = THERMAL_FIELD_DIMS;
        let field = resize_bilinear(&native, fw, fh).expect("non-empty field geometry");
        bt656::encode(&yuv422_from_gray(&field))
    }

    /// Captures the next frame through the full path:
    /// render → field format → BT.656 encode → decode → luma → scale.
    ///
    /// # Errors
    ///
    /// Propagates BT.656 decode errors (which for this camera's own streams
    /// indicates a model bug) and scaler errors for zero output dimensions.
    pub fn capture(&mut self) -> Result<Frame, VideoError> {
        let seq = self.seq;
        let stream = self.next_field_stream();
        let (fw, fh) = THERMAL_FIELD_DIMS;
        let raw = bt656::decode(&stream, fw, fh)?;
        let gray = raw.to_gray(seq);
        let scaled = resize_bilinear(gray.image(), self.out_width, self.out_height)?;
        Ok(Frame::new(scaled, seq))
    }
}

/// Packs a grayscale image into YUV 4:2:2 bytes with neutral chroma,
/// clamping luma into the BT.656-legal `1..=254` range.
fn yuv422_from_gray(img: &Image) -> RawFrame {
    let (w, h) = img.dims();
    let mut bytes = Vec::with_capacity(w * h * 2);
    for y in 0..h {
        for x in 0..w {
            let luma = (img.get(x, y).clamp(0.0, 1.0) * 253.0).round() as u8 + 1;
            bytes.push(0x80); // neutral Cb/Cr alternating
            bytes.push(luma);
        }
    }
    RawFrame::new(PixelFormat::Yuv422, w, h, bytes).expect("geometry is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webcam_advances_sequence() {
        let mut cam = WebCamera::new(ScenePair::new(1), 32, 24);
        let f0 = cam.capture();
        let f1 = cam.capture();
        assert_eq!(f0.seq(), 0);
        assert_eq!(f1.seq(), 1);
        assert_eq!(f0.image().dims(), (32, 24));
    }

    #[test]
    fn thermal_capture_full_path() {
        let mut cam = ThermalCamera::new(ScenePair::new(2), 88, 72);
        let f = cam.capture().unwrap();
        assert_eq!(f.image().dims(), (88, 72));
        for &v in f.image().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn thermal_stream_is_valid_bt656() {
        let mut cam = ThermalCamera::new(ScenePair::new(3), 40, 30);
        let stream = cam.next_field_stream();
        let (fw, fh) = THERMAL_FIELD_DIMS;
        let raw = bt656::decode(&stream, fw, fh).unwrap();
        assert_eq!(raw.dims(), THERMAL_FIELD_DIMS);
        // Luma stays in the legal range.
        for chunk in raw.bytes().chunks_exact(2) {
            assert!(chunk[1] >= 1 && chunk[1] <= 254);
        }
    }

    #[test]
    fn cameras_view_the_same_scene() {
        // The warm body's thermal signature and the visible silhouette sit
        // at the same normalized location: cross-check via the scene.
        let scene = ScenePair::new(4);
        let (bx, by) = scene.body_center(0.0);
        let mut cam = ThermalCamera::new(scene, 96, 96);
        let f = cam.capture().unwrap();
        let px = (bx * 96.0) as usize;
        let py = (by * 96.0) as usize;
        let center = f.image().get(px.min(95), py.min(95));
        let corner = f.image().get(2, 2);
        assert!(center > corner + 0.2, "body {center} vs corner {corner}");
    }

    #[test]
    fn quantization_path_matches_scene_brightness() {
        let scene = ScenePair::new(5);
        let mut cam = WebCamera::new(scene.clone(), 64, 48);
        let f = cam.capture();
        let direct = scene.render_visible(64, 48, 0.0);
        // Per-channel 8-bit quantization bounds the luma error at half an
        // LSB, plus the red-channel headroom clamp for near-white pixels.
        assert!(f.image().max_abs_diff(&direct) <= 0.5 / 255.0 + 0.299 * 0.04 + 1e-6);
    }
}

//! Camera models: the two capture front-ends of the paper's Fig. 7.
//!
//! * [`WebCamera`] models the Logitech C160 USB webcam: frames are decoded
//!   on the PS side, arriving as 8-bit grayscale (the paper gray-scales the
//!   webcam stream before fusion).
//! * [`ThermalCamera`] models the Thermoteknix MicroCAM 384H XTi: the
//!   sensor's native raster is formatted into a 720x243 YUV 4:2:2 field,
//!   serialized as a BT.656 byte stream (what crosses the FMC connector),
//!   decoded by the [`crate::bt656`] decoder, and resampled by the
//!   [`crate::scaler`] — the full PL-side path of the paper.

use crate::bt656;
use crate::frame::{Frame, PixelFormat, RawFrame};
use crate::scaler::BilinearPlan;
use crate::scene::{RenderScratch, ScenePair};
use crate::VideoError;
use wavefuse_dtcwt::Image;

/// Native raster of the modeled MicroCAM 384H XTi sensor.
pub const THERMAL_SENSOR_DIMS: (usize, usize) = (384, 288);

/// BT.656 field geometry the thermal camera emits (as in the paper's
/// `Video_Scale (720x243 to 640x480, 60Hz)` block).
pub const THERMAL_FIELD_DIMS: (usize, usize) = (720, 243);

/// USB webcam model (PS-side decode).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct WebCamera {
    scene: ScenePair,
    width: usize,
    height: usize,
    fps: f64,
    seq: u64,
    // Reusable capture-path scratch (render tables, rendered scene and
    // quantized sensor bytes), so steady-state captures via `capture_into`
    // do not allocate.
    scratch: RenderScratch,
    render: Image,
    raw: RawFrame,
}

impl WebCamera {
    /// Creates a webcam delivering `width` x `height` frames at 30 fps.
    pub fn new(scene: ScenePair, width: usize, height: usize) -> Self {
        WebCamera {
            scene,
            width,
            height,
            fps: 30.0,
            seq: 0,
            scratch: RenderScratch::default(),
            render: Image::zeros(0, 0),
            raw: RawFrame::empty(),
        }
    }

    /// Frames per second of the capture clock.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The raw RGB frame as the USB stack would deliver it (the visible
    /// scene is near-monochrome with a slight warm cast, as cheap webcam
    /// sensors render indoor scenes).
    pub fn next_raw_rgb(&mut self) -> RawFrame {
        let t = self.seq as f64 / self.fps;
        self.seq += 1;
        self.scene.render_visible_scratch(
            self.width,
            self.height,
            t,
            &mut self.scratch,
            &mut self.render,
        );
        let mut bytes = Vec::with_capacity(self.width * self.height * 3);
        quantize_rgb(&self.render, &mut bytes);
        RawFrame::new(PixelFormat::Rgb888, self.width, self.height, bytes)
            .expect("sensor geometry is consistent")
    }

    /// Captures the next frame: render → RGB sensor quantization → USB
    /// decode → grayscale conversion (the paper gray-scales the webcam
    /// stream before fusion).
    pub fn capture(&mut self) -> Frame {
        let mut out = Frame::new(Image::zeros(0, 0), 0);
        self.capture_into(&mut out);
        out
    }

    /// Allocation-free variant of [`WebCamera::capture`]: runs the same
    /// render → quantize → grayscale path through internal scratch buffers
    /// and writes the result into `out` (reshaped, capacity reused).
    pub fn capture_into(&mut self, out: &mut Frame) {
        let seq = self.seq;
        let t = seq as f64 / self.fps;
        self.seq += 1;
        self.scene.render_visible_scratch(
            self.width,
            self.height,
            t,
            &mut self.scratch,
            &mut self.render,
        );
        let mut bytes = self.raw.take_storage();
        bytes.reserve(self.width * self.height * 3);
        quantize_rgb(&self.render, &mut bytes);
        self.raw
            .assign(PixelFormat::Rgb888, self.width, self.height, bytes)
            .expect("sensor geometry is consistent");
        self.raw.to_gray_into(seq, out);
    }
}

/// Quantizes a rendered `[0, 1]` image to packed RGB sensor bytes. Warm
/// cast: slightly boosted red, slightly cut blue, chosen so the BT.601
/// luma recovers the rendered value exactly
/// (0.299*1.04 + 0.587*1.0 + 0.114*0.895 = 1.0).
fn quantize_rgb(img: &Image, bytes: &mut Vec<u8>) {
    bytes.clear();
    bytes.resize(img.as_slice().len() * 3, 0);
    for (rgb, &v) in bytes.chunks_exact_mut(3).zip(img.as_slice()) {
        let v = v.clamp(0.0, 1.0);
        rgb[0] = ((v * 1.04).min(1.0) * 255.0).round() as u8;
        rgb[1] = (v * 255.0).round() as u8;
        rgb[2] = (v * 0.895 * 255.0).round() as u8;
    }
}

/// Thermal camera model (PL-side BT.656 decode + scaling).
#[derive(Debug, Clone)]
pub struct ThermalCamera {
    scene: ScenePair,
    field_fps: f64,
    seq: u64,
    // Reusable capture-path scratch covering every stage of the pipe
    // (render, field resample, YUV pack, BT.656 stream, decode, luma), so
    // steady-state captures via `capture_into` do not allocate.
    scratch: RenderScratch,
    native: Image,
    field: Image,
    yuv: RawFrame,
    stream: Vec<u8>,
    decoded: RawFrame,
    gray: Frame,
    /// Prepared sensor-to-field resample (fixed geometry).
    up: BilinearPlan,
    /// Prepared field-to-output resample; `None` for zero output dims
    /// (reported as an error at capture time, as the scaler would).
    down: Option<BilinearPlan>,
}

impl ThermalCamera {
    /// Creates a thermal camera delivering `out_width` x `out_height`
    /// frames (after decode and scaling) at 60 fields/s.
    pub fn new(scene: ScenePair, out_width: usize, out_height: usize) -> Self {
        let (sw, sh) = THERMAL_SENSOR_DIMS;
        let (fw, fh) = THERMAL_FIELD_DIMS;
        ThermalCamera {
            scene,
            field_fps: 60.0,
            seq: 0,
            scratch: RenderScratch::default(),
            native: Image::zeros(0, 0),
            field: Image::zeros(0, 0),
            yuv: RawFrame::empty(),
            stream: Vec::new(),
            decoded: RawFrame::empty(),
            gray: Frame::new(Image::zeros(0, 0), 0),
            up: BilinearPlan::new(sw, sh, fw, fh).expect("non-empty field geometry"),
            down: BilinearPlan::new(fw, fh, out_width, out_height).ok(),
        }
    }

    /// Fields per second on the wire.
    pub fn field_rate(&self) -> f64 {
        self.field_fps
    }

    /// The raw BT.656 byte stream of the next field — what the FMC pins
    /// carry. Exposed so tests and examples can exercise the decoder
    /// directly.
    pub fn next_field_stream(&mut self) -> Vec<u8> {
        self.render_field_yuv();
        bt656::encode(&self.yuv)
    }

    /// Renders the next field into `self.yuv` (advancing the sequence
    /// counter): render at sensor dims → resample to field geometry →
    /// YUV 4:2:2 pack, all through scratch buffers.
    fn render_field_yuv(&mut self) {
        let t = self.seq as f64 / self.field_fps;
        self.seq += 1;
        let (sw, sh) = THERMAL_SENSOR_DIMS;
        self.scene
            .render_thermal_scratch(sw, sh, t, &mut self.scratch, &mut self.native);
        self.up
            .apply(&self.native, &mut self.field)
            .expect("planned sensor geometry");
        yuv422_from_gray_into(&self.field, &mut self.yuv);
    }

    /// Captures the next frame through the full path:
    /// render → field format → BT.656 encode → decode → luma → scale.
    ///
    /// # Errors
    ///
    /// Propagates BT.656 decode errors (which for this camera's own streams
    /// indicates a model bug) and scaler errors for zero output dimensions.
    pub fn capture(&mut self) -> Result<Frame, VideoError> {
        let mut out = Frame::new(Image::zeros(0, 0), 0);
        self.capture_into(&mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`ThermalCamera::capture`]: runs the same
    /// full capture path through internal scratch buffers and writes the
    /// result into `out` (reshaped, capacity reused).
    ///
    /// # Errors
    ///
    /// As [`ThermalCamera::capture`].
    pub fn capture_into(&mut self, out: &mut Frame) -> Result<(), VideoError> {
        let seq = self.seq;
        self.render_field_yuv();
        bt656::encode_into(&self.yuv, &mut self.stream);
        let (fw, fh) = THERMAL_FIELD_DIMS;
        bt656::decode_into(&self.stream, fw, fh, &mut self.decoded)?;
        self.decoded.to_gray_into(seq, &mut self.gray);
        self.down
            .as_ref()
            .ok_or(VideoError::EmptyImage)?
            .apply(self.gray.image(), out.image_mut())?;
        out.set_seq(seq);
        Ok(())
    }
}

/// Packs a grayscale image into YUV 4:2:2 bytes with neutral chroma,
/// clamping luma into the BT.656-legal `1..=254` range. Reuses `out`'s
/// byte storage.
fn yuv422_from_gray_into(img: &Image, out: &mut RawFrame) {
    let (w, h) = img.dims();
    let mut bytes = out.take_storage();
    if bytes.len() != w * h * 2 {
        // Neutral Cb/Cr bytes are invariant — prefill them once per
        // geometry; steady-state captures only rewrite the luma bytes.
        bytes.clear();
        bytes.resize(w * h * 2, 0x80);
    }
    for (pair, &v) in bytes.chunks_exact_mut(2).zip(img.as_slice()) {
        // Integer round-half-up: bit-identical to `.round() as u8` on the
        // clamped [0, 253] range (positive halves round away from zero
        // either way), but lowers to SSE2-vectorizable converts instead of
        // a scalar `roundf` call per pixel.
        let x = v.clamp(0.0, 1.0) * 253.0;
        let t = x as i32;
        pair[1] = (t + i32::from(x - t as f32 >= 0.5)) as u8 + 1;
    }
    out.assign(PixelFormat::Yuv422, w, h, bytes)
        .expect("geometry is consistent");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webcam_advances_sequence() {
        let mut cam = WebCamera::new(ScenePair::new(1), 32, 24);
        let f0 = cam.capture();
        let f1 = cam.capture();
        assert_eq!(f0.seq(), 0);
        assert_eq!(f1.seq(), 1);
        assert_eq!(f0.image().dims(), (32, 24));
    }

    #[test]
    fn thermal_capture_full_path() {
        let mut cam = ThermalCamera::new(ScenePair::new(2), 88, 72);
        let f = cam.capture().unwrap();
        assert_eq!(f.image().dims(), (88, 72));
        for &v in f.image().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn thermal_stream_is_valid_bt656() {
        let mut cam = ThermalCamera::new(ScenePair::new(3), 40, 30);
        let stream = cam.next_field_stream();
        let (fw, fh) = THERMAL_FIELD_DIMS;
        let raw = bt656::decode(&stream, fw, fh).unwrap();
        assert_eq!(raw.dims(), THERMAL_FIELD_DIMS);
        // Luma stays in the legal range.
        for chunk in raw.bytes().chunks_exact(2) {
            assert!(chunk[1] >= 1 && chunk[1] <= 254);
        }
    }

    #[test]
    fn cameras_view_the_same_scene() {
        // The warm body's thermal signature and the visible silhouette sit
        // at the same normalized location: cross-check via the scene.
        let scene = ScenePair::new(4);
        let (bx, by) = scene.body_center(0.0);
        let mut cam = ThermalCamera::new(scene, 96, 96);
        let f = cam.capture().unwrap();
        let px = (bx * 96.0) as usize;
        let py = (by * 96.0) as usize;
        let center = f.image().get(px.min(95), py.min(95));
        let corner = f.image().get(2, 2);
        assert!(center > corner + 0.2, "body {center} vs corner {corner}");
    }

    #[test]
    fn quantization_path_matches_scene_brightness() {
        let scene = ScenePair::new(5);
        let mut cam = WebCamera::new(scene.clone(), 64, 48);
        let f = cam.capture();
        let direct = scene.render_visible(64, 48, 0.0);
        // Per-channel 8-bit quantization bounds the luma error at half an
        // LSB, plus the red-channel headroom clamp for near-white pixels.
        assert!(f.image().max_abs_diff(&direct) <= 0.5 / 255.0 + 0.299 * 0.04 + 1e-6);
    }
}

//! Frame FIFOs with ready/valid back-pressure.
//!
//! The paper's capture path stores each decoded thermal frame in an output
//! FIFO, and "a new frame will be stored in the output FIFO only after the
//! previous frame is taken by the wave engine hardware" — i.e. a depth-1
//! gate that drops frames while the consumer is busy. [`FrameGate`] models
//! exactly that; [`Fifo`] is the generic bounded queue used elsewhere in
//! the pipeline.

use crate::VideoError;
use std::collections::VecDeque;

/// A bounded FIFO with drop accounting.
///
/// # Examples
///
/// ```
/// use wavefuse_video::fifo::Fifo;
///
/// let mut q: Fifo<u32> = Fifo::new(2);
/// q.try_push(1)?;
/// q.try_push(2)?;
/// assert!(q.try_push(3).is_err()); // back-pressure
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.dropped(), 1);
/// # Ok::<(), wavefuse_video::VideoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            dropped: 0,
        }
    }

    /// Attempts to enqueue an item.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::FifoFull`] (and counts the drop) when full —
    /// the producer's frame is lost, as in real capture hardware.
    pub fn try_push(&mut self, item: T) -> Result<(), VideoError> {
        if self.queue.len() == self.capacity {
            self.dropped += 1;
            return Err(VideoError::FifoFull);
        }
        self.queue.push_back(item);
        self.pushed += 1;
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is at capacity (producer must stall or drop).
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Items accepted so far.
    pub fn accepted(&self) -> u64 {
        self.pushed
    }

    /// Items dropped due to back-pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The paper's depth-1 frame gate between decoder and wavelet engine.
#[derive(Debug, Clone)]
pub struct FrameGate<T> {
    slot: Option<T>,
    offered: u64,
    dropped: u64,
}

impl<T> FrameGate<T> {
    /// Creates an empty gate.
    pub fn new() -> Self {
        FrameGate {
            slot: None,
            offered: 0,
            dropped: 0,
        }
    }

    /// Offers a new frame. It is stored only if the previous one has been
    /// taken; otherwise it is dropped and `false` is returned.
    pub fn offer(&mut self, frame: T) -> bool {
        self.offer_reclaiming(frame).is_none()
    }

    /// Like [`FrameGate::offer`], but hands a rejected frame back to the
    /// caller instead of discarding it, so pooled pipelines can recycle its
    /// buffer. Returns `None` when the frame was stored (accepted) and
    /// `Some(frame)` when the gate was occupied (the drop is still counted).
    pub fn offer_reclaiming(&mut self, frame: T) -> Option<T> {
        self.offered += 1;
        if self.slot.is_some() {
            self.dropped += 1;
            Some(frame)
        } else {
            self.slot = Some(frame);
            None
        }
    }

    /// Takes the stored frame, freeing the gate for the next one.
    pub fn take(&mut self) -> Option<T> {
        self.slot.take()
    }

    /// Whether a frame is waiting.
    pub fn is_occupied(&self) -> bool {
        self.slot.is_some()
    }

    /// Frames offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Frames dropped because the consumer had not taken the previous one.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T> Default for FrameGate<T> {
    fn default() -> Self {
        FrameGate::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut q = Fifo::new(3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.try_push(9).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.accepted(), 4);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn fifo_counts_drops() {
        let mut q = Fifo::new(1);
        q.try_push('a').unwrap();
        assert_eq!(q.try_push('b'), Err(VideoError::FifoFull));
        assert_eq!(q.try_push('c'), Err(VideoError::FifoFull));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn gate_admits_only_when_empty() {
        let mut g = FrameGate::new();
        assert!(g.offer(1));
        assert!(!g.offer(2)); // consumer busy: dropped, like the paper's FIFO
        assert!(g.is_occupied());
        assert_eq!(g.take(), Some(1));
        assert!(!g.is_occupied());
        assert!(g.offer(3));
        assert_eq!(g.take(), Some(3));
        assert_eq!(g.offered(), 3);
        assert_eq!(g.dropped(), 1);
    }

    #[test]
    fn gate_take_when_empty_is_none() {
        let mut g: FrameGate<u8> = FrameGate::default();
        assert_eq!(g.take(), None);
    }

    #[test]
    fn slow_consumer_sees_latest_admitted_cadence() {
        // Producer at 60 Hz, consumer at 20 Hz: two of every three frames
        // drop, and the consumer always gets the earliest admitted one.
        let mut g = FrameGate::new();
        let mut taken = Vec::new();
        for t in 0..12 {
            g.offer(t);
            if t % 3 == 2 {
                taken.push(g.take().unwrap());
            }
        }
        assert_eq!(taken, vec![0, 3, 6, 9]);
        assert_eq!(g.dropped(), 8);
    }
}

//! Multi-sensor frame registration by phase correlation.
//!
//! The paper's prototype bolts the two cameras together and relies on
//! mechanical alignment ("a web camera and a thermal camera were placed
//! together to capture the same scene"); any production fusion system needs
//! to *measure* the residual misalignment. This module estimates the
//! translation between two frames with the classic phase-correlation
//! method: the normalized cross-power spectrum of two shifted images is a
//! pure phase ramp whose inverse FFT is a delta at the shift.
//!
//! Shifts are treated circularly and reported in `(-n/2, n/2]` per axis, so
//! up to half the frame in either direction is recoverable.

use crate::VideoError;
use wavefuse_dtcwt::analysis::circular_shift;
use wavefuse_dtcwt::Image;
use wavefuse_numerics::complex::Complex64;
use wavefuse_numerics::fft::{fft, Direction};

/// A translation estimate between two frames, in pixels (positive = the
/// moving frame is shifted right/down relative to the reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Translation {
    /// Horizontal shift.
    pub dx: isize,
    /// Vertical shift.
    pub dy: isize,
    /// Peak response of the correlation surface in `[0, 1]`-ish units; low
    /// values mean the estimate is unreliable (e.g. unrelated content).
    pub confidence: f64,
}

/// 2-D FFT over a row-major complex buffer (rows then columns).
fn fft2d(data: &mut [Complex64], w: usize, h: usize, dir: Direction) -> Result<(), VideoError> {
    let mut row = vec![Complex64::ZERO; w];
    for y in 0..h {
        row.copy_from_slice(&data[y * w..(y + 1) * w]);
        fft(&mut row, dir).map_err(|_| VideoError::EmptyImage)?;
        data[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    let mut col = vec![Complex64::ZERO; h];
    for x in 0..w {
        for y in 0..h {
            col[y] = data[y * w + x];
        }
        fft(&mut col, dir).map_err(|_| VideoError::EmptyImage)?;
        for y in 0..h {
            data[y * w + x] = col[y];
        }
    }
    Ok(())
}

/// Estimates the circular translation taking `reference` onto `moving`.
///
/// # Errors
///
/// Returns [`VideoError::EmptyImage`] for zero-sized inputs and
/// [`VideoError::BadFrameLength`] if the two frames differ in size.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::analysis::circular_shift;
/// use wavefuse_dtcwt::Image;
/// use wavefuse_video::register::phase_correlate;
///
/// let a = Image::from_fn(64, 64, |x, y| ((x * 3 + y * 7) % 23) as f32);
/// let b = circular_shift(&a, 5, -3);
/// let t = phase_correlate(&a, &b)?;
/// assert_eq!((t.dx, t.dy), (5, -3));
/// # Ok::<(), wavefuse_video::VideoError>(())
/// ```
pub fn phase_correlate(reference: &Image, moving: &Image) -> Result<Translation, VideoError> {
    let (w, h) = reference.dims();
    if w == 0 || h == 0 {
        return Err(VideoError::EmptyImage);
    }
    if moving.dims() != (w, h) {
        return Err(VideoError::BadFrameLength {
            expected: w * h,
            actual: moving.len(),
        });
    }

    // Remove the DC component so flat regions do not dominate.
    let mean = |img: &Image| -> f64 {
        img.as_slice().iter().map(|&v| v as f64).sum::<f64>() / img.len() as f64
    };
    let (ma, mb) = (mean(reference), mean(moving));
    let mut fa: Vec<Complex64> = reference
        .as_slice()
        .iter()
        .map(|&v| Complex64::from_real(v as f64 - ma))
        .collect();
    let mut fb: Vec<Complex64> = moving
        .as_slice()
        .iter()
        .map(|&v| Complex64::from_real(v as f64 - mb))
        .collect();
    fft2d(&mut fa, w, h, Direction::Forward)?;
    fft2d(&mut fb, w, h, Direction::Forward)?;

    // Normalized cross-power spectrum.
    let mut cross: Vec<Complex64> = fa
        .iter()
        .zip(&fb)
        .map(|(&a, &b)| {
            let c = b * a.conj();
            let mag = c.abs();
            if mag > 1e-12 {
                c / mag
            } else {
                Complex64::ZERO
            }
        })
        .collect();
    fft2d(&mut cross, w, h, Direction::Inverse)?;

    // Peak location = shift (modulo frame size).
    let mut best = (0usize, 0usize);
    let mut best_v = f64::MIN;
    let mut total = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let v = cross[y * w + x].re;
            total += v.abs();
            if v > best_v {
                best_v = v;
                best = (x, y);
            }
        }
    }
    let wrap = |v: usize, n: usize| -> isize {
        if v > n / 2 {
            v as isize - n as isize
        } else {
            v as isize
        }
    };
    Ok(Translation {
        dx: wrap(best.0, w),
        dy: wrap(best.1, h),
        confidence: if total > 0.0 {
            (best_v / total).clamp(0.0, 1.0)
        } else {
            0.0
        },
    })
}

/// Registers `moving` onto `reference`: estimates the translation and
/// returns the aligned frame together with the estimate.
///
/// # Errors
///
/// See [`phase_correlate`].
pub fn align_to(reference: &Image, moving: &Image) -> Result<(Image, Translation), VideoError> {
    let t = phase_correlate(reference, moving)?;
    Ok((circular_shift(moving, -t.dx, -t.dy), t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::ScenePair;

    fn textured(n: usize) -> Image {
        Image::from_fn(n, n, |x, y| {
            ((x as f32 * 0.37).sin() * (y as f32 * 0.21).cos()) * 0.4
                + ((x / 5 + y / 7) % 3) as f32 * 0.2
        })
    }

    #[test]
    fn recovers_known_shifts() {
        let a = textured(64);
        for (dx, dy) in [(0, 0), (3, 0), (0, -4), (7, 5), (-10, 12), (31, -31)] {
            let b = wavefuse_dtcwt::analysis::circular_shift(&a, dx, dy);
            let t = phase_correlate(&a, &b).unwrap();
            assert_eq!((t.dx, t.dy), (dx, dy), "shift ({dx},{dy})");
            assert!(t.confidence > 0.05, "confidence {}", t.confidence);
        }
    }

    #[test]
    fn works_on_non_power_of_two_frames() {
        let a = Image::from_fn(88, 72, |x, y| ((x * 13 + y * 5) % 29) as f32 * 0.1);
        let b = wavefuse_dtcwt::analysis::circular_shift(&a, -6, 9);
        let t = phase_correlate(&a, &b).unwrap();
        assert_eq!((t.dx, t.dy), (-6, 9));
    }

    #[test]
    fn align_to_undoes_the_shift() {
        let a = textured(48);
        let b = wavefuse_dtcwt::analysis::circular_shift(&a, 4, -7);
        let (aligned, t) = align_to(&a, &b).unwrap();
        assert_eq!((t.dx, t.dy), (4, -7));
        assert!(aligned.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn robust_to_sensor_noise() {
        let scene = ScenePair::new(6);
        let clean = scene.render_visible(64, 64, 0.0);
        // The scene generator adds its own per-pixel noise; shift a second
        // noisy render (different time, nearly same content).
        let shifted = wavefuse_dtcwt::analysis::circular_shift(&clean, 5, 2);
        let t = phase_correlate(&clean, &shifted).unwrap();
        assert_eq!((t.dx, t.dy), (5, 2));
    }

    #[test]
    fn unrelated_content_reports_low_confidence() {
        let a = textured(64);
        let b = Image::from_fn(64, 64, |x, y| {
            let v = (x as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u32).wrapping_mul(97));
            (v % 211) as f32 / 210.0
        });
        let related = phase_correlate(&a, &wavefuse_dtcwt::analysis::circular_shift(&a, 3, 3))
            .unwrap()
            .confidence;
        let unrelated = phase_correlate(&a, &b).unwrap().confidence;
        assert!(
            related > 3.0 * unrelated,
            "related {related} vs unrelated {unrelated}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Image::zeros(0, 0);
        assert!(phase_correlate(&a, &a).is_err());
        let b = Image::zeros(4, 4);
        let c = Image::zeros(5, 4);
        assert!(phase_correlate(&b, &c).is_err());
    }

    #[test]
    fn cross_modal_registration_on_shared_structure() {
        // Visible and thermal views share the body/occluder geometry; phase
        // correlation across modalities is noisier but the gradient-rich
        // shared structure still pins a moderate shift.
        let scene = ScenePair::new(8);
        let vis = scene.render_visible(96, 96, 0.0);
        let ir = scene.render_thermal(96, 96, 0.0);
        let ir_shifted = wavefuse_dtcwt::analysis::circular_shift(&ir, 4, 0);
        // Estimate the *relative* shift between the two thermal frames via
        // the visible reference chain: (vis -> ir) and (vis -> ir_shifted)
        // differ by exactly the applied shift.
        let t0 = phase_correlate(&vis, &ir).unwrap();
        let t1 = phase_correlate(&vis, &ir_shifted).unwrap();
        assert_eq!((t1.dx - t0.dx, t1.dy - t0.dy), (4, 0));
    }
}

//! Video capture substrate: frames, the BT.656 decoder path, scaling,
//! FIFOs, and synthetic dual-sensor sources.
//!
//! The paper's system (Fig. 7) captures a visible stream from a USB webcam
//! (decoded on the PS) and a thermal stream from a Thermoteknix MicroCAM
//! over an FMC connector, decoded by a custom ITU-R BT.656 decoder on the
//! PL, scaled from its 720x243 field format to 640x480, and gated through
//! an output FIFO so a new frame is only accepted once the wavelet engine
//! has taken the previous one. Physical cameras are not available to this
//! reproduction, so [`scene::ScenePair`] renders a parametric scene to both
//! modalities (visible texture vs. thermal emission) and the camera models
//! in [`camera`] stream it through the *same* decode → scale → FIFO path.
//!
//! # Examples
//!
//! ```
//! use wavefuse_video::camera::{ThermalCamera, WebCamera};
//! use wavefuse_video::scene::ScenePair;
//!
//! let scene = ScenePair::new(7);
//! let mut web = WebCamera::new(scene.clone(), 160, 120);
//! let mut thermal = ThermalCamera::new(scene, 80, 60);
//! let visible = web.capture();          // PS-side USB decode
//! let ir = thermal.capture()?;          // PL-side BT.656 decode + scale
//! assert_eq!(visible.image().dims(), (160, 120));
//! assert_eq!(ir.image().dims(), (80, 60));
//! # Ok::<(), wavefuse_video::VideoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bt656;
pub mod camera;
pub mod fifo;
pub mod frame;
pub mod pgm;
pub mod register;
pub mod scaler;
pub mod scene;

mod error;

pub use error::VideoError;
pub use frame::{Frame, PixelFormat, RawFrame};

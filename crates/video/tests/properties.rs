//! Property-based tests for the capture substrate.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_dtcwt::Image;
use wavefuse_video::bt656;
use wavefuse_video::fifo::{Fifo, FrameGate};
use wavefuse_video::scaler::resize_bilinear;
use wavefuse_video::{PixelFormat, RawFrame};

fn arb_yuv_frame() -> impl Strategy<Value = RawFrame> {
    (1usize..=48, 1usize..=16).prop_flat_map(|(w, h)| {
        proptest::collection::vec(1u8..=254, w * h * 2)
            .prop_map(move |bytes| RawFrame::new(PixelFormat::Yuv422, w, h, bytes).expect("sized"))
    })
}

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..=64, 1usize..=48).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..1.0, w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bt656_round_trips_any_frame(frame in arb_yuv_frame()) {
        let (w, h) = frame.dims();
        let stream = bt656::encode(&frame);
        let back = bt656::decode(&stream, w, h).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn bt656_decode_rejects_flipped_bits(
        frame in arb_yuv_frame(),
        flip_at in proptest::num::usize::ANY,
    ) {
        // Flipping one byte of a sync word must not silently corrupt the
        // frame: the decoder errors, or (if the flip landed in payload or
        // blanking) decodes to something of the right shape.
        let (w, h) = frame.dims();
        let mut stream = bt656::encode(&frame);
        let idx = flip_at % stream.len();
        stream[idx] ^= 0x55;
        match bt656::decode(&stream, w, h) {
            Ok(decoded) => prop_assert_eq!(decoded.dims(), (w, h)),
            Err(_) => {} // detected corruption is the desired outcome
        }
    }

    #[test]
    fn scaler_output_within_input_range(img in arb_image(), dw in 1usize..96, dh in 1usize..64) {
        let out = resize_bilinear(&img, dw, dh).unwrap();
        prop_assert_eq!(out.dims(), (dw, dh));
        let (lo, hi) = img
            .as_slice()
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for &v in out.as_slice() {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn scaler_preserves_constants(c in 0.0f32..1.0, w in 1usize..32, h in 1usize..32) {
        let img = Image::filled(w, h, c);
        let out = resize_bilinear(&img, 2 * w + 1, h.max(3)).unwrap();
        for &v in out.as_slice() {
            prop_assert!((v - c).abs() < 1e-5);
        }
    }

    #[test]
    fn fifo_preserves_order_and_counts(ops in proptest::collection::vec(0u8..=1, 1..80)) {
        let mut q: Fifo<u32> = Fifo::new(4);
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut counter = 0u32;
        let mut drops = 0u64;
        for op in ops {
            if op == 0 {
                counter += 1;
                if model.len() == 4 {
                    prop_assert!(q.try_push(counter).is_err());
                    drops += 1;
                } else {
                    q.try_push(counter).unwrap();
                    model.push_back(counter);
                }
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(q.dropped(), drops);
    }

    #[test]
    fn gate_never_reorders(offers in proptest::collection::vec(proptest::bool::ANY, 1..60)) {
        // take() after each offer subsequence yields offers in order.
        let mut gate = FrameGate::new();
        let mut next = 0u32;
        let mut last_taken: Option<u32> = None;
        for take_now in offers {
            gate.offer(next);
            next += 1;
            if take_now {
                if let Some(v) = gate.take() {
                    if let Some(prev) = last_taken {
                        prop_assert!(v > prev, "gate reordered: {v} after {prev}");
                    }
                    last_taken = Some(v);
                }
            }
        }
    }
}

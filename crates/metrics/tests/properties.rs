//! Property-based tests for the quality metrics.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_dtcwt::Image;
use wavefuse_metrics::{
    entropy, mutual_information, petrovic_qabf, psnr, spatial_frequency, ssim, temporal_instability,
};

fn arb_image(min_edge: usize, max_edge: usize) -> impl Strategy<Value = Image> {
    (min_edge..=max_edge, min_edge..=max_edge).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..1.0, w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn entropy_is_permutation_invariant(img in arb_image(4, 24)) {
        let mut data = img.as_slice().to_vec();
        data.reverse();
        let permuted = Image::from_vec(img.width(), img.height(), data).unwrap();
        prop_assert!((entropy(&img) - entropy(&permuted)).abs() < 1e-12);
        prop_assert!(entropy(&img) >= 0.0 && entropy(&img) <= 8.0);
    }

    #[test]
    fn mutual_information_is_symmetric_and_bounded(
        a in arb_image(8, 24),
    ) {
        let b = Image::from_fn(a.width(), a.height(), |x, y| {
            (a.get(x, y) * 0.7 + ((x + y) % 5) as f32 * 0.06).clamp(0.0, 1.0)
        });
        let ab = mutual_information(&a, &b);
        let ba = mutual_information(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "MI must be symmetric: {ab} vs {ba}");
        prop_assert!(ab >= -1e-12);
        // Self-information dominates any cross-information.
        prop_assert!(mutual_information(&a, &a) + 1e-9 >= ab);
    }

    #[test]
    fn psnr_decreases_with_noise_amplitude(img in arb_image(8, 20)) {
        let perturb = |amp: f32| {
            Image::from_fn(img.width(), img.height(), |x, y| {
                img.get(x, y) + amp * if (x + y) % 2 == 0 { 1.0 } else { -1.0 }
            })
        };
        let p_small = psnr(&img, &perturb(0.01));
        let p_large = psnr(&img, &perturb(0.05));
        prop_assert!(p_small > p_large);
        prop_assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn ssim_is_symmetric_and_maximal_on_identity(a in arb_image(8, 20)) {
        let b = Image::from_fn(a.width(), a.height(), |x, y| {
            (a.get(x, y) * 0.9 + 0.05).clamp(0.0, 1.0)
        });
        let ab = ssim(&a, &b);
        let ba = ssim(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ssim(&a, &a) > ab - 1e-9);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&ab));
    }

    #[test]
    fn qabf_is_bounded(a in arb_image(8, 20)) {
        let b = Image::from_fn(a.width(), a.height(), |x, y| {
            ((x * 3 + y) % 7) as f32 / 6.0
        });
        let fused = Image::from_fn(a.width(), a.height(), |x, y| {
            0.5 * (a.get(x, y) + b.get(x, y))
        });
        let q = petrovic_qabf(&a, &b, &fused);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&q), "Q^AB/F {q}");
    }

    #[test]
    fn spatial_frequency_scales_with_contrast(img in arb_image(8, 20), k in 0.1f32..3.0) {
        let scaled = Image::from_fn(img.width(), img.height(), |x, y| img.get(x, y) * k);
        let base = spatial_frequency(&img);
        let s = spatial_frequency(&scaled);
        prop_assert!((s - base * k as f64).abs() < 1e-3 * (1.0 + s));
    }

    #[test]
    fn temporal_instability_is_shift_free_for_static_video(img in arb_image(4, 16)) {
        let frames = vec![img.clone(), img.clone(), img];
        prop_assert_eq!(temporal_instability(&frames), 0.0);
    }
}

//! Fusion-quality and image-quality metrics.
//!
//! The paper motivates the DT-CWT by its fusion quality ("better signal to
//! noise ratios and improved perception with no blocking artefacts", §I);
//! this crate provides the standard metrics the image-fusion literature
//! (and the paper's references \[9\], \[12\]) uses to substantiate such claims:
//!
//! * [`entropy`] — information content of the fused image;
//! * [`spatial_frequency`] — overall activity/sharpness;
//! * [`mutual_information`] — how much source information the fused image
//!   retains (the MI-based fusion metric);
//! * [`petrovic_qabf`] — the Xydeas–Petrović edge-preservation metric
//!   `Q^{AB/F}`;
//! * [`psnr`] and [`ssim`] — reference-based fidelity metrics used to
//!   validate the transform paths themselves.
//!
//! # Examples
//!
//! ```
//! use wavefuse_dtcwt::Image;
//! use wavefuse_metrics::{entropy, psnr};
//!
//! let img = Image::from_fn(32, 32, |x, y| ((x * y) % 16) as f32 / 15.0);
//! assert!(entropy(&img) > 2.0); // textured image carries information
//! assert_eq!(psnr(&img, &img), f64::INFINITY);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wavefuse_dtcwt::Image;
use wavefuse_numerics::stats::Histogram;

/// Number of gray levels assumed by the histogram-based metrics.
pub const GRAY_LEVELS: usize = 256;

/// Shannon entropy of the gray-level distribution, in bits (0–8 for 256
/// levels). Pixel values are clamped to `[0, 1]`.
pub fn entropy(img: &Image) -> f64 {
    let mut h = Histogram::new(0.0, 1.0, GRAY_LEVELS);
    for &v in img.as_slice() {
        h.add(v.clamp(0.0, 1.0) as f64);
    }
    h.entropy_bits()
}

/// Spatial frequency: RMS of horizontal and vertical first differences, a
/// standard activity measure for fused images.
pub fn spatial_frequency(img: &Image) -> f64 {
    let (w, h) = img.dims();
    if w < 2 || h < 2 {
        return 0.0;
    }
    let mut row_acc = 0.0f64;
    let mut col_acc = 0.0f64;
    for y in 0..h {
        for x in 1..w {
            let d = (img.get(x, y) - img.get(x - 1, y)) as f64;
            row_acc += d * d;
        }
    }
    for y in 1..h {
        for x in 0..w {
            let d = (img.get(x, y) - img.get(x, y - 1)) as f64;
            col_acc += d * d;
        }
    }
    let n = (w * h) as f64;
    (row_acc / n + col_acc / n).sqrt()
}

/// Mutual information `I(A; F)` between a source image and the fused image,
/// in bits, from a 64x64-bin joint histogram. Inputs are clamped to
/// `[0, 1]` and must share dimensions.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn mutual_information(a: &Image, f: &Image) -> f64 {
    assert_eq!(a.dims(), f.dims(), "images must share dimensions");
    const BINS: usize = 64;
    let mut joint = vec![0u64; BINS * BINS];
    let bin = |v: f32| -> usize { ((v.clamp(0.0, 1.0) * BINS as f32) as usize).min(BINS - 1) };
    for (&va, &vf) in a.as_slice().iter().zip(f.as_slice()) {
        joint[bin(va) * BINS + bin(vf)] += 1;
    }
    let total = a.len() as f64;
    let mut pa = [0.0f64; BINS];
    let mut pf = [0.0f64; BINS];
    for i in 0..BINS {
        for j in 0..BINS {
            let p = joint[i * BINS + j] as f64 / total;
            pa[i] += p;
            pf[j] += p;
        }
    }
    let mut mi = 0.0;
    for i in 0..BINS {
        for j in 0..BINS {
            let p = joint[i * BINS + j] as f64 / total;
            if p > 0.0 && pa[i] > 0.0 && pf[j] > 0.0 {
                mi += p * (p / (pa[i] * pf[j])).log2();
            }
        }
    }
    mi
}

/// The fusion MI metric `M^{AB}_F = I(A;F) + I(B;F)`.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn fusion_mutual_information(a: &Image, b: &Image, fused: &Image) -> f64 {
    mutual_information(a, fused) + mutual_information(b, fused)
}

/// Sobel gradient magnitude and orientation at every interior pixel.
fn sobel(img: &Image) -> (Image, Image) {
    let (w, h) = img.dims();
    let mut mag = Image::zeros(w, h);
    let mut ang = Image::zeros(w, h);
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let p = |dx: isize, dy: isize| {
                img.get((x as isize + dx) as usize, (y as isize + dy) as usize)
            };
            let gx = (p(1, -1) + 2.0 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1));
            let gy = (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1));
            mag.set(x, y, gx.hypot(gy));
            ang.set(x, y, gy.atan2(gx));
        }
    }
    (mag, ang)
}

/// The Xydeas–Petrović edge-preservation fusion metric `Q^{AB/F}` in
/// `[0, 1]`: how faithfully the fused image preserves the edge strength and
/// orientation information of the two sources, weighted by source edge
/// strength. Higher is better.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn petrovic_qabf(a: &Image, b: &Image, fused: &Image) -> f64 {
    assert_eq!(a.dims(), b.dims(), "sources must share dimensions");
    assert_eq!(a.dims(), fused.dims(), "fused must match sources");
    let (ga, aa) = sobel(a);
    let (gb, ab) = sobel(b);
    let (gf, af) = sobel(fused);

    // Standard constants from Xydeas & Petrović (2000).
    const GAMMA_G: f64 = 0.9994;
    const KAPPA_G: f64 = -15.0;
    const SIGMA_G: f64 = 0.5;
    const GAMMA_A: f64 = 0.9879;
    const KAPPA_A: f64 = -22.0;
    const SIGMA_A: f64 = 0.8;
    const L: f64 = 1.0;

    let q_edge = |gs: f32, as_: f32, gfv: f32, afv: f32| -> f64 {
        if gs == 0.0 && gfv == 0.0 {
            return 1.0;
        }
        let g = if gs > gfv {
            (gfv / gs) as f64
        } else if gfv > 0.0 {
            (gs / gfv) as f64
        } else {
            0.0
        };
        let dalpha = 1.0 - ((as_ - afv).abs() as f64) / std::f64::consts::PI;
        let qg = GAMMA_G / (1.0 + (KAPPA_G * (g - SIGMA_G)).exp());
        let qa = GAMMA_A / (1.0 + (KAPPA_A * (dalpha - SIGMA_A)).exp());
        qg * qa
    };

    let (w, h) = a.dims();
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let (gav, gbv) = (ga.get(x, y), gb.get(x, y));
            let qaf = q_edge(gav, aa.get(x, y), gf.get(x, y), af.get(x, y));
            let qbf = q_edge(gbv, ab.get(x, y), gf.get(x, y), af.get(x, y));
            let wa = (gav as f64).powf(L);
            let wb = (gbv as f64).powf(L);
            num += qaf * wa + qbf * wb;
            den += wa + wb;
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Peak signal-to-noise ratio in dB between a reference and a test image,
/// with peak value 1.0. Identical images give `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn psnr(reference: &Image, test: &Image) -> f64 {
    assert_eq!(
        reference.dims(),
        test.dims(),
        "images must share dimensions"
    );
    let mse: f64 = reference
        .as_slice()
        .iter()
        .zip(test.as_slice())
        .map(|(a, b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / mse).log10()
    }
}

/// Mean structural similarity (SSIM) over 8x8 windows with the standard
/// constants (`K1 = 0.01`, `K2 = 0.03`, dynamic range 1.0). Returns a value
/// in `[-1, 1]`; 1 means identical structure.
///
/// # Panics
///
/// Panics if the images differ in size or are smaller than 8x8.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.dims(), b.dims(), "images must share dimensions");
    let (w, h) = a.dims();
    const WIN: usize = 8;
    assert!(w >= WIN && h >= WIN, "images must be at least 8x8");
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;

    let mut acc = 0.0f64;
    let mut windows = 0u64;
    let mut y = 0;
    while y + WIN <= h {
        let mut x = 0;
        while x + WIN <= w {
            let mut sa = 0.0f64;
            let mut sb = 0.0f64;
            let mut saa = 0.0f64;
            let mut sbb = 0.0f64;
            let mut sab = 0.0f64;
            for dy in 0..WIN {
                for dx in 0..WIN {
                    let va = a.get(x + dx, y + dy) as f64;
                    let vb = b.get(x + dx, y + dy) as f64;
                    sa += va;
                    sb += vb;
                    saa += va * va;
                    sbb += vb * vb;
                    sab += va * vb;
                }
            }
            let n = (WIN * WIN) as f64;
            let ma = sa / n;
            let mb = sb / n;
            let va = saa / n - ma * ma;
            let vb = sbb / n - mb * mb;
            let cov = sab / n - ma * mb;
            acc += ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            windows += 1;
            x += WIN;
        }
        y += WIN;
    }
    acc / windows as f64
}

/// Temporal instability of a video: the mean squared frame-to-frame
/// difference, averaged over the sequence. For fused video this measures
/// *flicker* — selection rules on shift-variant transforms flip
/// coefficients between frames even under smooth motion, which this
/// statistic exposes (lower is better).
///
/// Returns 0 for sequences shorter than two frames.
///
/// # Panics
///
/// Panics if frames differ in size.
pub fn temporal_instability(frames: &[Image]) -> f64 {
    if frames.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for pair in frames.windows(2) {
        assert_eq!(
            pair[0].dims(),
            pair[1].dims(),
            "frames must share dimensions"
        );
        let mse: f64 = pair[0]
            .as_slice()
            .iter()
            .zip(pair[1].as_slice())
            .map(|(a, b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            / pair[0].len() as f64;
        acc += mse;
    }
    acc / (frames.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize, seed: u32) -> Image {
        Image::from_fn(w, h, |x, y| {
            let v = (x as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            (v % 251) as f32 / 250.0
        })
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&Image::filled(16, 16, 0.5)), 0.0);
        let e = entropy(&textured(64, 64, 1));
        assert!(e > 6.0 && e <= 8.0, "entropy {e}");
    }

    #[test]
    fn spatial_frequency_orders_sharpness() {
        let flat = Image::filled(32, 32, 0.5);
        let smooth = Image::from_fn(32, 32, |x, _| x as f32 / 64.0);
        let busy = textured(32, 32, 2);
        assert_eq!(spatial_frequency(&flat), 0.0);
        assert!(spatial_frequency(&smooth) < spatial_frequency(&busy));
        assert_eq!(spatial_frequency(&Image::filled(1, 1, 0.0)), 0.0);
    }

    #[test]
    fn mutual_information_properties() {
        let a = textured(64, 64, 3);
        // A structurally unrelated texture (different mixing function), not
        // just a shifted copy of `a`.
        let b = Image::from_fn(64, 64, |x, y| {
            let v = (x as u32)
                .wrapping_mul(97)
                .wrapping_mul((y as u32).wrapping_add(13))
                .wrapping_add(0xdead_beef);
            ((v >> 3) % 239) as f32 / 238.0
        });
        // Self-information is large; unrelated images share little.
        let self_mi = mutual_information(&a, &a);
        let cross_mi = mutual_information(&a, &b);
        assert!(self_mi > 4.0, "self MI {self_mi}");
        assert!(cross_mi < 0.5 * self_mi, "cross MI {cross_mi}");
        assert!(cross_mi >= 0.0);
    }

    #[test]
    fn fusion_mi_sums_sources() {
        let a = textured(32, 32, 1);
        let b = textured(32, 32, 2);
        let f = a.clone();
        let m = fusion_mutual_information(&a, &b, &f);
        assert!((m - mutual_information(&a, &f) - mutual_information(&b, &f)).abs() < 1e-12);
    }

    #[test]
    fn qabf_perfect_when_fused_equals_sources() {
        // If both sources are identical and the fused image equals them,
        // every edge is perfectly preserved.
        let a = Image::from_fn(32, 32, |x, y| ((x / 4 + y / 4) % 2) as f32);
        let q = petrovic_qabf(&a, &a, &a);
        assert!(q > 0.95, "Q^AB/F = {q}");
    }

    #[test]
    fn qabf_penalizes_lost_edges() {
        let a = Image::from_fn(32, 32, |x, _| ((x / 4) % 2) as f32);
        let b = Image::from_fn(32, 32, |_, y| ((y / 4) % 2) as f32);
        let fused_good = Image::from_fn(32, 32, |x, y| {
            (((x / 4) % 2) as f32 + ((y / 4) % 2) as f32) * 0.5
        });
        let fused_bad = Image::filled(32, 32, 0.5);
        let qg = petrovic_qabf(&a, &b, &fused_good);
        let qb = petrovic_qabf(&a, &b, &fused_bad);
        assert!(qg > qb + 0.2, "good {qg} vs bad {qb}");
    }

    #[test]
    fn psnr_basics() {
        let a = textured(32, 32, 7);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let mut noisy = a.clone();
        for v in noisy.as_mut_slice().iter_mut() {
            *v += 0.01;
        }
        let p = psnr(&a, &noisy);
        assert!(
            (p - 40.0).abs() < 0.1,
            "uniform 0.01 error -> 40 dB, got {p}"
        );
    }

    #[test]
    fn ssim_basics() {
        let a = textured(32, 32, 11);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
        let b = textured(32, 32, 555);
        assert!(ssim(&a, &b) < 0.5);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn dimension_mismatch_panics() {
        let _ = psnr(&Image::zeros(4, 4), &Image::zeros(5, 4));
    }

    #[test]
    fn temporal_instability_basics() {
        let a = Image::filled(4, 4, 0.5);
        assert_eq!(temporal_instability(std::slice::from_ref(&a)), 0.0);
        assert_eq!(
            temporal_instability(&[a.clone(), a.clone(), a.clone()]),
            0.0
        );
        let b = Image::filled(4, 4, 0.6);
        let inst = temporal_instability(&[a.clone(), b, a]);
        // Two transitions of uniform 0.1 difference: MSE 0.01 each.
        assert!((inst - 0.01).abs() < 1e-6, "{inst}");
        // Faster change, more instability.
        let c = Image::filled(4, 4, 0.9);
        let fast = temporal_instability(&[Image::filled(4, 4, 0.5), c]);
        assert!(fast > inst);
    }
}

//! Property-based tests for the SIMD engine.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_simd::F32x4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lane_ops_match_scalar(
        a in proptest::array::uniform4(-1e6f32..1e6),
        b in proptest::array::uniform4(-1e6f32..1e6),
    ) {
        let va = F32x4::new(a);
        let vb = F32x4::new(b);
        for i in 0..4 {
            prop_assert_eq!((va + vb).lanes()[i], a[i] + b[i]);
            prop_assert_eq!((va - vb).lanes()[i], a[i] - b[i]);
            prop_assert_eq!((va * vb).lanes()[i], a[i] * b[i]);
        }
    }

    #[test]
    fn mul_add_is_unfused(
        acc in proptest::array::uniform4(-1e3f32..1e3),
        a in proptest::array::uniform4(-1e3f32..1e3),
        b in proptest::array::uniform4(-1e3f32..1e3),
    ) {
        // The model promises separate multiply-then-add rounding (the
        // Cortex-A9 NEON has no fused MAC for this pattern), bit for bit.
        let r = F32x4::new(acc).mul_add(F32x4::new(a), F32x4::new(b));
        for i in 0..4 {
            let expect = acc[i] + a[i] * b[i];
            prop_assert_eq!(r.lanes()[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn horizontal_sum_is_the_documented_tree(
        a in proptest::array::uniform4(-1e6f32..1e6),
    ) {
        let v = F32x4::new(a);
        let expect = (a[0] + a[2]) + (a[1] + a[3]);
        prop_assert_eq!(v.horizontal_sum().to_bits(), expect.to_bits());
    }

    #[test]
    fn load_store_round_trip(data in proptest::collection::vec(-1e6f32..1e6, 4..32)) {
        let v = F32x4::load(&data);
        let mut out = [0.0f32; 4];
        v.store(&mut out);
        prop_assert_eq!(&out[..], &data[..4]);
    }

    #[test]
    fn splat_broadcasts(x in -1e6f32..1e6) {
        let v = F32x4::splat(x);
        prop_assert!(v.lanes().iter().all(|&l| l == x));
        prop_assert_eq!(v.horizontal_sum(), (x + x) + (x + x));
    }
}

//! SIMD implementations of the [`FilterKernel`] row primitives.
//!
//! [`SimdKernel`] mirrors the paper's *manual* NEON intrinsics (Fig. 3):
//! the filter is reversed once so each output becomes a contiguous dot
//! product, accumulated four lanes at a time in a quad register and folded
//! with a horizontal add. Tap vectors are zero-padded to a multiple of four
//! so the loop has no scalar remainder — the paper makes the same
//! "iteration count is a multiple of the lane count" argument.
//!
//! [`AutoVecKernel`] mirrors the *compiler auto-vectorized* build
//! (`-mfpu=neon -ftree-vectorize`): straight-line safe Rust with four
//! independent accumulators and fixed trip counts, the shape LLVM (like GCC
//! in the paper) vectorizes without intrinsics.
//!
//! # Columnar column passes
//!
//! Both kernels additionally override the [`FilterKernel`] column-pass
//! methods with a **transpose-free columnar path**: vector lanes hold 8
//! (then 4, then 1) *adjacent columns*, rows are loaded stride-1, and each
//! lane accumulates its own column's convolution — no transposes and no
//! horizontal sums. Bit-identity with the transpose-staged row path is
//! preserved by replicating the row dot product's exact summation structure
//! per column: four partial accumulators indexed by `tap_index % 4` (the
//! four lanes of the row path's accumulator register) folded as
//! `(p0 + p2) + (p1 + p3)` ([`F32x4::horizontal_sum`]'s documented order).
//! Since every column is independent, lane-group width and strip splitting
//! never change any column's value.

use crate::vector::{F32x4, F32x8};
use wavefuse_dtcwt::dwt1d::{BankTaps, Phase};
use wavefuse_dtcwt::kernel::{fallback_analyze_cols, fallback_synthesize_cols, taps_changed};
use wavefuse_dtcwt::scratch::{ColScratch, Scratch1d};
use wavefuse_dtcwt::{DtcwtError, FilterKernel, Image};

/// Pads `taps` (reversed) to a multiple of four lanes with leading or
/// trailing zeros.
fn reversed_padded(taps: &[f32], pad_front: bool, out: &mut Vec<f32>) {
    let len4 = taps.len().div_ceil(4) * 4;
    out.clear();
    if pad_front {
        out.resize(len4 - taps.len(), 0.0);
    }
    out.extend(taps.iter().rev());
    if !pad_front {
        out.resize(len4, 0.0);
    }
}

/// Splits `taps` into its even- and odd-indexed polyphase components,
/// reversed and front-padded to a lane multiple (for synthesis). Builds
/// both components in place — no temporaries — so cached rebuilds stay
/// allocation-free once the output vectors have warmed capacity.
fn polyphase_reversed(taps: &[f32], even: &mut Vec<f32>, odd: &mut Vec<f32>) {
    let ne = taps.len().div_ceil(2); // even-indexed tap count
    let no = taps.len() / 2; // odd-indexed tap count
    even.clear();
    even.resize(ne.div_ceil(4) * 4 - ne, 0.0);
    for i in (0..ne).rev() {
        even.push(taps[2 * i]);
    }
    odd.clear();
    odd.resize(no.div_ceil(4) * 4 - no, 0.0);
    for i in (0..no).rev() {
        odd.push(taps[2 * i + 1]);
    }
}

fn simd_dot(window: &[f32], taps4: &[f32]) -> f32 {
    debug_assert!(taps4.len().is_multiple_of(4));
    debug_assert!(window.len() >= taps4.len());
    let mut acc = F32x4::ZERO;
    for (w, t) in window.chunks_exact(4).zip(taps4.chunks_exact(4)) {
        acc = acc.mul_add(F32x4::load(w), F32x4::load(t));
    }
    acc.horizontal_sum()
}

/// Two dot products over one shared window (equal-length padded taps): each
/// window vector is loaded once and fed to both accumulators. Per filter the
/// accumulation sequence is exactly [`simd_dot`]'s, so the pairing changes
/// load traffic only, never a result bit.
fn simd_dot2(window: &[f32], taps0: &[f32], taps1: &[f32]) -> (f32, f32) {
    debug_assert_eq!(taps0.len(), taps1.len());
    debug_assert!(taps0.len().is_multiple_of(4));
    debug_assert!(window.len() >= taps0.len());
    let mut acc0 = F32x4::ZERO;
    let mut acc1 = F32x4::ZERO;
    for ((w, t0), t1) in window
        .chunks_exact(4)
        .zip(taps0.chunks_exact(4))
        .zip(taps1.chunks_exact(4))
    {
        let wv = F32x4::load(w);
        acc0 = acc0.mul_add(wv, F32x4::load(t0));
        acc1 = acc1.mul_add(wv, F32x4::load(t1));
    }
    (acc0.horizontal_sum(), acc1.horizontal_sum())
}

/// Lane-width-generic column vector for the columnar path. The column loop
/// batches a lane group of adjacent columns per accumulator, falling from
/// 8 to 4 to 1 lanes at the right image edge; per-lane arithmetic is the
/// identical `acc + value * tap` expression at every width, so the grouping
/// never changes any individual column's result.
trait ColVec: Copy {
    fn zero() -> Self;
    fn load(src: &[f32]) -> Self;
    fn splat(v: f32) -> Self;
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn add(self, rhs: Self) -> Self;
    fn store(self, dst: &mut [f32]);
}

impl ColVec for F32x8 {
    #[inline(always)]
    fn zero() -> Self {
        F32x8::ZERO
    }
    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        F32x8::load(src)
    }
    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x8::splat(v)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        F32x8::mul_add(self, a, b)
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        F32x8::store(self, dst)
    }
}

impl ColVec for F32x4 {
    #[inline(always)]
    fn zero() -> Self {
        F32x4::ZERO
    }
    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        F32x4::load(src)
    }
    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x4::splat(v)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        F32x4::mul_add(self, a, b)
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        F32x4::store(self, dst)
    }
}

/// Scalar tail for images narrower than a lane group.
impl ColVec for f32 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        src[0]
    }
    #[inline(always)]
    fn splat(v: f32) -> Self {
        v
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self + a * b
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[0] = self;
    }
}

/// Per-column vertical dot product over a lane group starting at column
/// `x0`: `offs[i]` is the flat offset (`wrapped_row * stride`) of padded
/// tap `i`'s source row in the image's backing slice, and the four
/// partial accumulators indexed by `i % 4` replicate the lanes of the row
/// path's accumulator register, folded in [`F32x4::horizontal_sum`]'s
/// `(p0 + p2) + (p1 + p3)` order — this is what makes the columnar result
/// bit-identical to `simd_dot` (and [`AutoVecKernel::unrolled_dot`], which
/// shares the same structure) per column.
#[inline(always)]
fn col_dot<V: ColVec>(data: &[f32], offs: &[usize], taps: &[f32], x0: usize) -> V {
    debug_assert!(taps.len().is_multiple_of(4));
    debug_assert_eq!(offs.len(), taps.len());
    let (mut p0, mut p1, mut p2, mut p3) = (V::zero(), V::zero(), V::zero(), V::zero());
    let mut i = 0;
    while i < taps.len() {
        p0 = p0.mul_add(V::load(&data[offs[i] + x0..]), V::splat(taps[i]));
        p1 = p1.mul_add(V::load(&data[offs[i + 1] + x0..]), V::splat(taps[i + 1]));
        p2 = p2.mul_add(V::load(&data[offs[i + 2] + x0..]), V::splat(taps[i + 2]));
        p3 = p3.mul_add(V::load(&data[offs[i + 3] + x0..]), V::splat(taps[i + 3]));
        i += 4;
    }
    p0.add(p2).add(p1.add(p3))
}

/// Fills `idx` with `len` flat row *offsets* (`row * stride` into the image's
/// backing slice) for circularly wrapped row indices starting at `base`
/// (which may be negative or beyond `n`, as tap windows reach across the
/// image borders — the same values the row path reads from its materialized
/// circular extension). Interior windows skip the modular arithmetic; only
/// the few border rows pay for `rem_euclid`.
fn fill_wrapped(idx: &mut Vec<usize>, base: isize, len: usize, n: usize, stride: usize) {
    idx.clear();
    if base >= 0 && base as usize + len <= n {
        idx.extend((base as usize..base as usize + len).map(|r| r * stride));
    } else {
        idx.extend((0..len).map(|i| (base + i as isize).rem_euclid(n as isize) as usize * stride));
    }
}

/// Fused lowpass + highpass vertical dot product for filters sharing one
/// offset window (equal tap counts, e.g. the q-shift banks): every source
/// row vector is loaded once and feeds both filters' partial accumulators.
/// Each filter's per-column accumulation sequence is exactly [`col_dot`]'s,
/// so the fusion changes memory traffic, not one bit of output.
#[inline(always)]
fn col_dot2<V: ColVec>(data: &[f32], offs: &[usize], t0: &[f32], t1: &[f32], x0: usize) -> (V, V) {
    debug_assert!(t0.len().is_multiple_of(4));
    debug_assert_eq!(t0.len(), t1.len());
    debug_assert_eq!(offs.len(), t0.len());
    let (mut a0, mut a1, mut a2, mut a3) = (V::zero(), V::zero(), V::zero(), V::zero());
    let (mut b0, mut b1, mut b2, mut b3) = (V::zero(), V::zero(), V::zero(), V::zero());
    let mut i = 0;
    while i < t0.len() {
        let r0 = V::load(&data[offs[i] + x0..]);
        a0 = a0.mul_add(r0, V::splat(t0[i]));
        b0 = b0.mul_add(r0, V::splat(t1[i]));
        let r1 = V::load(&data[offs[i + 1] + x0..]);
        a1 = a1.mul_add(r1, V::splat(t0[i + 1]));
        b1 = b1.mul_add(r1, V::splat(t1[i + 1]));
        let r2 = V::load(&data[offs[i + 2] + x0..]);
        a2 = a2.mul_add(r2, V::splat(t0[i + 2]));
        b2 = b2.mul_add(r2, V::splat(t1[i + 2]));
        let r3 = V::load(&data[offs[i + 3] + x0..]);
        a3 = a3.mul_add(r3, V::splat(t0[i + 3]));
        b3 = b3.mul_add(r3, V::splat(t1[i + 3]));
        i += 4;
    }
    (a0.add(a2).add(a1.add(a3)), b0.add(b2).add(b1.add(b3)))
}

/// Filters one output row of both analysis channels in a single pass over
/// the shared offset window (see [`col_dot2`]).
fn filter_cols2(
    data: &[f32],
    idx: &[usize],
    t0: &[f32],
    t1: &[f32],
    lo: &mut [f32],
    hi: &mut [f32],
) {
    let w = lo.len();
    let mut x = 0;
    while x + 8 <= w {
        let (a, b) = col_dot2::<F32x8>(data, idx, t0, t1, x);
        a.store(&mut lo[x..]);
        b.store(&mut hi[x..]);
        x += 8;
    }
    while x + 4 <= w {
        let (a, b) = col_dot2::<F32x4>(data, idx, t0, t1, x);
        a.store(&mut lo[x..]);
        b.store(&mut hi[x..]);
        x += 4;
    }
    while x < w {
        let (a, b) = col_dot2::<f32>(data, idx, t0, t1, x);
        a.store(&mut lo[x..]);
        b.store(&mut hi[x..]);
        x += 1;
    }
}

/// Filters one output row of the columnar analysis across all column groups.
fn filter_cols(data: &[f32], idx: &[usize], taps: &[f32], out: &mut [f32]) {
    let w = out.len();
    let mut x = 0;
    while x + 8 <= w {
        col_dot::<F32x8>(data, idx, taps, x).store(&mut out[x..]);
        x += 8;
    }
    while x + 4 <= w {
        col_dot::<F32x4>(data, idx, taps, x).store(&mut out[x..]);
        x += 4;
    }
    while x < w {
        col_dot::<f32>(data, idx, taps, x).store(&mut out[x..]);
        x += 1;
    }
}

/// Reconstructs one output row of the columnar synthesis (the lane-wise sum
/// of the two channel dot products, matching the row path's
/// `simd_dot(lo) + simd_dot(hi)` per column).
#[allow(clippy::too_many_arguments)]
fn synth_cols(
    lo: &[f32],
    hi: &[f32],
    idx0: &[usize],
    idx1: &[usize],
    t0: &[f32],
    t1: &[f32],
    out: &mut [f32],
) {
    let w = out.len();
    let mut x = 0;
    while x + 8 <= w {
        let v = col_dot::<F32x8>(lo, idx0, t0, x).add(col_dot::<F32x8>(hi, idx1, t1, x));
        v.store(&mut out[x..]);
        x += 8;
    }
    while x + 4 <= w {
        let v = col_dot::<F32x4>(lo, idx0, t0, x).add(col_dot::<F32x4>(hi, idx1, t1, x));
        v.store(&mut out[x..]);
        x += 4;
    }
    while x < w {
        let v = col_dot::<f32>(lo, idx0, t0, x).add(col_dot::<f32>(hi, idx1, t1, x));
        v.store(&mut out[x..]);
        x += 1;
    }
}

/// Columnar analysis shared by both kernels (their row dot products have the
/// same summation structure, so one columnar body is bit-identical to both).
/// Tap caches are the caller's `reversed_padded` vectors.
#[allow(clippy::too_many_arguments)]
fn columnar_analyze(
    rev0: &[f32],
    rev1: &[f32],
    l0: usize,
    l1: usize,
    phase: Phase,
    img: &Image,
    lo: &mut Image,
    hi: &mut Image,
    cs: &mut ColScratch,
) {
    let (w, h) = img.dims();
    let half = h / 2;
    lo.reshape(w, half);
    hi.reshape(w, half);
    let phase = phase.offset();
    let data = img.as_slice();
    // Equal-length filters (the orthonormal banks, e.g. q-shift at DT-CWT
    // levels >= 2) share one offset window per output row — fuse the two
    // channel filters so each source row is loaded once.
    let fused = l0 == l1 && rev0.len() == rev1.len();
    for k in 0..half {
        // Window top of output row k: source rows (2k + phase + 1 - l .. ],
        // wrapped circularly; trailing zero-pad taps read (and ignore) the
        // rows the row path's right extension margin covers.
        let c = (2 * k + phase) as isize;
        fill_wrapped(&mut cs.idx0, c + 1 - l0 as isize, rev0.len(), h, w);
        if fused {
            filter_cols2(data, &cs.idx0, rev0, rev1, lo.row_mut(k), hi.row_mut(k));
        } else {
            fill_wrapped(&mut cs.idx1, c + 1 - l1 as isize, rev1.len(), h, w);
            filter_cols(data, &cs.idx0, rev0, lo.row_mut(k));
            filter_cols(data, &cs.idx1, rev1, hi.row_mut(k));
        }
    }
}

/// Columnar polyphase synthesis shared by both kernels; the final
/// delay-compensating rotation is fused into the destination row index.
#[allow(clippy::too_many_arguments)]
fn columnar_synthesize(
    g0_even: &[f32],
    g0_odd: &[f32],
    g1_even: &[f32],
    g1_odd: &[f32],
    phase: Phase,
    delay: usize,
    lo: &Image,
    hi: &Image,
    out: &mut Image,
    cs: &mut ColScratch,
) {
    let (w, nh) = lo.dims();
    let n = nh * 2;
    out.reshape(w, n);
    let d = delay % n;
    let phase = phase.offset();
    let lo_data = lo.as_slice();
    let hi_data = hi.as_slice();
    for m in 0..n {
        let mp = m as isize - phase as isize;
        let parity = (mp & 1) as usize;
        let (t0, t1) = if parity == 0 {
            (g0_even, g1_even)
        } else {
            (g0_odd, g1_odd)
        };
        let k_top = (mp - parity as isize) / 2; // highest contributing k
        fill_wrapped(&mut cs.idx0, k_top + 1 - t0.len() as isize, t0.len(), nh, w);
        if t0.len() == t1.len() {
            cs.idx1.clone_from(&cs.idx0);
        } else {
            fill_wrapped(&mut cs.idx1, k_top + 1 - t1.len() as isize, t1.len(), nh, w);
        }
        // Raw sample m lands at output row (m - delay) mod n — the rotation
        // the row path applies as a separate copy.
        let dst = (m + n - d) % n;
        synth_cols(
            lo_data,
            hi_data,
            &cs.idx0,
            &cs.idx1,
            t0,
            t1,
            out.row_mut(dst),
        );
    }
}

/// Validation shared by the columnar analysis entry points.
fn check_cols_input(img: &Image) -> Result<(), DtcwtError> {
    let (w, h) = img.dims();
    if w == 0 || h == 0 || !h.is_multiple_of(2) {
        return Err(DtcwtError::BadDimensions {
            width: w,
            height: h,
            reason: "column analysis requires even non-zero height",
        });
    }
    Ok(())
}

/// Validation shared by the columnar synthesis entry points.
fn check_cols_channels(lo: &Image, hi: &Image) -> Result<(), DtcwtError> {
    if lo.is_empty() || lo.dims() != hi.dims() {
        return Err(DtcwtError::BadDimensions {
            width: hi.width(),
            height: hi.height(),
            reason: "column synthesis channels must be non-empty and equal-sized",
        });
    }
    Ok(())
}

/// Manual 4-lane vectorized kernel (the paper's NEON-intrinsics flavor).
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{FilterKernel, ScalarKernel};
/// use wavefuse_simd::SimdKernel;
///
/// // SIMD analysis matches the scalar reference.
/// let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
/// let bank = wavefuse_dtcwt::FilterBank::cdf_9_7()?;
/// let taps = wavefuse_dtcwt::dwt1d::BankTaps::new(&bank);
/// let mut scalar = ScalarKernel::new();
/// let mut simd = SimdKernel::new();
/// let a = wavefuse_dtcwt::dwt1d::analyze(&mut scalar, &taps, &x, wavefuse_dtcwt::dwt1d::Phase::A)?;
/// let b = wavefuse_dtcwt::dwt1d::analyze(&mut simd, &taps, &x, wavefuse_dtcwt::dwt1d::Phase::A)?;
/// for (u, v) in a.0.iter().zip(&b.0) {
///     assert!((u - v).abs() < 1e-5);
/// }
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimdKernel {
    rev0: Vec<f32>,
    rev1: Vec<f32>,
    g0_even: Vec<f32>,
    g0_odd: Vec<f32>,
    g1_even: Vec<f32>,
    g1_odd: Vec<f32>,
    a_key0: Vec<f32>,
    a_key1: Vec<f32>,
    s_key0: Vec<f32>,
    s_key1: Vec<f32>,
    columnar: bool,
}

impl Default for SimdKernel {
    fn default() -> Self {
        SimdKernel {
            rev0: Vec::new(),
            rev1: Vec::new(),
            g0_even: Vec::new(),
            g0_odd: Vec::new(),
            g1_even: Vec::new(),
            g1_odd: Vec::new(),
            a_key0: Vec::new(),
            a_key1: Vec::new(),
            s_key0: Vec::new(),
            s_key1: Vec::new(),
            columnar: true,
        }
    }
}

impl SimdKernel {
    /// Creates a new manual-SIMD kernel (columnar column passes enabled).
    pub fn new() -> Self {
        SimdKernel::default()
    }
}

impl FilterKernel for SimdKernel {
    fn name(&self) -> &'static str {
        "neon-simd"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        // Reverse + trailing zero-pad: the padded taps read past the window
        // center, which the caller's right extension margin covers. Rebuilt
        // only when the filter actually changes (keyed by tap values).
        if taps_changed(&mut self.a_key0, h0) {
            reversed_padded(h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, h1) {
            reversed_padded(h1, false, &mut self.rev1);
        }
        let (l0, l1) = (h0.len(), h1.len());
        if l0 == l1 && self.rev0.len() == self.rev1.len() {
            // Equal-length pair (the q-shift orthonormal banks): both filters
            // read the same window, so share its loads across the two dots.
            for k in 0..lo.len() {
                let center = left + 2 * k + phase;
                let (a, b) = simd_dot2(&ext[center + 1 - l0..], &self.rev0, &self.rev1);
                lo[k] = a;
                hi[k] = b;
            }
        } else {
            for k in 0..lo.len() {
                let center = left + 2 * k + phase;
                lo[k] = simd_dot(&ext[center + 1 - l0..], &self.rev0);
                hi[k] = simd_dot(&ext[center + 1 - l1..], &self.rev1);
            }
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        // Polyphase split: outputs of each parity use every other tap, and
        // the channel window is contiguous — so each output is again a
        // lane-aligned dot product (front-padded taps read below the window,
        // covered by the caller's left extension margin).
        if taps_changed(&mut self.s_key0, g0) {
            polyphase_reversed(g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, g1) {
            polyphase_reversed(g1, &mut self.g1_even, &mut self.g1_odd);
        }
        for (m, o) in out.iter_mut().enumerate() {
            let mp = m as isize - phase as isize;
            let parity = (mp & 1) as usize;
            let (t0, t1) = if parity == 0 {
                (&self.g0_even, &self.g1_even)
            } else {
                (&self.g0_odd, &self.g1_odd)
            };
            let k_top = (mp - parity as isize) / 2; // highest contributing k
            let start0 = (left as isize + k_top + 1 - t0.len() as isize) as usize;
            let start1 = (left as isize + k_top + 1 - t1.len() as isize) as usize;
            *o = simd_dot(&lo_ext[start0..], t0) + simd_dot(&hi_ext[start1..], t1);
        }
    }

    fn columnar(&self) -> bool {
        self.columnar
    }

    fn set_columnar(&mut self, enabled: bool) {
        self.columnar = enabled;
    }

    // Note on summation order: the *row* path differs from the scalar kernel
    // (4-lane partials vs a single running sum), which is why row results are
    // compared against scalar with a small tolerance. The *column* path below
    // replicates the row path's own order per column, so columnar output is
    // bit-identical to this kernel's transpose-staged fallback — not merely
    // close to it.
    fn analyze_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        img: &Image,
        lo: &mut Image,
        hi: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        if !self.columnar {
            return fallback_analyze_cols(self, taps, phase, img, lo, hi, cs, s1);
        }
        check_cols_input(img)?;
        if taps_changed(&mut self.a_key0, &taps.h0) {
            reversed_padded(&taps.h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, &taps.h1) {
            reversed_padded(&taps.h1, false, &mut self.rev1);
        }
        columnar_analyze(
            &self.rev0,
            &self.rev1,
            taps.h0.len(),
            taps.h1.len(),
            phase,
            img,
            lo,
            hi,
            cs,
        );
        Ok(())
    }

    fn synthesize_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        lo: &Image,
        hi: &Image,
        out: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        if !self.columnar {
            return fallback_synthesize_cols(self, taps, phase, lo, hi, out, cs, s1);
        }
        check_cols_channels(lo, hi)?;
        if taps_changed(&mut self.s_key0, &taps.g0) {
            polyphase_reversed(&taps.g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, &taps.g1) {
            polyphase_reversed(&taps.g1, &mut self.g1_even, &mut self.g1_odd);
        }
        columnar_synthesize(
            &self.g0_even,
            &self.g0_odd,
            &self.g1_even,
            &self.g1_odd,
            phase,
            taps.delay(),
            lo,
            hi,
            out,
            cs,
        );
        Ok(())
    }

    fn fuse_strip(
        &mut self,
        a: &wavefuse_dtcwt::ComplexImage,
        b: &wavefuse_dtcwt::ComplexImage,
        y0: usize,
        y1: usize,
        op: wavefuse_dtcwt::FuseOp,
        fs: &mut wavefuse_dtcwt::FuseScratch,
        out_re: &mut Image,
        out_im: &mut Image,
    ) -> Result<(), DtcwtError> {
        crate::fuse::fuse_strip_simd(a, b, y0, y1, op, fs, out_re, out_im)
    }
}

/// Compiler-auto-vectorization flavor: plain loops with four independent
/// accumulators and no lane intrinsics, the shape `-ftree-vectorize`
/// exploits in the paper's auto-vectorized build.
#[derive(Debug, Clone)]
pub struct AutoVecKernel {
    rev0: Vec<f32>,
    rev1: Vec<f32>,
    g0_even: Vec<f32>,
    g0_odd: Vec<f32>,
    g1_even: Vec<f32>,
    g1_odd: Vec<f32>,
    a_key0: Vec<f32>,
    a_key1: Vec<f32>,
    s_key0: Vec<f32>,
    s_key1: Vec<f32>,
    columnar: bool,
}

impl Default for AutoVecKernel {
    fn default() -> Self {
        AutoVecKernel {
            rev0: Vec::new(),
            rev1: Vec::new(),
            g0_even: Vec::new(),
            g0_odd: Vec::new(),
            g1_even: Vec::new(),
            g1_odd: Vec::new(),
            a_key0: Vec::new(),
            a_key1: Vec::new(),
            s_key0: Vec::new(),
            s_key1: Vec::new(),
            columnar: true,
        }
    }
}

impl AutoVecKernel {
    /// Creates a new auto-vectorization-shaped kernel (columnar column
    /// passes enabled).
    pub fn new() -> Self {
        AutoVecKernel::default()
    }

    #[inline(always)]
    fn unrolled_dot(window: &[f32], taps4: &[f32]) -> f32 {
        debug_assert!(taps4.len().is_multiple_of(4));
        let mut acc = [0.0f32; 4];
        for (w, t) in window.chunks_exact(4).zip(taps4.chunks_exact(4)) {
            acc[0] += w[0] * t[0];
            acc[1] += w[1] * t[1];
            acc[2] += w[2] * t[2];
            acc[3] += w[3] * t[3];
        }
        (acc[0] + acc[2]) + (acc[1] + acc[3])
    }

    /// Shared-window pair of [`AutoVecKernel::unrolled_dot`]s — same
    /// load-sharing trick as [`simd_dot2`], same bit-identity argument: each
    /// filter's per-lane accumulation order is unchanged.
    #[inline(always)]
    fn unrolled_dot2(window: &[f32], taps0: &[f32], taps1: &[f32]) -> (f32, f32) {
        debug_assert_eq!(taps0.len(), taps1.len());
        debug_assert!(taps0.len().is_multiple_of(4));
        let mut a = [0.0f32; 4];
        let mut b = [0.0f32; 4];
        for ((w, t0), t1) in window
            .chunks_exact(4)
            .zip(taps0.chunks_exact(4))
            .zip(taps1.chunks_exact(4))
        {
            for l in 0..4 {
                a[l] += w[l] * t0[l];
                b[l] += w[l] * t1[l];
            }
        }
        ((a[0] + a[2]) + (a[1] + a[3]), (b[0] + b[2]) + (b[1] + b[3]))
    }
}

impl FilterKernel for AutoVecKernel {
    fn name(&self) -> &'static str {
        "neon-autovec"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        if taps_changed(&mut self.a_key0, h0) {
            reversed_padded(h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, h1) {
            reversed_padded(h1, false, &mut self.rev1);
        }
        let (l0, l1) = (h0.len(), h1.len());
        if l0 == l1 && self.rev0.len() == self.rev1.len() {
            for k in 0..lo.len() {
                let center = left + 2 * k + phase;
                let (a, b) = Self::unrolled_dot2(&ext[center + 1 - l0..], &self.rev0, &self.rev1);
                lo[k] = a;
                hi[k] = b;
            }
        } else {
            for k in 0..lo.len() {
                let center = left + 2 * k + phase;
                lo[k] = Self::unrolled_dot(&ext[center + 1 - l0..], &self.rev0);
                hi[k] = Self::unrolled_dot(&ext[center + 1 - l1..], &self.rev1);
            }
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        if taps_changed(&mut self.s_key0, g0) {
            polyphase_reversed(g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, g1) {
            polyphase_reversed(g1, &mut self.g1_even, &mut self.g1_odd);
        }
        for (m, o) in out.iter_mut().enumerate() {
            let mp = m as isize - phase as isize;
            let parity = (mp & 1) as usize;
            let (t0, t1) = if parity == 0 {
                (&self.g0_even, &self.g1_even)
            } else {
                (&self.g0_odd, &self.g1_odd)
            };
            let k_top = (mp - parity as isize) / 2;
            let start0 = (left as isize + k_top + 1 - t0.len() as isize) as usize;
            let start1 = (left as isize + k_top + 1 - t1.len() as isize) as usize;
            *o = Self::unrolled_dot(&lo_ext[start0..], t0)
                + Self::unrolled_dot(&hi_ext[start1..], t1);
        }
    }

    fn columnar(&self) -> bool {
        self.columnar
    }

    fn set_columnar(&mut self, enabled: bool) {
        self.columnar = enabled;
    }

    // `unrolled_dot` has the exact same per-lane summation structure as
    // `simd_dot` (four partials folded `(p0 + p2) + (p1 + p3)`), so both
    // kernels share one columnar body and each stays bit-identical to its
    // own transpose-staged fallback.
    fn analyze_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        img: &Image,
        lo: &mut Image,
        hi: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        if !self.columnar {
            return fallback_analyze_cols(self, taps, phase, img, lo, hi, cs, s1);
        }
        check_cols_input(img)?;
        if taps_changed(&mut self.a_key0, &taps.h0) {
            reversed_padded(&taps.h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, &taps.h1) {
            reversed_padded(&taps.h1, false, &mut self.rev1);
        }
        columnar_analyze(
            &self.rev0,
            &self.rev1,
            taps.h0.len(),
            taps.h1.len(),
            phase,
            img,
            lo,
            hi,
            cs,
        );
        Ok(())
    }

    fn synthesize_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        lo: &Image,
        hi: &Image,
        out: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        if !self.columnar {
            return fallback_synthesize_cols(self, taps, phase, lo, hi, out, cs, s1);
        }
        check_cols_channels(lo, hi)?;
        if taps_changed(&mut self.s_key0, &taps.g0) {
            polyphase_reversed(&taps.g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, &taps.g1) {
            polyphase_reversed(&taps.g1, &mut self.g1_even, &mut self.g1_odd);
        }
        columnar_synthesize(
            &self.g0_even,
            &self.g0_odd,
            &self.g1_even,
            &self.g1_odd,
            phase,
            taps.delay(),
            lo,
            hi,
            out,
            cs,
        );
        Ok(())
    }

    fn fuse_strip(
        &mut self,
        a: &wavefuse_dtcwt::ComplexImage,
        b: &wavefuse_dtcwt::ComplexImage,
        y0: usize,
        y1: usize,
        op: wavefuse_dtcwt::FuseOp,
        fs: &mut wavefuse_dtcwt::FuseScratch,
        out_re: &mut Image,
        out_im: &mut Image,
    ) -> Result<(), DtcwtError> {
        crate::fuse::fuse_strip_simd(a, b, y0, y1, op, fs, out_re, out_im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::dwt1d::{analyze, synthesize, BankTaps, Phase};
    use wavefuse_dtcwt::{Dtcwt, FilterBank, Image, ScalarKernel};

    fn banks() -> Vec<FilterBank> {
        vec![
            FilterBank::haar().unwrap(),
            FilterBank::daubechies(3).unwrap(),
            FilterBank::legall_5_3().unwrap(),
            FilterBank::cdf_9_7().unwrap(),
            FilterBank::near_sym_b().unwrap(),
            FilterBank::qshift_b().unwrap(),
            FilterBank::qshift_b().unwrap().time_reverse(),
        ]
    }

    fn signal(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.37).sin() + (i as f32 * 0.011).cos()) * 5.0)
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn analysis_matches_scalar_all_banks_phases() {
        for bank in banks() {
            let taps = BankTaps::new(&bank);
            for phase in [Phase::A, Phase::B] {
                for n in [8usize, 22, 64, 88] {
                    let x = signal(n);
                    let mut sc = ScalarKernel::new();
                    let mut si = SimdKernel::new();
                    let mut av = AutoVecKernel::new();
                    let (lo_s, hi_s) = analyze(&mut sc, &taps, &x, phase).unwrap();
                    let (lo_v, hi_v) = analyze(&mut si, &taps, &x, phase).unwrap();
                    let (lo_a, hi_a) = analyze(&mut av, &taps, &x, phase).unwrap();
                    let what = format!("{} n={n} {phase:?}", bank.name());
                    assert_close(&lo_s, &lo_v, 1e-4, &format!("simd lo {what}"));
                    assert_close(&hi_s, &hi_v, 1e-4, &format!("simd hi {what}"));
                    assert_close(&lo_s, &lo_a, 1e-4, &format!("autovec lo {what}"));
                    assert_close(&hi_s, &hi_a, 1e-4, &format!("autovec hi {what}"));
                }
            }
        }
    }

    #[test]
    fn synthesis_matches_scalar_all_banks_phases() {
        for bank in banks() {
            let taps = BankTaps::new(&bank);
            for phase in [Phase::A, Phase::B] {
                let x = signal(48);
                let mut sc = ScalarKernel::new();
                let (lo, hi) = analyze(&mut sc, &taps, &x, phase).unwrap();
                let ref_out = synthesize(&mut sc, &taps, &lo, &hi, phase).unwrap();
                let mut si = SimdKernel::new();
                let simd_out = synthesize(&mut si, &taps, &lo, &hi, phase).unwrap();
                let mut av = AutoVecKernel::new();
                let auto_out = synthesize(&mut av, &taps, &lo, &hi, phase).unwrap();
                let what = format!("{} {phase:?}", bank.name());
                assert_close(&ref_out, &simd_out, 1e-4, &format!("simd {what}"));
                assert_close(&ref_out, &auto_out, 1e-4, &format!("autovec {what}"));
            }
        }
    }

    #[test]
    fn full_dtcwt_round_trip_through_simd() {
        let img = Image::from_fn(88, 72, |x, y| ((x * 3 + y * 7) % 23) as f32 * 0.5);
        let t = Dtcwt::new(3).unwrap();
        let pyr = t.forward_with(&mut SimdKernel::new(), &img).unwrap();
        let back = t.inverse_with(&mut SimdKernel::new(), &pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 2e-3);
    }

    #[test]
    fn simd_and_scalar_pyramids_agree() {
        let img = Image::from_fn(64, 48, |x, y| ((x ^ y) % 31) as f32);
        let t = Dtcwt::new(3).unwrap();
        let p_scalar = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_simd = t.forward_with(&mut SimdKernel::new(), &img).unwrap();
        for level in 0..3 {
            for (a, b) in p_scalar.subbands(level).iter().zip(p_simd.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-3);
                assert!(a.im.max_abs_diff(&b.im) < 1e-3);
            }
        }
    }

    #[test]
    fn kernel_names() {
        assert_eq!(SimdKernel::new().name(), "neon-simd");
        assert_eq!(AutoVecKernel::new().name(), "neon-autovec");
    }

    #[test]
    fn cached_taps_survive_alternating_filter_banks() {
        // One long-lived kernel instance cycling through every bank twice
        // (the worker-pool usage pattern) must match fresh per-bank kernels.
        let x = signal(40);
        let mut si = SimdKernel::new();
        let mut av = AutoVecKernel::new();
        for round in 0..2 {
            for bank in banks() {
                let taps = BankTaps::new(&bank);
                for phase in [Phase::A, Phase::B] {
                    let mut sc = ScalarKernel::new();
                    let (lo, hi) = analyze(&mut sc, &taps, &x, phase).unwrap();
                    let ref_out = synthesize(&mut sc, &taps, &lo, &hi, phase).unwrap();
                    let what = format!("{} {phase:?} round {round}", bank.name());
                    let (lo_v, hi_v) = analyze(&mut si, &taps, &x, phase).unwrap();
                    let (lo_a, hi_a) = analyze(&mut av, &taps, &x, phase).unwrap();
                    assert_close(&lo, &lo_v, 1e-4, &format!("simd lo {what}"));
                    assert_close(&hi, &hi_v, 1e-4, &format!("simd hi {what}"));
                    assert_close(&lo, &lo_a, 1e-4, &format!("autovec lo {what}"));
                    assert_close(&hi, &hi_a, 1e-4, &format!("autovec hi {what}"));
                    let out_v = synthesize(&mut si, &taps, &lo, &hi, phase).unwrap();
                    let out_a = synthesize(&mut av, &taps, &lo, &hi, phase).unwrap();
                    assert_close(&ref_out, &out_v, 1e-4, &format!("simd syn {what}"));
                    assert_close(&ref_out, &out_a, 1e-4, &format!("autovec syn {what}"));
                }
            }
        }
    }

    /// Runs one kernel's column analysis + synthesis round trip.
    fn cols_round_trip(
        k: &mut dyn FilterKernel,
        taps: &BankTaps,
        phase: Phase,
        img: &Image,
    ) -> (Image, Image, Image) {
        let mut lo = Image::zeros(0, 0);
        let mut hi = Image::zeros(0, 0);
        let mut rec = Image::zeros(0, 0);
        let mut cs = ColScratch::new();
        let mut s1 = Scratch1d::new();
        k.analyze_cols(taps, phase, img, &mut lo, &mut hi, &mut cs, &mut s1)
            .unwrap();
        k.synthesize_cols(taps, phase, &lo, &hi, &mut rec, &mut cs, &mut s1)
            .unwrap();
        (lo, hi, rec)
    }

    #[test]
    fn columnar_bit_identical_to_fallback() {
        // The columnar path must reproduce the transpose-staged fallback
        // bit-for-bit: same kernel type, columnar on vs off, exact equality.
        // Widths below the 4-lane group force the scalar tail; width 13
        // exercises the 8-, 4-, and 1-lane groups together.
        for bank in banks() {
            let taps = BankTaps::new(&bank);
            for phase in [Phase::A, Phase::B] {
                for (w, h) in [(2usize, 8usize), (3, 12), (13, 10), (16, 22), (40, 36)] {
                    let img =
                        Image::from_fn(w, h, |x, y| ((x * 13 + y * 7) % 29) as f32 * 0.31 - 4.0);
                    let what = format!("{} {phase:?} {w}x{h}", bank.name());
                    let mut on = SimdKernel::new();
                    let mut off = SimdKernel::new();
                    off.set_columnar(false);
                    assert!(on.columnar() && !off.columnar());
                    let (lo_c, hi_c, rec_c) = cols_round_trip(&mut on, &taps, phase, &img);
                    let (lo_f, hi_f, rec_f) = cols_round_trip(&mut off, &taps, phase, &img);
                    assert_eq!(lo_c.as_slice(), lo_f.as_slice(), "simd lo {what}");
                    assert_eq!(hi_c.as_slice(), hi_f.as_slice(), "simd hi {what}");
                    assert_eq!(rec_c.as_slice(), rec_f.as_slice(), "simd rec {what}");

                    let mut av_on = AutoVecKernel::new();
                    let mut av_off = AutoVecKernel::new();
                    av_off.set_columnar(false);
                    let (alo_c, ahi_c, arec_c) = cols_round_trip(&mut av_on, &taps, phase, &img);
                    let (alo_f, ahi_f, arec_f) = cols_round_trip(&mut av_off, &taps, phase, &img);
                    assert_eq!(alo_c.as_slice(), alo_f.as_slice(), "autovec lo {what}");
                    assert_eq!(ahi_c.as_slice(), ahi_f.as_slice(), "autovec hi {what}");
                    assert_eq!(arec_c.as_slice(), arec_f.as_slice(), "autovec rec {what}");
                }
            }
        }
    }

    #[test]
    fn columnar_full_pyramids_bit_identical() {
        // End to end: the whole DT-CWT forward + inverse must not change by
        // a single bit when the columnar path replaces the transpose path.
        let img = Image::from_fn(88, 72, |x, y| ((x * 3 + y * 7) % 23) as f32 * 0.5);
        let t = Dtcwt::new(3).unwrap();
        let mut on = SimdKernel::new();
        let mut off = SimdKernel::new();
        off.set_columnar(false);
        let p_on = t.forward_with(&mut on, &img).unwrap();
        let p_off = t.forward_with(&mut off, &img).unwrap();
        for level in 0..3 {
            for (a, b) in p_on.subbands(level).iter().zip(p_off.subbands(level)) {
                assert_eq!(a.re.as_slice(), b.re.as_slice(), "re level {level}");
                assert_eq!(a.im.as_slice(), b.im.as_slice(), "im level {level}");
            }
        }
        let r_on = t.inverse_with(&mut on, &p_on).unwrap();
        let r_off = t.inverse_with(&mut off, &p_off).unwrap();
        assert_eq!(r_on.as_slice(), r_off.as_slice());
    }

    #[test]
    fn columnar_rejects_bad_shapes() {
        let taps = BankTaps::new(&FilterBank::cdf_9_7().unwrap());
        let mut k = SimdKernel::new();
        let odd = Image::from_fn(8, 7, |_, _| 1.0);
        let mut lo = Image::zeros(0, 0);
        let mut hi = Image::zeros(0, 0);
        let mut cs = ColScratch::new();
        let mut s1 = Scratch1d::new();
        assert!(k
            .analyze_cols(&taps, Phase::A, &odd, &mut lo, &mut hi, &mut cs, &mut s1)
            .is_err());
        let a = Image::from_fn(8, 4, |_, _| 1.0);
        let b = Image::from_fn(8, 5, |_, _| 1.0);
        let mut out = Image::zeros(0, 0);
        assert!(k
            .synthesize_cols(&taps, Phase::A, &a, &b, &mut out, &mut cs, &mut s1)
            .is_err());
    }

    #[test]
    fn padding_helpers() {
        let mut out = Vec::new();
        reversed_padded(&[1.0, 2.0, 3.0], false, &mut out);
        assert_eq!(out, vec![3.0, 2.0, 1.0, 0.0]);
        reversed_padded(&[1.0, 2.0, 3.0], true, &mut out);
        assert_eq!(out, vec![0.0, 3.0, 2.0, 1.0]);
        let (mut e, mut o) = (Vec::new(), Vec::new());
        polyphase_reversed(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut e, &mut o);
        assert_eq!(e, vec![0.0, 5.0, 3.0, 1.0]);
        assert_eq!(o, vec![0.0, 0.0, 4.0, 2.0]);
    }
}

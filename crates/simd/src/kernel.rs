//! SIMD implementations of the [`FilterKernel`] row primitives.
//!
//! [`SimdKernel`] mirrors the paper's *manual* NEON intrinsics (Fig. 3):
//! the filter is reversed once so each output becomes a contiguous dot
//! product, accumulated four lanes at a time in a quad register and folded
//! with a horizontal add. Tap vectors are zero-padded to a multiple of four
//! so the loop has no scalar remainder — the paper makes the same
//! "iteration count is a multiple of the lane count" argument.
//!
//! [`AutoVecKernel`] mirrors the *compiler auto-vectorized* build
//! (`-mfpu=neon -ftree-vectorize`): straight-line safe Rust with four
//! independent accumulators and fixed trip counts, the shape LLVM (like GCC
//! in the paper) vectorizes without intrinsics.

use crate::vector::F32x4;
use wavefuse_dtcwt::kernel::taps_changed;
use wavefuse_dtcwt::FilterKernel;

/// Pads `taps` (reversed) to a multiple of four lanes with leading or
/// trailing zeros.
fn reversed_padded(taps: &[f32], pad_front: bool, out: &mut Vec<f32>) {
    let len4 = taps.len().div_ceil(4) * 4;
    out.clear();
    if pad_front {
        out.resize(len4 - taps.len(), 0.0);
    }
    out.extend(taps.iter().rev());
    if !pad_front {
        out.resize(len4, 0.0);
    }
}

/// Splits `taps` into its even- and odd-indexed polyphase components,
/// reversed and front-padded to a lane multiple (for synthesis). Builds
/// both components in place — no temporaries — so cached rebuilds stay
/// allocation-free once the output vectors have warmed capacity.
fn polyphase_reversed(taps: &[f32], even: &mut Vec<f32>, odd: &mut Vec<f32>) {
    let ne = taps.len().div_ceil(2); // even-indexed tap count
    let no = taps.len() / 2; // odd-indexed tap count
    even.clear();
    even.resize(ne.div_ceil(4) * 4 - ne, 0.0);
    for i in (0..ne).rev() {
        even.push(taps[2 * i]);
    }
    odd.clear();
    odd.resize(no.div_ceil(4) * 4 - no, 0.0);
    for i in (0..no).rev() {
        odd.push(taps[2 * i + 1]);
    }
}

fn simd_dot(window: &[f32], taps4: &[f32]) -> f32 {
    debug_assert!(taps4.len().is_multiple_of(4));
    debug_assert!(window.len() >= taps4.len());
    let mut acc = F32x4::ZERO;
    for (w, t) in window.chunks_exact(4).zip(taps4.chunks_exact(4)) {
        acc = acc.mul_add(F32x4::load(w), F32x4::load(t));
    }
    acc.horizontal_sum()
}

/// Manual 4-lane vectorized kernel (the paper's NEON-intrinsics flavor).
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{FilterKernel, ScalarKernel};
/// use wavefuse_simd::SimdKernel;
///
/// // SIMD analysis matches the scalar reference.
/// let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
/// let bank = wavefuse_dtcwt::FilterBank::cdf_9_7()?;
/// let taps = wavefuse_dtcwt::dwt1d::BankTaps::new(&bank);
/// let mut scalar = ScalarKernel::new();
/// let mut simd = SimdKernel::new();
/// let a = wavefuse_dtcwt::dwt1d::analyze(&mut scalar, &taps, &x, wavefuse_dtcwt::dwt1d::Phase::A)?;
/// let b = wavefuse_dtcwt::dwt1d::analyze(&mut simd, &taps, &x, wavefuse_dtcwt::dwt1d::Phase::A)?;
/// for (u, v) in a.0.iter().zip(&b.0) {
///     assert!((u - v).abs() < 1e-5);
/// }
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimdKernel {
    rev0: Vec<f32>,
    rev1: Vec<f32>,
    g0_even: Vec<f32>,
    g0_odd: Vec<f32>,
    g1_even: Vec<f32>,
    g1_odd: Vec<f32>,
    a_key0: Vec<f32>,
    a_key1: Vec<f32>,
    s_key0: Vec<f32>,
    s_key1: Vec<f32>,
}

impl SimdKernel {
    /// Creates a new manual-SIMD kernel.
    pub fn new() -> Self {
        SimdKernel::default()
    }
}

impl FilterKernel for SimdKernel {
    fn name(&self) -> &'static str {
        "neon-simd"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        // Reverse + trailing zero-pad: the padded taps read past the window
        // center, which the caller's right extension margin covers. Rebuilt
        // only when the filter actually changes (keyed by tap values).
        if taps_changed(&mut self.a_key0, h0) {
            reversed_padded(h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, h1) {
            reversed_padded(h1, false, &mut self.rev1);
        }
        let (l0, l1) = (h0.len(), h1.len());
        for k in 0..lo.len() {
            let center = left + 2 * k + phase;
            lo[k] = simd_dot(&ext[center + 1 - l0..], &self.rev0);
            hi[k] = simd_dot(&ext[center + 1 - l1..], &self.rev1);
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        // Polyphase split: outputs of each parity use every other tap, and
        // the channel window is contiguous — so each output is again a
        // lane-aligned dot product (front-padded taps read below the window,
        // covered by the caller's left extension margin).
        if taps_changed(&mut self.s_key0, g0) {
            polyphase_reversed(g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, g1) {
            polyphase_reversed(g1, &mut self.g1_even, &mut self.g1_odd);
        }
        for (m, o) in out.iter_mut().enumerate() {
            let mp = m as isize - phase as isize;
            let parity = (mp & 1) as usize;
            let (t0, t1) = if parity == 0 {
                (&self.g0_even, &self.g1_even)
            } else {
                (&self.g0_odd, &self.g1_odd)
            };
            let k_top = (mp - parity as isize) / 2; // highest contributing k
            let start0 = (left as isize + k_top + 1 - t0.len() as isize) as usize;
            let start1 = (left as isize + k_top + 1 - t1.len() as isize) as usize;
            *o = simd_dot(&lo_ext[start0..], t0) + simd_dot(&hi_ext[start1..], t1);
        }
    }
}

/// Compiler-auto-vectorization flavor: plain loops with four independent
/// accumulators and no lane intrinsics, the shape `-ftree-vectorize`
/// exploits in the paper's auto-vectorized build.
#[derive(Debug, Clone, Default)]
pub struct AutoVecKernel {
    rev0: Vec<f32>,
    rev1: Vec<f32>,
    g0_even: Vec<f32>,
    g0_odd: Vec<f32>,
    g1_even: Vec<f32>,
    g1_odd: Vec<f32>,
    a_key0: Vec<f32>,
    a_key1: Vec<f32>,
    s_key0: Vec<f32>,
    s_key1: Vec<f32>,
}

impl AutoVecKernel {
    /// Creates a new auto-vectorization-shaped kernel.
    pub fn new() -> Self {
        AutoVecKernel::default()
    }

    #[inline(always)]
    fn unrolled_dot(window: &[f32], taps4: &[f32]) -> f32 {
        debug_assert!(taps4.len().is_multiple_of(4));
        let mut acc = [0.0f32; 4];
        for (w, t) in window.chunks_exact(4).zip(taps4.chunks_exact(4)) {
            acc[0] += w[0] * t[0];
            acc[1] += w[1] * t[1];
            acc[2] += w[2] * t[2];
            acc[3] += w[3] * t[3];
        }
        (acc[0] + acc[2]) + (acc[1] + acc[3])
    }
}

impl FilterKernel for AutoVecKernel {
    fn name(&self) -> &'static str {
        "neon-autovec"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        if taps_changed(&mut self.a_key0, h0) {
            reversed_padded(h0, false, &mut self.rev0);
        }
        if taps_changed(&mut self.a_key1, h1) {
            reversed_padded(h1, false, &mut self.rev1);
        }
        let (l0, l1) = (h0.len(), h1.len());
        for k in 0..lo.len() {
            let center = left + 2 * k + phase;
            lo[k] = Self::unrolled_dot(&ext[center + 1 - l0..], &self.rev0);
            hi[k] = Self::unrolled_dot(&ext[center + 1 - l1..], &self.rev1);
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        if taps_changed(&mut self.s_key0, g0) {
            polyphase_reversed(g0, &mut self.g0_even, &mut self.g0_odd);
        }
        if taps_changed(&mut self.s_key1, g1) {
            polyphase_reversed(g1, &mut self.g1_even, &mut self.g1_odd);
        }
        for (m, o) in out.iter_mut().enumerate() {
            let mp = m as isize - phase as isize;
            let parity = (mp & 1) as usize;
            let (t0, t1) = if parity == 0 {
                (&self.g0_even, &self.g1_even)
            } else {
                (&self.g0_odd, &self.g1_odd)
            };
            let k_top = (mp - parity as isize) / 2;
            let start0 = (left as isize + k_top + 1 - t0.len() as isize) as usize;
            let start1 = (left as isize + k_top + 1 - t1.len() as isize) as usize;
            *o = Self::unrolled_dot(&lo_ext[start0..], t0)
                + Self::unrolled_dot(&hi_ext[start1..], t1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::dwt1d::{analyze, synthesize, BankTaps, Phase};
    use wavefuse_dtcwt::{Dtcwt, FilterBank, Image, ScalarKernel};

    fn banks() -> Vec<FilterBank> {
        vec![
            FilterBank::haar().unwrap(),
            FilterBank::daubechies(3).unwrap(),
            FilterBank::legall_5_3().unwrap(),
            FilterBank::cdf_9_7().unwrap(),
            FilterBank::near_sym_b().unwrap(),
            FilterBank::qshift_b().unwrap(),
            FilterBank::qshift_b().unwrap().time_reverse(),
        ]
    }

    fn signal(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.37).sin() + (i as f32 * 0.011).cos()) * 5.0)
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn analysis_matches_scalar_all_banks_phases() {
        for bank in banks() {
            let taps = BankTaps::new(&bank);
            for phase in [Phase::A, Phase::B] {
                for n in [8usize, 22, 64, 88] {
                    let x = signal(n);
                    let mut sc = ScalarKernel::new();
                    let mut si = SimdKernel::new();
                    let mut av = AutoVecKernel::new();
                    let (lo_s, hi_s) = analyze(&mut sc, &taps, &x, phase).unwrap();
                    let (lo_v, hi_v) = analyze(&mut si, &taps, &x, phase).unwrap();
                    let (lo_a, hi_a) = analyze(&mut av, &taps, &x, phase).unwrap();
                    let what = format!("{} n={n} {phase:?}", bank.name());
                    assert_close(&lo_s, &lo_v, 1e-4, &format!("simd lo {what}"));
                    assert_close(&hi_s, &hi_v, 1e-4, &format!("simd hi {what}"));
                    assert_close(&lo_s, &lo_a, 1e-4, &format!("autovec lo {what}"));
                    assert_close(&hi_s, &hi_a, 1e-4, &format!("autovec hi {what}"));
                }
            }
        }
    }

    #[test]
    fn synthesis_matches_scalar_all_banks_phases() {
        for bank in banks() {
            let taps = BankTaps::new(&bank);
            for phase in [Phase::A, Phase::B] {
                let x = signal(48);
                let mut sc = ScalarKernel::new();
                let (lo, hi) = analyze(&mut sc, &taps, &x, phase).unwrap();
                let ref_out = synthesize(&mut sc, &taps, &lo, &hi, phase).unwrap();
                let mut si = SimdKernel::new();
                let simd_out = synthesize(&mut si, &taps, &lo, &hi, phase).unwrap();
                let mut av = AutoVecKernel::new();
                let auto_out = synthesize(&mut av, &taps, &lo, &hi, phase).unwrap();
                let what = format!("{} {phase:?}", bank.name());
                assert_close(&ref_out, &simd_out, 1e-4, &format!("simd {what}"));
                assert_close(&ref_out, &auto_out, 1e-4, &format!("autovec {what}"));
            }
        }
    }

    #[test]
    fn full_dtcwt_round_trip_through_simd() {
        let img = Image::from_fn(88, 72, |x, y| ((x * 3 + y * 7) % 23) as f32 * 0.5);
        let t = Dtcwt::new(3).unwrap();
        let pyr = t.forward_with(&mut SimdKernel::new(), &img).unwrap();
        let back = t.inverse_with(&mut SimdKernel::new(), &pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 2e-3);
    }

    #[test]
    fn simd_and_scalar_pyramids_agree() {
        let img = Image::from_fn(64, 48, |x, y| ((x ^ y) % 31) as f32);
        let t = Dtcwt::new(3).unwrap();
        let p_scalar = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_simd = t.forward_with(&mut SimdKernel::new(), &img).unwrap();
        for level in 0..3 {
            for (a, b) in p_scalar.subbands(level).iter().zip(p_simd.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-3);
                assert!(a.im.max_abs_diff(&b.im) < 1e-3);
            }
        }
    }

    #[test]
    fn kernel_names() {
        assert_eq!(SimdKernel::new().name(), "neon-simd");
        assert_eq!(AutoVecKernel::new().name(), "neon-autovec");
    }

    #[test]
    fn cached_taps_survive_alternating_filter_banks() {
        // One long-lived kernel instance cycling through every bank twice
        // (the worker-pool usage pattern) must match fresh per-bank kernels.
        let x = signal(40);
        let mut si = SimdKernel::new();
        let mut av = AutoVecKernel::new();
        for round in 0..2 {
            for bank in banks() {
                let taps = BankTaps::new(&bank);
                for phase in [Phase::A, Phase::B] {
                    let mut sc = ScalarKernel::new();
                    let (lo, hi) = analyze(&mut sc, &taps, &x, phase).unwrap();
                    let ref_out = synthesize(&mut sc, &taps, &lo, &hi, phase).unwrap();
                    let what = format!("{} {phase:?} round {round}", bank.name());
                    let (lo_v, hi_v) = analyze(&mut si, &taps, &x, phase).unwrap();
                    let (lo_a, hi_a) = analyze(&mut av, &taps, &x, phase).unwrap();
                    assert_close(&lo, &lo_v, 1e-4, &format!("simd lo {what}"));
                    assert_close(&hi, &hi_v, 1e-4, &format!("simd hi {what}"));
                    assert_close(&lo, &lo_a, 1e-4, &format!("autovec lo {what}"));
                    assert_close(&hi, &hi_a, 1e-4, &format!("autovec hi {what}"));
                    let out_v = synthesize(&mut si, &taps, &lo, &hi, phase).unwrap();
                    let out_a = synthesize(&mut av, &taps, &lo, &hi, phase).unwrap();
                    assert_close(&ref_out, &out_v, 1e-4, &format!("simd syn {what}"));
                    assert_close(&ref_out, &out_a, 1e-4, &format!("autovec syn {what}"));
                }
            }
        }
    }

    #[test]
    fn padding_helpers() {
        let mut out = Vec::new();
        reversed_padded(&[1.0, 2.0, 3.0], false, &mut out);
        assert_eq!(out, vec![3.0, 2.0, 1.0, 0.0]);
        reversed_padded(&[1.0, 2.0, 3.0], true, &mut out);
        assert_eq!(out, vec![0.0, 3.0, 2.0, 1.0]);
        let (mut e, mut o) = (Vec::new(), Vec::new());
        polyphase_reversed(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut e, &mut o);
        assert_eq!(e, vec![0.0, 5.0, 3.0, 1.0]);
        assert_eq!(o, vec![0.0, 0.0, 4.0, 2.0]);
    }
}

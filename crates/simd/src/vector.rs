//! A portable 4-lane `f32` vector modeling a NEON quad register.

use std::ops::{Add, AddAssign, Mul, Sub};

/// Four `f32` lanes with elementwise arithmetic — the software model of a
/// NEON `float32x4_t` quad register.
///
/// All operations are plain IEEE-754 single-precision lane ops (no fused
/// multiply-add), so results are bit-identical to scalar code evaluating the
/// same expression tree, on every target. Release builds lower these to
/// native SIMD instructions.
///
/// # Examples
///
/// ```
/// use wavefuse_simd::F32x4;
///
/// let a = F32x4::new([1.0, 2.0, 3.0, 4.0]);
/// let b = F32x4::splat(10.0);
/// assert_eq!((a * b).horizontal_sum(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x4([f32; 4]);

impl F32x4 {
    /// All-zero vector.
    pub const ZERO: F32x4 = F32x4([0.0; 4]);

    /// Creates a vector from four lanes.
    #[inline(always)]
    pub const fn new(lanes: [f32; 4]) -> Self {
        F32x4(lanes)
    }

    /// Broadcasts one value to all four lanes (`vdupq_n_f32`).
    #[inline(always)]
    pub const fn splat(v: f32) -> Self {
        F32x4([v; 4])
    }

    /// Loads four consecutive values from a slice (`vld1q_f32`).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < 4`.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        F32x4([src[0], src[1], src[2], src[3]])
    }

    /// Stores the four lanes to the head of a slice (`vst1q_f32`).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < 4`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise multiply-accumulate `self + a * b` (`vmlaq_f32`).
    ///
    /// Evaluated as separate multiply then add (no FMA), matching the
    /// Cortex-A9 NEON behavior and the scalar reference.
    #[inline(always)]
    pub fn mul_add(self, a: F32x4, b: F32x4) -> Self {
        self + a * b
    }

    /// Sum of the four lanes (`vpadd` reduction), folded pairwise the way
    /// the paper's manual code reduces its accumulator register.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f32 {
        let [a, b, c, d] = self.0;
        (a + c) + (b + d)
    }

    /// Borrows the lanes.
    #[inline(always)]
    pub fn lanes(&self) -> &[f32; 4] {
        &self.0
    }
}

impl From<[f32; 4]> for F32x4 {
    fn from(lanes: [f32; 4]) -> Self {
        F32x4(lanes)
    }
}

impl Add for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Sub for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl Mul for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl AddAssign for F32x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = F32x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = F32x4::new([0.5, 0.5, 0.5, 0.5]);
        assert_eq!((a + b).lanes(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!((a - b).lanes(), &[0.5, 1.5, 2.5, 3.5]);
        assert_eq!((a * b).lanes(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn splat_and_zero() {
        assert_eq!(F32x4::splat(2.0).lanes(), &[2.0; 4]);
        assert_eq!(F32x4::ZERO.horizontal_sum(), 0.0);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [9.0f32, 8.0, 7.0, 6.0, 5.0];
        let v = F32x4::load(&src[1..]);
        let mut dst = [0.0f32; 4];
        v.store(&mut dst);
        assert_eq!(dst, [8.0, 7.0, 6.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn short_load_panics() {
        let _ = F32x4::load(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mul_add_matches_scalar_expression() {
        let acc = F32x4::new([1.0, -1.0, 0.25, 8.0]);
        let a = F32x4::new([3.0, 5.0, 7.0, 11.0]);
        let b = F32x4::splat(0.1);
        let r = acc.mul_add(a, b);
        for i in 0..4 {
            assert_eq!(r.lanes()[i], acc.lanes()[i] + a.lanes()[i] * 0.1);
        }
    }

    #[test]
    fn horizontal_sum_order_is_pairwise() {
        // (a + c) + (b + d): check against that exact association.
        let v = F32x4::new([1e8, 1.0, -1e8, 1.0]);
        assert_eq!(v.horizontal_sum(), (1e8 + -1e8) + (1.0 + 1.0));
    }
}

//! A portable 4-lane `f32` vector modeling a NEON quad register.

use std::ops::{Add, AddAssign, Mul, Sub};

/// Four `f32` lanes with elementwise arithmetic — the software model of a
/// NEON `float32x4_t` quad register.
///
/// All operations are plain IEEE-754 single-precision lane ops (no fused
/// multiply-add), so results are bit-identical to scalar code evaluating the
/// same expression tree, on every target. Release builds lower these to
/// native SIMD instructions.
///
/// # Examples
///
/// ```
/// use wavefuse_simd::F32x4;
///
/// let a = F32x4::new([1.0, 2.0, 3.0, 4.0]);
/// let b = F32x4::splat(10.0);
/// assert_eq!((a * b).horizontal_sum(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x4([f32; 4]);

impl F32x4 {
    /// All-zero vector.
    pub const ZERO: F32x4 = F32x4([0.0; 4]);

    /// Creates a vector from four lanes.
    #[inline(always)]
    pub const fn new(lanes: [f32; 4]) -> Self {
        F32x4(lanes)
    }

    /// Broadcasts one value to all four lanes (`vdupq_n_f32`).
    #[inline(always)]
    pub const fn splat(v: f32) -> Self {
        F32x4([v; 4])
    }

    /// Loads four consecutive values from a slice (`vld1q_f32`).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < 4`.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        F32x4([src[0], src[1], src[2], src[3]])
    }

    /// Stores the four lanes to the head of a slice (`vst1q_f32`).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < 4`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise multiply-accumulate `self + a * b` (`vmlaq_f32`).
    ///
    /// Evaluated as separate multiply then add (no FMA), matching the
    /// Cortex-A9 NEON behavior and the scalar reference.
    #[inline(always)]
    pub fn mul_add(self, a: F32x4, b: F32x4) -> Self {
        self + a * b
    }

    /// Sum of the four lanes (`vpadd` reduction), folded pairwise the way
    /// the paper's manual code reduces its accumulator register.
    ///
    /// The fold order is part of the numerical contract, not an
    /// implementation detail: for lanes `[a, b, c, d]` the result is exactly
    /// `(a + c) + (b + d)` — lane 0 plus lane 2 first, then lane 1 plus
    /// lane 3, then the two partial sums. Every consumer that must be
    /// bit-identical to `simd_dot` (the `AutoVecKernel` unrolled fold and
    /// the columnar kernels' per-column partial-accumulator fold) replicates
    /// this exact association instead of a left-to-right sum.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f32 {
        let [a, b, c, d] = self.0;
        (a + c) + (b + d)
    }

    /// Borrows the lanes.
    #[inline(always)]
    pub fn lanes(&self) -> &[f32; 4] {
        &self.0
    }
}

impl From<[f32; 4]> for F32x4 {
    fn from(lanes: [f32; 4]) -> Self {
        F32x4(lanes)
    }
}

impl Add for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Sub for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl Mul for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        F32x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl AddAssign for F32x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Eight `f32` lanes — a software model of a NEON quad-register *pair*
/// (`float32x4x2_t`), used by the columnar kernels to filter eight adjacent
/// image columns per accumulator.
///
/// Like [`F32x4`], every operation is a plain IEEE-754 single-precision lane
/// op with no fused multiply-add, so each lane's value is bit-identical to a
/// scalar evaluation of the same expression tree. The columnar path relies on
/// this: widening from 4 to 8 lanes changes only how many columns are batched,
/// never any individual column's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x8([f32; 8]);

impl F32x8 {
    /// All-zero vector.
    pub const ZERO: F32x8 = F32x8([0.0; 8]);

    /// Creates a vector from eight lanes.
    #[inline(always)]
    pub const fn new(lanes: [f32; 8]) -> Self {
        F32x8(lanes)
    }

    /// Broadcasts one value to all eight lanes.
    #[inline(always)]
    pub const fn splat(v: f32) -> Self {
        F32x8([v; 8])
    }

    /// Loads eight consecutive values from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < 8`.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        F32x8([
            src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7],
        ])
    }

    /// Stores the eight lanes to the head of a slice.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < 8`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..8].copy_from_slice(&self.0);
    }

    /// Lane-wise multiply-accumulate `self + a * b` (separate multiply then
    /// add, no FMA — see [`F32x4::mul_add`]).
    #[inline(always)]
    pub fn mul_add(self, a: F32x8, b: F32x8) -> Self {
        self + a * b
    }

    /// Borrows the lanes.
    #[inline(always)]
    pub fn lanes(&self) -> &[f32; 8] {
        &self.0
    }

    /// Lane-wise `self >= rhs`, the NEON `vcgeq_f32` analogue. Combined
    /// with [`Mask8::select`] this models the compare/bit-select pair the
    /// choose-style fusion rules vectorize with; each lane's comparison is
    /// exactly the scalar `>=` on the same two values.
    #[inline(always)]
    pub fn ge(self, rhs: F32x8) -> Mask8 {
        let mut out = [false; 8];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a >= b;
        }
        Mask8(out)
    }
}

/// Lane-wise boolean mask produced by [`F32x8::ge`], the software analogue
/// of a NEON `uint32x4_t` compare result feeding `vbslq_f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask8([bool; 8]);

impl Mask8 {
    /// Creates a mask from eight lane booleans.
    #[inline(always)]
    pub const fn new(lanes: [bool; 8]) -> Self {
        Mask8(lanes)
    }

    /// Borrows the lanes.
    #[inline(always)]
    pub fn lanes(&self) -> &[bool; 8] {
        &self.0
    }

    /// Lane-wise select: `t` where the mask is set, `f` elsewhere (the NEON
    /// `vbslq_f32` analogue). Copies one source lane's bits verbatim, so
    /// selection is exact — never an arithmetic approximation.
    #[inline(always)]
    pub fn select(self, t: F32x8, f: F32x8) -> F32x8 {
        let mut out = [0.0f32; 8];
        for (i, o) in out.iter_mut().enumerate() {
            *o = if self.0[i] { t.0[i] } else { f.0[i] };
        }
        F32x8(out)
    }
}

impl From<[f32; 8]> for F32x8 {
    fn from(lanes: [f32; 8]) -> Self {
        F32x8(lanes)
    }
}

impl Add for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 8];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a + b;
        }
        F32x8(out)
    }
}

impl Sub for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 8];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a - b;
        }
        F32x8(out)
    }
}

impl Mul for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 8];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a * b;
        }
        F32x8(out)
    }
}

impl AddAssign for F32x8 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = F32x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = F32x4::new([0.5, 0.5, 0.5, 0.5]);
        assert_eq!((a + b).lanes(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!((a - b).lanes(), &[0.5, 1.5, 2.5, 3.5]);
        assert_eq!((a * b).lanes(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn splat_and_zero() {
        assert_eq!(F32x4::splat(2.0).lanes(), &[2.0; 4]);
        assert_eq!(F32x4::ZERO.horizontal_sum(), 0.0);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [9.0f32, 8.0, 7.0, 6.0, 5.0];
        let v = F32x4::load(&src[1..]);
        let mut dst = [0.0f32; 4];
        v.store(&mut dst);
        assert_eq!(dst, [8.0, 7.0, 6.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn short_load_panics() {
        let _ = F32x4::load(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mul_add_matches_scalar_expression() {
        let acc = F32x4::new([1.0, -1.0, 0.25, 8.0]);
        let a = F32x4::new([3.0, 5.0, 7.0, 11.0]);
        let b = F32x4::splat(0.1);
        let r = acc.mul_add(a, b);
        for i in 0..4 {
            assert_eq!(r.lanes()[i], acc.lanes()[i] + a.lanes()[i] * 0.1);
        }
    }

    #[test]
    fn horizontal_sum_order_is_pairwise() {
        // (a + c) + (b + d): check against that exact association.
        let v = F32x4::new([1e8, 1.0, -1e8, 1.0]);
        assert_eq!(v.horizontal_sum(), (1e8 + -1e8) + (1.0 + 1.0));
    }

    #[test]
    fn wide_elementwise_ops() {
        let a = F32x8::new([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.5);
        assert_eq!((a + b).lanes()[7], 8.5);
        assert_eq!((a - b).lanes()[0], 0.5);
        assert_eq!((a * b).lanes()[3], 2.0);
        assert_eq!(F32x8::ZERO.lanes(), &[0.0; 8]);
    }

    #[test]
    fn wide_load_store_round_trip() {
        let src: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let v = F32x8::load(&src[1..]);
        let mut dst = [0.0f32; 8];
        v.store(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic]
    fn wide_short_load_panics() {
        let _ = F32x8::load(&[1.0; 7]);
    }

    #[test]
    fn wide_mul_add_matches_lane_arithmetic() {
        let acc = F32x8::splat(1.0);
        let a = F32x8::new([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.25);
        let r = acc.mul_add(a, b);
        for i in 0..8 {
            assert_eq!(r.lanes()[i], 1.0 + a.lanes()[i] * 0.25);
        }
    }

    #[test]
    fn ge_select_is_lane_exact() {
        let a = F32x8::new([1.0, 2.0, 2.0, -1.0, 0.0, -0.0, f32::MIN, 5.0]);
        let b = F32x8::new([2.0, 2.0, 1.0, -2.0, -0.0, 0.0, f32::MAX, 5.0]);
        let m = a.ge(b);
        assert_eq!(
            m.lanes(),
            &[false, true, true, true, true, true, false, true]
        );
        let s = m.select(a, b);
        for i in 0..8 {
            let want = if a.lanes()[i] >= b.lanes()[i] {
                a.lanes()[i]
            } else {
                b.lanes()[i]
            };
            assert_eq!(s.lanes()[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }
}

//! The "NEON engine": 4-lane SIMD filter kernels.
//!
//! The paper vectorizes the forward and inverse DT-CWT for the ARM
//! Cortex-A9's NEON unit — 128-bit quad registers holding four `f32` lanes,
//! driven both by manual intrinsics (`float32x4_t`, Fig. 3) and by compiler
//! auto-vectorization (`-mfpu=neon -ftree-vectorize`). This crate reproduces
//! both flavors on a portable 4-lane vector type:
//!
//! * [`F32x4`] — the quad-register model. Elementwise ops over a `[f32; 4]`
//!   newtype; LLVM lowers these to native SIMD (SSE/NEON) on release builds,
//!   and the semantics are identical everywhere (no FMA contraction).
//! * [`SimdKernel`] — the *manual* vectorization: reversed-tap dot products
//!   accumulated in a vector register and folded with a horizontal add,
//!   exactly the structure of the paper's Fig. 3 intrinsics listing.
//! * [`AutoVecKernel`] — the *auto* vectorization: plain indexed loops
//!   shaped so the compiler can vectorize them (fixed trip counts, no
//!   aliasing), mirroring the paper's `__restrict` + masked-length C code.
//!
//! Both kernels implement [`wavefuse_dtcwt::FilterKernel`] and are verified
//! bit-for-bit-close against the scalar reference in the tests. They also
//! override the trait's *column passes* with a transpose-free columnar path
//! ([`F32x8`] / [`F32x4`] lanes each owning one image column) that is
//! bit-identical to the transpose-staged fallback — see [`kernel`].
//!
//! # Examples
//!
//! ```
//! use wavefuse_dtcwt::{Dtcwt, Image};
//! use wavefuse_simd::SimdKernel;
//!
//! let img = Image::from_fn(40, 40, |x, y| (x * y % 17) as f32);
//! let t = Dtcwt::new(2)?;
//! let pyr = t.forward_with(&mut SimdKernel::new(), &img)?;
//! let back = t.inverse_with(&mut SimdKernel::new(), &pyr)?;
//! assert!(back.max_abs_diff(&img) < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuse;
pub mod kernel;
pub mod vector;

pub use fuse::fuse_strip_simd;
pub use kernel::{AutoVecKernel, SimdKernel};
pub use vector::{F32x4, F32x8, Mask8};

/// Number of `f32` lanes in the modeled NEON quad register.
///
/// This stays 4 (the Cortex-A9 quad register) even though the columnar
/// column passes additionally batch two quad registers per iteration via
/// [`F32x8`] — cost-model calibration is keyed to the 4-lane row primitive.
pub const LANES: usize = 4;

//! Vectorized strip fusion — the NEON-style implementation of the
//! [`wavefuse_dtcwt::fuse`] fold-order contract.
//!
//! The interior of each row is processed in [`F32x8`] blocks (two modeled
//! quad registers, matching the columnar transform path); borders and
//! ragged tails fall back to the scalar per-pixel expressions. Bit-identity
//! with [`wavefuse_dtcwt::fuse_strip_scalar`] holds by construction:
//!
//! * every vector op is a lane loop with no FMA, so lane `x` evaluates
//!   exactly the scalar expression tree for column `x`;
//! * the windowed sums fold in the same ascending order, seeded with the
//!   first window element — never a zero accumulator;
//! * the choose rules compare with [`F32x8::ge`] and copy one source's
//!   lanes verbatim with [`crate::vector::Mask8::select`] (the NEON
//!   `vcgeq_f32`/`vbslq_f32` pair), so selection is exact;
//! * the Burt–Kolczynski match/blend arithmetic reuses the scalar
//!   [`fuse::activity_weights`] per lane after the vectorized window sums.

use crate::vector::F32x8;
use wavefuse_dtcwt::fuse::{self, FuseOp, FuseScratch};
use wavefuse_dtcwt::{ComplexImage, DtcwtError, Image};

const W8: usize = 8;

/// Vectorized twin of [`wavefuse_dtcwt::fuse_strip_scalar`]: fuses rows
/// `[y0, y1)` of one subband pair into `out_re`/`out_im`, bit-identical to
/// the scalar reference for every rule.
///
/// # Errors
///
/// Returns [`DtcwtError::MalformedPyramid`] if the subband shapes differ or
/// the strip rows fall outside the subband.
#[allow(clippy::too_many_arguments)]
pub fn fuse_strip_simd(
    a: &ComplexImage,
    b: &ComplexImage,
    y0: usize,
    y1: usize,
    op: FuseOp,
    fs: &mut FuseScratch,
    out_re: &mut Image,
    out_im: &mut Image,
) -> Result<(), DtcwtError> {
    let (w, h) = fuse::check_strip(a, b, y0, y1)?;
    out_re.reshape(w, y1 - y0);
    out_im.reshape(w, y1 - y0);
    match op {
        FuseOp::MaxMagnitude => {
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                let mut x = 0;
                while x + W8 <= w {
                    let var = F32x8::load(&ar[x..]);
                    let vai = F32x8::load(&ai[x..]);
                    let vbr = F32x8::load(&br[x..]);
                    let vbi = F32x8::load(&bi[x..]);
                    let ma = var * var + vai * vai;
                    let mb = vbr * vbr + vbi * vbi;
                    let pick = ma.ge(mb);
                    pick.select(var, vbr).store(&mut ore[x..]);
                    pick.select(vai, vbi).store(&mut oim[x..]);
                    x += W8;
                }
                for x in x..w {
                    let ma = ar[x] * ar[x] + ai[x] * ai[x];
                    let mb = br[x] * br[x] + bi[x] * bi[x];
                    let pick_a = ma >= mb;
                    ore[x] = if pick_a { ar[x] } else { br[x] };
                    oim[x] = if pick_a { ai[x] } else { bi[x] };
                }
            }
        }
        FuseOp::Weighted { alpha } => {
            let beta = 1.0 - alpha;
            let va = F32x8::splat(alpha);
            let vb = F32x8::splat(beta);
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                let mut x = 0;
                while x + W8 <= w {
                    (va * F32x8::load(&ar[x..]) + vb * F32x8::load(&br[x..])).store(&mut ore[x..]);
                    (va * F32x8::load(&ai[x..]) + vb * F32x8::load(&bi[x..])).store(&mut oim[x..]);
                    x += W8;
                }
                for x in x..w {
                    ore[x] = alpha * ar[x] + beta * br[x];
                    oim[x] = alpha * ai[x] + beta * bi[x];
                }
            }
        }
        FuseOp::WindowEnergy { radius } => {
            let (lo, _hi) = fuse::strip_source_span(y0, y1, h, radius);
            horizontal_energy_simd(a, y0, y1, h, radius, &mut fs.erow, &mut fs.ha);
            horizontal_energy_simd(b, y0, y1, h, radius, &mut fs.erow, &mut fs.hb);
            let r = radius as isize;
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                let mut x = 0;
                while x + W8 <= w {
                    let ea = vertical_sum_v(&fs.ha, x, y, h, r, lo);
                    let eb = vertical_sum_v(&fs.hb, x, y, h, r, lo);
                    let pick = ea.ge(eb);
                    pick.select(F32x8::load(&ar[x..]), F32x8::load(&br[x..]))
                        .store(&mut ore[x..]);
                    pick.select(F32x8::load(&ai[x..]), F32x8::load(&bi[x..]))
                        .store(&mut oim[x..]);
                    x += W8;
                }
                for x in x..w {
                    let ea = fuse::vertical_sum(&fs.ha, x, y, h, r, lo);
                    let eb = fuse::vertical_sum(&fs.hb, x, y, h, r, lo);
                    let pick_a = ea >= eb;
                    ore[x] = if pick_a { ar[x] } else { br[x] };
                    oim[x] = if pick_a { ai[x] } else { bi[x] };
                }
            }
        }
        FuseOp::ActivityGuided {
            radius,
            match_threshold,
        } => {
            let (lo, _hi) = fuse::strip_source_span(y0, y1, h, radius);
            horizontal_energy_simd(a, y0, y1, h, radius, &mut fs.erow, &mut fs.ha);
            horizontal_energy_simd(b, y0, y1, h, radius, &mut fs.erow, &mut fs.hb);
            horizontal_cross_simd(a, b, y0, y1, h, radius, &mut fs.erow, &mut fs.hx);
            let r = radius as isize;
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                let mut x = 0;
                while x + W8 <= w {
                    // Window sums vectorize; the branchy match/blend math
                    // runs the scalar expression per lane.
                    let ea = vertical_sum_v(&fs.ha, x, y, h, r, lo);
                    let eb = vertical_sum_v(&fs.hb, x, y, h, r, lo);
                    let cx = vertical_sum_v(&fs.hx, x, y, h, r, lo);
                    for i in 0..W8 {
                        let (w_a, w_b) = fuse::activity_weights(
                            ea.lanes()[i],
                            eb.lanes()[i],
                            cx.lanes()[i],
                            match_threshold,
                        );
                        ore[x + i] = w_a * ar[x + i] + w_b * br[x + i];
                        oim[x + i] = w_a * ai[x + i] + w_b * bi[x + i];
                    }
                    x += W8;
                }
                for x in x..w {
                    let ea = fuse::vertical_sum(&fs.ha, x, y, h, r, lo);
                    let eb = fuse::vertical_sum(&fs.hb, x, y, h, r, lo);
                    let cx = fuse::vertical_sum(&fs.hx, x, y, h, r, lo);
                    let (w_a, w_b) = fuse::activity_weights(ea, eb, cx, match_threshold);
                    ore[x] = w_a * ar[x] + w_b * br[x];
                    oim[x] = w_a * ai[x] + w_b * bi[x];
                }
            }
        }
    }
    Ok(())
}

/// Vertical clamped window fold of one 8-column block — the vector twin of
/// [`fuse::vertical_sum`] (ascending `dy`, seeded with the first window
/// row; no clamping needed in `x` since callers keep blocks in-bounds).
#[inline(always)]
fn vertical_sum_v(hmap: &Image, x: usize, y: usize, h: usize, r: isize, lo: usize) -> F32x8 {
    let yy = |dy: isize| ((y as isize + dy).clamp(0, h as isize - 1) as usize) - lo;
    let mut acc = F32x8::load(&hmap.row(yy(-r))[x..]);
    let mut dy = -r + 1;
    while dy <= r {
        acc += F32x8::load(&hmap.row(yy(dy))[x..]);
        dy += 1;
    }
    acc
}

/// Vectorized twin of [`fuse::horizontal_energy`]: stages each source
/// row's `re² + im²` in 8-lane blocks, then applies the horizontal window.
fn horizontal_energy_simd(
    c: &ComplexImage,
    y0: usize,
    y1: usize,
    h: usize,
    radius: usize,
    erow: &mut Vec<f32>,
    hmap: &mut Image,
) {
    let (w, _) = c.dims();
    let (lo, hi) = fuse::strip_source_span(y0, y1, h, radius);
    hmap.reshape(w, hi - lo);
    if erow.len() != w {
        erow.resize(w, 0.0);
    }
    for yy in lo..hi {
        let (re, im) = (c.re.row(yy), c.im.row(yy));
        let mut x = 0;
        while x + W8 <= w {
            let vr = F32x8::load(&re[x..]);
            let vi = F32x8::load(&im[x..]);
            (vr * vr + vi * vi).store(&mut erow[x..]);
            x += W8;
        }
        for x in x..w {
            erow[x] = re[x] * re[x] + im[x] * im[x];
        }
        horizontal_window_simd(erow, radius, hmap.row_mut(yy - lo));
    }
}

/// Vectorized twin of [`fuse::horizontal_cross`].
#[allow(clippy::too_many_arguments)]
fn horizontal_cross_simd(
    a: &ComplexImage,
    b: &ComplexImage,
    y0: usize,
    y1: usize,
    h: usize,
    radius: usize,
    erow: &mut Vec<f32>,
    hmap: &mut Image,
) {
    let (w, _) = a.dims();
    let (lo, hi) = fuse::strip_source_span(y0, y1, h, radius);
    hmap.reshape(w, hi - lo);
    if erow.len() != w {
        erow.resize(w, 0.0);
    }
    for yy in lo..hi {
        let (ar, ai) = (a.re.row(yy), a.im.row(yy));
        let (br, bi) = (b.re.row(yy), b.im.row(yy));
        let mut x = 0;
        while x + W8 <= w {
            let v = F32x8::load(&ar[x..]) * F32x8::load(&br[x..])
                + F32x8::load(&ai[x..]) * F32x8::load(&bi[x..]);
            v.store(&mut erow[x..]);
            x += W8;
        }
        for x in x..w {
            erow[x] = ar[x] * br[x] + ai[x] * bi[x];
        }
        horizontal_window_simd(erow, radius, hmap.row_mut(yy - lo));
    }
}

/// Vectorized twin of [`fuse::horizontal_window`]: clamped borders run the
/// scalar fold; the interior (where the whole window is in-bounds) folds
/// shifted 8-lane loads in the same ascending `dx` order.
fn horizontal_window_simd(erow: &[f32], radius: usize, out: &mut [f32]) {
    let w = erow.len();
    let r = radius as isize;
    let scalar_at = |x: usize| {
        let idx = |dx: isize| (x as isize + dx).clamp(0, w as isize - 1) as usize;
        let mut acc = erow[idx(-r)];
        let mut dx = -r + 1;
        while dx <= r {
            acc += erow[idx(dx)];
            dx += 1;
        }
        acc
    };
    // Left border: the window clamps at 0.
    let left_end = radius.min(w);
    for (x, o) in out.iter_mut().enumerate().take(left_end) {
        *o = scalar_at(x);
    }
    // Interior: x ≥ r and x + 7 + r ≤ w − 1.
    let mut x = left_end;
    while x >= radius && x + W8 + radius <= w {
        let mut acc = F32x8::load(&erow[x - radius..]);
        let mut dx = 1;
        while dx <= 2 * radius {
            acc += F32x8::load(&erow[x - radius + dx..]);
            dx += 1;
        }
        acc.store(&mut out[x..]);
        x += W8;
    }
    // Right border + ragged tail.
    for (x, o) in out.iter_mut().enumerate().take(w).skip(x) {
        *o = scalar_at(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::fuse_strip_scalar;

    fn pair(w: usize, h: usize) -> (ComplexImage, ComplexImage) {
        let mut a = ComplexImage::zeros(w, h);
        let mut b = ComplexImage::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                a.re.set(x, y, ((x * 3 + y * 7) % 13) as f32 * 0.31 - 1.9);
                a.im.set(x, y, ((x + y * 5) % 11) as f32 * 0.27 - 1.3);
                b.re.set(x, y, ((x * 5 + y) % 17) as f32 * 0.21 - 1.7);
                b.im.set(x, y, ((x * 2 + y * 3) % 7) as f32 * 0.41 - 1.2);
            }
        }
        (a, b)
    }

    #[test]
    fn simd_strip_fusion_matches_scalar_bit_for_bit() {
        // Every rule × radius × odd/even widths (vector blocks + ragged
        // tails) × strip decompositions must reproduce the scalar
        // reference exactly.
        let ops = [
            FuseOp::MaxMagnitude,
            FuseOp::Weighted { alpha: 0.3 },
            FuseOp::WindowEnergy { radius: 1 },
            FuseOp::WindowEnergy { radius: 2 },
            FuseOp::WindowEnergy { radius: 4 },
            FuseOp::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
            FuseOp::ActivityGuided {
                radius: 3,
                match_threshold: 0.5,
            },
        ];
        for (w, h) in [(5usize, 4usize), (8, 8), (23, 11), (32, 16), (45, 13)] {
            let (a, b) = pair(w, h);
            for op in ops {
                let mut fs = FuseScratch::new();
                let (mut want_re, mut want_im) = (Image::zeros(0, 0), Image::zeros(0, 0));
                fuse_strip_scalar(&a, &b, 0, h, op, &mut fs, &mut want_re, &mut want_im).unwrap();
                for rows in [1usize, 2, 5, h] {
                    let (mut sre, mut sim) = (Image::zeros(0, 0), Image::zeros(0, 0));
                    let mut y0 = 0;
                    while y0 < h {
                        let y1 = (y0 + rows).min(h);
                        fuse_strip_simd(&a, &b, y0, y1, op, &mut fs, &mut sre, &mut sim).unwrap();
                        for y in y0..y1 {
                            assert_eq!(
                                sre.row(y - y0),
                                want_re.row(y),
                                "{op:?} {w}x{h} rows={rows} y={y} re"
                            );
                            assert_eq!(
                                sim.row(y - y0),
                                want_im.row(y),
                                "{op:?} {w}x{h} rows={rows} y={y} im"
                            );
                        }
                        y0 = y1;
                    }
                }
            }
        }
    }

    #[test]
    fn simd_strip_fusion_rejects_bad_strips() {
        let (a, b) = pair(8, 8);
        let mut fs = FuseScratch::new();
        let (mut re, mut im) = (Image::zeros(0, 0), Image::zeros(0, 0));
        assert!(fuse_strip_simd(
            &a,
            &b,
            4,
            4,
            FuseOp::MaxMagnitude,
            &mut fs,
            &mut re,
            &mut im
        )
        .is_err());
        assert!(fuse_strip_simd(
            &a,
            &b,
            0,
            9,
            FuseOp::MaxMagnitude,
            &mut fs,
            &mut re,
            &mut im
        )
        .is_err());
    }

    #[test]
    fn window_wider_than_the_subband_stays_exact() {
        // Radius larger than either dimension: everything clamps, borders
        // dominate, and the SIMD interior never runs — still identical.
        let (a, b) = pair(6, 3);
        let op = FuseOp::WindowEnergy { radius: 7 };
        let mut fs = FuseScratch::new();
        let (mut want_re, mut want_im) = (Image::zeros(0, 0), Image::zeros(0, 0));
        fuse_strip_scalar(&a, &b, 0, 3, op, &mut fs, &mut want_re, &mut want_im).unwrap();
        let (mut got_re, mut got_im) = (Image::zeros(0, 0), Image::zeros(0, 0));
        fuse_strip_simd(&a, &b, 0, 3, op, &mut fs, &mut got_re, &mut got_im).unwrap();
        assert_eq!(got_re, want_re);
        assert_eq!(got_im, want_im);
    }
}

//! Property-based tests for the wavelet substrate.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_dtcwt::design::{daubechies, design_dual_lowpass, halfband_violation};
use wavefuse_dtcwt::dwt1d::{analyze, synthesize, BankTaps, Phase};
use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank, Image, ScalarKernel};

fn arb_even_signal() -> impl Strategy<Value = Vec<f32>> {
    (2usize..=64).prop_flat_map(|half| proptest::collection::vec(-50.0f32..50.0, half * 2))
}

fn bank_from_index(i: usize) -> FilterBank {
    match i % 6 {
        0 => FilterBank::haar(),
        1 => FilterBank::daubechies(2),
        2 => FilterBank::daubechies(5),
        3 => FilterBank::legall_5_3(),
        4 => FilterBank::cdf_9_7(),
        _ => FilterBank::qshift_b(),
    }
    .expect("built-in banks validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_d_perfect_reconstruction(
        x in arb_even_signal(),
        bank_idx in 0usize..6,
        phase_b in proptest::bool::ANY,
    ) {
        let bank = bank_from_index(bank_idx);
        let taps = BankTaps::new(&bank);
        let phase = if phase_b { Phase::B } else { Phase::A };
        let mut k = ScalarKernel::new();
        let (lo, hi) = analyze(&mut k, &taps, &x, phase).unwrap();
        let back = synthesize(&mut k, &taps, &lo, &hi, phase).unwrap();
        let scale = x.iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 2e-4 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn analysis_is_linear(
        x in arb_even_signal(),
        k_scale in -3.0f32..3.0,
    ) {
        let bank = FilterBank::cdf_9_7().unwrap();
        let taps = BankTaps::new(&bank);
        let mut k = ScalarKernel::new();
        let (lo, _) = analyze(&mut k, &taps, &x, Phase::A).unwrap();
        let scaled: Vec<f32> = x.iter().map(|v| v * k_scale).collect();
        let (lo_s, _) = analyze(&mut k, &taps, &scaled, Phase::A).unwrap();
        let scale = x.iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for (a, b) in lo.iter().zip(&lo_s) {
            prop_assert!((a * k_scale - b).abs() < 1e-3 * scale.max(1.0));
        }
    }

    #[test]
    fn orthonormal_banks_preserve_energy(x in arb_even_signal(), n in 1usize..=8) {
        let bank = FilterBank::daubechies(n).unwrap();
        let taps = BankTaps::new(&bank);
        let mut k = ScalarKernel::new();
        let (lo, hi) = analyze(&mut k, &taps, &x, Phase::A).unwrap();
        let ein: f64 = x.iter().map(|v| (*v as f64) * (*v as f64)).sum();
        let eout: f64 = lo.iter().chain(&hi).map(|v| (*v as f64) * (*v as f64)).sum();
        prop_assert!((ein - eout).abs() < 1e-2 * ein.max(1.0), "{ein} vs {eout}");
    }

    #[test]
    fn daubechies_family_is_halfband(n in 1usize..=12) {
        let h = daubechies(n).unwrap();
        let g: Vec<f64> = h.iter().rev().copied().collect();
        prop_assert!(halfband_violation(&h, &g) < 1e-7);
    }

    #[test]
    fn dual_design_always_yields_pr(extra in 0usize..3) {
        // Dual lengths 3, 7, 11 for the LeGall 5-tap primal.
        let s = std::f64::consts::SQRT_2;
        let h0: Vec<f64> = [-0.125, 0.25, 0.75, 0.25, -0.125].iter().map(|c| c * s).collect();
        let dual_len = 3 + 4 * extra;
        let g0 = design_dual_lowpass(&h0, dual_len).unwrap();
        prop_assert!(halfband_violation(&h0, &g0) < 1e-9);
    }

    #[test]
    fn dtcwt_reconstruction_arbitrary_shapes(
        w in 8usize..=48,
        h in 8usize..=48,
        seed in 0u32..1000,
    ) {
        let img = Image::from_fn(w, h, |x, y| {
            let v = (x as u32).wrapping_mul(2654435761)
                .wrapping_add((y as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            (v % 211) as f32 / 210.0 - 0.5
        });
        let levels = 2.min(Dwt2d::max_levels(w, h));
        prop_assume!(levels >= 1);
        let t = Dtcwt::new(levels).unwrap();
        let pyr = t.forward(&img).unwrap();
        let back = t.inverse(&pyr).unwrap();
        prop_assert!(back.max_abs_diff(&img) < 5e-3);
    }

    #[test]
    fn transform_commutes_with_scaling(
        seed in 0u32..500,
        k_scale in 0.1f32..4.0,
    ) {
        let img = Image::from_fn(24, 24, |x, y| {
            ((x * 7 + y * 13 + seed as usize) % 31) as f32 * 0.1
        });
        let t = Dtcwt::new(2).unwrap();
        let p1 = t.forward(&img).unwrap();
        let mut scaled = img.clone();
        scaled.scale_in_place(k_scale);
        let p2 = t.forward(&scaled).unwrap();
        for level in 0..2 {
            let e1 = p1.level_energy(level);
            let e2 = p2.level_energy(level);
            let expect = e1 * (k_scale as f64).powi(2);
            prop_assert!((e2 - expect).abs() < 1e-2 * expect.max(1e-9), "{e2} vs {expect}");
        }
    }
}

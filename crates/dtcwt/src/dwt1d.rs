//! One-dimensional decimated wavelet transform (single level).
//!
//! Implements the circular (periodized) two-channel transform on top of a
//! [`FilterKernel`]. Circular extension gives *exact* perfect reconstruction
//! for every validated [`FilterBank`], including the even-length quarter-shift
//! banks the DT-CWT needs — which symmetric extension cannot offer without
//! special-casing.
//!
//! The decimation `phase` parameter selects which polyphase component the
//! analysis keeps; the two trees of the DT-CWT's first level are exactly the
//! `phase = 0` and `phase = 1` versions of the same bank.

use crate::filters::FilterBank;
use crate::kernel::FilterKernel;
use crate::scratch::Scratch1d;
use crate::DtcwtError;

/// Decimation phase of a single-level transform. `A` keeps even-indexed
/// filter outputs, `B` keeps odd-indexed outputs (a half-sample delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Even polyphase component (tree A of the DT-CWT level 1).
    A,
    /// Odd polyphase component (tree B of the DT-CWT level 1).
    B,
}

impl Phase {
    /// Numeric offset (0 or 1).
    #[inline]
    pub fn offset(self) -> usize {
        match self {
            Phase::A => 0,
            Phase::B => 1,
        }
    }
}

/// `f32` filter taps of a bank, cached so per-row calls avoid re-conversion.
#[derive(Debug, Clone)]
pub struct BankTaps {
    /// Analysis lowpass.
    pub h0: Vec<f32>,
    /// Analysis highpass.
    pub h1: Vec<f32>,
    /// Synthesis lowpass.
    pub g0: Vec<f32>,
    /// Synthesis highpass.
    pub g1: Vec<f32>,
    /// Analysis extension margin.
    analysis_left: usize,
    /// Synthesis extension margin (on the decimated channels).
    synthesis_left: usize,
    /// Delay-compensating rotation applied after synthesis.
    delay: usize,
}

impl BankTaps {
    /// Extracts and caches the `f32` taps of a validated bank.
    pub fn new(bank: &FilterBank) -> Self {
        let (h0, h1) = bank.analysis_f32();
        let (g0, g1) = bank.synthesis_f32();
        let analysis_left = h0.len().max(h1.len());
        // The extra slack beyond the polyphase reach lets SIMD kernels use
        // front-padded lane-aligned tap vectors without underrunning.
        let synthesis_left = g0.len().max(g1.len()) / 2 + 5;
        let delay = (h0.len() + g0.len()) / 2 - 1;
        BankTaps {
            h0,
            h1,
            g0,
            g1,
            analysis_left,
            synthesis_left,
            delay,
        }
    }

    /// Total end-to-end delay (analysis + synthesis), an odd number of
    /// samples compensated by [`synthesize`].
    pub fn delay(&self) -> usize {
        self.delay
    }
}

/// Circularly extends `x` with `left` wrapped samples before and `right`
/// after, into `out` (cleared first).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn extend_circular_into(x: &[f32], left: usize, right: usize, out: &mut Vec<f32>) {
    assert!(!x.is_empty(), "cannot extend an empty signal");
    let n = x.len();
    out.clear();
    out.reserve(n + left + right);
    for i in 0..left {
        // index -(left - i) mod n
        out.push(x[(n - 1) - ((left - 1 - i) % n)]);
    }
    out.extend_from_slice(x);
    for i in 0..right {
        out.push(x[i % n]);
    }
}

/// Single-level decimating analysis of an even-length signal.
///
/// Returns `(lowpass, highpass)`, each of length `x.len() / 2`.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if `x` is empty or of odd length.
pub fn analyze(
    kernel: &mut dyn FilterKernel,
    taps: &BankTaps,
    x: &[f32],
    phase: Phase,
) -> Result<(Vec<f32>, Vec<f32>), DtcwtError> {
    let half = x.len() / 2;
    let mut lo = vec![0.0f32; half];
    let mut hi = vec![0.0f32; half];
    let mut scratch = Scratch1d::new();
    analyze_into(kernel, taps, x, phase, &mut lo, &mut hi, &mut scratch)?;
    Ok((lo, hi))
}

/// Allocation-free variant of [`analyze`]: writes the decimated channels
/// into caller-provided slices, staging the circular extension in `scratch`.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if `x` is empty or of odd length,
/// or if `lo`/`hi` are not exactly `x.len() / 2` long.
pub fn analyze_into<K: FilterKernel + ?Sized>(
    kernel: &mut K,
    taps: &BankTaps,
    x: &[f32],
    phase: Phase,
    lo: &mut [f32],
    hi: &mut [f32],
    scratch: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    if x.is_empty() || !x.len().is_multiple_of(2) {
        return Err(DtcwtError::BadDimensions {
            width: x.len(),
            height: 1,
            reason: "1-d analysis requires even non-zero length",
        });
    }
    let half = x.len() / 2;
    if lo.len() != half || hi.len() != half {
        return Err(DtcwtError::BadDimensions {
            width: lo.len(),
            height: hi.len(),
            reason: "analysis outputs must each be half the input length",
        });
    }
    extend_circular_into(x, taps.analysis_left, taps.analysis_left, &mut scratch.ext);
    kernel.analyze_row(
        &scratch.ext,
        taps.analysis_left,
        &taps.h0,
        &taps.h1,
        phase.offset(),
        lo,
        hi,
    );
    Ok(())
}

/// Single-level interpolating synthesis; exact inverse of [`analyze`] for
/// the same bank and phase.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if the channels are empty or of
/// different lengths.
pub fn synthesize(
    kernel: &mut dyn FilterKernel,
    taps: &BankTaps,
    lo: &[f32],
    hi: &[f32],
    phase: Phase,
) -> Result<Vec<f32>, DtcwtError> {
    let mut out = vec![0.0f32; lo.len() * 2];
    let mut scratch = Scratch1d::new();
    synthesize_into(kernel, taps, lo, hi, phase, &mut out, &mut scratch)?;
    Ok(out)
}

/// Allocation-free variant of [`synthesize`]: writes the reconstruction into
/// a caller-provided slice, staging extensions and the raw (un-rotated)
/// output in `scratch`.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if the channels are empty or of
/// different lengths, or if `out` is not exactly `2 * lo.len()` long.
pub fn synthesize_into<K: FilterKernel + ?Sized>(
    kernel: &mut K,
    taps: &BankTaps,
    lo: &[f32],
    hi: &[f32],
    phase: Phase,
    out: &mut [f32],
    scratch: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    if lo.is_empty() || lo.len() != hi.len() {
        return Err(DtcwtError::BadDimensions {
            width: lo.len(),
            height: hi.len(),
            reason: "synthesis channels must be non-empty and equal-length",
        });
    }
    let n = lo.len() * 2;
    if out.len() != n {
        return Err(DtcwtError::BadDimensions {
            width: out.len(),
            height: 1,
            reason: "synthesis output must be twice the channel length",
        });
    }
    extend_circular_into(lo, taps.synthesis_left, 0, &mut scratch.lo_ext);
    extend_circular_into(hi, taps.synthesis_left, 0, &mut scratch.hi_ext);
    scratch.raw.clear();
    scratch.raw.resize(n, 0.0);
    kernel.synthesize_row(
        &scratch.lo_ext,
        &scratch.hi_ext,
        taps.synthesis_left,
        &taps.g0,
        &taps.g1,
        phase.offset(),
        &mut scratch.raw,
    );
    // The analysis/synthesis cascade delays the signal by `delay` samples
    // (circularly); rotate left to compensate.
    let d = taps.delay % n;
    for (m, o) in out.iter_mut().enumerate() {
        *o = scratch.raw[(m + d) % n];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScalarKernel;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7919) % 64) as f32 / 8.0 - 3.5)
            .collect()
    }

    fn max_err(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn roundtrip(bank: &FilterBank, n: usize, phase: Phase) -> f32 {
        let taps = BankTaps::new(bank);
        let x = ramp(n);
        let mut k = ScalarKernel::new();
        let (lo, hi) = analyze(&mut k, &taps, &x, phase).unwrap();
        assert_eq!(lo.len(), n / 2);
        let back = synthesize(&mut k, &taps, &lo, &hi, phase).unwrap();
        max_err(&x, &back)
    }

    #[test]
    fn perfect_reconstruction_all_banks_both_phases() {
        let banks = [
            FilterBank::haar().unwrap(),
            FilterBank::daubechies(2).unwrap(),
            FilterBank::daubechies(4).unwrap(),
            FilterBank::legall_5_3().unwrap(),
            FilterBank::cdf_9_7().unwrap(),
            FilterBank::near_sym_a().unwrap(),
            FilterBank::near_sym_b().unwrap(),
            FilterBank::qshift_b().unwrap(),
            FilterBank::qshift_b().unwrap().time_reverse(),
        ];
        for bank in &banks {
            for phase in [Phase::A, Phase::B] {
                for n in [8usize, 16, 22, 36, 88] {
                    let err = roundtrip(bank, n, phase);
                    assert!(
                        err < 2e-5,
                        "PR failed: bank {} n {} phase {:?} err {:e}",
                        bank.name(),
                        n,
                        phase,
                        err
                    );
                }
            }
        }
    }

    #[test]
    fn odd_length_rejected() {
        let taps = BankTaps::new(&FilterBank::haar().unwrap());
        let mut k = ScalarKernel::new();
        assert!(analyze(&mut k, &taps, &[1.0, 2.0, 3.0], Phase::A).is_err());
        assert!(analyze(&mut k, &taps, &[], Phase::A).is_err());
    }

    #[test]
    fn mismatched_channels_rejected() {
        let taps = BankTaps::new(&FilterBank::haar().unwrap());
        let mut k = ScalarKernel::new();
        assert!(synthesize(&mut k, &taps, &[1.0], &[1.0, 2.0], Phase::A).is_err());
        assert!(synthesize(&mut k, &taps, &[], &[], Phase::A).is_err());
    }

    #[test]
    fn lowpass_of_constant_is_constant_highpass_zero() {
        // A constant signal must land entirely in the lowpass channel
        // (vanishing moments of h1).
        let bank = FilterBank::near_sym_b().unwrap();
        let taps = BankTaps::new(&bank);
        let x = vec![2.5f32; 32];
        let mut k = ScalarKernel::new();
        let (lo, hi) = analyze(&mut k, &taps, &x, Phase::A).unwrap();
        for v in &hi {
            assert!(v.abs() < 1e-5, "highpass leaked {v}");
        }
        let expect = 2.5 * std::f64::consts::SQRT_2 as f32;
        for v in &lo {
            assert!((v - expect).abs() < 1e-4, "lowpass {v} != {expect}");
        }
    }

    #[test]
    fn phases_differ_by_one_sample_shift() {
        // Analyzing x at phase B equals analyzing shift(x, -1)... verified
        // via reconstruction consistency: both phases reconstruct the same x.
        let bank = FilterBank::qshift_b().unwrap();
        let taps = BankTaps::new(&bank);
        let x = ramp(24);
        let mut k = ScalarKernel::new();
        let (lo_a, _) = analyze(&mut k, &taps, &x, Phase::A).unwrap();
        let (lo_b, _) = analyze(&mut k, &taps, &x, Phase::B).unwrap();
        assert!(max_err(&lo_a, &lo_b) > 1e-4, "phases should differ");
    }

    #[test]
    fn extension_wraps_correctly() {
        let mut out = Vec::new();
        extend_circular_into(&[1.0, 2.0, 3.0], 2, 2, &mut out);
        assert_eq!(out, vec![2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0]);
        // Margin longer than the signal must keep wrapping.
        extend_circular_into(&[1.0, 2.0], 5, 3, &mut out);
        assert_eq!(out, vec![2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn energy_preserved_by_orthonormal_banks() {
        let bank = FilterBank::daubechies(4).unwrap();
        let taps = BankTaps::new(&bank);
        let x = ramp(64);
        let mut k = ScalarKernel::new();
        let (lo, hi) = analyze(&mut k, &taps, &x, Phase::A).unwrap();
        let ein: f64 = x.iter().map(|v| (*v as f64) * (*v as f64)).sum();
        let eout: f64 = lo
            .iter()
            .chain(&hi)
            .map(|v| (*v as f64) * (*v as f64))
            .sum();
        assert!((ein - eout).abs() < 1e-3 * ein, "{ein} vs {eout}");
    }
}

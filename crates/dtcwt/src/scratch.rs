//! Reusable scratch arenas and buffer pools for allocation-free transforms.
//!
//! The paper's PL engine streams rows through ping-pong BRAM line buffers and
//! never allocates per frame; the software path mirrors that discipline here.
//! A [`Scratch`] owns every intermediate a multi-level DT-CWT needs — row
//! extension buffers, per-level staging images, transpose staging — so the
//! `*_into` transform entry points perform **zero heap allocation after
//! warm-up**: every buffer is grown on first use and reused thereafter.
//!
//! [`PoolHandle`] is the frame-path analogue: a shared free list of pixel
//! buffers the pipeline ping-pongs capture/output images through, with
//! hit/miss and bytes-allocated accounting for the telemetry layer.

use std::sync::{Arc, Mutex};

use crate::dwt2d::Subbands;
use crate::image::Image;

/// Cumulative counters of a [`PoolHandle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the free list.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh buffer.
    pub misses: u64,
    /// Total bytes allocated by misses.
    pub bytes_allocated: u64,
}

#[derive(Debug, Default)]
struct BufferPool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
}

/// Shared pool of `f32` pixel buffers with drop-free recycling.
///
/// Cloning the handle shares the same pool. Buffers released back to a full
/// free list are dropped rather than grown, bounding retained memory.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::scratch::PoolHandle;
///
/// let pool = PoolHandle::new();
/// let img = pool.acquire(88, 72);
/// pool.release(img);
/// let again = pool.acquire(88, 72); // served from the free list
/// assert_eq!(pool.stats().hits, 1);
/// assert_eq!(pool.stats().misses, 1);
/// # drop(again);
/// ```
#[derive(Debug, Clone)]
pub struct PoolHandle {
    inner: Arc<Mutex<BufferPool>>,
}

/// Free-list capacity: enough for the pipeline's frames in flight (two
/// capture images, one output, plus slack for bursts) without unbounded
/// growth. Fixed so `release` never reallocates the list itself.
const POOL_FREE_SLOTS: usize = 32;

impl PoolHandle {
    /// Creates an empty pool.
    pub fn new() -> Self {
        PoolHandle {
            inner: Arc::new(Mutex::new(BufferPool {
                free: Vec::with_capacity(POOL_FREE_SLOTS),
                stats: PoolStats::default(),
            })),
        }
    }

    /// Acquires a zeroed `width` x `height` image, reusing a pooled buffer
    /// whose capacity suffices if one exists.
    pub fn acquire(&self, width: usize, height: usize) -> Image {
        let len = width * height;
        let mut v = {
            let mut pool = self.inner.lock().expect("buffer pool poisoned");
            match pool.free.iter().position(|b| b.capacity() >= len) {
                Some(i) => {
                    pool.stats.hits += 1;
                    pool.free.swap_remove(i)
                }
                None => {
                    pool.stats.misses += 1;
                    pool.stats.bytes_allocated += (len * std::mem::size_of::<f32>()) as u64;
                    Vec::with_capacity(len)
                }
            }
        };
        v.clear();
        v.resize(len, 0.0);
        Image::from_vec(width, height, v).expect("pooled buffer length matches")
    }

    /// Returns an image's buffer to the free list (dropped if the list is
    /// full).
    pub fn release(&self, img: Image) {
        let v = img.into_vec();
        let mut pool = self.inner.lock().expect("buffer pool poisoned");
        if pool.free.len() < POOL_FREE_SLOTS {
            pool.free.push(v);
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("buffer pool poisoned").stats
    }

    /// Pre-fills the free list so the next `count` acquisitions of
    /// `width` x `height` images are hits. Only as many buffers as are
    /// missing get allocated (free buffers with sufficient capacity count
    /// toward `count`), bounded by the free-list capacity. Reservation is a
    /// reconfigure-time action, so it charges neither the hit nor the miss
    /// counters — those track steady-state behavior.
    pub fn preallocate(&self, width: usize, height: usize, count: usize) {
        let len = width * height;
        let mut pool = self.inner.lock().expect("buffer pool poisoned");
        let have = pool.free.iter().filter(|b| b.capacity() >= len).count();
        let room = POOL_FREE_SLOTS.saturating_sub(pool.free.len());
        for _ in 0..count.saturating_sub(have).min(room) {
            pool.free.push(Vec::with_capacity(len));
        }
    }

    /// Number of buffers currently on the free list (pre-allocated plus
    /// released).
    pub fn free_buffers(&self) -> usize {
        self.inner.lock().expect("buffer pool poisoned").free.len()
    }
}

impl Default for PoolHandle {
    fn default() -> Self {
        PoolHandle::new()
    }
}

/// Row-transform scratch: extension buffers and the raw synthesis row.
///
/// Used by [`crate::dwt1d::analyze_into`] / [`crate::dwt1d::synthesize_into`].
#[derive(Debug, Default)]
pub struct Scratch1d {
    pub(crate) ext: Vec<f32>,
    pub(crate) lo_ext: Vec<f32>,
    pub(crate) hi_ext: Vec<f32>,
    pub(crate) raw: Vec<f32>,
}

impl Scratch1d {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Scratch1d::default()
    }
}

/// Column-pass scratch shared by every [`crate::kernel::FilterKernel`]
/// implementation of the vertical pass.
///
/// Columnar kernels use only the wrapped row-index windows (`idx0`/`idx1`),
/// leaving the staging images empty; the transpose-based fallback uses the
/// staging images and never touches the index windows. Both sets live here
/// so one warmed scratch serves either path without reallocation.
#[derive(Debug)]
pub struct ColScratch {
    /// Fallback transposed staging A (input of the column pass).
    pub ta: Image,
    /// Fallback transposed staging B (second input / low output).
    pub tb: Image,
    /// Fallback transposed staging C (high output / raw column synthesis).
    pub tc: Image,
    /// Columnar path: wrapped source-row indices of the lowpass tap window.
    pub idx0: Vec<usize>,
    /// Columnar path: wrapped source-row indices of the highpass tap window.
    pub idx1: Vec<usize>,
}

impl ColScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ColScratch {
            ta: Image::zeros(0, 0),
            tb: Image::zeros(0, 0),
            tc: Image::zeros(0, 0),
            idx0: Vec::new(),
            idx1: Vec::new(),
        }
    }
}

impl Default for ColScratch {
    fn default() -> Self {
        ColScratch::new()
    }
}

/// Level-transform scratch: the row-pass halves and the column-pass scratch
/// of one separable 2-D step.
#[derive(Debug)]
pub struct Scratch2d {
    /// Row-pass lowpass half (analysis) / column-synthesized low half.
    pub(crate) low: Image,
    /// Row-pass highpass half / column-synthesized high half.
    pub(crate) high: Image,
    /// Column-pass scratch (index windows; transpose staging for fallbacks).
    pub(crate) col: ColScratch,
}

impl Scratch2d {
    /// Creates an empty scratch; images grow on first use.
    pub fn new() -> Self {
        Scratch2d {
            low: Image::zeros(0, 0),
            high: Image::zeros(0, 0),
            col: ColScratch::new(),
        }
    }
}

impl Default for Scratch2d {
    fn default() -> Self {
        Scratch2d::new()
    }
}

/// Everything one multi-level DT-CWT worker needs to run without allocating:
/// the 1-D and 2-D scratch plus the per-combo level ping-pong images and the
/// quad-extraction staging of the inverse.
#[derive(Debug)]
pub struct Scratch {
    pub(crate) s1: Scratch1d,
    pub(crate) s2: Scratch2d,
    /// Current level input (ping).
    pub(crate) cur: Image,
    /// Next level input / level output (pong).
    pub(crate) next: Image,
    /// Even-padded copy of `cur` for odd-sized levels.
    pub(crate) padded: Image,
    /// Per-level real detail extracted from the complex subbands (inverse).
    pub(crate) qlh: Image,
    pub(crate) qhl: Image,
    pub(crate) qhh: Image,
    /// Window-energy staging for fusion strip jobs.
    pub(crate) fuse: crate::fuse::FuseScratch,
}

impl Scratch {
    /// Creates an empty scratch; every buffer grows on first use and is
    /// reused on subsequent frames of the same geometry.
    pub fn new() -> Self {
        Scratch {
            s1: Scratch1d::new(),
            s2: Scratch2d::new(),
            cur: Image::zeros(0, 0),
            next: Image::zeros(0, 0),
            padded: Image::zeros(0, 0),
            qlh: Image::zeros(0, 0),
            qhl: Image::zeros(0, 0),
            qhh: Image::zeros(0, 0),
            fuse: crate::fuse::FuseScratch::new(),
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

/// Caller-owned per-combo output storage of a pooled DT-CWT forward pass.
///
/// The transform writes each tree combination's real detail pyramid and
/// lowpass residual here; [`crate::Dtcwt::forward_into`] then assembles the
/// complex pyramid from them. Keeping this outside [`Scratch`] lets worker
/// threads own a `Scratch` each while the per-combo results live with the
/// dispatcher.
#[derive(Debug, Default)]
pub struct ComboStore {
    /// One slot per tree combination, in `(row_tree, col_tree)` order
    /// AA, AB, BA, BB.
    pub slots: [ComboSlot; 4],
}

/// One tree combination's output buffers.
#[derive(Debug, Default)]
pub struct ComboSlot {
    /// Real detail subbands per level (0 = finest).
    pub detail: Vec<Subbands>,
    /// Lowpass residual.
    pub ll: Image,
}

impl ComboStore {
    /// Creates an empty store; buffers grow on first use.
    pub fn new() -> Self {
        ComboStore::default()
    }

    /// Pre-sizes every combo slot for a `levels`-deep analysis of
    /// `width` x `height` frames, so a reconfigure pays the buffer growth
    /// once instead of spreading it over the first frame: each level's
    /// detail subbands and the lowpass residual get their final dimensions
    /// (each level pads to even, then halves — the same recurrence the
    /// transform uses). Already-large-enough buffers are kept.
    pub fn reserve(&mut self, width: usize, height: usize, levels: usize) {
        let ensure = |img: &mut Image, w: usize, h: usize| {
            if img.width() * img.height() < w * h {
                *img = Image::zeros(w, h);
            }
        };
        for slot in &mut self.slots {
            while slot.detail.len() < levels {
                slot.detail.push(Subbands::empty());
            }
            let (mut w, mut h) = (width, height);
            for det in slot.detail.iter_mut().take(levels) {
                let (sw, sh) = ((w + w % 2) / 2, (h + h % 2) / 2);
                ensure(&mut det.lh, sw, sh);
                ensure(&mut det.hl, sw, sh);
                ensure(&mut det.hh, sw, sh);
                (w, h) = (sw, sh);
            }
            ensure(&mut slot.ll, w, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers() {
        let pool = PoolHandle::new();
        let a = pool.acquire(8, 4);
        assert_eq!(a.dims(), (8, 4));
        pool.release(a);
        let b = pool.acquire(4, 4); // smaller: the 32-slot buffer is reused
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_allocated, 8 * 4 * 4);
        pool.release(b);
    }

    #[test]
    fn pool_allocates_when_too_small() {
        let pool = PoolHandle::new();
        pool.release(pool.acquire(2, 2));
        let big = pool.acquire(16, 16);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(big.dims(), (16, 16));
    }

    #[test]
    fn acquired_images_are_zeroed() {
        let pool = PoolHandle::new();
        let mut a = pool.acquire(4, 4);
        a.set(1, 1, 7.0);
        pool.release(a);
        let b = pool.acquire(4, 4);
        assert_eq!(b.get(1, 1), 0.0);
    }

    #[test]
    fn clones_share_the_pool() {
        let pool = PoolHandle::new();
        let other = pool.clone();
        other.release(other.acquire(4, 4));
        assert_eq!(pool.stats().hits, other.stats().hits);
        let _ = pool.acquire(4, 4);
        assert_eq!(pool.stats().hits, 1);
    }
}

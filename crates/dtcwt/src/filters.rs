//! Two-channel filter banks.
//!
//! A [`FilterBank`] bundles the four FIR filters of a two-channel
//! perfect-reconstruction system: analysis lowpass/highpass `(h0, h1)` and
//! synthesis lowpass/highpass `(g0, g1)`. Construction validates the
//! half-band PR condition, so an instance in hand is known-good.
//!
//! Named constructors provide the banks used in the paper's pipeline and in
//! the baselines:
//!
//! * [`FilterBank::haar`], [`FilterBank::daubechies`] — orthonormal banks.
//! * [`FilterBank::legall_5_3`], [`FilterBank::cdf_9_7`] — classic symmetric
//!   biorthogonal banks.
//! * [`FilterBank::near_sym_a`], [`FilterBank::near_sym_b`] — Kingsbury's
//!   level-1 DT-CWT banks (the 13-tap `near_sym_b` analysis filter with its
//!   19-tap dual designed on the fly by [`crate::design::design_dual_lowpass`]).
//! * [`FilterBank::qshift_b`] — Kingsbury's 14-tap quarter-shift orthonormal
//!   bank for DT-CWT levels ≥ 2; [`FilterBank::time_reverse`] derives the
//!   tree-B variant.

use crate::design::{design_dual_lowpass, halfband_violation};
use crate::DtcwtError;

/// Tolerance on the half-band perfect-reconstruction condition accepted by
/// [`FilterBank::from_lowpass_pair`].
pub const PR_TOLERANCE: f64 = 1e-6;

/// Kingsbury 13-tap near-symmetric analysis lowpass (`near_sym_b`),
/// normalized to sum 1 as tabulated; rescaled to `sqrt(2)` internally.
const NEAR_SYM_B_H0: [f64; 13] = [
    -0.0017581, 0.0, 0.0222656, -0.0468750, -0.0482422, 0.2968750, 0.5554688, 0.2968750,
    -0.0482422, -0.0468750, 0.0222656, 0.0, -0.0017581,
];

/// Kingsbury 14-tap quarter-shift orthonormal lowpass (`qshift_b`), tree A.
const QSHIFT_B_H0A: [f64; 14] = [
    0.00325314,
    -0.00388321,
    0.03466035,
    -0.03887280,
    -0.11720389,
    0.27529538,
    0.75614564,
    0.56881042,
    0.01186609,
    -0.10671180,
    0.02382538,
    0.01702522,
    -0.00543948,
    -0.00455690,
];

/// A validated two-channel perfect-reconstruction filter bank.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::FilterBank;
///
/// let bank = FilterBank::legall_5_3()?;
/// assert_eq!(bank.h0().len(), 5);
/// assert_eq!(bank.g0().len(), 3);
/// assert!(bank.is_orthonormal() == false);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    name: String,
    h0: Vec<f64>,
    h1: Vec<f64>,
    g0: Vec<f64>,
    g1: Vec<f64>,
    orthonormal: bool,
}

impl FilterBank {
    /// Builds a biorthogonal bank from an analysis/synthesis lowpass pair.
    ///
    /// The highpass filters are derived with the standard alias-cancelling
    /// modulation `h1[n] = (-1)^n g0[n]`, `g1[n] = (-1)^{n+1} h0[n]`.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::InvalidFilterBank`] if either filter is empty or
    /// the half-band condition `conv(h0, g0)[center ± 2k] = δ` is violated by
    /// more than [`PR_TOLERANCE`].
    pub fn from_lowpass_pair(
        name: impl Into<String>,
        h0: Vec<f64>,
        g0: Vec<f64>,
    ) -> Result<Self, DtcwtError> {
        let name = name.into();
        if h0.is_empty() || g0.is_empty() {
            return Err(DtcwtError::InvalidFilterBank(format!(
                "{name}: empty lowpass filter"
            )));
        }
        if !(h0.len() + g0.len()).is_multiple_of(2) {
            return Err(DtcwtError::InvalidFilterBank(format!(
                "{name}: filter lengths must have equal parity"
            )));
        }
        let viol = halfband_violation(&h0, &g0);
        if viol > PR_TOLERANCE {
            return Err(DtcwtError::InvalidFilterBank(format!(
                "{name}: half-band condition violated by {viol:e}"
            )));
        }
        let h1: Vec<f64> = g0
            .iter()
            .enumerate()
            .map(|(n, &g)| if n % 2 == 0 { g } else { -g })
            .collect();
        let g1: Vec<f64> = h0
            .iter()
            .enumerate()
            .map(|(n, &h)| if n % 2 == 0 { -h } else { h })
            .collect();
        let orthonormal = h0.len() == g0.len()
            && h0
                .iter()
                .zip(g0.iter().rev())
                .all(|(a, b)| (a - b).abs() < 1e-9);
        Ok(FilterBank {
            name,
            h0,
            h1,
            g0,
            g1,
            orthonormal,
        })
    }

    /// Builds an orthonormal bank from a single lowpass filter
    /// (`g0 = reverse(h0)`).
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::InvalidFilterBank`] if `h0` is not orthonormal
    /// to within [`PR_TOLERANCE`] (its even-lag autocorrelation must be a
    /// unit impulse).
    pub fn orthonormal_from_lowpass(
        name: impl Into<String>,
        h0: Vec<f64>,
    ) -> Result<Self, DtcwtError> {
        let g0: Vec<f64> = h0.iter().rev().copied().collect();
        let mut bank = FilterBank::from_lowpass_pair(name, h0, g0)?;
        bank.orthonormal = true;
        Ok(bank)
    }

    /// The 2-tap Haar bank (orthonormal).
    pub fn haar() -> Result<Self, DtcwtError> {
        let v = std::f64::consts::FRAC_1_SQRT_2;
        FilterBank::orthonormal_from_lowpass("haar", vec![v, v])
    }

    /// The Daubechies-`n` orthonormal bank (length `2n`), designed by
    /// spectral factorization.
    ///
    /// # Errors
    ///
    /// See [`crate::design::daubechies`].
    pub fn daubechies(n: usize) -> Result<Self, DtcwtError> {
        FilterBank::orthonormal_from_lowpass(format!("db{n}"), crate::design::daubechies(n)?)
    }

    /// The LeGall 5/3 biorthogonal bank (JPEG 2000 lossless).
    pub fn legall_5_3() -> Result<Self, DtcwtError> {
        let s = std::f64::consts::SQRT_2;
        let h0 = [-0.125, 0.25, 0.75, 0.25, -0.125]
            .iter()
            .map(|c| c * s)
            .collect();
        let g0 = [0.5, 1.0, 0.5].iter().map(|c| c / s).collect();
        FilterBank::from_lowpass_pair("legall-5/3", h0, g0)
    }

    /// The Cohen–Daubechies–Feauveau 9/7 biorthogonal bank (JPEG 2000 lossy).
    pub fn cdf_9_7() -> Result<Self, DtcwtError> {
        let s = std::f64::consts::SQRT_2;
        let h0: Vec<f64> = [
            0.026748757411,
            -0.016864118443,
            -0.078223266529,
            0.266864118443,
            0.602949018236,
            0.266864118443,
            -0.078223266529,
            -0.016864118443,
            0.026748757411,
        ]
        .iter()
        .map(|c| c * s)
        .collect();
        let g0: Vec<f64> = [
            -0.091271763114,
            -0.057543526229,
            0.591271763114,
            1.115087052457,
            0.591271763114,
            -0.057543526229,
            -0.091271763114,
        ]
        .iter()
        .map(|c| c / s)
        .collect();
        FilterBank::from_lowpass_pair("cdf-9/7", h0, g0)
    }

    /// Kingsbury's short (5,7)-tap near-symmetric level-1 DT-CWT bank
    /// (`near_sym_a`), with the 7-tap dual designed on the fly.
    pub fn near_sym_a() -> Result<Self, DtcwtError> {
        let s = std::f64::consts::SQRT_2;
        // (5,7) near-symmetric pair: the 5-tap analysis lowpass is the
        // LeGall lowpass; its 7-tap dual has two extra vanishing moments.
        let h0: Vec<f64> = [-0.125, 0.25, 0.75, 0.25, -0.125]
            .iter()
            .map(|c| c * s)
            .collect();
        let g0 = design_dual_lowpass(&h0, 7)?;
        FilterBank::from_lowpass_pair("near-sym-a", h0, g0)
    }

    /// Kingsbury's (13,19)-tap near-symmetric level-1 DT-CWT bank
    /// (`near_sym_b`): the tabulated 13-tap analysis lowpass with its 19-tap
    /// dual designed by [`crate::design::design_dual_lowpass`].
    pub fn near_sym_b() -> Result<Self, DtcwtError> {
        let tab_sum: f64 = NEAR_SYM_B_H0.iter().sum();
        let h0: Vec<f64> = NEAR_SYM_B_H0
            .iter()
            .map(|c| c * std::f64::consts::SQRT_2 / tab_sum)
            .collect();
        let g0 = design_dual_lowpass(&h0, 19)?;
        FilterBank::from_lowpass_pair("near-sym-b", h0, g0)
    }

    /// Kingsbury's 14-tap quarter-shift orthonormal bank (`qshift_b`),
    /// tree A. The tree-B bank is its [`time_reverse`](Self::time_reverse).
    pub fn qshift_b() -> Result<Self, DtcwtError> {
        let sum: f64 = QSHIFT_B_H0A.iter().sum();
        let h0: Vec<f64> = QSHIFT_B_H0A
            .iter()
            .map(|c| c * std::f64::consts::SQRT_2 / sum)
            .collect();
        FilterBank::orthonormal_from_lowpass("qshift-b", h0)
    }

    /// Returns the bank with every filter time-reversed.
    ///
    /// For an orthonormal quarter-shift bank this yields the opposite-tree
    /// bank of the dual-tree transform (delay `+1/4 -> -1/4` sample).
    pub fn time_reverse(&self) -> FilterBank {
        let rev = |v: &[f64]| v.iter().rev().copied().collect::<Vec<f64>>();
        FilterBank {
            name: format!("{}-rev", self.name),
            h0: rev(&self.h0),
            h1: rev(&self.h1),
            g0: rev(&self.g0),
            g1: rev(&self.g1),
            orthonormal: self.orthonormal,
        }
    }

    /// Bank name (e.g. `"qshift-b"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Analysis lowpass taps.
    pub fn h0(&self) -> &[f64] {
        &self.h0
    }

    /// Analysis highpass taps.
    pub fn h1(&self) -> &[f64] {
        &self.h1
    }

    /// Synthesis lowpass taps.
    pub fn g0(&self) -> &[f64] {
        &self.g0
    }

    /// Synthesis highpass taps.
    pub fn g1(&self) -> &[f64] {
        &self.g1
    }

    /// Whether the bank is orthonormal (synthesis = time-reversed analysis).
    pub fn is_orthonormal(&self) -> bool {
        self.orthonormal
    }

    /// Longest filter length in the bank; the FPGA engine sizes its shift
    /// register from this.
    pub fn max_len(&self) -> usize {
        self.h0
            .len()
            .max(self.h1.len())
            .max(self.g0.len())
            .max(self.g1.len())
    }

    /// Analysis filters as `f32` for the compute kernels.
    pub fn analysis_f32(&self) -> (Vec<f32>, Vec<f32>) {
        (
            self.h0.iter().map(|&c| c as f32).collect(),
            self.h1.iter().map(|&c| c as f32).collect(),
        )
    }

    /// Synthesis filters as `f32` for the compute kernels.
    pub fn synthesis_f32(&self) -> (Vec<f32>, Vec<f32>) {
        (
            self.g0.iter().map(|&c| c as f32).collect(),
            self.g1.iter().map(|&c| c as f32).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_numerics::fft::magnitude_response;

    #[test]
    fn all_named_banks_construct() {
        for bank in [
            FilterBank::haar(),
            FilterBank::daubechies(2),
            FilterBank::daubechies(4),
            FilterBank::legall_5_3(),
            FilterBank::cdf_9_7(),
            FilterBank::near_sym_a(),
            FilterBank::near_sym_b(),
            FilterBank::qshift_b(),
        ] {
            let bank = bank.expect("named bank must validate");
            assert!(!bank.name().is_empty());
        }
    }

    #[test]
    fn qshift_b_is_orthonormal_14_tap() {
        let bank = FilterBank::qshift_b().unwrap();
        assert!(bank.is_orthonormal());
        assert_eq!(bank.h0().len(), 14);
        let sum: f64 = bank.h0().iter().sum();
        assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn near_sym_b_is_13_19() {
        let bank = FilterBank::near_sym_b().unwrap();
        assert_eq!(bank.h0().len(), 13);
        assert_eq!(bank.g0().len(), 19);
        assert!(!bank.is_orthonormal());
    }

    #[test]
    fn highpass_modulation_relation() {
        let bank = FilterBank::cdf_9_7().unwrap();
        for (n, (&h1, &g0)) in bank.h1().iter().zip(bank.g0()).enumerate() {
            let expect = if n % 2 == 0 { g0 } else { -g0 };
            assert_eq!(h1, expect);
        }
        for (n, (&g1, &h0)) in bank.g1().iter().zip(bank.h0()).enumerate() {
            let expect = if n % 2 == 0 { -h0 } else { h0 };
            assert_eq!(g1, expect);
        }
    }

    #[test]
    fn lowpass_is_lowpass_highpass_is_highpass() {
        for bank in [
            FilterBank::haar().unwrap(),
            FilterBank::daubechies(3).unwrap(),
            FilterBank::near_sym_b().unwrap(),
            FilterBank::qshift_b().unwrap(),
        ] {
            let lo = magnitude_response(bank.h0(), 64).unwrap();
            let hi = magnitude_response(bank.h1(), 64).unwrap();
            assert!(
                lo[0] > 1.3 && lo[63] < 0.1,
                "{} h0 not lowpass",
                bank.name()
            );
            assert!(
                hi[0] < 0.1 && hi[63] > 1.3,
                "{} h1 not highpass",
                bank.name()
            );
        }
    }

    #[test]
    fn time_reverse_keeps_validity_and_flips_taps() {
        let bank = FilterBank::qshift_b().unwrap();
        let rev = bank.time_reverse();
        assert!(rev.is_orthonormal());
        assert_eq!(rev.h0()[0], bank.h0()[13]);
        assert_eq!(rev.time_reverse().h0(), bank.h0());
    }

    #[test]
    fn invalid_pair_rejected() {
        // A random non-PR pair must fail validation.
        let err = FilterBank::from_lowpass_pair("bogus", vec![0.3, 0.4, 0.5], vec![0.2, 0.9, 0.1])
            .unwrap_err();
        assert!(matches!(err, DtcwtError::InvalidFilterBank(_)));
        assert!(FilterBank::from_lowpass_pair("empty", vec![], vec![1.0]).is_err());
        assert!(FilterBank::from_lowpass_pair("parity", vec![1.0, 0.0], vec![1.0]).is_err());
    }

    #[test]
    fn orthonormal_detection() {
        assert!(FilterBank::haar().unwrap().is_orthonormal());
        assert!(!FilterBank::legall_5_3().unwrap().is_orthonormal());
    }

    #[test]
    fn f32_views_match_f64() {
        let bank = FilterBank::near_sym_b().unwrap();
        let (h0, h1) = bank.analysis_f32();
        assert_eq!(h0.len(), bank.h0().len());
        assert_eq!(h1.len(), bank.h1().len());
        assert!((h0[6] as f64 - bank.h0()[6]).abs() < 1e-7);
        let (g0, g1) = bank.synthesis_f32();
        assert_eq!(g0.len(), 19);
        assert_eq!(g1.len(), 13);
    }

    #[test]
    fn max_len_reflects_longest_filter() {
        assert_eq!(FilterBank::near_sym_b().unwrap().max_len(), 19);
        assert_eq!(FilterBank::qshift_b().unwrap().max_len(), 14);
    }
}

//! The Dual-Tree Complex Wavelet Transform.
//!
//! Kingsbury's DT-CWT runs four parallel separable DWTs — every combination
//! of two filter *trees* along rows and columns — and combines their detail
//! bands into complex coefficients with six orientation-selective subbands
//! per level (±15°, ±45°, ±75°). Tree B of level 1 is the same bank as tree
//! A sampled at the opposite polyphase; trees at levels ≥ 2 use the
//! quarter-shift bank and its time reverse. Because each of the four
//! constituent transforms is perfectly reconstructing on its own, the
//! dual-tree inverse (average of the four per-tree inverses) is exact too.
//!
//! The redundancy (4:1) buys the two properties the fusion literature cares
//! about: approximate shift invariance and directional selectivity that
//! distinguishes +45° from −45° (a plain DWT cannot).

use std::sync::Arc;

use crate::dwt1d::{BankTaps, Phase};
use crate::dwt2d::{
    analyze_level, analyze_level_into, synthesize_level, synthesize_level_into, AxisSpec, Dwt2d,
    OneLevel, Subbands,
};
use crate::filters::FilterBank;
use crate::image::{ComplexImage, Image};
use crate::kernel::{FilterKernel, ScalarKernel};
use crate::scratch::{ComboSlot, ComboStore, Scratch};
use crate::workers::{Job, JobOutcome, JobPayload, WorkerPool};
use crate::DtcwtError;

/// The six orientation-selective subbands of each DT-CWT level.
///
/// Angles follow Kingsbury's convention: positive angles rotate
/// counter-clockwise from the horizontal axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// +15° (near-horizontal features).
    Pos15,
    /// +45° (diagonal features).
    Pos45,
    /// +75° (near-vertical features).
    Pos75,
    /// −75°.
    Neg75,
    /// −45° (anti-diagonal features).
    Neg45,
    /// −15°.
    Neg15,
}

impl Orientation {
    /// All six orientations in subband-index order.
    pub const ALL: [Orientation; 6] = [
        Orientation::Pos15,
        Orientation::Pos45,
        Orientation::Pos75,
        Orientation::Neg75,
        Orientation::Neg45,
        Orientation::Neg15,
    ];

    /// Subband index (0..6) of this orientation.
    pub fn index(self) -> usize {
        Orientation::ALL
            .iter()
            .position(|&o| o == self)
            .expect("orientation present in ALL")
    }

    /// Nominal orientation angle in degrees.
    pub fn angle_degrees(self) -> f64 {
        match self {
            Orientation::Pos15 => 15.0,
            Orientation::Pos45 => 45.0,
            Orientation::Pos75 => 75.0,
            Orientation::Neg75 => -75.0,
            Orientation::Neg45 => -45.0,
            Orientation::Neg15 => -15.0,
        }
    }
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+}deg", self.angle_degrees())
    }
}

/// A multi-level DT-CWT pyramid: six complex subbands per level plus the
/// four per-tree lowpass residuals.
#[derive(Debug, Clone)]
pub struct CwtPyramid {
    /// `subbands[level][orientation]`.
    subbands: Vec<[ComplexImage; 6]>,
    /// Lowpass residual of each tree combination, indexed
    /// `row_tree * 2 + col_tree` (A = 0, B = 1).
    lowpass: [Image; 4],
    /// Input dimensions entering each level, pre-padding.
    pre_pad_dims: Vec<(usize, usize)>,
}

impl CwtPyramid {
    /// Creates a zero-level placeholder pyramid with no allocation, for use
    /// as a reusable output slot of [`Dtcwt::forward_into`].
    pub fn empty() -> Self {
        CwtPyramid {
            subbands: Vec::new(),
            lowpass: std::array::from_fn(|_| Image::zeros(0, 0)),
            pre_pad_dims: Vec::new(),
        }
    }

    /// Reshapes this pyramid to the level structure and subband dimensions
    /// of `template`, reusing existing allocations. Pixel contents are
    /// zeroed; callers are expected to overwrite them.
    pub fn reshape_like(&mut self, template: &CwtPyramid) {
        self.pre_pad_dims.clear();
        self.pre_pad_dims.extend_from_slice(&template.pre_pad_dims);
        while self.subbands.len() < template.subbands.len() {
            self.subbands
                .push(std::array::from_fn(|_| ComplexImage::zeros(0, 0)));
        }
        self.subbands.truncate(template.subbands.len());
        for (mine, theirs) in self.subbands.iter_mut().zip(&template.subbands) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                let (w, h) = t.dims();
                m.reshape(w, h);
            }
        }
        for (m, t) in self.lowpass.iter_mut().zip(&template.lowpass) {
            let (w, h) = t.dims();
            m.reshape(w, h);
        }
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.subbands.len()
    }

    /// The six oriented complex subbands of `level` (0 = finest), indexed by
    /// [`Orientation::index`].
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subbands(&self, level: usize) -> &[ComplexImage; 6] {
        &self.subbands[level]
    }

    /// Mutable access to the oriented subbands of `level` (for fusion rules).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subbands_mut(&mut self, level: usize) -> &mut [ComplexImage; 6] {
        &mut self.subbands[level]
    }

    /// One oriented subband.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subband(&self, level: usize, orientation: Orientation) -> &ComplexImage {
        &self.subbands[level][orientation.index()]
    }

    /// The four per-tree lowpass residual images.
    pub fn lowpass(&self) -> &[Image; 4] {
        &self.lowpass
    }

    /// Mutable lowpass residuals (for fusion rules).
    pub fn lowpass_mut(&mut self) -> &mut [Image; 4] {
        &mut self.lowpass
    }

    /// Original input dimensions.
    pub fn input_dims(&self) -> (usize, usize) {
        self.pre_pad_dims[0]
    }

    /// Total coefficient energy of one level's oriented subbands.
    pub fn level_energy(&self, level: usize) -> f64 {
        self.subbands[level].iter().map(|c| c.energy()).sum()
    }
}

/// Tree selector along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tree {
    A,
    B,
}

const COMBOS: [(Tree, Tree); 4] = [
    (Tree::A, Tree::A),
    (Tree::A, Tree::B),
    (Tree::B, Tree::A),
    (Tree::B, Tree::B),
];

/// The Dual-Tree Complex Wavelet Transform.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{Dtcwt, Image, Orientation};
///
/// let img = Image::from_fn(64, 48, |x, y| ((x + 2 * y) % 9) as f32);
/// let t = Dtcwt::new(3)?;
/// let pyr = t.forward(&img)?;
/// let mag = pyr.subband(0, Orientation::Pos45).magnitude();
/// assert_eq!(mag.dims(), (32, 24));
/// let back = t.inverse(&pyr)?;
/// assert!(back.max_abs_diff(&img) < 1e-3);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dtcwt {
    level1: FilterBank,
    qshift: FilterBank,
    level1_taps: BankTaps,
    qshift_fwd_taps: BankTaps,
    qshift_rev_taps: BankTaps,
    levels: usize,
}

impl Dtcwt {
    /// Creates a DT-CWT with the standard banks: `near_sym_b` (13,19) at
    /// level 1 and `qshift_b` (14-tap) at levels ≥ 2.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`, or a filter
    /// construction error (which for the built-in banks cannot occur).
    pub fn new(levels: usize) -> Result<Self, DtcwtError> {
        Dtcwt::with_banks(FilterBank::near_sym_b()?, FilterBank::qshift_b()?, levels)
    }

    /// Creates a DT-CWT with explicit level-1 and quarter-shift banks.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`.
    pub fn with_banks(
        level1: FilterBank,
        qshift: FilterBank,
        levels: usize,
    ) -> Result<Self, DtcwtError> {
        if levels == 0 {
            return Err(DtcwtError::BadLevels {
                requested: 0,
                max_supported: usize::MAX,
            });
        }
        let level1_taps = BankTaps::new(&level1);
        let qshift_fwd_taps = BankTaps::new(&qshift);
        let qshift_rev_taps = BankTaps::new(&qshift.time_reverse());
        Ok(Dtcwt {
            level1,
            qshift,
            level1_taps,
            qshift_fwd_taps,
            qshift_rev_taps,
            levels,
        })
    }

    /// The level-1 filter bank.
    pub fn level1_bank(&self) -> &FilterBank {
        &self.level1
    }

    /// The quarter-shift bank used at levels ≥ 2 (tree A; tree B is its time
    /// reverse).
    pub fn qshift_bank(&self) -> &FilterBank {
        &self.qshift
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    fn axis_spec(&self, level: usize, tree: Tree) -> AxisSpec<'_> {
        if level == 0 {
            AxisSpec {
                taps: &self.level1_taps,
                phase: match tree {
                    Tree::A => Phase::A,
                    Tree::B => Phase::B,
                },
            }
        } else {
            // Tree B's level-1 samples sit one input sample later than tree
            // A's, so to keep the cumulative tree delay difference at half an
            // output sample per level, tree A takes the *time-reversed*
            // quarter-shift bank (group delay L/2 + 1/4) and tree B the
            // original (L/2 - 1/4). With the opposite assignment the offsets
            // cancel and orientation selectivity collapses.
            AxisSpec {
                taps: match tree {
                    Tree::A => &self.qshift_rev_taps,
                    Tree::B => &self.qshift_fwd_taps,
                },
                phase: Phase::A,
            }
        }
    }

    /// Column-axis spec of `level` for tree A (`false`) or tree B (`true`);
    /// used by worker column-strip jobs, which carry the tree as a plain
    /// bool because [`Tree`] is private.
    pub(crate) fn col_axis(&self, level: usize, tree_b: bool) -> AxisSpec<'_> {
        self.axis_spec(level, if tree_b { Tree::B } else { Tree::A })
    }

    /// Forward transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dtcwt::forward_with`].
    pub fn forward(&self, img: &Image) -> Result<CwtPyramid, DtcwtError> {
        self.forward_with(&mut ScalarKernel::new(), img)
    }

    /// Forward transform through a caller-supplied kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if the image cannot support the
    /// configured depth, and [`DtcwtError::BadDimensions`] for empty images.
    pub fn forward_with(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
    ) -> Result<CwtPyramid, DtcwtError> {
        self.check_levels(img)?;
        // Run the four tree combinations.
        let mut per_combo: Vec<(Vec<Subbands>, Image)> = Vec::with_capacity(4);
        for &(rt, ct) in COMBOS.iter() {
            per_combo.push(self.analyze_combo(kernel, img, rt, ct)?);
        }
        self.assemble_pyramid(img, per_combo)
    }

    /// Allocation-free forward transform: writes the pyramid into `out`,
    /// staging per-combo results in `combos` and intermediates in `scratch`.
    /// Bit-identical to [`Dtcwt::forward_with`]; after a warm-up call of the
    /// same geometry it performs zero heap allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_with`].
    pub fn forward_into(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
        combos: &mut ComboStore,
        scratch: &mut Scratch,
        out: &mut CwtPyramid,
    ) -> Result<(), DtcwtError> {
        self.check_levels(img)?;
        for ci in 0..COMBOS.len() {
            let slot = &mut combos.slots[ci];
            self.analyze_combo_into(kernel, img, ci, &mut slot.detail, &mut slot.ll, scratch)?;
        }
        self.assemble_pyramid_into(img.dims(), combos, out);
        Ok(())
    }

    /// Forward transform with the four tree combinations dispatched to a
    /// long-lived [`WorkerPool`] (host-side parallelism; the modeled
    /// platform timing is unaffected — the paper's single-A9 system has no
    /// such option, but a library user's host does). `kernel` selects the
    /// workers' kernel slot. Buffers ping-pong through `combos`/`outcomes`,
    /// so steady-state dispatch is allocation-free; results are bit-identical
    /// to the serial paths at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_with`], plus [`DtcwtError::MalformedPyramid`]
    /// if a worker lacks the requested kernel slot.
    pub fn forward_pooled(
        self: &Arc<Self>,
        pool: &WorkerPool,
        kernel: usize,
        img: &Arc<Image>,
        combos: &mut ComboStore,
        outcomes: &mut Vec<JobOutcome>,
        out: &mut CwtPyramid,
    ) -> Result<(), DtcwtError> {
        self.check_levels(img)?;
        for (ci, slot) in combos.slots.iter_mut().enumerate() {
            pool.submit(Job::ForwardCombo {
                transform: Arc::clone(self),
                img: Arc::clone(img),
                tag: 0,
                combo: ci,
                kernel,
                detail: std::mem::take(&mut slot.detail),
                ll: std::mem::take(&mut slot.ll),
            });
        }
        outcomes.clear();
        pool.drain(COMBOS.len(), outcomes);
        let err = place_forward_outcomes(outcomes, combos);
        if let Some(e) = err {
            return Err(e);
        }
        self.assemble_pyramid_into(img.dims(), combos, out);
        Ok(())
    }

    /// Forward transforms of **two** images dispatched onto the pool as one
    /// eight-job batch, so both streams' tree combinations fill every worker
    /// concurrently (the visible/thermal forwards of a fusion frame are data
    /// independent — running them serially leaves half the pool idle).
    ///
    /// Results are bit-identical to two serial [`Dtcwt::forward_into`] calls.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_pooled`]; if both images fail, the error of
    /// the earliest-submitted failing job (image `a` first) is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_pooled_pair(
        self: &Arc<Self>,
        pool: &WorkerPool,
        kernel: usize,
        img_a: &Arc<Image>,
        combos_a: &mut ComboStore,
        out_a: &mut CwtPyramid,
        img_b: &Arc<Image>,
        combos_b: &mut ComboStore,
        out_b: &mut CwtPyramid,
        outcomes: &mut Vec<JobOutcome>,
    ) -> Result<(), DtcwtError> {
        self.forward_pooled_pair_submit(pool, kernel, img_a, combos_a, img_b, combos_b)?;
        self.forward_pooled_pair_collect(
            pool,
            img_a.dims(),
            combos_a,
            out_a,
            combos_b,
            out_b,
            outcomes,
        )
    }

    /// Submit half of [`Dtcwt::forward_pooled_pair`]: stages both images'
    /// eight tree-combination jobs into the pool **without draining**, so a
    /// caller multiplexing several streams over one pool can pack many
    /// frames' forwards into the ring before harvesting any of them.
    ///
    /// Pair with [`Dtcwt::forward_pooled_pair_collect`], calling collects in
    /// the same order as submits (the pool harvests oldest-first).
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_pooled_pair`] for geometry checks; worker
    /// errors surface at collect time.
    pub fn forward_pooled_pair_submit(
        self: &Arc<Self>,
        pool: &WorkerPool,
        kernel: usize,
        img_a: &Arc<Image>,
        combos_a: &mut ComboStore,
        img_b: &Arc<Image>,
        combos_b: &mut ComboStore,
    ) -> Result<(), DtcwtError> {
        self.check_levels(img_a)?;
        self.check_levels(img_b)?;
        for (tag, (img, combos)) in [(img_a, &mut *combos_a), (img_b, &mut *combos_b)]
            .into_iter()
            .enumerate()
        {
            for (ci, slot) in combos.slots.iter_mut().enumerate() {
                pool.submit(Job::ForwardCombo {
                    transform: Arc::clone(self),
                    img: Arc::clone(img),
                    tag: tag as u32,
                    combo: ci,
                    kernel,
                    detail: std::mem::take(&mut slot.detail),
                    ll: std::mem::take(&mut slot.ll),
                });
            }
        }
        Ok(())
    }

    /// Collect half of [`Dtcwt::forward_pooled_pair`]: harvests the
    /// **oldest** `2 * COMBOS` outcomes from the pool (which must be this
    /// pair's forward jobs — collects must run in submit order), places them
    /// by tag, and assembles both pyramids. Later jobs from other frames or
    /// streams stay in flight. Both images of a fusion pair share `dims`.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_pooled_pair`]; if both images fail, the error
    /// of the earliest-submitted failing job (image `a` first) is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_pooled_pair_collect(
        self: &Arc<Self>,
        pool: &WorkerPool,
        dims: (usize, usize),
        combos_a: &mut ComboStore,
        out_a: &mut CwtPyramid,
        combos_b: &mut ComboStore,
        out_b: &mut CwtPyramid,
        outcomes: &mut Vec<JobOutcome>,
    ) -> Result<(), DtcwtError> {
        outcomes.clear();
        pool.drain_partial(2 * COMBOS.len(), outcomes);
        // Outcomes arrive in submission order (tag-major), so the first
        // error seen while placing is the deterministic one to report.
        let mut first_err = None;
        for oc in outcomes.drain(..) {
            let combos = if oc.tag == 0 {
                &mut *combos_a
            } else {
                &mut *combos_b
            };
            if first_err.is_none() {
                if let Some(e) = oc.error {
                    first_err = Some(e);
                }
            }
            if let JobPayload::Forward { detail, ll } = oc.payload {
                combos.slots[oc.combo] = ComboSlot { detail, ll };
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        self.assemble_pyramid_into(dims, combos_a, out_a);
        self.assemble_pyramid_into(dims, combos_b, out_b);
        Ok(())
    }

    /// Forward transform with the four tree combinations executed on an
    /// ephemeral four-worker pool, one kernel per worker (see
    /// [`Dtcwt::forward_pooled`] for the persistent-pool variant).
    ///
    /// `kernel_factory` builds one kernel per worker.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_with`].
    pub fn forward_parallel<K, F>(
        &self,
        kernel_factory: F,
        img: &Image,
    ) -> Result<CwtPyramid, DtcwtError>
    where
        K: FilterKernel + Send + 'static,
        F: Fn() -> K,
    {
        self.check_levels(img)?;
        let pool = WorkerPool::new(COMBOS.len(), &mut |_| {
            vec![Box::new(kernel_factory()) as Box<dyn FilterKernel + Send>]
        });
        let t = Arc::new(self.clone());
        let img = Arc::new(img.clone());
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::with_capacity(COMBOS.len());
        let mut out = CwtPyramid::empty();
        t.forward_pooled(&pool, 0, &img, &mut combos, &mut outcomes, &mut out)?;
        Ok(out)
    }

    fn check_levels(&self, img: &Image) -> Result<(), DtcwtError> {
        let (w, h) = img.dims();
        let max = Dwt2d::max_levels(w, h);
        if self.levels > max {
            return Err(DtcwtError::BadLevels {
                requested: self.levels,
                max_supported: max,
            });
        }
        Ok(())
    }

    /// Runs one tree combination's full multi-level analysis.
    fn analyze_combo(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
        rt: Tree,
        ct: Tree,
    ) -> Result<(Vec<Subbands>, Image), DtcwtError> {
        let mut detail = Vec::with_capacity(self.levels);
        let mut cur = img.clone();
        for level in 0..self.levels {
            let padded = cur.pad_to_even();
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let one = analyze_level(kernel, &rows, &cols, &padded)?;
            detail.push(one.detail);
            cur = one.ll;
        }
        Ok((detail, cur))
    }

    /// Allocation-free variant of [`Dtcwt::analyze_combo`] for combination
    /// index `ci` (0..4): writes the per-level detail into `detail` and the
    /// lowpass residual into `ll`, ping-ponging level images through
    /// `scratch`.
    pub(crate) fn analyze_combo_into(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
        ci: usize,
        detail: &mut Vec<Subbands>,
        ll: &mut Image,
        scratch: &mut Scratch,
    ) -> Result<(), DtcwtError> {
        let (rt, ct) = COMBOS[ci];
        // `Subbands::empty()` holds no pixels, so growing the vector only
        // allocates on the very first frame.
        while detail.len() < self.levels {
            detail.push(Subbands::empty());
        }
        detail.truncate(self.levels);
        scratch.cur.copy_from(img);
        for (level, det) in detail.iter_mut().enumerate() {
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let Scratch {
                s1,
                s2,
                cur,
                next,
                padded,
                ..
            } = scratch;
            let (w, h) = cur.dims();
            let src: &Image = if w % 2 == 0 && h % 2 == 0 {
                cur
            } else {
                cur.pad_to_even_into(padded);
                padded
            };
            analyze_level_into(kernel, &rows, &cols, src, next, det, s2, s1)?;
            std::mem::swap(cur, next);
        }
        ll.copy_from(&scratch.cur);
        Ok(())
    }

    fn assemble_pyramid(
        &self,
        img: &Image,
        per_combo: Vec<(Vec<Subbands>, Image)>,
    ) -> Result<CwtPyramid, DtcwtError> {
        // Reconstruct the per-level pre-padding dimensions.
        let mut pre_pad_dims = Vec::with_capacity(self.levels);
        let (mut w, mut h) = img.dims();
        for _ in 0..self.levels {
            pre_pad_dims.push((w, h));
            w = (w + w % 2) / 2;
            h = (h + h % 2) / 2;
        }

        // Combine the four real detail quadruples into complex subbands.
        let mut subbands = Vec::with_capacity(self.levels);
        for level in 0..self.levels {
            let quad = |f: &dyn Fn(&Subbands) -> &Image| -> [&Image; 4] {
                [
                    f(&per_combo[0].0[level]),
                    f(&per_combo[1].0[level]),
                    f(&per_combo[2].0[level]),
                    f(&per_combo[3].0[level]),
                ]
            };
            let hl = quad_to_complex(quad(&|s| &s.hl));
            let lh = quad_to_complex(quad(&|s| &s.lh));
            let hh = quad_to_complex(quad(&|s| &s.hh));
            // Orientation assignment: HL bands carry near-horizontal spatial
            // frequencies (±15°), LH near-vertical (±75°), HH diagonals
            // (±45°); the z1/z2 split separates the sign of the angle.
            subbands.push([
                hl.0, // +15
                hh.0, // +45
                lh.0, // +75
                lh.1, // -75
                hh.1, // -45
                hl.1, // -15
            ]);
        }

        let mut it = per_combo.into_iter().map(|(_, ll)| ll);
        let lowpass = [
            it.next().expect("four combos"),
            it.next().expect("four combos"),
            it.next().expect("four combos"),
            it.next().expect("four combos"),
        ];
        Ok(CwtPyramid {
            subbands,
            lowpass,
            pre_pad_dims,
        })
    }

    /// Allocation-free variant of [`Dtcwt::assemble_pyramid`]: combines the
    /// four combo slots into `out`, reusing all of its buffers.
    fn assemble_pyramid_into(
        &self,
        dims: (usize, usize),
        combos: &ComboStore,
        out: &mut CwtPyramid,
    ) {
        // Reconstruct the per-level pre-padding dimensions.
        out.pre_pad_dims.clear();
        let (mut w, mut h) = dims;
        for _ in 0..self.levels {
            out.pre_pad_dims.push((w, h));
            w = (w + w % 2) / 2;
            h = (h + h % 2) / 2;
        }

        // Combine the four real detail quadruples into complex subbands.
        while out.subbands.len() < self.levels {
            out.subbands
                .push(std::array::from_fn(|_| ComplexImage::zeros(0, 0)));
        }
        out.subbands.truncate(self.levels);
        for level in 0..self.levels {
            let quad = |f: fn(&Subbands) -> &Image| -> [&Image; 4] {
                [
                    f(&combos.slots[0].detail[level]),
                    f(&combos.slots[1].detail[level]),
                    f(&combos.slots[2].detail[level]),
                    f(&combos.slots[3].detail[level]),
                ]
            };
            let bands = &mut out.subbands[level];
            // Same orientation layout as `assemble_pyramid`:
            // hl -> (+15, -15), hh -> (+45, -45), lh -> (+75, -75).
            let (z1, z2) = pair_mut(bands, 0, 5);
            quad_to_complex_into(quad(|s| &s.hl), z1, z2);
            let (z1, z2) = pair_mut(bands, 1, 4);
            quad_to_complex_into(quad(|s| &s.hh), z1, z2);
            let (z1, z2) = pair_mut(bands, 2, 3);
            quad_to_complex_into(quad(|s| &s.lh), z1, z2);
        }

        for (dst, slot) in out.lowpass.iter_mut().zip(&combos.slots) {
            dst.copy_from(&slot.ll);
        }
    }

    /// Inverse transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dtcwt::inverse_with`].
    pub fn inverse(&self, pyr: &CwtPyramid) -> Result<Image, DtcwtError> {
        self.inverse_with(&mut ScalarKernel::new(), pyr)
    }

    /// Inverse transform through a caller-supplied kernel.
    ///
    /// Each of the four tree combinations is inverted independently and the
    /// results averaged; for an unmodified pyramid this reproduces the input
    /// exactly (up to `f32` rounding).
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::MalformedPyramid`] on level-count mismatch and
    /// [`DtcwtError::BadDimensions`] on inconsistent subband shapes.
    pub fn inverse_with(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
    ) -> Result<Image, DtcwtError> {
        self.check_pyramid(pyr)?;
        let mut sum: Option<Image> = None;
        for (ci, &(rt, ct)) in COMBOS.iter().enumerate() {
            let cur = self.synthesize_combo(kernel, pyr, ci, rt, ct)?;
            match &mut sum {
                None => sum = Some(cur),
                Some(acc) => acc.add_scaled(&cur, 1.0),
            }
        }
        let mut out = sum.expect("at least one combo");
        out.scale_in_place(0.25);
        Ok(out)
    }

    /// Allocation-free inverse transform: writes the reconstruction into
    /// `out`, staging per-combo syntheses in `scratch`. Bit-identical to
    /// [`Dtcwt::inverse_with`]; after a warm-up call of the same geometry it
    /// performs zero heap allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_with`].
    pub fn inverse_into(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
        scratch: &mut Scratch,
        out: &mut Image,
    ) -> Result<(), DtcwtError> {
        self.check_pyramid(pyr)?;
        for ci in 0..COMBOS.len() {
            self.synthesize_combo_into(kernel, pyr, ci, scratch)?;
            if ci == 0 {
                out.copy_from(&scratch.cur);
            } else {
                out.add_scaled(&scratch.cur, 1.0);
            }
        }
        out.scale_in_place(0.25);
        Ok(())
    }

    /// Inverse transform with the four tree combinations dispatched to a
    /// long-lived [`WorkerPool`] (see [`Dtcwt::forward_pooled`]). `bufs` is a
    /// recycle bin of output images (up to four are popped and pushed back),
    /// so steady-state dispatch is allocation-free.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_with`], plus [`DtcwtError::MalformedPyramid`]
    /// if a worker lacks the requested kernel slot.
    pub fn inverse_pooled(
        self: &Arc<Self>,
        pool: &WorkerPool,
        kernel: usize,
        pyr: &Arc<CwtPyramid>,
        bufs: &mut Vec<Image>,
        outcomes: &mut Vec<JobOutcome>,
        out: &mut Image,
    ) -> Result<(), DtcwtError> {
        self.inverse_pooled_submit(pool, kernel, pyr, bufs, 0)?;
        self.inverse_pooled_finish(pool, bufs, outcomes, out)
    }

    /// Publishes the four inverse combo jobs of `pyr` onto the pool and
    /// returns immediately — the synthesis runs while the caller does other
    /// work (e.g. capturing the next frame). `tag` labels the batch (the
    /// depth-k engine uses its frame-slot index) and comes back on every
    /// outcome. Each submitted batch must eventually be collected, oldest
    /// first: either by [`Dtcwt::inverse_pooled_finish`] while it is the
    /// only batch in flight, or — with several batches stacked — by a
    /// [`WorkerPool::drain_partial`] of its four outcomes followed by
    /// [`Dtcwt::inverse_collect_outcomes`].
    ///
    /// # Errors
    ///
    /// [`DtcwtError::MalformedPyramid`] if `pyr` has the wrong level count
    /// (nothing is submitted in that case).
    pub fn inverse_pooled_submit(
        self: &Arc<Self>,
        pool: &WorkerPool,
        kernel: usize,
        pyr: &Arc<CwtPyramid>,
        bufs: &mut Vec<Image>,
        tag: u32,
    ) -> Result<(), DtcwtError> {
        self.check_pyramid(pyr)?;
        for ci in 0..COMBOS.len() {
            pool.submit(Job::InverseCombo {
                transform: Arc::clone(self),
                pyr: Arc::clone(pyr),
                tag,
                combo: ci,
                kernel,
                out: bufs.pop().unwrap_or_default(),
            });
        }
        Ok(())
    }

    /// Abandons an in-flight [`Dtcwt::inverse_pooled_submit`] whose result
    /// is no longer wanted: drains the four outcomes (blocking until the
    /// workers finish) and recycles their buffers into `bufs`, leaving the
    /// pool quiescent for the next batch. Errors are discarded.
    pub fn inverse_pooled_abandon(
        self: &Arc<Self>,
        pool: &WorkerPool,
        bufs: &mut Vec<Image>,
        outcomes: &mut Vec<JobOutcome>,
    ) {
        outcomes.clear();
        pool.drain(COMBOS.len(), outcomes);
        Self::recycle_inverse_outcomes(outcomes, bufs);
    }

    /// Completes an in-flight [`Dtcwt::inverse_pooled_submit`]: drains the
    /// four combo outcomes, accumulates them in combo order (bit-identical
    /// to the serial inverse at any thread count), and recycles the output
    /// buffers into `bufs`.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_with`], plus [`DtcwtError::MalformedPyramid`]
    /// if a worker lacks the requested kernel slot.
    pub fn inverse_pooled_finish(
        self: &Arc<Self>,
        pool: &WorkerPool,
        bufs: &mut Vec<Image>,
        outcomes: &mut Vec<JobOutcome>,
        out: &mut Image,
    ) -> Result<(), DtcwtError> {
        outcomes.clear();
        pool.drain(COMBOS.len(), outcomes);
        self.inverse_collect_outcomes(outcomes, bufs, out)
    }

    /// Accumulates one already-harvested inverse batch (the four
    /// [`JobOutcome`]s of a single [`Dtcwt::inverse_pooled_submit`], in any
    /// order) into `out` and recycles the combo buffers into `bufs`. The
    /// combos are summed in combo order, so the result is bit-identical to
    /// the serial inverse — and to [`Dtcwt::inverse_pooled_finish`] —
    /// regardless of worker completion order, thread count, or how many
    /// other batches were in flight alongside this one.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_pooled_finish`]: the lowest-combo error of
    /// the batch, with all surviving buffers recycled first.
    pub fn inverse_collect_outcomes(
        &self,
        outcomes: &mut Vec<JobOutcome>,
        bufs: &mut Vec<Image>,
        out: &mut Image,
    ) -> Result<(), DtcwtError> {
        let mut slots: [Option<Image>; 4] = [None, None, None, None];
        let mut first_err: Option<(usize, DtcwtError)> = None;
        for oc in outcomes.drain(..) {
            if let JobPayload::Inverse { out: img } = oc.payload {
                slots[oc.combo] = Some(img);
            }
            if let Some(e) = oc.error {
                if first_err.as_ref().is_none_or(|(c, _)| oc.combo < *c) {
                    first_err = Some((oc.combo, e));
                }
            }
        }
        if let Some((_, e)) = first_err {
            // Recycle whatever buffers survived before reporting.
            bufs.extend(slots.into_iter().flatten());
            return Err(e);
        }
        // Accumulate in combo order so the result is bit-identical to the
        // serial inverse regardless of worker completion order.
        for (ci, slot) in slots.into_iter().enumerate() {
            let img = slot.expect("all four combos returned");
            if ci == 0 {
                out.copy_from(&img);
            } else {
                out.add_scaled(&img, 1.0);
            }
            bufs.push(img);
        }
        out.scale_in_place(0.25);
        Ok(())
    }

    /// Recycles the buffers of an already-harvested inverse batch without
    /// accumulating it (the abandon counterpart of
    /// [`Dtcwt::inverse_collect_outcomes`]). Errors are discarded.
    pub fn recycle_inverse_outcomes(outcomes: &mut Vec<JobOutcome>, bufs: &mut Vec<Image>) {
        for oc in outcomes.drain(..) {
            if let JobPayload::Inverse { out } = oc.payload {
                bufs.push(out);
            }
        }
    }

    /// Inverse transform with the four tree combinations inverted on an
    /// ephemeral four-worker pool (see [`Dtcwt::forward_parallel`]).
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_with`].
    pub fn inverse_parallel<K, F>(
        &self,
        kernel_factory: F,
        pyr: &CwtPyramid,
    ) -> Result<Image, DtcwtError>
    where
        K: FilterKernel + Send + 'static,
        F: Fn() -> K,
    {
        self.check_pyramid(pyr)?;
        let pool = WorkerPool::new(COMBOS.len(), &mut |_| {
            vec![Box::new(kernel_factory()) as Box<dyn FilterKernel + Send>]
        });
        let t = Arc::new(self.clone());
        let pyr = Arc::new(pyr.clone());
        let mut bufs = Vec::with_capacity(COMBOS.len());
        let mut outcomes = Vec::with_capacity(COMBOS.len());
        let mut out = Image::zeros(0, 0);
        t.inverse_pooled(&pool, 0, &pyr, &mut bufs, &mut outcomes, &mut out)?;
        Ok(out)
    }

    fn check_pyramid(&self, pyr: &CwtPyramid) -> Result<(), DtcwtError> {
        if pyr.levels() != self.levels {
            return Err(DtcwtError::MalformedPyramid(format!(
                "pyramid has {} levels, transform expects {}",
                pyr.levels(),
                self.levels
            )));
        }
        Ok(())
    }

    /// Inverts one tree combination of the pyramid.
    fn synthesize_combo(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
        ci: usize,
        rt: Tree,
        ct: Tree,
    ) -> Result<Image, DtcwtError> {
        let mut cur = pyr.lowpass[ci].clone();
        for level in (0..self.levels).rev() {
            let s = &pyr.subbands[level];
            let detail = Subbands {
                hl: complex_to_quad_member(
                    &s[Orientation::Pos15.index()],
                    &s[Orientation::Neg15.index()],
                    ci,
                ),
                hh: complex_to_quad_member(
                    &s[Orientation::Pos45.index()],
                    &s[Orientation::Neg45.index()],
                    ci,
                ),
                lh: complex_to_quad_member(
                    &s[Orientation::Pos75.index()],
                    &s[Orientation::Neg75.index()],
                    ci,
                ),
            };
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let one = OneLevel { ll: cur, detail };
            let padded = synthesize_level(kernel, &rows, &cols, &one)?;
            let (ow, oh) = pyr.pre_pad_dims[level];
            cur = if padded.dims() == (ow, oh) {
                padded
            } else {
                padded.crop(0, 0, ow, oh)
            };
        }
        Ok(cur)
    }

    /// Allocation-free variant of [`Dtcwt::synthesize_combo`]: leaves the
    /// combination's reconstruction in `scratch.cur`.
    pub(crate) fn synthesize_combo_into(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
        ci: usize,
        scratch: &mut Scratch,
    ) -> Result<(), DtcwtError> {
        let (rt, ct) = COMBOS[ci];
        scratch.cur.copy_from(&pyr.lowpass[ci]);
        for level in (0..self.levels).rev() {
            let s = &pyr.subbands[level];
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let Scratch {
                s1,
                s2,
                cur,
                next,
                qlh,
                qhl,
                qhh,
                ..
            } = scratch;
            complex_to_quad_member_into(
                &s[Orientation::Pos15.index()],
                &s[Orientation::Neg15.index()],
                ci,
                qhl,
            );
            complex_to_quad_member_into(
                &s[Orientation::Pos45.index()],
                &s[Orientation::Neg45.index()],
                ci,
                qhh,
            );
            complex_to_quad_member_into(
                &s[Orientation::Pos75.index()],
                &s[Orientation::Neg75.index()],
                ci,
                qlh,
            );
            synthesize_level_into(kernel, &rows, &cols, cur, qlh, qhl, qhh, next, s2, s1)?;
            let (ow, oh) = pyr.pre_pad_dims[level];
            if next.dims() == (ow, oh) {
                std::mem::swap(cur, next);
            } else {
                next.crop_into(0, 0, ow, oh, cur);
            }
        }
        Ok(())
    }
}

/// Returns the four forward-job buffers to their combo slots, reporting the
/// lowest-combo error if any job failed.
fn place_forward_outcomes(
    outcomes: &mut Vec<JobOutcome>,
    combos: &mut ComboStore,
) -> Option<DtcwtError> {
    let mut first_err: Option<(usize, DtcwtError)> = None;
    for oc in outcomes.drain(..) {
        if let Some(e) = oc.error {
            if first_err.as_ref().is_none_or(|(c, _)| oc.combo < *c) {
                first_err = Some((oc.combo, e));
            }
        }
        if let JobPayload::Forward { detail, ll } = oc.payload {
            combos.slots[oc.combo] = ComboSlot { detail, ll };
        }
    }
    first_err.map(|(_, e)| e)
}

/// Splits two distinct subband indices (`i < j`) out of one level's array.
fn pair_mut(
    bands: &mut [ComplexImage; 6],
    i: usize,
    j: usize,
) -> (&mut ComplexImage, &mut ComplexImage) {
    debug_assert!(i < j);
    let (head, tail) = bands.split_at_mut(j);
    (&mut head[i], &mut tail[0])
}

/// Combines the four per-tree real subbands `[aa, ab, ba, bb]` into the two
/// oppositely-oriented complex subbands:
/// `z1 = ((aa − bb) + i(ab + ba)) / 2`, `z2 = ((aa + bb) + i(ab − ba)) / 2`.
fn quad_to_complex(q: [&Image; 4]) -> (ComplexImage, ComplexImage) {
    let mut z1 = ComplexImage::zeros(0, 0);
    let mut z2 = ComplexImage::zeros(0, 0);
    quad_to_complex_into(q, &mut z1, &mut z2);
    (z1, z2)
}

/// Allocation-free form of [`quad_to_complex`], writing into reshaped
/// outputs.
fn quad_to_complex_into(q: [&Image; 4], z1: &mut ComplexImage, z2: &mut ComplexImage) {
    let (w, h) = q[0].dims();
    z1.reshape(w, h);
    z2.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let (a, b, c, d) = (
                q[0].get(x, y),
                q[1].get(x, y),
                q[2].get(x, y),
                q[3].get(x, y),
            );
            z1.re.set(x, y, 0.5 * (a - d));
            z1.im.set(x, y, 0.5 * (b + c));
            z2.re.set(x, y, 0.5 * (a + d));
            z2.im.set(x, y, 0.5 * (b - c));
        }
    }
}

/// Inverse of [`quad_to_complex`] for one tree combination `ci`
/// (`aa = 0, ab = 1, ba = 2, bb = 3`).
fn complex_to_quad_member(z1: &ComplexImage, z2: &ComplexImage, ci: usize) -> Image {
    let mut out = Image::zeros(0, 0);
    complex_to_quad_member_into(z1, z2, ci, &mut out);
    out
}

/// Allocation-free form of [`complex_to_quad_member`], writing into a
/// reshaped output.
fn complex_to_quad_member_into(z1: &ComplexImage, z2: &ComplexImage, ci: usize, out: &mut Image) {
    let (w, h) = z1.dims();
    out.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let (r1, i1) = (z1.re.get(x, y), z1.im.get(x, y));
            let (r2, i2) = (z2.re.get(x, y), z2.im.get(x, y));
            let v = match ci {
                0 => r1 + r2, // aa
                1 => i1 + i2, // ab
                2 => i1 - i2, // ba
                3 => r2 - r1, // bb
                _ => unreachable!("tree combination index is 0..4"),
            };
            out.set(x, y, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            ((x as f32 * 0.31).sin() * (y as f32 * 0.17).cos()) * 8.0
                + ((3 * x + 5 * y) % 11) as f32 * 0.4
        })
    }

    #[test]
    fn quad_complex_round_trip() {
        let imgs: Vec<Image> = (0..4)
            .map(|s| Image::from_fn(6, 4, |x, y| (s * 100 + y * 6 + x) as f32 * 0.1))
            .collect();
        let (z1, z2) = quad_to_complex([&imgs[0], &imgs[1], &imgs[2], &imgs[3]]);
        for (ci, img) in imgs.iter().enumerate() {
            let back = complex_to_quad_member(&z1, &z2, ci);
            assert!(back.max_abs_diff(img) < 1e-5, "combo {ci} not recovered");
        }
    }

    #[test]
    fn perfect_reconstruction_paper_sizes() {
        for (w, h) in [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)] {
            let img = test_image(w, h);
            let levels = 3.min(Dwt2d::max_levels(w, h));
            let t = Dtcwt::new(levels).unwrap();
            let pyr = t.forward(&img).unwrap();
            let back = t.inverse(&pyr).unwrap();
            let err = back.max_abs_diff(&img);
            assert!(err < 2e-3, "{w}x{h}: err {err}");
        }
    }

    #[test]
    fn subband_count_and_dims() {
        let t = Dtcwt::new(2).unwrap();
        let pyr = t.forward(&test_image(64, 48)).unwrap();
        assert_eq!(pyr.levels(), 2);
        assert_eq!(pyr.subbands(0).len(), 6);
        assert_eq!(pyr.subbands(0)[0].dims(), (32, 24));
        assert_eq!(pyr.subbands(1)[0].dims(), (16, 12));
        for ll in pyr.lowpass() {
            assert_eq!(ll.dims(), (16, 12));
        }
        assert_eq!(pyr.input_dims(), (64, 48));
    }

    #[test]
    fn zero_levels_rejected() {
        assert!(Dtcwt::new(0).is_err());
    }

    #[test]
    fn level_mismatch_rejected() {
        let t2 = Dtcwt::new(2).unwrap();
        let t3 = Dtcwt::new(3).unwrap();
        let pyr = t2.forward(&test_image(64, 64)).unwrap();
        assert!(matches!(
            t3.inverse(&pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn orientation_metadata() {
        assert_eq!(Orientation::ALL.len(), 6);
        for (i, o) in Orientation::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
        assert_eq!(Orientation::Pos45.angle_degrees(), 45.0);
        assert_eq!(Orientation::Neg75.to_string(), "-75deg");
    }

    /// Diagonal gratings must excite the matching ±45° subband much more
    /// strongly than its mirror — the defining DT-CWT property a real DWT
    /// lacks.
    #[test]
    fn diagonal_orientation_selectivity() {
        let n = 64;
        // Wave vector along (1, 1): crests along the -45° direction...
        // what matters here is that the two diagonal gratings separate.
        let grating_pos = Image::from_fn(n, n, |x, y| ((x as f32 + y as f32) * 0.9).sin());
        let grating_neg = Image::from_fn(n, n, |x, y| ((x as f32 - y as f32) * 0.9).sin());
        let t = Dtcwt::new(2).unwrap();
        let e = |img: &Image, o: Orientation| -> f64 {
            let pyr = t.forward(img).unwrap();
            (0..2).map(|l| pyr.subband(l, o).energy()).sum()
        };
        let p_pos45 = e(&grating_pos, Orientation::Pos45);
        let p_neg45 = e(&grating_pos, Orientation::Neg45);
        let n_pos45 = e(&grating_neg, Orientation::Pos45);
        let n_neg45 = e(&grating_neg, Orientation::Neg45);
        // Each grating prefers one diagonal band by a wide margin, and they
        // prefer opposite bands.
        let ratio_a = p_pos45.max(p_neg45) / p_pos45.min(p_neg45);
        let ratio_b = n_pos45.max(n_neg45) / n_pos45.min(n_neg45);
        assert!(ratio_a > 4.0, "grating(+) ratio {ratio_a}");
        assert!(ratio_b > 4.0, "grating(-) ratio {ratio_b}");
        assert_eq!(
            p_pos45 > p_neg45,
            n_pos45 < n_neg45,
            "gratings must prefer opposite diagonal bands"
        );
    }

    #[test]
    fn pooled_forward_and_inverse_match_serial_exactly() {
        // Pooled paths must be *bit-identical* to the allocating paths: the
        // arithmetic and its order are shared, only buffer ownership moved.
        // One scratch/combo-store reused across all sizes, including odd
        // 35x35, to prove stale state cannot leak between geometries.
        let mut scratch = Scratch::new();
        let mut combos = ComboStore::new();
        let mut pyr_out = CwtPyramid::empty();
        let mut img_out = Image::zeros(0, 0);
        for (w, h) in [(32, 24), (35, 35), (40, 40), (8, 8), (88, 72)] {
            let img = test_image(w, h);
            let levels = 3.min(Dwt2d::max_levels(w, h));
            let t = Dtcwt::new(levels).unwrap();
            let mut k = ScalarKernel::new();
            let serial = t.forward_with(&mut k, &img).unwrap();
            t.forward_into(&mut k, &img, &mut combos, &mut scratch, &mut pyr_out)
                .unwrap();
            assert_eq!(pyr_out.levels(), serial.levels());
            assert_eq!(pyr_out.input_dims(), serial.input_dims());
            for level in 0..levels {
                for (a, b) in serial.subbands(level).iter().zip(pyr_out.subbands(level)) {
                    assert_eq!(a.re, b.re, "{w}x{h} level {level}");
                    assert_eq!(a.im, b.im, "{w}x{h} level {level}");
                }
            }
            for (a, b) in serial.lowpass().iter().zip(pyr_out.lowpass()) {
                assert_eq!(a, b, "{w}x{h} lowpass");
            }
            let inv_serial = t.inverse_with(&mut k, &serial).unwrap();
            t.inverse_into(&mut k, &pyr_out, &mut scratch, &mut img_out)
                .unwrap();
            assert_eq!(img_out, inv_serial, "{w}x{h} inverse");
        }
    }

    #[test]
    fn pooled_paths_reject_bad_inputs_like_serial() {
        let mut scratch = Scratch::new();
        let mut combos = ComboStore::new();
        let mut pyr_out = CwtPyramid::empty();
        let t6 = Dtcwt::new(6).unwrap();
        let img = test_image(16, 16);
        let mut k = ScalarKernel::new();
        assert!(matches!(
            t6.forward_into(&mut k, &img, &mut combos, &mut scratch, &mut pyr_out),
            Err(DtcwtError::BadLevels { .. })
        ));
        let t2 = Dtcwt::new(2).unwrap();
        let t3 = Dtcwt::new(3).unwrap();
        let pyr = t2.forward(&test_image(32, 32)).unwrap();
        let mut out = Image::zeros(0, 0);
        assert!(matches!(
            t3.inverse_into(&mut k, &pyr, &mut scratch, &mut out),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn pooled_worker_inverse_matches_serial_exactly() {
        let img = test_image(40, 40);
        let t = Arc::new(Dtcwt::new(3).unwrap());
        let pyr = Arc::new(t.forward(&img).unwrap());
        let serial = t.inverse(&pyr).unwrap();
        let pool = WorkerPool::new(4, &mut |_| {
            vec![Box::new(ScalarKernel::new()) as Box<dyn FilterKernel + Send>]
        });
        let mut bufs = Vec::new();
        let mut outcomes = Vec::new();
        let mut out = Image::zeros(0, 0);
        t.inverse_pooled(&pool, 0, &pyr, &mut bufs, &mut outcomes, &mut out)
            .unwrap();
        assert_eq!(out, serial);
        assert_eq!(bufs.len(), 4, "all four buffers recycled");
    }

    #[test]
    fn parallel_paths_match_serial() {
        let img = test_image(88, 72);
        let t = Dtcwt::new(3).unwrap();
        let serial = t.forward(&img).unwrap();
        let parallel = t
            .forward_parallel(crate::kernel::ScalarKernel::new, &img)
            .unwrap();
        for level in 0..3 {
            for (a, b) in serial.subbands(level).iter().zip(parallel.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-6);
                assert!(a.im.max_abs_diff(&b.im) < 1e-6);
            }
        }
        for (a, b) in serial.lowpass().iter().zip(parallel.lowpass()) {
            assert!(a.max_abs_diff(b) < 1e-6);
        }
        assert_eq!(serial.input_dims(), parallel.input_dims());
        let inv_serial = t.inverse(&serial).unwrap();
        let inv_parallel = t
            .inverse_parallel(crate::kernel::ScalarKernel::new, &parallel)
            .unwrap();
        assert!(inv_serial.max_abs_diff(&inv_parallel) < 1e-6);
        assert!(inv_parallel.max_abs_diff(&img) < 2e-3);
    }

    #[test]
    fn parallel_rejects_bad_inputs_like_serial() {
        let t = Dtcwt::new(6).unwrap();
        let img = test_image(16, 16);
        assert!(matches!(
            t.forward_parallel(crate::kernel::ScalarKernel::new, &img),
            Err(DtcwtError::BadLevels { .. })
        ));
        let t2 = Dtcwt::new(2).unwrap();
        let t3 = Dtcwt::new(3).unwrap();
        let pyr = t2.forward(&test_image(32, 32)).unwrap();
        assert!(matches!(
            t3.inverse_parallel(crate::kernel::ScalarKernel::new, &pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn constant_image_energy_in_lowpass_only() {
        let img = Image::filled(32, 32, 4.0);
        let t = Dtcwt::new(2).unwrap();
        let pyr = t.forward(&img).unwrap();
        for l in 0..2 {
            assert!(pyr.level_energy(l) < 1e-6, "level {l} leaked");
        }
        for ll in pyr.lowpass() {
            // Gain sqrt(2)^2 per level on the lowpass path.
            assert!((ll.get(4, 4) - 16.0).abs() < 1e-3);
        }
    }
}

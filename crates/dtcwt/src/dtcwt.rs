//! The Dual-Tree Complex Wavelet Transform.
//!
//! Kingsbury's DT-CWT runs four parallel separable DWTs — every combination
//! of two filter *trees* along rows and columns — and combines their detail
//! bands into complex coefficients with six orientation-selective subbands
//! per level (±15°, ±45°, ±75°). Tree B of level 1 is the same bank as tree
//! A sampled at the opposite polyphase; trees at levels ≥ 2 use the
//! quarter-shift bank and its time reverse. Because each of the four
//! constituent transforms is perfectly reconstructing on its own, the
//! dual-tree inverse (average of the four per-tree inverses) is exact too.
//!
//! The redundancy (4:1) buys the two properties the fusion literature cares
//! about: approximate shift invariance and directional selectivity that
//! distinguishes +45° from −45° (a plain DWT cannot).

use crate::dwt1d::{BankTaps, Phase};
use crate::dwt2d::{analyze_level, synthesize_level, AxisSpec, Dwt2d, OneLevel, Subbands};
use crate::filters::FilterBank;
use crate::image::{ComplexImage, Image};
use crate::kernel::{FilterKernel, ScalarKernel};
use crate::DtcwtError;

/// The six orientation-selective subbands of each DT-CWT level.
///
/// Angles follow Kingsbury's convention: positive angles rotate
/// counter-clockwise from the horizontal axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// +15° (near-horizontal features).
    Pos15,
    /// +45° (diagonal features).
    Pos45,
    /// +75° (near-vertical features).
    Pos75,
    /// −75°.
    Neg75,
    /// −45° (anti-diagonal features).
    Neg45,
    /// −15°.
    Neg15,
}

impl Orientation {
    /// All six orientations in subband-index order.
    pub const ALL: [Orientation; 6] = [
        Orientation::Pos15,
        Orientation::Pos45,
        Orientation::Pos75,
        Orientation::Neg75,
        Orientation::Neg45,
        Orientation::Neg15,
    ];

    /// Subband index (0..6) of this orientation.
    pub fn index(self) -> usize {
        Orientation::ALL
            .iter()
            .position(|&o| o == self)
            .expect("orientation present in ALL")
    }

    /// Nominal orientation angle in degrees.
    pub fn angle_degrees(self) -> f64 {
        match self {
            Orientation::Pos15 => 15.0,
            Orientation::Pos45 => 45.0,
            Orientation::Pos75 => 75.0,
            Orientation::Neg75 => -75.0,
            Orientation::Neg45 => -45.0,
            Orientation::Neg15 => -15.0,
        }
    }
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+}deg", self.angle_degrees())
    }
}

/// A multi-level DT-CWT pyramid: six complex subbands per level plus the
/// four per-tree lowpass residuals.
#[derive(Debug, Clone)]
pub struct CwtPyramid {
    /// `subbands[level][orientation]`.
    subbands: Vec<[ComplexImage; 6]>,
    /// Lowpass residual of each tree combination, indexed
    /// `row_tree * 2 + col_tree` (A = 0, B = 1).
    lowpass: [Image; 4],
    /// Input dimensions entering each level, pre-padding.
    pre_pad_dims: Vec<(usize, usize)>,
}

impl CwtPyramid {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.subbands.len()
    }

    /// The six oriented complex subbands of `level` (0 = finest), indexed by
    /// [`Orientation::index`].
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subbands(&self, level: usize) -> &[ComplexImage; 6] {
        &self.subbands[level]
    }

    /// Mutable access to the oriented subbands of `level` (for fusion rules).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subbands_mut(&mut self, level: usize) -> &mut [ComplexImage; 6] {
        &mut self.subbands[level]
    }

    /// One oriented subband.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn subband(&self, level: usize, orientation: Orientation) -> &ComplexImage {
        &self.subbands[level][orientation.index()]
    }

    /// The four per-tree lowpass residual images.
    pub fn lowpass(&self) -> &[Image; 4] {
        &self.lowpass
    }

    /// Mutable lowpass residuals (for fusion rules).
    pub fn lowpass_mut(&mut self) -> &mut [Image; 4] {
        &mut self.lowpass
    }

    /// Original input dimensions.
    pub fn input_dims(&self) -> (usize, usize) {
        self.pre_pad_dims[0]
    }

    /// Total coefficient energy of one level's oriented subbands.
    pub fn level_energy(&self, level: usize) -> f64 {
        self.subbands[level].iter().map(|c| c.energy()).sum()
    }
}

/// Tree selector along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tree {
    A,
    B,
}

const COMBOS: [(Tree, Tree); 4] = [
    (Tree::A, Tree::A),
    (Tree::A, Tree::B),
    (Tree::B, Tree::A),
    (Tree::B, Tree::B),
];

/// The Dual-Tree Complex Wavelet Transform.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{Dtcwt, Image, Orientation};
///
/// let img = Image::from_fn(64, 48, |x, y| ((x + 2 * y) % 9) as f32);
/// let t = Dtcwt::new(3)?;
/// let pyr = t.forward(&img)?;
/// let mag = pyr.subband(0, Orientation::Pos45).magnitude();
/// assert_eq!(mag.dims(), (32, 24));
/// let back = t.inverse(&pyr)?;
/// assert!(back.max_abs_diff(&img) < 1e-3);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dtcwt {
    level1: FilterBank,
    qshift: FilterBank,
    level1_taps: BankTaps,
    qshift_fwd_taps: BankTaps,
    qshift_rev_taps: BankTaps,
    levels: usize,
}

impl Dtcwt {
    /// Creates a DT-CWT with the standard banks: `near_sym_b` (13,19) at
    /// level 1 and `qshift_b` (14-tap) at levels ≥ 2.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`, or a filter
    /// construction error (which for the built-in banks cannot occur).
    pub fn new(levels: usize) -> Result<Self, DtcwtError> {
        Dtcwt::with_banks(FilterBank::near_sym_b()?, FilterBank::qshift_b()?, levels)
    }

    /// Creates a DT-CWT with explicit level-1 and quarter-shift banks.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`.
    pub fn with_banks(
        level1: FilterBank,
        qshift: FilterBank,
        levels: usize,
    ) -> Result<Self, DtcwtError> {
        if levels == 0 {
            return Err(DtcwtError::BadLevels {
                requested: 0,
                max_supported: usize::MAX,
            });
        }
        let level1_taps = BankTaps::new(&level1);
        let qshift_fwd_taps = BankTaps::new(&qshift);
        let qshift_rev_taps = BankTaps::new(&qshift.time_reverse());
        Ok(Dtcwt {
            level1,
            qshift,
            level1_taps,
            qshift_fwd_taps,
            qshift_rev_taps,
            levels,
        })
    }

    /// The level-1 filter bank.
    pub fn level1_bank(&self) -> &FilterBank {
        &self.level1
    }

    /// The quarter-shift bank used at levels ≥ 2 (tree A; tree B is its time
    /// reverse).
    pub fn qshift_bank(&self) -> &FilterBank {
        &self.qshift
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    fn axis_spec(&self, level: usize, tree: Tree) -> AxisSpec<'_> {
        if level == 0 {
            AxisSpec {
                taps: &self.level1_taps,
                phase: match tree {
                    Tree::A => Phase::A,
                    Tree::B => Phase::B,
                },
            }
        } else {
            // Tree B's level-1 samples sit one input sample later than tree
            // A's, so to keep the cumulative tree delay difference at half an
            // output sample per level, tree A takes the *time-reversed*
            // quarter-shift bank (group delay L/2 + 1/4) and tree B the
            // original (L/2 - 1/4). With the opposite assignment the offsets
            // cancel and orientation selectivity collapses.
            AxisSpec {
                taps: match tree {
                    Tree::A => &self.qshift_rev_taps,
                    Tree::B => &self.qshift_fwd_taps,
                },
                phase: Phase::A,
            }
        }
    }

    /// Forward transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dtcwt::forward_with`].
    pub fn forward(&self, img: &Image) -> Result<CwtPyramid, DtcwtError> {
        self.forward_with(&mut ScalarKernel::new(), img)
    }

    /// Forward transform through a caller-supplied kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if the image cannot support the
    /// configured depth, and [`DtcwtError::BadDimensions`] for empty images.
    pub fn forward_with(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
    ) -> Result<CwtPyramid, DtcwtError> {
        self.check_levels(img)?;
        // Run the four tree combinations.
        let mut per_combo: Vec<(Vec<Subbands>, Image)> = Vec::with_capacity(4);
        for &(rt, ct) in COMBOS.iter() {
            per_combo.push(self.analyze_combo(kernel, img, rt, ct)?);
        }
        self.assemble_pyramid(img, per_combo)
    }

    /// Forward transform with the four tree combinations executed on
    /// scoped worker threads, one kernel per thread (host-side
    /// parallelism; the modeled platform timing is unaffected — the paper's
    /// single-A9 system has no such option, but a library user's host
    /// does).
    ///
    /// `kernel_factory` builds one kernel per worker.
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::forward_with`].
    pub fn forward_parallel<K, F>(
        &self,
        kernel_factory: F,
        img: &Image,
    ) -> Result<CwtPyramid, DtcwtError>
    where
        K: FilterKernel,
        F: Fn() -> K + Sync,
    {
        self.check_levels(img)?;
        let results: Vec<Result<(Vec<Subbands>, Image), DtcwtError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = COMBOS
                    .iter()
                    .map(|&(rt, ct)| {
                        let factory = &kernel_factory;
                        scope.spawn(move || {
                            let mut kernel = factory();
                            self.analyze_combo(&mut kernel, img, rt, ct)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker does not panic"))
                    .collect()
            });
        let mut per_combo = Vec::with_capacity(4);
        for r in results {
            per_combo.push(r?);
        }
        self.assemble_pyramid(img, per_combo)
    }

    fn check_levels(&self, img: &Image) -> Result<(), DtcwtError> {
        let (w, h) = img.dims();
        let max = Dwt2d::max_levels(w, h);
        if self.levels > max {
            return Err(DtcwtError::BadLevels {
                requested: self.levels,
                max_supported: max,
            });
        }
        Ok(())
    }

    /// Runs one tree combination's full multi-level analysis.
    fn analyze_combo(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
        rt: Tree,
        ct: Tree,
    ) -> Result<(Vec<Subbands>, Image), DtcwtError> {
        let mut detail = Vec::with_capacity(self.levels);
        let mut cur = img.clone();
        for level in 0..self.levels {
            let padded = cur.pad_to_even();
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let one = analyze_level(kernel, &rows, &cols, &padded)?;
            detail.push(one.detail);
            cur = one.ll;
        }
        Ok((detail, cur))
    }

    fn assemble_pyramid(
        &self,
        img: &Image,
        per_combo: Vec<(Vec<Subbands>, Image)>,
    ) -> Result<CwtPyramid, DtcwtError> {
        // Reconstruct the per-level pre-padding dimensions.
        let mut pre_pad_dims = Vec::with_capacity(self.levels);
        let (mut w, mut h) = img.dims();
        for _ in 0..self.levels {
            pre_pad_dims.push((w, h));
            w = (w + w % 2) / 2;
            h = (h + h % 2) / 2;
        }

        // Combine the four real detail quadruples into complex subbands.
        let mut subbands = Vec::with_capacity(self.levels);
        for level in 0..self.levels {
            let quad = |f: &dyn Fn(&Subbands) -> &Image| -> [&Image; 4] {
                [
                    f(&per_combo[0].0[level]),
                    f(&per_combo[1].0[level]),
                    f(&per_combo[2].0[level]),
                    f(&per_combo[3].0[level]),
                ]
            };
            let hl = quad_to_complex(quad(&|s| &s.hl));
            let lh = quad_to_complex(quad(&|s| &s.lh));
            let hh = quad_to_complex(quad(&|s| &s.hh));
            // Orientation assignment: HL bands carry near-horizontal spatial
            // frequencies (±15°), LH near-vertical (±75°), HH diagonals
            // (±45°); the z1/z2 split separates the sign of the angle.
            subbands.push([
                hl.0, // +15
                hh.0, // +45
                lh.0, // +75
                lh.1, // -75
                hh.1, // -45
                hl.1, // -15
            ]);
        }

        let mut it = per_combo.into_iter().map(|(_, ll)| ll);
        let lowpass = [
            it.next().expect("four combos"),
            it.next().expect("four combos"),
            it.next().expect("four combos"),
            it.next().expect("four combos"),
        ];
        Ok(CwtPyramid {
            subbands,
            lowpass,
            pre_pad_dims,
        })
    }

    /// Inverse transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dtcwt::inverse_with`].
    pub fn inverse(&self, pyr: &CwtPyramid) -> Result<Image, DtcwtError> {
        self.inverse_with(&mut ScalarKernel::new(), pyr)
    }

    /// Inverse transform through a caller-supplied kernel.
    ///
    /// Each of the four tree combinations is inverted independently and the
    /// results averaged; for an unmodified pyramid this reproduces the input
    /// exactly (up to `f32` rounding).
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::MalformedPyramid`] on level-count mismatch and
    /// [`DtcwtError::BadDimensions`] on inconsistent subband shapes.
    pub fn inverse_with(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
    ) -> Result<Image, DtcwtError> {
        self.check_pyramid(pyr)?;
        let mut sum: Option<Image> = None;
        for (ci, &(rt, ct)) in COMBOS.iter().enumerate() {
            let cur = self.synthesize_combo(kernel, pyr, ci, rt, ct)?;
            match &mut sum {
                None => sum = Some(cur),
                Some(acc) => acc.add_scaled(&cur, 1.0),
            }
        }
        let mut out = sum.expect("at least one combo");
        out.scale_in_place(0.25);
        Ok(out)
    }

    /// Inverse transform with the four tree combinations inverted on
    /// scoped worker threads (see [`Dtcwt::forward_parallel`]).
    ///
    /// # Errors
    ///
    /// Same as [`Dtcwt::inverse_with`].
    pub fn inverse_parallel<K, F>(
        &self,
        kernel_factory: F,
        pyr: &CwtPyramid,
    ) -> Result<Image, DtcwtError>
    where
        K: FilterKernel,
        F: Fn() -> K + Sync,
    {
        self.check_pyramid(pyr)?;
        let results: Vec<Result<Image, DtcwtError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = COMBOS
                .iter()
                .enumerate()
                .map(|(ci, &(rt, ct))| {
                    let factory = &kernel_factory;
                    scope.spawn(move || {
                        let mut kernel = factory();
                        self.synthesize_combo(&mut kernel, pyr, ci, rt, ct)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        });
        let mut sum: Option<Image> = None;
        for r in results {
            let cur = r?;
            match &mut sum {
                None => sum = Some(cur),
                Some(acc) => acc.add_scaled(&cur, 1.0),
            }
        }
        let mut out = sum.expect("at least one combo");
        out.scale_in_place(0.25);
        Ok(out)
    }

    fn check_pyramid(&self, pyr: &CwtPyramid) -> Result<(), DtcwtError> {
        if pyr.levels() != self.levels {
            return Err(DtcwtError::MalformedPyramid(format!(
                "pyramid has {} levels, transform expects {}",
                pyr.levels(),
                self.levels
            )));
        }
        Ok(())
    }

    /// Inverts one tree combination of the pyramid.
    fn synthesize_combo(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &CwtPyramid,
        ci: usize,
        rt: Tree,
        ct: Tree,
    ) -> Result<Image, DtcwtError> {
        let mut cur = pyr.lowpass[ci].clone();
        for level in (0..self.levels).rev() {
            let s = &pyr.subbands[level];
            let detail = Subbands {
                hl: complex_to_quad_member(
                    &s[Orientation::Pos15.index()],
                    &s[Orientation::Neg15.index()],
                    ci,
                ),
                hh: complex_to_quad_member(
                    &s[Orientation::Pos45.index()],
                    &s[Orientation::Neg45.index()],
                    ci,
                ),
                lh: complex_to_quad_member(
                    &s[Orientation::Pos75.index()],
                    &s[Orientation::Neg75.index()],
                    ci,
                ),
            };
            let rows = self.axis_spec(level, rt);
            let cols = self.axis_spec(level, ct);
            let one = OneLevel { ll: cur, detail };
            let padded = synthesize_level(kernel, &rows, &cols, &one)?;
            let (ow, oh) = pyr.pre_pad_dims[level];
            cur = if padded.dims() == (ow, oh) {
                padded
            } else {
                padded.crop(0, 0, ow, oh)
            };
        }
        Ok(cur)
    }
}

/// Combines the four per-tree real subbands `[aa, ab, ba, bb]` into the two
/// oppositely-oriented complex subbands:
/// `z1 = ((aa − bb) + i(ab + ba)) / 2`, `z2 = ((aa + bb) + i(ab − ba)) / 2`.
fn quad_to_complex(q: [&Image; 4]) -> (ComplexImage, ComplexImage) {
    let (w, h) = q[0].dims();
    let mut z1 = ComplexImage::zeros(w, h);
    let mut z2 = ComplexImage::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            let (a, b, c, d) = (
                q[0].get(x, y),
                q[1].get(x, y),
                q[2].get(x, y),
                q[3].get(x, y),
            );
            z1.re.set(x, y, 0.5 * (a - d));
            z1.im.set(x, y, 0.5 * (b + c));
            z2.re.set(x, y, 0.5 * (a + d));
            z2.im.set(x, y, 0.5 * (b - c));
        }
    }
    (z1, z2)
}

/// Inverse of [`quad_to_complex`] for one tree combination `ci`
/// (`aa = 0, ab = 1, ba = 2, bb = 3`).
fn complex_to_quad_member(z1: &ComplexImage, z2: &ComplexImage, ci: usize) -> Image {
    let (w, h) = z1.dims();
    Image::from_fn(w, h, |x, y| {
        let (r1, i1) = (z1.re.get(x, y), z1.im.get(x, y));
        let (r2, i2) = (z2.re.get(x, y), z2.im.get(x, y));
        match ci {
            0 => r1 + r2, // aa
            1 => i1 + i2, // ab
            2 => i1 - i2, // ba
            3 => r2 - r1, // bb
            _ => unreachable!("tree combination index is 0..4"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            ((x as f32 * 0.31).sin() * (y as f32 * 0.17).cos()) * 8.0
                + ((3 * x + 5 * y) % 11) as f32 * 0.4
        })
    }

    #[test]
    fn quad_complex_round_trip() {
        let imgs: Vec<Image> = (0..4)
            .map(|s| Image::from_fn(6, 4, |x, y| (s * 100 + y * 6 + x) as f32 * 0.1))
            .collect();
        let (z1, z2) = quad_to_complex([&imgs[0], &imgs[1], &imgs[2], &imgs[3]]);
        for (ci, img) in imgs.iter().enumerate() {
            let back = complex_to_quad_member(&z1, &z2, ci);
            assert!(back.max_abs_diff(img) < 1e-5, "combo {ci} not recovered");
        }
    }

    #[test]
    fn perfect_reconstruction_paper_sizes() {
        for (w, h) in [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)] {
            let img = test_image(w, h);
            let levels = 3.min(Dwt2d::max_levels(w, h));
            let t = Dtcwt::new(levels).unwrap();
            let pyr = t.forward(&img).unwrap();
            let back = t.inverse(&pyr).unwrap();
            let err = back.max_abs_diff(&img);
            assert!(err < 2e-3, "{w}x{h}: err {err}");
        }
    }

    #[test]
    fn subband_count_and_dims() {
        let t = Dtcwt::new(2).unwrap();
        let pyr = t.forward(&test_image(64, 48)).unwrap();
        assert_eq!(pyr.levels(), 2);
        assert_eq!(pyr.subbands(0).len(), 6);
        assert_eq!(pyr.subbands(0)[0].dims(), (32, 24));
        assert_eq!(pyr.subbands(1)[0].dims(), (16, 12));
        for ll in pyr.lowpass() {
            assert_eq!(ll.dims(), (16, 12));
        }
        assert_eq!(pyr.input_dims(), (64, 48));
    }

    #[test]
    fn zero_levels_rejected() {
        assert!(Dtcwt::new(0).is_err());
    }

    #[test]
    fn level_mismatch_rejected() {
        let t2 = Dtcwt::new(2).unwrap();
        let t3 = Dtcwt::new(3).unwrap();
        let pyr = t2.forward(&test_image(64, 64)).unwrap();
        assert!(matches!(
            t3.inverse(&pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn orientation_metadata() {
        assert_eq!(Orientation::ALL.len(), 6);
        for (i, o) in Orientation::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
        assert_eq!(Orientation::Pos45.angle_degrees(), 45.0);
        assert_eq!(Orientation::Neg75.to_string(), "-75deg");
    }

    /// Diagonal gratings must excite the matching ±45° subband much more
    /// strongly than its mirror — the defining DT-CWT property a real DWT
    /// lacks.
    #[test]
    fn diagonal_orientation_selectivity() {
        let n = 64;
        // Wave vector along (1, 1): crests along the -45° direction...
        // what matters here is that the two diagonal gratings separate.
        let grating_pos = Image::from_fn(n, n, |x, y| ((x as f32 + y as f32) * 0.9).sin());
        let grating_neg = Image::from_fn(n, n, |x, y| ((x as f32 - y as f32) * 0.9).sin());
        let t = Dtcwt::new(2).unwrap();
        let e = |img: &Image, o: Orientation| -> f64 {
            let pyr = t.forward(img).unwrap();
            (0..2).map(|l| pyr.subband(l, o).energy()).sum()
        };
        let p_pos45 = e(&grating_pos, Orientation::Pos45);
        let p_neg45 = e(&grating_pos, Orientation::Neg45);
        let n_pos45 = e(&grating_neg, Orientation::Pos45);
        let n_neg45 = e(&grating_neg, Orientation::Neg45);
        // Each grating prefers one diagonal band by a wide margin, and they
        // prefer opposite bands.
        let ratio_a = p_pos45.max(p_neg45) / p_pos45.min(p_neg45);
        let ratio_b = n_pos45.max(n_neg45) / n_pos45.min(n_neg45);
        assert!(ratio_a > 4.0, "grating(+) ratio {ratio_a}");
        assert!(ratio_b > 4.0, "grating(-) ratio {ratio_b}");
        assert_eq!(
            p_pos45 > p_neg45,
            n_pos45 < n_neg45,
            "gratings must prefer opposite diagonal bands"
        );
    }

    #[test]
    fn parallel_paths_match_serial() {
        let img = test_image(88, 72);
        let t = Dtcwt::new(3).unwrap();
        let serial = t.forward(&img).unwrap();
        let parallel = t
            .forward_parallel(crate::kernel::ScalarKernel::new, &img)
            .unwrap();
        for level in 0..3 {
            for (a, b) in serial.subbands(level).iter().zip(parallel.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-6);
                assert!(a.im.max_abs_diff(&b.im) < 1e-6);
            }
        }
        for (a, b) in serial.lowpass().iter().zip(parallel.lowpass()) {
            assert!(a.max_abs_diff(b) < 1e-6);
        }
        assert_eq!(serial.input_dims(), parallel.input_dims());
        let inv_serial = t.inverse(&serial).unwrap();
        let inv_parallel = t
            .inverse_parallel(crate::kernel::ScalarKernel::new, &parallel)
            .unwrap();
        assert!(inv_serial.max_abs_diff(&inv_parallel) < 1e-6);
        assert!(inv_parallel.max_abs_diff(&img) < 2e-3);
    }

    #[test]
    fn parallel_rejects_bad_inputs_like_serial() {
        let t = Dtcwt::new(6).unwrap();
        let img = test_image(16, 16);
        assert!(matches!(
            t.forward_parallel(crate::kernel::ScalarKernel::new, &img),
            Err(DtcwtError::BadLevels { .. })
        ));
        let t2 = Dtcwt::new(2).unwrap();
        let t3 = Dtcwt::new(3).unwrap();
        let pyr = t2.forward(&test_image(32, 32)).unwrap();
        assert!(matches!(
            t3.inverse_parallel(crate::kernel::ScalarKernel::new, &pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn constant_image_energy_in_lowpass_only() {
        let img = Image::filled(32, 32, 4.0);
        let t = Dtcwt::new(2).unwrap();
        let pyr = t.forward(&img).unwrap();
        for l in 0..2 {
            assert!(pyr.level_energy(l) < 1e-6, "level {l} leaked");
        }
        for ll in pyr.lowpass() {
            // Gain sqrt(2)^2 per level on the lowpass path.
            assert!((ll.get(4, 4) - 16.0).abs() < 1e-3);
        }
    }
}

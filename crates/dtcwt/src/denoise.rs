//! Wavelet-domain denoising.
//!
//! The fusion literature the paper builds on (its refs. \[2\], \[12\]) values
//! the DT-CWT for noise robustness; this module provides the standard
//! machinery: magnitude soft-thresholding of the complex coefficients with
//! a robust noise estimate. Because the DT-CWT is approximately
//! shift-invariant, its shrinkage does not produce the Gibbs-like artifacts
//! decimated-DWT thresholding is known for — measured in the tests below.
//!
//! Thermal sensors in particular (the paper's MicroCAM) are noisy;
//! denoising the thermal stream before fusion is a natural pipeline stage
//! and is exercised by the `camera_pipeline` example workload.

use crate::dtcwt::{CwtPyramid, Dtcwt};
use crate::image::Image;
use crate::DtcwtError;

/// Robust noise estimate: the median absolute coefficient of the finest
/// level's diagonal subbands, scaled by the Gaussian consistency constant
/// (`sigma ≈ median(|d|) / 0.6745`).
///
/// Returns 0 for a pyramid whose finest level is empty.
pub fn estimate_noise_sigma(pyr: &CwtPyramid) -> f32 {
    let mut mags: Vec<f32> = Vec::new();
    // Diagonal orientations carry the least natural-image structure.
    for band in pyr.subbands(0) {
        let (w, h) = band.dims();
        for y in 0..h {
            for x in 0..w {
                mags.push(band.magnitude_at(x, y));
            }
        }
    }
    if mags.is_empty() {
        return 0.0;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite magnitudes"));
    let median = mags[mags.len() / 2];
    median / 0.6745
}

/// Soft-thresholds every complex detail coefficient by magnitude:
/// `z -> z * max(|z| - t, 0) / |z|`. The lowpass residuals are untouched.
pub fn soft_threshold(pyr: &mut CwtPyramid, threshold: f32) {
    if threshold <= 0.0 {
        return;
    }
    for level in 0..pyr.levels() {
        for band in pyr.subbands_mut(level).iter_mut() {
            let (w, h) = band.dims();
            for y in 0..h {
                for x in 0..w {
                    let re = band.re.get(x, y);
                    let im = band.im.get(x, y);
                    let mag = re.hypot(im);
                    if mag <= threshold {
                        band.re.set(x, y, 0.0);
                        band.im.set(x, y, 0.0);
                    } else {
                        let scale = (mag - threshold) / mag;
                        band.re.set(x, y, re * scale);
                        band.im.set(x, y, im * scale);
                    }
                }
            }
        }
    }
}

/// Denoises an image by DT-CWT soft-thresholding.
///
/// `strength` scales the automatically estimated noise threshold; 1.0 is
/// a balanced default, larger values smooth more.
///
/// # Errors
///
/// Propagates transform errors (undersized images for the transform's
/// depth).
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::denoise::denoise;
/// use wavefuse_dtcwt::{Dtcwt, Image};
///
/// let img = Image::from_fn(32, 32, |x, y| ((x / 8 + y / 8) % 2) as f32);
/// let t = Dtcwt::new(2)?;
/// let out = denoise(&t, &img, 1.0)?;
/// assert_eq!(out.dims(), (32, 32));
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
pub fn denoise(t: &Dtcwt, img: &Image, strength: f32) -> Result<Image, DtcwtError> {
    let mut pyr = t.forward(img)?;
    let sigma = estimate_noise_sigma(&pyr);
    soft_threshold(&mut pyr, strength * sigma);
    t.inverse(&pyr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-Gaussian noise (sum of hashed uniforms).
    fn noise(x: usize, y: usize, seed: u64) -> f32 {
        let mut acc = 0.0f32;
        for k in 0..4u64 {
            let mut z = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((x as u64) << 32)
                .wrapping_add(y as u64)
                .wrapping_add(k.wrapping_mul(0xd6e8feb86659fd93));
            z ^= z >> 30;
            z = z.wrapping_mul(0xbf58476d1ce4e5b9);
            z ^= z >> 27;
            acc += (z as f32 / u64::MAX as f32) - 0.5;
        }
        acc * 0.577 // ~unit-variance sum of 4 uniforms, scaled
    }

    fn clean_image(n: usize) -> Image {
        Image::from_fn(n, n, |x, y| {
            0.5 + 0.4 * ((x as f32 * 0.2).sin() * (y as f32 * 0.15).cos())
                + if (x / 12 + y / 12) % 2 == 0 {
                    0.1
                } else {
                    -0.1
                }
        })
    }

    fn mse(a: &Image, b: &Image) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(p, q)| {
                let d = (p - q) as f64;
                d * d
            })
            .sum::<f64>()
            / a.len() as f64
    }

    #[test]
    fn denoising_reduces_noise() {
        let n = 64;
        let clean = clean_image(n);
        let sigma = 0.08f32;
        let noisy = Image::from_fn(n, n, |x, y| clean.get(x, y) + sigma * noise(x, y, 3));
        let t = Dtcwt::new(3).unwrap();
        // The MAD estimate includes some signal structure on textured
        // images, so a conservative strength works best here.
        let denoised = denoise(&t, &noisy, 0.5).unwrap();
        let before = mse(&clean, &noisy);
        let after = mse(&clean, &denoised);
        assert!(
            after < 0.65 * before,
            "denoising must cut MSE: {before:.6} -> {after:.6}"
        );
    }

    #[test]
    fn zero_threshold_is_identity() {
        let img = clean_image(32);
        let t = Dtcwt::new(2).unwrap();
        let mut pyr = t.forward(&img).unwrap();
        soft_threshold(&mut pyr, 0.0);
        let back = t.inverse(&pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 1e-3);
    }

    #[test]
    fn clean_images_survive_mild_denoising() {
        // Structure is strong relative to the (absent) noise estimate, so
        // mild shrinkage must not destroy the image.
        let img = clean_image(64);
        let t = Dtcwt::new(3).unwrap();
        let out = denoise(&t, &img, 0.5).unwrap();
        assert!(mse(&img, &out) < 1e-3, "mse {}", mse(&img, &out));
    }

    #[test]
    fn sigma_estimate_tracks_injected_noise() {
        let n = 96;
        let t = Dtcwt::new(3).unwrap();
        for &sigma in &[0.02f32, 0.05, 0.10] {
            let noisy = Image::from_fn(n, n, |x, y| 0.5 + sigma * noise(x, y, 9));
            let pyr = t.forward(&noisy).unwrap();
            let est = estimate_noise_sigma(&pyr);
            // The level-1 complex coefficients of pure noise carry roughly
            // half the pixel-domain variance under this transform's
            // normalization; accept a generous band but demand ordering.
            assert!(
                est > 0.2 * sigma && est < 1.5 * sigma,
                "sigma {sigma}: estimate {est}"
            );
        }
        // Monotone in the true noise level.
        let est_at = |sigma: f32| {
            let noisy = Image::from_fn(n, n, |x, y| 0.5 + sigma * noise(x, y, 9));
            estimate_noise_sigma(&t.forward(&noisy).unwrap())
        };
        assert!(est_at(0.1) > est_at(0.05));
    }

    #[test]
    fn thresholding_shrinks_energy_monotonically() {
        let img = clean_image(48);
        let t = Dtcwt::new(2).unwrap();
        let base = t.forward(&img).unwrap();
        let energy = |thr: f32| {
            let mut p = base.clone();
            soft_threshold(&mut p, thr);
            (0..p.levels()).map(|l| p.level_energy(l)).sum::<f64>()
        };
        let e0 = energy(0.0);
        let e1 = energy(0.05);
        let e2 = energy(0.2);
        assert!(e0 > e1 && e1 > e2, "{e0} {e1} {e2}");
    }
}

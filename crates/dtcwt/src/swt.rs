//! The stationary (undecimated, à-trous) wavelet transform.
//!
//! The classic fully shift-invariant alternative to the DT-CWT: no
//! decimation, filters upsampled by `2^level` per stage. Exactly
//! shift-invariant for integer shifts — but each level costs as much as the
//! *first* level of a decimated transform (no geometric decay) and the
//! representation is `3·levels + 1` full-size images, versus the DT-CWT's
//! 4:1 fixed redundancy. That trade-off is the quantitative reason the
//! fusion literature (and the paper) prefers the DT-CWT; the tests and the
//! `swt_fusion` baseline in `wavefuse-core` measure it.

use crate::filters::FilterBank;
use crate::image::Image;
use crate::DtcwtError;

/// The three full-resolution detail images of one SWT level.
#[derive(Debug, Clone, PartialEq)]
pub struct SwtSubbands {
    /// Horizontal-detail band (filtered along x).
    pub dh: Image,
    /// Vertical-detail band.
    pub dv: Image,
    /// Diagonal-detail band.
    pub dd: Image,
}

/// A multi-level SWT decomposition; every band is input-sized.
#[derive(Debug, Clone, PartialEq)]
pub struct SwtPyramid {
    detail: Vec<SwtSubbands>,
    approx: Image,
}

impl SwtPyramid {
    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.detail.len()
    }

    /// Detail bands of `level` (0 = finest).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn detail(&self, level: usize) -> &SwtSubbands {
        &self.detail[level]
    }

    /// Mutable detail bands (for fusion rules).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn detail_mut(&mut self, level: usize) -> &mut SwtSubbands {
        &mut self.detail[level]
    }

    /// The coarsest approximation image.
    pub fn approx(&self) -> &Image {
        &self.approx
    }

    /// Mutable approximation image.
    pub fn approx_mut(&mut self) -> &mut Image {
        &mut self.approx
    }
}

/// Circular à-trous convolution along rows: `y[x] = Σ_j f[j]·img[x − j·m]`.
fn conv_rows(img: &Image, taps: &[f32], m: usize) -> Image {
    let (w, h) = img.dims();
    Image::from_fn(w, h, |x, y| {
        let mut acc = 0.0f32;
        for (j, &c) in taps.iter().enumerate() {
            let sx = (x as isize - (j * m) as isize).rem_euclid(w as isize) as usize;
            acc += c * img.get(sx, y);
        }
        acc
    })
}

/// Circular à-trous convolution along columns.
fn conv_cols(img: &Image, taps: &[f32], m: usize) -> Image {
    let (w, h) = img.dims();
    Image::from_fn(w, h, |x, y| {
        let mut acc = 0.0f32;
        for (j, &c) in taps.iter().enumerate() {
            let sy = (y as isize - (j * m) as isize).rem_euclid(h as isize) as usize;
            acc += c * img.get(x, sy);
        }
        acc
    })
}

/// Rotates an image up-left circularly (delay compensation).
fn rotate(img: &Image, dx: usize, dy: usize) -> Image {
    let (w, h) = img.dims();
    Image::from_fn(w, h, |x, y| img.get((x + dx) % w, (y + dy) % h))
}

/// A multi-level 2-D stationary wavelet transform.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::swt::Swt2d;
/// use wavefuse_dtcwt::{FilterBank, Image};
///
/// let img = Image::from_fn(32, 24, |x, y| ((x * y) % 7) as f32);
/// let swt = Swt2d::new(FilterBank::cdf_9_7()?, 3)?;
/// let pyr = swt.forward(&img);
/// assert_eq!(pyr.detail(2).dh.dims(), (32, 24)); // undecimated
/// let back = swt.inverse(&pyr)?;
/// assert!(back.max_abs_diff(&img) < 1e-3);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Swt2d {
    bank: FilterBank,
    levels: usize,
    h0: Vec<f32>,
    h1: Vec<f32>,
    g0: Vec<f32>,
    g1: Vec<f32>,
}

impl Swt2d {
    /// Creates a transform from a validated bank and depth.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`.
    pub fn new(bank: FilterBank, levels: usize) -> Result<Self, DtcwtError> {
        if levels == 0 {
            return Err(DtcwtError::BadLevels {
                requested: 0,
                max_supported: usize::MAX,
            });
        }
        let (h0, h1) = bank.analysis_f32();
        let (g0, g1) = bank.synthesis_f32();
        Ok(Swt2d {
            bank,
            levels,
            h0,
            h1,
            g0,
            g1,
        })
    }

    /// The filter bank in use.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Forward transform. Never fails: the undecimated transform imposes no
    /// size constraints beyond non-emptiness (empty images yield empty
    /// bands).
    pub fn forward(&self, img: &Image) -> SwtPyramid {
        let mut detail = Vec::with_capacity(self.levels);
        let mut approx = img.clone();
        for level in 0..self.levels {
            let m = 1usize << level;
            let lo_r = conv_rows(&approx, &self.h0, m);
            let hi_r = conv_rows(&approx, &self.h1, m);
            let a = conv_cols(&lo_r, &self.h0, m);
            let dv = conv_cols(&lo_r, &self.h1, m);
            let dh = conv_cols(&hi_r, &self.h0, m);
            let dd = conv_cols(&hi_r, &self.h1, m);
            detail.push(SwtSubbands { dh, dv, dd });
            approx = a;
        }
        SwtPyramid { detail, approx }
    }

    /// Inverse transform; exact for an unmodified pyramid.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::MalformedPyramid`] on level mismatch or
    /// inconsistent band sizes.
    pub fn inverse(&self, pyr: &SwtPyramid) -> Result<Image, DtcwtError> {
        if pyr.levels() != self.levels {
            return Err(DtcwtError::MalformedPyramid(format!(
                "pyramid has {} levels, transform expects {}",
                pyr.levels(),
                self.levels
            )));
        }
        let dims = pyr.approx.dims();
        for d in &pyr.detail {
            if d.dh.dims() != dims || d.dv.dims() != dims || d.dd.dims() != dims {
                return Err(DtcwtError::MalformedPyramid(
                    "undecimated bands must all share the input size".into(),
                ));
            }
        }

        // Per-axis delay of one synthesis/analysis cascade at unit dilation.
        let c = (self.h0.len() + self.g0.len()) / 2 - 1;
        let mut approx = pyr.approx.clone();
        for level in (0..self.levels).rev() {
            let m = 1usize << level;
            let d = &pyr.detail[level];
            // Invert the column pass on both row channels.
            let lo_r = {
                let mut s = conv_cols(&approx, &self.g0, m);
                s.add_scaled(&conv_cols(&d.dv, &self.g1, m), 1.0);
                s.scale_in_place(0.5);
                s
            };
            let hi_r = {
                let mut s = conv_cols(&d.dh, &self.g0, m);
                s.add_scaled(&conv_cols(&d.dd, &self.g1, m), 1.0);
                s.scale_in_place(0.5);
                s
            };
            // Invert the row pass.
            let mut out = conv_rows(&lo_r, &self.g0, m);
            out.add_scaled(&conv_rows(&hi_r, &self.g1, m), 1.0);
            out.scale_in_place(0.5);
            // Compensate both axes' cascade delay (c·m samples each).
            let (w, h) = out.dims();
            approx = rotate(&out, (c * m) % w.max(1), (c * m) % h.max(1));
        }
        Ok(approx)
    }

    /// Software MACs of one forward transform — for the cost comparison
    /// against decimated transforms (no geometric decay across levels).
    pub fn forward_macs(&self, width: usize, height: usize) -> u64 {
        let taps = (self.h0.len() + self.h1.len()) as u64;
        // Rows pass (2 filters over every pixel) + columns pass over both
        // row outputs (4 filters over every pixel), per level.
        let per_level = (width * height) as u64 * taps * 3;
        per_level * self.levels as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::circular_shift;

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            ((x as f32 * 0.4).sin() + (y as f32 * 0.3).cos()) * 3.0
                + ((x * 2 + y * 5) % 9) as f32 * 0.2
        })
    }

    #[test]
    fn perfect_reconstruction() {
        for bank in [
            FilterBank::haar().unwrap(),
            FilterBank::legall_5_3().unwrap(),
            FilterBank::cdf_9_7().unwrap(),
            FilterBank::daubechies(4).unwrap(),
        ] {
            let name = bank.name().to_string();
            let swt = Swt2d::new(bank, 3).unwrap();
            let img = test_image(40, 36);
            let pyr = swt.forward(&img);
            let back = swt.inverse(&pyr).unwrap();
            let err = back.max_abs_diff(&img);
            assert!(err < 2e-3, "{name}: PR err {err}");
        }
    }

    #[test]
    fn odd_sizes_need_no_padding() {
        // Unlike the decimated transforms, 35x35 works directly.
        let swt = Swt2d::new(FilterBank::cdf_9_7().unwrap(), 2).unwrap();
        let img = test_image(35, 35);
        let pyr = swt.forward(&img);
        assert_eq!(pyr.approx().dims(), (35, 35));
        let back = swt.inverse(&pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 2e-3);
    }

    #[test]
    fn exactly_shift_invariant() {
        // Integer circular shifts commute with the transform: subband
        // energy is bit-for-bit stable (the property the DT-CWT only
        // approximates).
        let swt = Swt2d::new(FilterBank::near_sym_b().unwrap(), 2).unwrap();
        let img = test_image(32, 32);
        let base = swt.forward(&img);
        for shift in [1isize, 3, 7] {
            let shifted = swt.forward(&circular_shift(&img, shift, 0));
            for level in 0..2 {
                let e0 = base.detail(level).dh.energy()
                    + base.detail(level).dv.energy()
                    + base.detail(level).dd.energy();
                let e1 = shifted.detail(level).dh.energy()
                    + shifted.detail(level).dv.energy()
                    + shifted.detail(level).dd.energy();
                assert!(
                    (e0 - e1).abs() < 1e-6 * e0.max(1.0),
                    "level {level} shift {shift}: {e0} vs {e1}"
                );
            }
        }
    }

    #[test]
    fn swt_costs_more_than_dtcwt() {
        // The quantitative argument for the DT-CWT: at the paper's frame
        // size and depth, the SWT needs several times the MACs.
        let swt = Swt2d::new(FilterBank::near_sym_b().unwrap(), 3).unwrap();
        let swt_macs = swt.forward_macs(88, 72);
        // The DT-CWT's exact enumeration lives in wavefuse-core; a safe
        // lower-level comparison: 4 trees of a decimated transform cost
        // less than 4/3 of one undecimated level with the same taps.
        let taps = 32u64;
        let decimated_all_levels = 4 * (88 * 72) as u64 * taps * 2; // 4 trees, geometric sum < 2x level 1... conservative bound
        assert!(
            swt_macs > decimated_all_levels,
            "swt {swt_macs} vs dt-cwt bound {decimated_all_levels}"
        );
    }

    #[test]
    fn level_mismatch_rejected() {
        let swt2 = Swt2d::new(FilterBank::haar().unwrap(), 2).unwrap();
        let swt3 = Swt2d::new(FilterBank::haar().unwrap(), 3).unwrap();
        let pyr = swt2.forward(&test_image(16, 16));
        assert!(matches!(
            swt3.inverse(&pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
        assert!(Swt2d::new(FilterBank::haar().unwrap(), 0).is_err());
    }

    #[test]
    fn constant_image_has_zero_detail() {
        let swt = Swt2d::new(FilterBank::legall_5_3().unwrap(), 2).unwrap();
        let pyr = swt.forward(&Image::filled(16, 16, 2.0));
        for level in 0..2 {
            let d = pyr.detail(level);
            for band in [&d.dh, &d.dv, &d.dd] {
                for &v in band.as_slice() {
                    assert!(v.abs() < 1e-4);
                }
            }
        }
    }
}

//! Separable two-dimensional decimated wavelet transform.
//!
//! One level of the 2-D transform filters rows then columns, producing the
//! four subbands of the paper's Fig. 1 (`LL`, `LH`, `HL`, `HH`, named
//! horizontal frequency first); the multi-level [`Dwt2d`] recursively
//! decomposes the `LL` band. Odd-sized inputs are edge-padded to even per
//! level and cropped on reconstruction, so any frame size — including the
//! paper's 35x35 extraction — round-trips exactly.

use crate::dwt1d::{analyze, analyze_into, synthesize, synthesize_into, BankTaps, Phase};
use crate::filters::FilterBank;
use crate::image::Image;
use crate::kernel::{FilterKernel, ScalarKernel};
use crate::scratch::{ColScratch, Scratch1d, Scratch2d};
use crate::DtcwtError;

/// The three detail subbands of one decomposition level.
///
/// Names give the *horizontal* frequency first, as in the paper's Fig. 1:
/// `lh` is low-horizontal/high-vertical, `hl` is high-horizontal/low-vertical.
#[derive(Debug, Clone, PartialEq)]
pub struct Subbands {
    /// Low horizontal, high vertical frequency.
    pub lh: Image,
    /// High horizontal, low vertical frequency.
    pub hl: Image,
    /// High horizontal, high vertical frequency.
    pub hh: Image,
}

impl Subbands {
    /// Creates zero-pixel placeholder subbands without allocating; the
    /// `*_into` transforms reshape them on first use.
    pub fn empty() -> Self {
        Subbands {
            lh: Image::zeros(0, 0),
            hl: Image::zeros(0, 0),
            hh: Image::zeros(0, 0),
        }
    }
}

/// All four bands of a single 2-D analysis step.
#[derive(Debug, Clone, PartialEq)]
pub struct OneLevel {
    /// Low-low (approximation) band.
    pub ll: Image,
    /// Detail bands.
    pub detail: Subbands,
}

/// Per-axis configuration of a single 2-D analysis step: the bank taps and
/// decimation phase used along that axis. The DT-CWT's four tree
/// combinations are built from these.
#[derive(Debug, Clone)]
pub struct AxisSpec<'a> {
    /// Filter taps along this axis.
    pub taps: &'a BankTaps,
    /// Decimation phase along this axis.
    pub phase: Phase,
}

/// One level of separable 2-D analysis with independent row/column specs.
///
/// The input must have even dimensions (callers pad first).
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] for empty or odd-sized inputs.
pub fn analyze_level(
    kernel: &mut dyn FilterKernel,
    rows: &AxisSpec<'_>,
    cols: &AxisSpec<'_>,
    img: &Image,
) -> Result<OneLevel, DtcwtError> {
    let (w, h) = img.dims();
    if w == 0 || h == 0 || w % 2 != 0 || h % 2 != 0 {
        return Err(DtcwtError::BadDimensions {
            width: w,
            height: h,
            reason: "2-d analysis requires even non-zero dimensions",
        });
    }
    // Row pass: filter along x.
    let mut low = Image::zeros(w / 2, h);
    let mut high = Image::zeros(w / 2, h);
    for y in 0..h {
        let (lo, hi) = analyze(kernel, rows.taps, img.row(y), rows.phase)?;
        low.row_mut(y).copy_from_slice(&lo);
        high.row_mut(y).copy_from_slice(&hi);
    }
    // Column pass: routed through the kernel (columnar or transpose-based).
    let (ll, lh) = analyze_columns(kernel, cols, &low)?;
    let (hl, hh) = analyze_columns(kernel, cols, &high)?;
    Ok(OneLevel {
        ll,
        detail: Subbands { lh, hl, hh },
    })
}

fn analyze_columns(
    kernel: &mut dyn FilterKernel,
    spec: &AxisSpec<'_>,
    img: &Image,
) -> Result<(Image, Image), DtcwtError> {
    let mut low = Image::zeros(0, 0);
    let mut high = Image::zeros(0, 0);
    let mut cs = ColScratch::new();
    let mut s1 = Scratch1d::new();
    kernel.analyze_cols(
        spec.taps, spec.phase, img, &mut low, &mut high, &mut cs, &mut s1,
    )?;
    Ok((low, high))
}

/// Allocation-free variant of [`analyze_level`]: writes the approximation
/// band into `ll` and the detail bands into `detail`, staging intermediates
/// in the scratch arenas. Produces bit-identical results to the allocating
/// path (the cache-blocked transposes are pure copies).
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] for empty or odd-sized inputs.
#[allow(clippy::too_many_arguments)]
pub fn analyze_level_into(
    kernel: &mut dyn FilterKernel,
    rows: &AxisSpec<'_>,
    cols: &AxisSpec<'_>,
    img: &Image,
    ll: &mut Image,
    detail: &mut Subbands,
    s2: &mut Scratch2d,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    let (w, h) = img.dims();
    if w == 0 || h == 0 || w % 2 != 0 || h % 2 != 0 {
        return Err(DtcwtError::BadDimensions {
            width: w,
            height: h,
            reason: "2-d analysis requires even non-zero dimensions",
        });
    }
    let Scratch2d { low, high, col } = s2;
    // Row pass: filter along x, straight into the half-width staging images.
    low.reshape(w / 2, h);
    high.reshape(w / 2, h);
    for y in 0..h {
        analyze_into(
            kernel,
            rows.taps,
            img.row(y),
            rows.phase,
            low.row_mut(y),
            high.row_mut(y),
            s1,
        )?;
    }
    // Column pass: routed through the kernel (columnar or transpose-based).
    kernel.analyze_cols(cols.taps, cols.phase, low, ll, &mut detail.lh, col, s1)?;
    kernel.analyze_cols(
        cols.taps,
        cols.phase,
        high,
        &mut detail.hl,
        &mut detail.hh,
        col,
        s1,
    )?;
    Ok(())
}

/// One level of separable 2-D synthesis; exact inverse of [`analyze_level`].
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if the four bands do not all share
/// the same dimensions.
pub fn synthesize_level(
    kernel: &mut dyn FilterKernel,
    rows: &AxisSpec<'_>,
    cols: &AxisSpec<'_>,
    level: &OneLevel,
) -> Result<Image, DtcwtError> {
    let (bw, bh) = level.ll.dims();
    for band in [&level.detail.lh, &level.detail.hl, &level.detail.hh] {
        if band.dims() != (bw, bh) {
            return Err(DtcwtError::BadDimensions {
                width: band.width(),
                height: band.height(),
                reason: "subband dimensions disagree with LL band",
            });
        }
    }
    if bw == 0 || bh == 0 {
        return Err(DtcwtError::BadDimensions {
            width: bw,
            height: bh,
            reason: "empty subbands",
        });
    }
    // Invert the column pass.
    let low = synthesize_columns(kernel, cols, &level.ll, &level.detail.lh)?;
    let high = synthesize_columns(kernel, cols, &level.detail.hl, &level.detail.hh)?;
    // Invert the row pass.
    let (hw, h) = (bw, bh * 2);
    let mut out = Image::zeros(hw * 2, h);
    for y in 0..h {
        let row = synthesize(kernel, rows.taps, low.row(y), high.row(y), rows.phase)?;
        out.row_mut(y).copy_from_slice(&row);
    }
    Ok(out)
}

fn synthesize_columns(
    kernel: &mut dyn FilterKernel,
    spec: &AxisSpec<'_>,
    lo: &Image,
    hi: &Image,
) -> Result<Image, DtcwtError> {
    let mut out = Image::zeros(0, 0);
    let mut cs = ColScratch::new();
    let mut s1 = Scratch1d::new();
    kernel.synthesize_cols(spec.taps, spec.phase, lo, hi, &mut out, &mut cs, &mut s1)?;
    Ok(out)
}

/// Allocation-free variant of [`synthesize_level`]: reconstructs from the
/// four bands into `out`, staging intermediates in the scratch arenas.
/// Bit-identical to the allocating path.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if the four bands do not all share
/// the same non-empty dimensions.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_level_into(
    kernel: &mut dyn FilterKernel,
    rows: &AxisSpec<'_>,
    cols: &AxisSpec<'_>,
    ll: &Image,
    lh: &Image,
    hl: &Image,
    hh: &Image,
    out: &mut Image,
    s2: &mut Scratch2d,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    let (bw, bh) = ll.dims();
    for band in [lh, hl, hh] {
        if band.dims() != (bw, bh) {
            return Err(DtcwtError::BadDimensions {
                width: band.width(),
                height: band.height(),
                reason: "subband dimensions disagree with LL band",
            });
        }
    }
    if bw == 0 || bh == 0 {
        return Err(DtcwtError::BadDimensions {
            width: bw,
            height: bh,
            reason: "empty subbands",
        });
    }
    let Scratch2d { low, high, col } = s2;
    // Invert the column pass.
    kernel.synthesize_cols(cols.taps, cols.phase, ll, lh, low, col, s1)?;
    kernel.synthesize_cols(cols.taps, cols.phase, hl, hh, high, col, s1)?;
    // Invert the row pass.
    let h = bh * 2;
    out.reshape(bw * 2, h);
    for y in 0..h {
        synthesize_into(
            kernel,
            rows.taps,
            low.row(y),
            high.row(y),
            rows.phase,
            out.row_mut(y),
            s1,
        )?;
    }
    Ok(())
}

/// Vertical-pass analysis of the column strip `x0..x1` of `img`, writing the
/// strip's decimated halves into `lo`/`hi` (reshaped to `x1 - x0` x
/// `height / 2`).
///
/// Because every column is filtered independently of its neighbors — lane
/// grouping only batches columns, it never mixes them — a strip's output
/// columns are bit-identical to the corresponding columns of a full-width
/// [`FilterKernel::analyze_cols`], for *any* kernel (the transpose fallback
/// filters the same per-column samples). This is what lets the worker pool
/// split one column pass into parallel strip jobs.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] for an empty or out-of-range strip,
/// or any error of the underlying column analysis.
#[allow(clippy::too_many_arguments)]
pub fn analyze_cols_strip(
    kernel: &mut dyn FilterKernel,
    spec: &AxisSpec<'_>,
    img: &Image,
    x0: usize,
    x1: usize,
    lo: &mut Image,
    hi: &mut Image,
    stage: &mut Image,
    cs: &mut ColScratch,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    if x0 >= x1 || x1 > img.width() {
        return Err(DtcwtError::BadDimensions {
            width: x0,
            height: x1,
            reason: "column strip bounds must be non-empty and within the image",
        });
    }
    img.crop_into(x0, 0, x1 - x0, img.height(), stage);
    kernel.analyze_cols(spec.taps, spec.phase, stage, lo, hi, cs, s1)
}

/// Vertical-pass synthesis of the column strip `x0..x1`: reconstructs the
/// strip's columns from the decimated channel images into `out` (reshaped to
/// `x1 - x0` x `2 * height`). Bit-identical to the corresponding columns of
/// a full-width [`FilterKernel::synthesize_cols`] — see
/// [`analyze_cols_strip`] for why.
///
/// # Errors
///
/// Returns [`DtcwtError::BadDimensions`] if the channels disagree in size or
/// the strip is empty or out of range.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_cols_strip(
    kernel: &mut dyn FilterKernel,
    spec: &AxisSpec<'_>,
    lo: &Image,
    hi: &Image,
    x0: usize,
    x1: usize,
    out: &mut Image,
    stage_lo: &mut Image,
    stage_hi: &mut Image,
    cs: &mut ColScratch,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    if lo.dims() != hi.dims() {
        return Err(DtcwtError::BadDimensions {
            width: hi.width(),
            height: hi.height(),
            reason: "column strip channels disagree in size",
        });
    }
    if x0 >= x1 || x1 > lo.width() {
        return Err(DtcwtError::BadDimensions {
            width: x0,
            height: x1,
            reason: "column strip bounds must be non-empty and within the image",
        });
    }
    lo.crop_into(x0, 0, x1 - x0, lo.height(), stage_lo);
    hi.crop_into(x0, 0, x1 - x0, hi.height(), stage_hi);
    kernel.synthesize_cols(spec.taps, spec.phase, stage_lo, stage_hi, out, cs, s1)
}

/// A multi-level real DWT pyramid.
///
/// Level 0 is the finest scale. `pre_pad_dims[l]` records the image size
/// that entered level `l` *before* even-padding, so the inverse can crop
/// back exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct DwtPyramid {
    detail: Vec<Subbands>,
    ll: Image,
    pre_pad_dims: Vec<(usize, usize)>,
}

impl DwtPyramid {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.detail.len()
    }

    /// Detail subbands of `level` (0 = finest).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn detail(&self, level: usize) -> &Subbands {
        &self.detail[level]
    }

    /// Mutable detail subbands of `level` (for fusion rules).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn detail_mut(&mut self, level: usize) -> &mut Subbands {
        &mut self.detail[level]
    }

    /// Final approximation (LL) band.
    pub fn ll(&self) -> &Image {
        &self.ll
    }

    /// Mutable final approximation band.
    pub fn ll_mut(&mut self) -> &mut Image {
        &mut self.ll
    }

    /// The original image dimensions this pyramid decomposes.
    pub fn input_dims(&self) -> (usize, usize) {
        self.pre_pad_dims[0]
    }
}

/// A multi-level separable 2-D DWT with a fixed bank and depth.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{Dwt2d, FilterBank, Image};
///
/// let img = Image::from_fn(40, 40, |x, y| (x as f32 - y as f32).sin());
/// let dwt = Dwt2d::new(FilterBank::cdf_9_7()?, 3)?;
/// let pyr = dwt.forward(&img)?;
/// let back = dwt.inverse(&pyr)?;
/// assert!(back.max_abs_diff(&img) < 1e-4);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dwt2d {
    bank: FilterBank,
    taps: BankTaps,
    levels: usize,
}

impl Dwt2d {
    /// Creates a transform with the given bank and number of levels.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if `levels == 0`.
    pub fn new(bank: FilterBank, levels: usize) -> Result<Self, DtcwtError> {
        if levels == 0 {
            return Err(DtcwtError::BadLevels {
                requested: 0,
                max_supported: usize::MAX,
            });
        }
        let taps = BankTaps::new(&bank);
        Ok(Dwt2d { bank, taps, levels })
    }

    /// The filter bank in use.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Maximum usable decomposition depth for a `w`-by-`h` image (each level
    /// pads to even and halves; decomposition stops before a dimension would
    /// fall below 2).
    pub fn max_levels(w: usize, h: usize) -> usize {
        let (mut w, mut h) = (w, h);
        let mut n = 0;
        while w >= 2 && h >= 2 {
            w = (w + w % 2) / 2;
            h = (h + h % 2) / 2;
            n += 1;
        }
        n
    }

    /// Forward transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dwt2d::forward_with`].
    pub fn forward(&self, img: &Image) -> Result<DwtPyramid, DtcwtError> {
        self.forward_with(&mut ScalarKernel::new(), img)
    }

    /// Forward transform through a caller-supplied kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadLevels`] if the image cannot support the
    /// configured depth, and [`DtcwtError::BadDimensions`] for empty images.
    pub fn forward_with(
        &self,
        kernel: &mut dyn FilterKernel,
        img: &Image,
    ) -> Result<DwtPyramid, DtcwtError> {
        let (w, h) = img.dims();
        let max = Self::max_levels(w, h);
        if self.levels > max {
            return Err(DtcwtError::BadLevels {
                requested: self.levels,
                max_supported: max,
            });
        }
        let spec = AxisSpec {
            taps: &self.taps,
            phase: Phase::A,
        };
        let mut detail = Vec::with_capacity(self.levels);
        let mut pre_pad_dims = Vec::with_capacity(self.levels);
        let mut cur = img.clone();
        for _ in 0..self.levels {
            pre_pad_dims.push(cur.dims());
            let padded = cur.pad_to_even();
            let level = analyze_level(kernel, &spec, &spec, &padded)?;
            detail.push(level.detail);
            cur = level.ll;
        }
        Ok(DwtPyramid {
            detail,
            ll: cur,
            pre_pad_dims,
        })
    }

    /// Inverse transform with the default scalar kernel.
    ///
    /// # Errors
    ///
    /// See [`Dwt2d::inverse_with`].
    pub fn inverse(&self, pyr: &DwtPyramid) -> Result<Image, DtcwtError> {
        self.inverse_with(&mut ScalarKernel::new(), pyr)
    }

    /// Inverse transform through a caller-supplied kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::MalformedPyramid`] if the pyramid's level count
    /// does not match this transform, and [`DtcwtError::BadDimensions`] if
    /// subband shapes are inconsistent.
    pub fn inverse_with(
        &self,
        kernel: &mut dyn FilterKernel,
        pyr: &DwtPyramid,
    ) -> Result<Image, DtcwtError> {
        if pyr.levels() != self.levels {
            return Err(DtcwtError::MalformedPyramid(format!(
                "pyramid has {} levels, transform expects {}",
                pyr.levels(),
                self.levels
            )));
        }
        let spec = AxisSpec {
            taps: &self.taps,
            phase: Phase::A,
        };
        let mut cur = pyr.ll.clone();
        for l in (0..self.levels).rev() {
            let level = OneLevel {
                ll: cur,
                detail: pyr.detail[l].clone(),
            };
            let padded = synthesize_level(kernel, &spec, &spec, &level)?;
            let (ow, oh) = pyr.pre_pad_dims[l];
            cur = if padded.dims() == (ow, oh) {
                padded
            } else {
                padded.crop(0, 0, ow, oh)
            };
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| {
            ((x as f32 * 0.7).sin() + (y as f32 * 0.4).cos()) * 10.0 + ((x * y) % 13) as f32 * 0.3
        })
    }

    #[test]
    fn single_level_round_trip() {
        let bank = FilterBank::near_sym_b().unwrap();
        let taps = BankTaps::new(&bank);
        let spec = AxisSpec {
            taps: &taps,
            phase: Phase::A,
        };
        let img = test_image(16, 12);
        let mut k = ScalarKernel::new();
        let level = analyze_level(&mut k, &spec, &spec, &img).unwrap();
        assert_eq!(level.ll.dims(), (8, 6));
        let back = synthesize_level(&mut k, &spec, &spec, &level).unwrap();
        assert!(back.max_abs_diff(&img) < 1e-4);
    }

    #[test]
    fn mixed_phase_round_trip() {
        // Row phase B, column phase A (a DT-CWT tree combination).
        let bank = FilterBank::near_sym_b().unwrap();
        let taps = BankTaps::new(&bank);
        let rows = AxisSpec {
            taps: &taps,
            phase: Phase::B,
        };
        let cols = AxisSpec {
            taps: &taps,
            phase: Phase::A,
        };
        let img = test_image(24, 16);
        let mut k = ScalarKernel::new();
        let level = analyze_level(&mut k, &rows, &cols, &img).unwrap();
        let back = synthesize_level(&mut k, &rows, &cols, &level).unwrap();
        assert!(back.max_abs_diff(&img) < 1e-4);
    }

    #[test]
    fn pooled_level_matches_allocating_level_exactly() {
        // The pooled path must be bit-identical: transposes are pure copies
        // and the row arithmetic is shared, so exact equality is required.
        let bank = FilterBank::near_sym_b().unwrap();
        let taps = BankTaps::new(&bank);
        let rows = AxisSpec {
            taps: &taps,
            phase: Phase::B,
        };
        let cols = AxisSpec {
            taps: &taps,
            phase: Phase::A,
        };
        let mut s1 = Scratch1d::new();
        let mut s2 = Scratch2d::new();
        let mut ll = Image::zeros(0, 0);
        let mut detail = Subbands {
            lh: Image::zeros(0, 0),
            hl: Image::zeros(0, 0),
            hh: Image::zeros(0, 0),
        };
        let mut back = Image::zeros(0, 0);
        // Reuse one scratch across sizes to prove stale state cannot leak.
        for (w, h) in [(2, 2), (16, 12), (36, 36), (88, 72), (4, 30)] {
            let img = test_image(w, h);
            let mut k = ScalarKernel::new();
            let level = analyze_level(&mut k, &rows, &cols, &img).unwrap();
            analyze_level_into(
                &mut k,
                &rows,
                &cols,
                &img,
                &mut ll,
                &mut detail,
                &mut s2,
                &mut s1,
            )
            .unwrap();
            assert_eq!(ll, level.ll, "{w}x{h} ll");
            assert_eq!(detail, level.detail, "{w}x{h} detail");

            let alloc_back = synthesize_level(&mut k, &rows, &cols, &level).unwrap();
            synthesize_level_into(
                &mut k, &rows, &cols, &ll, &detail.lh, &detail.hl, &detail.hh, &mut back, &mut s2,
                &mut s1,
            )
            .unwrap();
            assert_eq!(back, alloc_back, "{w}x{h} synthesis");
        }
    }

    #[test]
    fn pooled_level_rejects_bad_inputs_like_allocating() {
        let bank = FilterBank::haar().unwrap();
        let taps = BankTaps::new(&bank);
        let spec = AxisSpec {
            taps: &taps,
            phase: Phase::A,
        };
        let mut s1 = Scratch1d::new();
        let mut s2 = Scratch2d::new();
        let mut ll = Image::zeros(0, 0);
        let mut detail = Subbands {
            lh: Image::zeros(0, 0),
            hl: Image::zeros(0, 0),
            hh: Image::zeros(0, 0),
        };
        let odd = test_image(5, 4);
        assert!(analyze_level_into(
            &mut ScalarKernel::new(),
            &spec,
            &spec,
            &odd,
            &mut ll,
            &mut detail,
            &mut s2,
            &mut s1,
        )
        .is_err());
        let mut out = Image::zeros(0, 0);
        let ll_band = Image::zeros(4, 4);
        let bad = Image::zeros(2, 4);
        assert!(synthesize_level_into(
            &mut ScalarKernel::new(),
            &spec,
            &spec,
            &ll_band,
            &bad,
            &ll_band,
            &ll_band,
            &mut out,
            &mut s2,
            &mut s1,
        )
        .is_err());
    }

    #[test]
    fn multi_level_round_trip_paper_sizes() {
        // The paper's five evaluation frame sizes, including odd 35x35.
        for (w, h) in [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)] {
            let img = test_image(w, h);
            let levels = 3.min(Dwt2d::max_levels(w, h));
            let dwt = Dwt2d::new(FilterBank::legall_5_3().unwrap(), levels).unwrap();
            let pyr = dwt.forward(&img).unwrap();
            assert_eq!(pyr.levels(), levels);
            assert_eq!(pyr.input_dims(), (w, h));
            let back = dwt.inverse(&pyr).unwrap();
            let err = back.max_abs_diff(&img);
            assert!(err < 1e-3, "{w}x{h}: err {err}");
        }
    }

    #[test]
    fn subband_shapes_halve_per_level() {
        let dwt = Dwt2d::new(FilterBank::haar().unwrap(), 3).unwrap();
        let pyr = dwt.forward(&test_image(88, 72)).unwrap();
        assert_eq!(pyr.detail(0).lh.dims(), (44, 36));
        assert_eq!(pyr.detail(1).lh.dims(), (22, 18));
        assert_eq!(pyr.detail(2).lh.dims(), (11, 9));
        assert_eq!(pyr.ll().dims(), (11, 9));
    }

    #[test]
    fn too_many_levels_rejected() {
        let dwt = Dwt2d::new(FilterBank::haar().unwrap(), 8).unwrap();
        let err = dwt.forward(&test_image(16, 16)).unwrap_err();
        assert!(matches!(err, DtcwtError::BadLevels { .. }));
        assert!(Dwt2d::new(FilterBank::haar().unwrap(), 0).is_err());
    }

    #[test]
    fn level_count_mismatch_rejected() {
        let dwt2 = Dwt2d::new(FilterBank::haar().unwrap(), 2).unwrap();
        let dwt3 = Dwt2d::new(FilterBank::haar().unwrap(), 3).unwrap();
        let pyr = dwt2.forward(&test_image(32, 32)).unwrap();
        assert!(matches!(
            dwt3.inverse(&pyr),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }

    #[test]
    fn max_levels_examples() {
        assert_eq!(Dwt2d::max_levels(88, 72), 7);
        assert_eq!(Dwt2d::max_levels(2, 2), 1);
        assert_eq!(Dwt2d::max_levels(1, 100), 0);
        assert_eq!(Dwt2d::max_levels(35, 35), 6);
    }

    #[test]
    fn haar_ll_is_block_average() {
        // With Haar, LL of a 2x2 block equals 2 * mean (gain sqrt(2) per axis).
        let img = Image::from_vec(2, 2, vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let dwt = Dwt2d::new(FilterBank::haar().unwrap(), 1).unwrap();
        let pyr = dwt.forward(&img).unwrap();
        assert!((pyr.ll().get(0, 0) - 8.0).abs() < 1e-5); // (1+3+5+7)/2
    }

    #[test]
    fn constant_image_has_zero_detail() {
        let img = Image::filled(16, 16, 3.0);
        let dwt = Dwt2d::new(FilterBank::cdf_9_7().unwrap(), 2).unwrap();
        let pyr = dwt.forward(&img).unwrap();
        for l in 0..2 {
            let d = pyr.detail(l);
            for band in [&d.lh, &d.hl, &d.hh] {
                for &v in band.as_slice() {
                    assert!(v.abs() < 1e-4);
                }
            }
        }
    }
}

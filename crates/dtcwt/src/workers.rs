//! Long-lived worker pool for the DT-CWT's four-tree fan-out.
//!
//! Earlier revisions spawned fresh `std::thread::scope` workers for every
//! transform call; this module replaces that with a pool created once (per
//! [`crate::Dtcwt`] user, typically a fusion engine) and reused across
//! frames — the thread-level analogue of the scratch arenas in
//! [`crate::scratch`].
//!
//! Because this crate forbids `unsafe`, the pool never shares borrowed data
//! with workers. A [`Job`] *owns* everything it needs: `Arc`s of the
//! immutable transform/inputs and moved output buffers that ping-pong
//! between the dispatcher and the workers each frame. Steady-state dispatch
//! therefore performs no heap allocation: the job queue and result vector
//! are pre-reserved, job payloads are moves, and `Arc` clones are reference
//! count bumps.
//!
//! Each worker owns one [`Scratch`] and one boxed kernel per backend slot
//! (built once by the construction-time factory), mirroring the paper's
//! model of fixed per-engine line buffers.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::dtcwt::{CwtPyramid, Dtcwt};
use crate::dwt2d::Subbands;
use crate::image::Image;
use crate::kernel::FilterKernel;
use crate::scratch::Scratch;
use crate::DtcwtError;

/// One unit of work: a single tree combination of a forward or inverse
/// DT-CWT. Output buffers are moved in empty (or pre-sized from a previous
/// frame) and handed back through [`JobOutcome`].
#[derive(Debug)]
pub enum Job {
    /// Analyze one tree combination of `img`.
    ForwardCombo {
        /// The transform (shared, immutable).
        transform: Arc<Dtcwt>,
        /// Input image (shared, immutable).
        img: Arc<Image>,
        /// Caller-chosen batch tag (e.g. which of several inputs).
        tag: u32,
        /// Tree-combination index 0..4 (AA, AB, BA, BB).
        combo: usize,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// Detail output buffer (moved back via the outcome).
        detail: Vec<Subbands>,
        /// Lowpass output buffer (moved back via the outcome).
        ll: Image,
    },
    /// Synthesize one tree combination of `pyr`.
    InverseCombo {
        /// The transform (shared, immutable).
        transform: Arc<Dtcwt>,
        /// Input pyramid (shared, immutable).
        pyr: Arc<CwtPyramid>,
        /// Caller-chosen batch tag.
        tag: u32,
        /// Tree-combination index 0..4.
        combo: usize,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// Reconstruction output buffer (moved back via the outcome).
        out: Image,
    },
}

impl Job {
    fn ids(&self) -> (u32, usize) {
        match self {
            Job::ForwardCombo { tag, combo, .. } | Job::InverseCombo { tag, combo, .. } => {
                (*tag, *combo)
            }
        }
    }
}

/// The buffers a completed [`Job`] hands back.
#[derive(Debug)]
pub enum JobPayload {
    /// Output of a [`Job::ForwardCombo`].
    Forward {
        /// Per-level detail subbands of this combination.
        detail: Vec<Subbands>,
        /// Lowpass residual of this combination.
        ll: Image,
    },
    /// Output of a [`Job::InverseCombo`].
    Inverse {
        /// This combination's reconstruction.
        out: Image,
    },
    /// The job panicked and its buffers could not be recovered.
    Lost,
}

/// Result of one [`Job`], tagged so the dispatcher can place it.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's batch tag.
    pub tag: u32,
    /// The job's tree-combination index.
    pub combo: usize,
    /// Returned buffers (valid only when `error` is `None`).
    pub payload: JobPayload,
    /// The job's error, if it failed.
    pub error: Option<DtcwtError>,
}

struct JobQueue {
    q: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    jobs: Mutex<JobQueue>,
    job_ready: Condvar,
    results: Mutex<Vec<JobOutcome>>,
    result_ready: Condvar,
}

/// Builds the kernel slots one worker owns. Called once per worker at pool
/// construction with the worker index; every worker must return the same
/// slot layout so `Job::kernel` indices mean the same thing everywhere.
pub type KernelFactory<'a> = &'a mut dyn FnMut(usize) -> Vec<Box<dyn FilterKernel + Send>>;

/// A fixed set of worker threads executing DT-CWT combo jobs.
///
/// Intended for a **single dispatcher**: submit a batch of jobs, then
/// [`WorkerPool::drain`] exactly that many outcomes before submitting the
/// next batch. Workers and their kernels/scratch live as long as the pool;
/// dropping the pool joins all threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one), each owning the kernel slots
    /// `factory(worker_index)` returns plus a private [`Scratch`].
    pub fn new(threads: usize, factory: KernelFactory<'_>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            jobs: Mutex::new(JobQueue {
                q: VecDeque::with_capacity(16),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            results: Mutex::new(Vec::with_capacity(16)),
            result_ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let kernels = factory(i);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wavefuse-worker-{i}"))
                    .spawn(move || worker_loop(&shared, kernels))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues one job and wakes a worker.
    pub fn submit(&self, job: Job) {
        let mut jobs = self.shared.jobs.lock().expect("worker pool poisoned");
        jobs.q.push_back(job);
        drop(jobs);
        self.shared.job_ready.notify_one();
    }

    /// Blocks until `n` outcomes are available and moves them into `out`
    /// (appended; `out` is not cleared). The caller must have submitted
    /// exactly `n` jobs since the last drain.
    pub fn drain(&self, n: usize, out: &mut Vec<JobOutcome>) {
        let mut results = self.shared.results.lock().expect("worker pool poisoned");
        while results.len() < n {
            results = self
                .shared
                .result_ready
                .wait(results)
                .expect("worker pool poisoned");
        }
        out.extend(results.drain(..));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut jobs = self.shared.jobs.lock().expect("worker pool poisoned");
            jobs.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, mut kernels: Vec<Box<dyn FilterKernel + Send>>) {
    let mut scratch = Scratch::new();
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("worker pool poisoned");
            loop {
                if let Some(j) = jobs.q.pop_front() {
                    break j;
                }
                if jobs.shutdown {
                    return;
                }
                jobs = shared.job_ready.wait(jobs).expect("worker pool poisoned");
            }
        };
        let outcome = run_job(job, &mut kernels, &mut scratch);
        let mut results = shared.results.lock().expect("worker pool poisoned");
        results.push(outcome);
        drop(results);
        shared.result_ready.notify_all();
    }
}

/// Executes one job, converting panics into an error outcome so the
/// dispatcher's `drain` never deadlocks on a crashed job.
fn run_job(
    job: Job,
    kernels: &mut [Box<dyn FilterKernel + Send>],
    scratch: &mut Scratch,
) -> JobOutcome {
    let (tag, combo) = job.ids();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(job, kernels, scratch)
    }))
    .unwrap_or_else(|_| JobOutcome {
        tag,
        combo,
        payload: JobPayload::Lost,
        error: Some(DtcwtError::MalformedPyramid(
            "worker job panicked".to_string(),
        )),
    })
}

fn execute(
    job: Job,
    kernels: &mut [Box<dyn FilterKernel + Send>],
    scratch: &mut Scratch,
) -> JobOutcome {
    match job {
        Job::ForwardCombo {
            transform,
            img,
            tag,
            combo,
            kernel,
            mut detail,
            mut ll,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => transform
                    .analyze_combo_into(k.as_mut(), &img, combo, &mut detail, &mut ll, scratch)
                    .err(),
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo,
                payload: JobPayload::Forward { detail, ll },
                error,
            }
        }
        Job::InverseCombo {
            transform,
            pyr,
            tag,
            combo,
            kernel,
            mut out,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => {
                    match transform.synthesize_combo_into(k.as_mut(), &pyr, combo, scratch) {
                        Ok(()) => {
                            // The combo's reconstruction is left in the
                            // scratch ping buffer.
                            out.copy_from(&scratch.cur);
                            None
                        }
                        Err(e) => Some(e),
                    }
                }
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo,
                payload: JobPayload::Inverse { out },
                error,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScalarKernel;
    use crate::scratch::ComboStore;

    fn boxed_scalar(_: usize) -> Vec<Box<dyn FilterKernel + Send>> {
        vec![Box::new(ScalarKernel::new())]
    }

    #[test]
    fn pool_runs_forward_jobs() {
        let pool = WorkerPool::new(2, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(2).unwrap());
        let img = Arc::new(Image::from_fn(32, 24, |x, y| ((x * 3 + y) % 7) as f32));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        t.forward_pooled(&pool, 0, &img, &mut combos, &mut outcomes, &mut out)
            .unwrap();
        let serial = t.forward(&img).unwrap();
        for level in 0..2 {
            for (a, b) in serial.subbands(level).iter().zip(out.subbands(level)) {
                assert_eq!(a.re, b.re);
                assert_eq!(a.im, b.im);
            }
        }
    }

    #[test]
    fn bad_kernel_slot_reports_error() {
        let pool = WorkerPool::new(1, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::filled(8, 8, 1.0));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        let err = t
            .forward_pooled(&pool, 9, &img, &mut combos, &mut outcomes, &mut out)
            .unwrap_err();
        assert!(matches!(err, DtcwtError::MalformedPyramid(_)));
    }

    #[test]
    fn drop_joins_cleanly_with_queued_shutdown() {
        let pool = WorkerPool::new(3, &mut boxed_scalar);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }
}

//! Long-lived worker pool for the DT-CWT's four-tree fan-out.
//!
//! Earlier revisions funnelled every job through a single `Mutex<VecDeque>`
//! guarded by two condvars: each job took the global lock twice (enqueue,
//! dequeue) and every completion took a second global lock to push its
//! result, which is why two threads used to lose to one on small frames.
//! This revision replaces the queue with a **batch slot array** scheduler:
//!
//! * Jobs are published into a fixed ring of per-job slots; each slot has
//!   its own mutex, and because every index is written by the dispatcher
//!   once and claimed by exactly one worker once, those locks are never
//!   contended — they only order the hand-off.
//! * Workers claim work as `(start, end)` *chunks* of the batch index range
//!   via a compare-and-swap loop on one shared atomic cursor (the
//!   range-splitting scheme: the chunk size adapts to the work remaining so
//!   large batches split across workers while small batches stay
//!   fine-grained for load balance). A job itself stays combo-granular —
//!   this crate forbids `unsafe`, so a mutable output buffer cannot be
//!   row-banded across threads; the cursor splits the *batch*, not a row.
//! * Completion is a single atomic counter plus a per-slot outcome cell;
//!   there is no drained results vector and no global results lock.
//! * Errors additionally record the lowest errored submission index in a
//!   lock-free `fetch_min` cell, so error reporting is deterministic no
//!   matter which worker hit the failure first.
//! * Idle workers spin briefly (claims are typically microseconds apart in
//!   the frame loop) and then park on a condvar; the dispatcher's
//!   [`WorkerPool::drain`] does the same while waiting for the batch.
//!
//! Because this crate forbids `unsafe`, the pool never shares borrowed data
//! with workers. A [`Job`] *owns* everything it needs: `Arc`s of the
//! immutable transform/inputs and moved output buffers that ping-pong
//! between the dispatcher and the workers each frame. Steady-state dispatch
//! therefore performs no heap allocation: slots are pre-allocated, job
//! payloads are moves, and `Arc` clones are reference count bumps.
//!
//! Each worker owns one [`Scratch`] and one boxed kernel per backend slot
//! (built once by the construction-time factory), mirroring the paper's
//! model of fixed per-engine line buffers.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::dtcwt::{CwtPyramid, Dtcwt};
use crate::dwt2d::Subbands;
use crate::image::Image;
use crate::kernel::FilterKernel;
use crate::scratch::Scratch;
use crate::DtcwtError;

/// One unit of work: a single tree combination of a forward or inverse
/// DT-CWT. Output buffers are moved in empty (or pre-sized from a previous
/// frame) and handed back through [`JobOutcome`].
#[derive(Debug)]
pub enum Job {
    /// Analyze one tree combination of `img`.
    ForwardCombo {
        /// The transform (shared, immutable).
        transform: Arc<Dtcwt>,
        /// Input image (shared, immutable).
        img: Arc<Image>,
        /// Caller-chosen batch tag (e.g. which of several inputs).
        tag: u32,
        /// Tree-combination index 0..4 (AA, AB, BA, BB).
        combo: usize,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// Detail output buffer (moved back via the outcome).
        detail: Vec<Subbands>,
        /// Lowpass output buffer (moved back via the outcome).
        ll: Image,
    },
    /// Synthesize one tree combination of `pyr`.
    InverseCombo {
        /// The transform (shared, immutable).
        transform: Arc<Dtcwt>,
        /// Input pyramid (shared, immutable).
        pyr: Arc<CwtPyramid>,
        /// Caller-chosen batch tag.
        tag: u32,
        /// Tree-combination index 0..4.
        combo: usize,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// Reconstruction output buffer (moved back via the outcome).
        out: Image,
    },
    /// Run the columnar analysis of one vertical strip `[x0, x1)` of `img`
    /// (one level's column pass, split across workers in strips of whole
    /// SIMD lane groups). Because every column is filtered independently,
    /// reassembled strips are bit-identical to the full-width column pass.
    ColumnStrip {
        /// The transform (shared, immutable) — supplies the level's column
        /// filter taps and phase.
        transform: Arc<Dtcwt>,
        /// Row-filtered level input (shared, immutable).
        img: Arc<Image>,
        /// Caller-chosen batch tag.
        tag: u32,
        /// Strip index within the batch (reported as the outcome `combo`).
        strip: usize,
        /// Pyramid level the column taps belong to.
        level: usize,
        /// Whether the column axis uses tree B's filters.
        tree_b: bool,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// First column of the strip (inclusive).
        x0: usize,
        /// One past the last column of the strip.
        x1: usize,
        /// Lowpass strip output buffer (moved back via the outcome).
        lo: Image,
        /// Highpass strip output buffer (moved back via the outcome).
        hi: Image,
    },
    /// Run the columnar synthesis of one vertical strip `[x0, x1)` of the
    /// decimated channel pair (the inverse column pass, strip-parallel).
    InverseColumnStrip {
        /// The transform (shared, immutable).
        transform: Arc<Dtcwt>,
        /// Lowpass channel (shared, immutable).
        lo: Arc<Image>,
        /// Highpass channel (shared, immutable).
        hi: Arc<Image>,
        /// Caller-chosen batch tag.
        tag: u32,
        /// Strip index within the batch (reported as the outcome `combo`).
        strip: usize,
        /// Pyramid level the column taps belong to.
        level: usize,
        /// Whether the column axis uses tree B's filters.
        tree_b: bool,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// First column of the strip (inclusive).
        x0: usize,
        /// One past the last column of the strip.
        x1: usize,
        /// Reconstruction strip output buffer (moved back via the outcome).
        out: Image,
    },
    /// Fuse one horizontal row strip `[y0, y1)` of one oriented subband
    /// pair of two pyramids. Each output pixel depends only on its own
    /// clamped window of the *shared* source pyramids, so reassembled
    /// strips are bit-identical to a full-height fusion pass (see
    /// [`crate::fuse`] for the fold-order contract).
    FuseStrip {
        /// First source pyramid (shared, immutable).
        a: Arc<CwtPyramid>,
        /// Second source pyramid (shared, immutable).
        b: Arc<CwtPyramid>,
        /// Caller-chosen batch tag.
        tag: u32,
        /// Strip index within the batch (reported as the outcome `combo`).
        strip: usize,
        /// Pyramid level of the subband.
        level: usize,
        /// Oriented-subband index within the level (0..6).
        band: usize,
        /// Index into the worker's kernel slots.
        kernel: usize,
        /// First row of the strip (inclusive).
        y0: usize,
        /// One past the last row of the strip.
        y1: usize,
        /// Fusion operator applied to the coefficients.
        op: crate::fuse::FuseOp,
        /// Fused real-part strip output buffer (moved back via the outcome).
        re: Image,
        /// Fused imaginary-part strip output buffer (moved back).
        im: Image,
    },
}

impl Job {
    fn ids(&self) -> (u32, usize) {
        match self {
            Job::ForwardCombo { tag, combo, .. } | Job::InverseCombo { tag, combo, .. } => {
                (*tag, *combo)
            }
            Job::ColumnStrip { tag, strip, .. }
            | Job::InverseColumnStrip { tag, strip, .. }
            | Job::FuseStrip { tag, strip, .. } => (*tag, *strip),
        }
    }
}

/// The buffers a completed [`Job`] hands back.
#[derive(Debug)]
pub enum JobPayload {
    /// Output of a [`Job::ForwardCombo`].
    Forward {
        /// Per-level detail subbands of this combination.
        detail: Vec<Subbands>,
        /// Lowpass residual of this combination.
        ll: Image,
    },
    /// Output of a [`Job::InverseCombo`].
    Inverse {
        /// This combination's reconstruction.
        out: Image,
    },
    /// Output of a [`Job::ColumnStrip`].
    ColumnStrip {
        /// First column of the strip in the full image.
        x0: usize,
        /// Lowpass columns `[x0, x0 + lo.width())`.
        lo: Image,
        /// Highpass columns of the same range.
        hi: Image,
    },
    /// Output of a [`Job::InverseColumnStrip`].
    InverseColumnStrip {
        /// First column of the strip in the full image.
        x0: usize,
        /// Reconstructed columns `[x0, x0 + out.width())`.
        out: Image,
    },
    /// Output of a [`Job::FuseStrip`].
    FuseStrip {
        /// First row of the strip in the full subband.
        y0: usize,
        /// Fused real parts of rows `[y0, y0 + re.height())`.
        re: Image,
        /// Fused imaginary parts of the same rows.
        im: Image,
    },
    /// The job panicked and its buffers could not be recovered.
    Lost,
}

/// Result of one [`Job`], tagged so the dispatcher can place it.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's batch tag.
    pub tag: u32,
    /// The job's tree-combination index (strip index for column-strip jobs).
    pub combo: usize,
    /// Returned buffers (valid only when `error` is `None`).
    pub payload: JobPayload,
    /// The job's error, if it failed.
    pub error: Option<DtcwtError>,
}

/// Capacity of the slot ring: the largest batch that may be in flight
/// between two drains. The fusion engine submits at most eight jobs (two
/// concurrent four-combo forwards); the rest is headroom for stress tests
/// and future batches. Fixed so steady-state dispatch never reallocates.
pub const BATCH_SLOTS: usize = 64;

/// Claim-chunk divisor: a claim takes `max(1, remaining / (threads * 4))`
/// jobs, so large batches split into a few chunks per worker (amortizing
/// the CAS) while the frame path's 4-8 heavy combo jobs stay job-granular
/// for load balance.
const CLAIM_SPLIT: usize = 4;

/// Spin iterations before an idle worker parks on the condvar.
const WORKER_SPINS: usize = 2_048;

/// Spin iterations before a draining dispatcher parks on the condvar.
const DRAIN_SPINS: usize = 2_048;

/// Sentinel for "no errored job recorded".
const NO_ERROR: usize = usize::MAX;

/// Sentinel for "no worker has claimed yet" in `last_claimer`.
const NO_WORKER: usize = usize::MAX;

/// Per-worker scheduler counters, snapshotted from the pool's atomics.
///
/// `steals` counts claims whose immediately preceding claim (pool-wide)
/// was made by a *different* worker — i.e. the chunk continued a batch
/// range another worker had been working through. The very first claim
/// after pool construction is not a steal. On a single-threaded pool
/// `steals` is always zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSchedStats {
    /// Claim chunks this worker took from the shared cursor.
    pub batches_claimed: u64,
    /// Claims that continued another worker's run (see type docs).
    pub steals: u64,
    /// Individual jobs executed by this worker.
    pub jobs: u64,
    /// Nanoseconds this worker spent parked on the idle condvar.
    pub parked_ns: u64,
}

impl WorkerSchedStats {
    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: &WorkerSchedStats) {
        self.batches_claimed += other.batches_claimed;
        self.steals += other.steals;
        self.jobs += other.jobs;
        self.parked_ns += other.parked_ns;
    }
}

/// One worker's live counter cells (written by that worker only; read by
/// anyone). Observation sites are chunk-granular, far below the contention
/// regime where cache-line padding would matter.
#[derive(Default)]
struct WorkerCell {
    claims: AtomicU64,
    steals: AtomicU64,
    jobs: AtomicU64,
    parked_ns: AtomicU64,
}

/// One job's hand-off cell. The dispatcher stores the job before
/// publishing the index; exactly one worker takes it, runs it, and stores
/// the outcome; the dispatcher takes the outcome during drain. Each mutex
/// therefore only ever orders a single writer/reader pair.
#[derive(Default)]
struct Slot {
    job: Mutex<Option<Job>>,
    outcome: Mutex<Option<JobOutcome>>,
}

struct Shared {
    /// Fixed ring of job/outcome cells, indexed by `sequence % BATCH_SLOTS`.
    slots: Vec<Slot>,
    /// Jobs published so far (monotonic; slot `limit - 1` is readable once
    /// this is stored).
    limit: AtomicUsize,
    /// Next unclaimed job sequence (monotonic; always `<= limit`).
    cursor: AtomicUsize,
    /// Jobs completed so far (monotonic).
    completed: AtomicUsize,
    /// Outcomes harvested by `drain` so far (monotonic; dispatcher-only).
    harvested: AtomicUsize,
    /// Lowest errored submission sequence since the last drain that
    /// observed it (`NO_ERROR` if none) — `fetch_min` keeps it
    /// deterministic under any completion order.
    first_error: AtomicUsize,
    shutdown: AtomicBool,
    threads: usize,
    /// Number of workers parked on `wake` (Dekker-style flag: submitters
    /// only take the park lock when a worker might be sleeping).
    parked: AtomicUsize,
    park: Mutex<()>,
    wake: Condvar,
    /// Whether the dispatcher is parked in `drain` (same flag pattern).
    drain_waiting: AtomicBool,
    drain_park: Mutex<()>,
    drained: Condvar,
    /// Per-worker scheduler counters, indexed by worker.
    stats: Vec<WorkerCell>,
    /// Worker index of the most recent successful claim (`NO_WORKER`
    /// until the first), used to classify cross-worker steals.
    last_claimer: AtomicUsize,
}

impl Shared {
    fn work_available(&self) -> bool {
        self.cursor.load(SeqCst) < self.limit.load(SeqCst)
    }

    /// Claims the next chunk of unclaimed job sequences for worker `me`,
    /// splitting the remaining range adaptively and charging the claim /
    /// steal / job counters. Returns `None` when the batch is empty.
    fn claim(&self, me: usize) -> Option<(usize, usize)> {
        loop {
            let limit = self.limit.load(SeqCst);
            let cur = self.cursor.load(SeqCst);
            if cur >= limit {
                return None;
            }
            let avail = limit - cur;
            let chunk = (avail / (self.threads * CLAIM_SPLIT)).clamp(1, avail);
            if self
                .cursor
                .compare_exchange(cur, cur + chunk, SeqCst, SeqCst)
                .is_ok()
            {
                let cell = &self.stats[me];
                cell.claims.fetch_add(1, SeqCst);
                cell.jobs.fetch_add(chunk as u64, SeqCst);
                let prev = self.last_claimer.swap(me, SeqCst);
                if prev != me && prev != NO_WORKER {
                    cell.steals.fetch_add(1, SeqCst);
                }
                return Some((cur, cur + chunk));
            }
        }
    }
}

/// Builds the kernel slots one worker owns. Called once per worker at pool
/// construction with the worker index; every worker must return the same
/// slot layout so `Job::kernel` indices mean the same thing everywhere.
pub type KernelFactory<'a> = &'a mut dyn FnMut(usize) -> Vec<Box<dyn FilterKernel + Send>>;

/// A fixed set of worker threads executing DT-CWT combo jobs.
///
/// Intended for a **single dispatcher**: submit a batch of jobs (at most
/// [`BATCH_SLOTS`]), then [`WorkerPool::drain`] exactly that many outcomes
/// before submitting the next batch. Workers and their kernels/scratch live
/// as long as the pool; dropping the pool joins all threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one), each owning the kernel slots
    /// `factory(worker_index)` returns plus a private [`Scratch`].
    pub fn new(threads: usize, factory: KernelFactory<'_>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slots: (0..BATCH_SLOTS).map(|_| Slot::default()).collect(),
            limit: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            harvested: AtomicUsize::new(0),
            first_error: AtomicUsize::new(NO_ERROR),
            shutdown: AtomicBool::new(false),
            threads,
            parked: AtomicUsize::new(0),
            park: Mutex::new(()),
            wake: Condvar::new(),
            drain_waiting: AtomicBool::new(false),
            drain_park: Mutex::new(()),
            drained: Condvar::new(),
            stats: (0..threads).map(|_| WorkerCell::default()).collect(),
            last_claimer: AtomicUsize::new(NO_WORKER),
        });
        let handles = (0..threads)
            .map(|i| {
                let kernels = factory(i);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wavefuse-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i, kernels))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of one worker's scheduler counters. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= threads`.
    pub fn sched_stats(&self, worker: usize) -> WorkerSchedStats {
        let cell = &self.shared.stats[worker];
        WorkerSchedStats {
            batches_claimed: cell.claims.load(SeqCst),
            steals: cell.steals.load(SeqCst),
            jobs: cell.jobs.load(SeqCst),
            parked_ns: cell.parked_ns.load(SeqCst),
        }
    }

    /// Sum of every worker's scheduler counters. Allocation-free.
    pub fn sched_totals(&self) -> WorkerSchedStats {
        let mut total = WorkerSchedStats::default();
        for worker in 0..self.threads {
            total.merge(&self.sched_stats(worker));
        }
        total
    }

    /// Publishes one job; an idle worker may start it immediately.
    ///
    /// # Panics
    ///
    /// Panics if more than [`BATCH_SLOTS`] jobs are submitted without an
    /// intervening [`WorkerPool::drain`] (a dispatcher protocol bug).
    pub fn submit(&self, job: Job) {
        let shared = &self.shared;
        let seq = shared.limit.load(SeqCst);
        assert!(
            seq - shared.harvested.load(SeqCst) < BATCH_SLOTS,
            "worker pool batch capacity ({BATCH_SLOTS}) exceeded without a drain"
        );
        *shared.slots[seq % BATCH_SLOTS]
            .job
            .lock()
            .expect("worker pool poisoned") = Some(job);
        // Publish: the slot store above happens-before this (SeqCst), so a
        // worker that observes the new limit sees the job.
        shared.limit.store(seq + 1, SeqCst);
        if shared.parked.load(SeqCst) > 0 {
            let _g = shared.park.lock().expect("worker pool poisoned");
            shared.wake.notify_one();
        }
    }

    /// Blocks until the `n` outstanding jobs complete and appends their
    /// outcomes to `out` **in submission order** (`out` is not cleared).
    /// Returns the batch-relative index of the earliest-submitted errored
    /// job, if any failed.
    ///
    /// `n` must equal the number of jobs submitted since the last drain —
    /// the whole batch is collected, so every slot is quiescent when this
    /// returns.
    pub fn drain(&self, n: usize, out: &mut Vec<JobOutcome>) -> Option<usize> {
        let shared = &self.shared;
        let start = shared.harvested.load(SeqCst);
        let target = start + n;
        assert_eq!(
            target,
            shared.limit.load(SeqCst),
            "drain must collect the full outstanding batch"
        );
        let mut spins = 0usize;
        while shared.completed.load(SeqCst) < target {
            spins += 1;
            if spins < DRAIN_SPINS {
                std::hint::spin_loop();
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                }
                continue;
            }
            let mut g = shared.drain_park.lock().expect("worker pool poisoned");
            shared.drain_waiting.store(true, SeqCst);
            while shared.completed.load(SeqCst) < target {
                g = shared.drained.wait(g).expect("worker pool poisoned");
            }
            shared.drain_waiting.store(false, SeqCst);
            break;
        }
        for seq in start..target {
            let outcome = shared.slots[seq % BATCH_SLOTS]
                .outcome
                .lock()
                .expect("worker pool poisoned")
                .take()
                .expect("completed slot holds an outcome");
            out.push(outcome);
        }
        shared.harvested.store(target, SeqCst);
        let first = shared.first_error.load(SeqCst);
        if (start..target).contains(&first) {
            shared.first_error.store(NO_ERROR, SeqCst);
            Some(first - start)
        } else {
            None
        }
    }

    /// Blocks until the **oldest** `n` outstanding jobs complete and appends
    /// their outcomes to `out` in submission order, leaving any
    /// later-submitted jobs in flight. Returns the batch-relative index of
    /// the earliest-submitted errored job among the harvested `n`, if any.
    ///
    /// This is the depth-k pipelining primitive: the dispatcher can keep
    /// several four-job inverse batches in flight and harvest them batch by
    /// batch as frames retire, interleaved with full [`WorkerPool::drain`]
    /// calls for the forward batches submitted after them.
    ///
    /// Unlike `drain`, the shared `completed` counter cannot serve as the
    /// wait condition (a later job may complete before an earlier one), so
    /// this waits on each harvested slot's outcome cell individually —
    /// spinning briefly, then parking on the drain condvar (`run_slot`
    /// stores the outcome before testing `drain_waiting`, so the flag
    /// store/recheck pair below cannot miss a wakeup).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` jobs are outstanding.
    pub fn drain_partial(&self, n: usize, out: &mut Vec<JobOutcome>) -> Option<usize> {
        let shared = &self.shared;
        let start = shared.harvested.load(SeqCst);
        let target = start + n;
        assert!(
            target <= shared.limit.load(SeqCst),
            "partial drain asked for more outcomes than jobs outstanding"
        );
        let mut first_err = None;
        for (i, seq) in (start..target).enumerate() {
            let slot = &shared.slots[seq % BATCH_SLOTS];
            let mut spins = 0usize;
            let outcome = loop {
                if let Some(oc) = slot.outcome.lock().expect("worker pool poisoned").take() {
                    break oc;
                }
                spins += 1;
                if spins < DRAIN_SPINS {
                    std::hint::spin_loop();
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                    continue;
                }
                let g = shared.drain_park.lock().expect("worker pool poisoned");
                shared.drain_waiting.store(true, SeqCst);
                // Recheck under the park lock (Dekker pairing with run_slot).
                let oc = slot.outcome.lock().expect("worker pool poisoned").take();
                if let Some(oc) = oc {
                    shared.drain_waiting.store(false, SeqCst);
                    break oc;
                }
                let _g = shared.drained.wait(g).expect("worker pool poisoned");
                shared.drain_waiting.store(false, SeqCst);
                spins = 0;
            };
            if first_err.is_none() && outcome.error.is_some() {
                first_err = Some(i);
            }
            out.push(outcome);
        }
        shared.harvested.store(target, SeqCst);
        // The harvested outcomes above carry their own errors, so the
        // `first_error` cell is only cleaned here: entries for the harvested
        // prefix are dropped, while an error recorded for a still-in-flight
        // later job must survive for that job's own drain.
        let cur = shared.first_error.load(SeqCst);
        if cur < target {
            let taken = shared.first_error.swap(NO_ERROR, SeqCst);
            if taken != NO_ERROR && taken >= target {
                // A later in-flight failure raced in between the load and
                // the swap; put it back.
                shared.first_error.fetch_min(taken, SeqCst);
            }
        }
        first_err
    }

    /// Number of submitted jobs not yet harvested by a drain.
    pub fn outstanding(&self) -> usize {
        self.shared.limit.load(SeqCst) - self.shared.harvested.load(SeqCst)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        {
            let _g = self.shared.park.lock().expect("worker pool poisoned");
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize, mut kernels: Vec<Box<dyn FilterKernel + Send>>) {
    let mut scratch = Scratch::new();
    let mut spins = 0usize;
    loop {
        if let Some((start, end)) = shared.claim(me) {
            spins = 0;
            for seq in start..end {
                run_slot(shared, seq, &mut kernels, &mut scratch);
            }
            continue;
        }
        if shared.shutdown.load(SeqCst) {
            return;
        }
        spins += 1;
        if spins < WORKER_SPINS {
            std::hint::spin_loop();
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            continue;
        }
        // Park. The recheck below runs after `parked` is visible, and
        // `submit` checks `parked` after publishing, so one side always
        // sees the other (no lost wakeup).
        let park_start = std::time::Instant::now();
        let mut g = shared.park.lock().expect("worker pool poisoned");
        shared.parked.fetch_add(1, SeqCst);
        while !shared.shutdown.load(SeqCst) && !shared.work_available() {
            g = shared.wake.wait(g).expect("worker pool poisoned");
        }
        shared.parked.fetch_sub(1, SeqCst);
        drop(g);
        shared.stats[me]
            .parked_ns
            .fetch_add(park_start.elapsed().as_nanos() as u64, SeqCst);
        spins = 0;
    }
}

/// Takes the claimed slot's job, runs it, and publishes the outcome plus
/// completion/error bookkeeping.
fn run_slot(
    shared: &Shared,
    seq: usize,
    kernels: &mut [Box<dyn FilterKernel + Send>],
    scratch: &mut Scratch,
) {
    let slot = &shared.slots[seq % BATCH_SLOTS];
    let job = slot
        .job
        .lock()
        .expect("worker pool poisoned")
        .take()
        .expect("claimed slot holds a job");
    let outcome = run_job(job, kernels, scratch);
    if outcome.error.is_some() {
        shared.first_error.fetch_min(seq, SeqCst);
    }
    *slot.outcome.lock().expect("worker pool poisoned") = Some(outcome);
    shared.completed.fetch_add(1, SeqCst);
    if shared.drain_waiting.load(SeqCst) {
        let _g = shared.drain_park.lock().expect("worker pool poisoned");
        shared.drained.notify_all();
    }
}

/// Executes one job, converting panics into an error outcome so the
/// dispatcher's `drain` never deadlocks on a crashed job.
fn run_job(
    job: Job,
    kernels: &mut [Box<dyn FilterKernel + Send>],
    scratch: &mut Scratch,
) -> JobOutcome {
    let (tag, combo) = job.ids();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(job, kernels, scratch)
    }))
    .unwrap_or_else(|_| JobOutcome {
        tag,
        combo,
        payload: JobPayload::Lost,
        error: Some(DtcwtError::MalformedPyramid(
            "worker job panicked".to_string(),
        )),
    })
}

fn execute(
    job: Job,
    kernels: &mut [Box<dyn FilterKernel + Send>],
    scratch: &mut Scratch,
) -> JobOutcome {
    match job {
        Job::ForwardCombo {
            transform,
            img,
            tag,
            combo,
            kernel,
            mut detail,
            mut ll,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => transform
                    .analyze_combo_into(k.as_mut(), &img, combo, &mut detail, &mut ll, scratch)
                    .err(),
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo,
                payload: JobPayload::Forward { detail, ll },
                error,
            }
        }
        Job::InverseCombo {
            transform,
            pyr,
            tag,
            combo,
            kernel,
            mut out,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => {
                    match transform.synthesize_combo_into(k.as_mut(), &pyr, combo, scratch) {
                        Ok(()) => {
                            // The combo's reconstruction is left in the
                            // scratch ping buffer.
                            out.copy_from(&scratch.cur);
                            None
                        }
                        Err(e) => Some(e),
                    }
                }
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo,
                payload: JobPayload::Inverse { out },
                error,
            }
        }
        Job::ColumnStrip {
            transform,
            img,
            tag,
            strip,
            level,
            tree_b,
            kernel,
            x0,
            x1,
            mut lo,
            mut hi,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => crate::dwt2d::analyze_cols_strip(
                    k.as_mut(),
                    &transform.col_axis(level, tree_b),
                    &img,
                    x0,
                    x1,
                    &mut lo,
                    &mut hi,
                    &mut scratch.s2.low,
                    &mut scratch.s2.col,
                    &mut scratch.s1,
                )
                .err(),
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo: strip,
                payload: JobPayload::ColumnStrip { x0, lo, hi },
                error,
            }
        }
        Job::InverseColumnStrip {
            transform,
            lo,
            hi,
            tag,
            strip,
            level,
            tree_b,
            kernel,
            x0,
            x1,
            mut out,
        } => {
            let error = match kernels.get_mut(kernel) {
                Some(k) => crate::dwt2d::synthesize_cols_strip(
                    k.as_mut(),
                    &transform.col_axis(level, tree_b),
                    &lo,
                    &hi,
                    x0,
                    x1,
                    &mut out,
                    &mut scratch.s2.low,
                    &mut scratch.s2.high,
                    &mut scratch.s2.col,
                    &mut scratch.s1,
                )
                .err(),
                None => Some(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            };
            JobOutcome {
                tag,
                combo: strip,
                payload: JobPayload::InverseColumnStrip { x0, out },
                error,
            }
        }
        Job::FuseStrip {
            a,
            b,
            tag,
            strip,
            level,
            band,
            kernel,
            y0,
            y1,
            op,
            mut re,
            mut im,
        } => {
            let subband = |p: &CwtPyramid| -> Result<(), DtcwtError> {
                if level >= p.levels() || band >= p.subbands(level).len() {
                    return Err(DtcwtError::MalformedPyramid(format!(
                        "fusion strip addresses subband ({level}, {band}) \
                         beyond pyramid extents"
                    )));
                }
                Ok(())
            };
            let error = match kernels.get_mut(kernel) {
                Some(k) => subband(&a).and(subband(&b)).and_then(|()| {
                    k.fuse_strip(
                        &a.subbands(level)[band],
                        &b.subbands(level)[band],
                        y0,
                        y1,
                        op,
                        &mut scratch.fuse,
                        &mut re,
                        &mut im,
                    )
                }),
                None => Err(DtcwtError::MalformedPyramid(format!(
                    "worker has no kernel slot {kernel}"
                ))),
            }
            .err();
            JobOutcome {
                tag,
                combo: strip,
                payload: JobPayload::FuseStrip { y0, re, im },
                error,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScalarKernel;
    use crate::scratch::ComboStore;

    fn boxed_scalar(_: usize) -> Vec<Box<dyn FilterKernel + Send>> {
        vec![Box::new(ScalarKernel::new())]
    }

    #[test]
    fn pool_runs_forward_jobs() {
        let pool = WorkerPool::new(2, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(2).unwrap());
        let img = Arc::new(Image::from_fn(32, 24, |x, y| ((x * 3 + y) % 7) as f32));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        t.forward_pooled(&pool, 0, &img, &mut combos, &mut outcomes, &mut out)
            .unwrap();
        let serial = t.forward(&img).unwrap();
        for level in 0..2 {
            for (a, b) in serial.subbands(level).iter().zip(out.subbands(level)) {
                assert_eq!(a.re, b.re);
                assert_eq!(a.im, b.im);
            }
        }
    }

    #[test]
    fn bad_kernel_slot_reports_error() {
        let pool = WorkerPool::new(1, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::filled(8, 8, 1.0));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        let err = t
            .forward_pooled(&pool, 9, &img, &mut combos, &mut outcomes, &mut out)
            .unwrap_err();
        assert!(matches!(err, DtcwtError::MalformedPyramid(_)));
    }

    #[test]
    fn drop_joins_cleanly_with_queued_shutdown() {
        let pool = WorkerPool::new(3, &mut boxed_scalar);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn sched_counters_account_for_every_job() {
        let pool = WorkerPool::new(2, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(2).unwrap());
        let img = Arc::new(Image::from_fn(32, 24, |x, y| ((x + 5 * y) % 11) as f32));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        for _ in 0..4 {
            t.forward_pooled(&pool, 0, &img, &mut combos, &mut outcomes, &mut out)
                .unwrap();
        }
        let totals = pool.sched_totals();
        // Every executed job was claimed through the shared cursor; each
        // forward batch submits four combo jobs.
        assert_eq!(totals.jobs, 16, "totals: {totals:?}");
        assert!(totals.batches_claimed >= 1 && totals.batches_claimed <= totals.jobs);
        // A steal is a kind of claim, never more than all of them. (Steal
        // and park counts depend on scheduling luck, so no lower bound.)
        assert!(totals.steals <= totals.batches_claimed);
        let per_worker: u64 = (0..pool.threads()).map(|w| pool.sched_stats(w).jobs).sum();
        assert_eq!(per_worker, totals.jobs);
    }

    #[test]
    fn single_worker_never_steals() {
        let pool = WorkerPool::new(1, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::filled(16, 16, 0.25));
        let mut combos = ComboStore::new();
        let mut outcomes = Vec::new();
        let mut out = CwtPyramid::empty();
        for _ in 0..3 {
            t.forward_pooled(&pool, 0, &img, &mut combos, &mut outcomes, &mut out)
                .unwrap();
        }
        let stats = pool.sched_stats(0);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.jobs, 12);
    }

    #[test]
    fn outcomes_arrive_in_submission_order() {
        let pool = WorkerPool::new(3, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::from_fn(16, 16, |x, y| (x + 2 * y) as f32));
        for round in 0..8 {
            let mut combos = ComboStore::new();
            for (ci, slot) in combos.slots.iter_mut().enumerate() {
                pool.submit(Job::ForwardCombo {
                    transform: Arc::clone(&t),
                    img: Arc::clone(&img),
                    tag: round,
                    combo: ci,
                    kernel: 0,
                    detail: std::mem::take(&mut slot.detail),
                    ll: std::mem::take(&mut slot.ll),
                });
            }
            let mut outcomes = Vec::new();
            assert_eq!(pool.drain(4, &mut outcomes), None);
            let order: Vec<usize> = outcomes.iter().map(|o| o.combo).collect();
            assert_eq!(order, vec![0, 1, 2, 3], "round {round}");
            assert!(outcomes.iter().all(|o| o.tag == round));
        }
    }

    #[test]
    fn chunked_claims_cover_large_batches() {
        // More jobs than threads by a wide margin: the adaptive chunking
        // must still run every job exactly once and report the earliest
        // error deterministically.
        let pool = WorkerPool::new(4, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::filled(8, 8, 0.5));
        let mut outcomes = Vec::new();
        let n = BATCH_SLOTS;
        for i in 0..n {
            pool.submit(Job::ForwardCombo {
                transform: Arc::clone(&t),
                img: Arc::clone(&img),
                tag: i as u32,
                // Every third job asks for a missing kernel slot.
                combo: i % 4,
                kernel: if i % 3 == 2 { 7 } else { 0 },
                detail: Vec::new(),
                ll: Image::zeros(0, 0),
            });
        }
        let first_err = pool.drain(n, &mut outcomes);
        assert_eq!(outcomes.len(), n);
        assert_eq!(first_err, Some(2), "job 2 is the earliest injected failure");
        for (i, oc) in outcomes.iter().enumerate() {
            assert_eq!(oc.tag, i as u32);
            assert_eq!(oc.error.is_some(), i % 3 == 2);
        }
    }

    #[test]
    fn column_strip_jobs_reassemble_bit_identical() {
        // Splitting a level's column pass into strips of whole lane groups
        // and reassembling the outcomes must reproduce the full-width column
        // pass bit-for-bit, at every pool width. Strip bounds deliberately
        // mix 8-, 4-, and ragged-width strips.
        use crate::scratch::{ColScratch, Scratch1d};
        let t = Arc::new(Dtcwt::new(2).unwrap());
        let img = Arc::new(Image::from_fn(44, 24, |x, y| {
            ((x * 11 + y * 5) % 37) as f32 * 0.23 - 2.0
        }));
        let bounds = [(0usize, 8usize), (8, 16), (16, 32), (32, 44)];
        for tree_b in [false, true] {
            // Full-width reference on a serial kernel.
            let mut k = ScalarKernel::new();
            let spec = t.col_axis(0, tree_b);
            let mut ref_lo = Image::zeros(0, 0);
            let mut ref_hi = Image::zeros(0, 0);
            let mut cs = ColScratch::new();
            let mut s1 = Scratch1d::new();
            k.analyze_cols(
                spec.taps,
                spec.phase,
                &img,
                &mut ref_lo,
                &mut ref_hi,
                &mut cs,
                &mut s1,
            )
            .unwrap();
            let mut ref_out = Image::zeros(0, 0);
            k.synthesize_cols(
                spec.taps,
                spec.phase,
                &ref_lo,
                &ref_hi,
                &mut ref_out,
                &mut cs,
                &mut s1,
            )
            .unwrap();
            let ref_lo = Arc::new(ref_lo);
            let ref_hi = Arc::new(ref_hi);
            for threads in [1usize, 2, 4] {
                let pool = WorkerPool::new(threads, &mut boxed_scalar);
                for (si, &(x0, x1)) in bounds.iter().enumerate() {
                    pool.submit(Job::ColumnStrip {
                        transform: Arc::clone(&t),
                        img: Arc::clone(&img),
                        tag: 1,
                        strip: si,
                        level: 0,
                        tree_b,
                        kernel: 0,
                        x0,
                        x1,
                        lo: Image::zeros(0, 0),
                        hi: Image::zeros(0, 0),
                    });
                }
                let mut outcomes = Vec::new();
                assert_eq!(pool.drain(bounds.len(), &mut outcomes), None);
                let mut got_lo = Image::zeros(44, 12);
                let mut got_hi = Image::zeros(44, 12);
                for oc in outcomes.drain(..) {
                    let JobPayload::ColumnStrip { x0, lo, hi } = oc.payload else {
                        panic!("wrong payload kind");
                    };
                    for y in 0..lo.height() {
                        got_lo.row_mut(y)[x0..x0 + lo.width()].copy_from_slice(lo.row(y));
                        got_hi.row_mut(y)[x0..x0 + hi.width()].copy_from_slice(hi.row(y));
                    }
                }
                assert_eq!(got_lo, *ref_lo, "lo tree_b={tree_b} threads={threads}");
                assert_eq!(got_hi, *ref_hi, "hi tree_b={tree_b} threads={threads}");

                for (si, &(x0, x1)) in bounds.iter().enumerate() {
                    pool.submit(Job::InverseColumnStrip {
                        transform: Arc::clone(&t),
                        lo: Arc::clone(&ref_lo),
                        hi: Arc::clone(&ref_hi),
                        tag: 2,
                        strip: si,
                        level: 0,
                        tree_b,
                        kernel: 0,
                        x0,
                        x1,
                        out: Image::zeros(0, 0),
                    });
                }
                assert_eq!(pool.drain(bounds.len(), &mut outcomes), None);
                let mut got_out = Image::zeros(44, 24);
                for oc in outcomes.drain(..) {
                    let JobPayload::InverseColumnStrip { x0, out } = oc.payload else {
                        panic!("wrong payload kind");
                    };
                    for y in 0..out.height() {
                        got_out.row_mut(y)[x0..x0 + out.width()].copy_from_slice(out.row(y));
                    }
                }
                assert_eq!(got_out, ref_out, "out tree_b={tree_b} threads={threads}");
            }
        }
    }

    #[test]
    fn fuse_strip_jobs_reassemble_bit_identical() {
        // Fusing every subband in row strips through the ring and
        // reassembling the outcomes must reproduce the full-height scalar
        // reference bit-for-bit, at every pool width — including the
        // windowed rule, whose strips read clamped rows beyond their own
        // bounds from the shared pyramids.
        use crate::fuse::{fuse_strip_scalar, FuseOp, FuseScratch};
        let t = Dtcwt::new(2).unwrap();
        let a_img = Image::from_fn(40, 32, |x, y| ((x * 7 + y * 3) % 29) as f32 * 0.17 - 2.0);
        let b_img = Image::from_fn(40, 32, |x, y| ((x * 5 + y * 11) % 31) as f32 * 0.13 - 1.5);
        let pa = Arc::new(t.forward(&a_img).unwrap());
        let pb = Arc::new(t.forward(&b_img).unwrap());
        for op in [
            FuseOp::MaxMagnitude,
            FuseOp::WindowEnergy { radius: 2 },
            FuseOp::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
        ] {
            for threads in [1usize, 2, 4] {
                let pool = WorkerPool::new(threads, &mut boxed_scalar);
                let mut fs = FuseScratch::new();
                let mut outcomes = Vec::new();
                for level in 0..pa.levels() {
                    for band in 0..pa.subbands(level).len() {
                        let sa = &pa.subbands(level)[band];
                        let sb = &pb.subbands(level)[band];
                        let (w, h) = sa.dims();
                        let mut strips = Vec::new();
                        let mut y0 = 0;
                        while y0 < h {
                            strips.push((y0, (y0 + 3).min(h)));
                            y0 += 3;
                        }
                        for (si, &(y0, y1)) in strips.iter().enumerate() {
                            pool.submit(Job::FuseStrip {
                                a: Arc::clone(&pa),
                                b: Arc::clone(&pb),
                                tag: (level * 6 + band) as u32,
                                strip: si,
                                level,
                                band,
                                kernel: 0,
                                y0,
                                y1,
                                op,
                                re: Image::zeros(0, 0),
                                im: Image::zeros(0, 0),
                            });
                        }
                        assert_eq!(pool.drain(strips.len(), &mut outcomes), None);
                        let mut want_re = Image::zeros(0, 0);
                        let mut want_im = Image::zeros(0, 0);
                        fuse_strip_scalar(sa, sb, 0, h, op, &mut fs, &mut want_re, &mut want_im)
                            .unwrap();
                        let mut got_re = Image::zeros(w, h);
                        let mut got_im = Image::zeros(w, h);
                        for oc in outcomes.drain(..) {
                            assert!(oc.error.is_none(), "{:?}", oc.error);
                            let JobPayload::FuseStrip { y0, re, im } = oc.payload else {
                                panic!("wrong payload kind");
                            };
                            for yy in 0..re.height() {
                                got_re.row_mut(y0 + yy).copy_from_slice(re.row(yy));
                                got_im.row_mut(y0 + yy).copy_from_slice(im.row(yy));
                            }
                        }
                        assert_eq!(got_re, want_re, "{op:?} threads={threads} L{level}B{band}");
                        assert_eq!(got_im, want_im, "{op:?} threads={threads} L{level}B{band}");
                    }
                }
            }
        }
    }

    #[test]
    fn fuse_strip_rejects_bad_addresses() {
        // Out-of-range strip rows and subband coordinates must come back as
        // job errors, not panics, with the buffers returned.
        use crate::fuse::FuseOp;
        let t = Dtcwt::new(1).unwrap();
        let img = Image::from_fn(16, 16, |x, y| (x + y) as f32);
        let p = Arc::new(t.forward(&img).unwrap());
        let pool = WorkerPool::new(1, &mut boxed_scalar);
        let h = p.subbands(0)[0].dims().1;
        for (level, band, y0, y1) in [(0usize, 0usize, 0usize, h + 1), (0, 9, 0, h), (5, 0, 0, h)] {
            pool.submit(Job::FuseStrip {
                a: Arc::clone(&p),
                b: Arc::clone(&p),
                tag: 0,
                strip: 0,
                level,
                band,
                kernel: 0,
                y0,
                y1,
                op: FuseOp::MaxMagnitude,
                re: Image::zeros(0, 0),
                im: Image::zeros(0, 0),
            });
            let mut outcomes = Vec::new();
            assert_eq!(pool.drain(1, &mut outcomes), Some(0));
            let oc = outcomes.pop().unwrap();
            assert!(matches!(oc.error, Some(DtcwtError::MalformedPyramid(_))));
            assert!(matches!(oc.payload, JobPayload::FuseStrip { .. }));
        }
    }

    #[test]
    fn column_strip_rejects_bad_bounds() {
        let pool = WorkerPool::new(1, &mut boxed_scalar);
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::filled(16, 8, 1.0));
        pool.submit(Job::ColumnStrip {
            transform: Arc::clone(&t),
            img: Arc::clone(&img),
            tag: 0,
            strip: 0,
            level: 0,
            tree_b: false,
            kernel: 0,
            x0: 12,
            x1: 20, // past the right edge
            lo: Image::zeros(0, 0),
            hi: Image::zeros(0, 0),
        });
        let mut outcomes = Vec::new();
        assert_eq!(pool.drain(1, &mut outcomes), Some(0));
        assert!(outcomes[0].error.is_some());
    }

    #[test]
    fn stress_many_tiny_batches_with_failures_and_shutdown() {
        // Shutdown/error stress: across several pool widths, hammer the
        // scheduler with back-to-back full batches of tiny jobs, a rotating
        // injected-failure pattern, and finally a shutdown with a full
        // undrained batch in flight. Every batch must report exactly its
        // own completions (none lost, none duplicated), the earliest error
        // deterministically, and the drop must join cleanly.
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::from_fn(8, 8, |x, y| (x * 5 + y) as f32));
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads, &mut boxed_scalar);
            let mut outcomes = Vec::new();
            for batch in 0..25usize {
                let n = BATCH_SLOTS;
                // Rotate which residue fails so error-free batches occur too.
                let fail_mod = 2 + batch % 5;
                let fail_offset = batch % fail_mod;
                for i in 0..n {
                    pool.submit(Job::ForwardCombo {
                        transform: Arc::clone(&t),
                        img: Arc::clone(&img),
                        tag: (batch * n + i) as u32,
                        combo: i % 4,
                        kernel: if i % fail_mod == fail_offset { 9 } else { 0 },
                        detail: Vec::new(),
                        ll: Image::zeros(0, 0),
                    });
                }
                let first_err = pool.drain(n, &mut outcomes);
                assert_eq!(outcomes.len(), n, "threads {threads} batch {batch}");
                assert_eq!(
                    first_err,
                    Some(fail_offset),
                    "threads {threads} batch {batch}: earliest injected failure"
                );
                for (i, oc) in outcomes.iter().enumerate() {
                    assert_eq!(oc.tag, (batch * n + i) as u32);
                    assert_eq!(
                        oc.error.is_some(),
                        i % fail_mod == fail_offset,
                        "threads {threads} batch {batch} job {i}"
                    );
                }
                outcomes.clear();
            }
            // Leave a full batch in flight and drop: must join, not hang.
            for i in 0..BATCH_SLOTS {
                pool.submit(Job::ForwardCombo {
                    transform: Arc::clone(&t),
                    img: Arc::clone(&img),
                    tag: i as u32,
                    combo: i % 4,
                    kernel: 0,
                    detail: Vec::new(),
                    ll: Image::zeros(0, 0),
                });
            }
            drop(pool);
        }
    }

    /// Submits one four-job inverse batch tagged `tag` (kernel slot 9 on
    /// `fail_combo` injects a missing-kernel failure).
    fn submit_inverse_batch(
        pool: &WorkerPool,
        t: &Arc<Dtcwt>,
        tag: u32,
        fail_combo: Option<usize>,
    ) {
        let pyr = Arc::new(
            t.forward(&Image::filled(16, 16, tag as f32 * 0.1 + 0.5))
                .unwrap(),
        );
        for ci in 0..4 {
            pool.submit(Job::InverseCombo {
                transform: Arc::clone(t),
                pyr: Arc::clone(&pyr),
                tag,
                combo: ci,
                kernel: if fail_combo == Some(ci) { 9 } else { 0 },
                out: Image::zeros(0, 0),
            });
        }
    }

    #[test]
    fn partial_drains_harvest_interleaved_batches_in_order() {
        // Depth-k shape: several inverse batches in flight at once, each
        // harvested by its own partial drain while later batches keep
        // running, interleaved with a full drain of a forward batch
        // submitted on top. Outcomes must arrive batch-major in submission
        // order at every pool width.
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let img = Arc::new(Image::from_fn(16, 16, |x, y| (3 * x + y) as f32 * 0.05));
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads, &mut boxed_scalar);
            for tag in 0..3u32 {
                submit_inverse_batch(&pool, &t, tag, None);
            }
            assert_eq!(pool.outstanding(), 12);
            let mut outcomes = Vec::new();
            // Harvest the two oldest batches; the third stays in flight.
            assert_eq!(pool.drain_partial(8, &mut outcomes), None);
            assert_eq!(pool.outstanding(), 4);
            // Stack a forward batch on top and full-drain it together with
            // the leftover inverse batch.
            let mut combos = ComboStore::new();
            for (ci, slot) in combos.slots.iter_mut().enumerate() {
                pool.submit(Job::ForwardCombo {
                    transform: Arc::clone(&t),
                    img: Arc::clone(&img),
                    tag: 7,
                    combo: ci,
                    kernel: 0,
                    detail: std::mem::take(&mut slot.detail),
                    ll: std::mem::take(&mut slot.ll),
                });
            }
            assert_eq!(pool.drain(8, &mut outcomes), None);
            assert_eq!(pool.outstanding(), 0);
            let ids: Vec<(u32, usize)> = outcomes.iter().map(|o| (o.tag, o.combo)).collect();
            let want: Vec<(u32, usize)> = [0u32, 1, 2, 7]
                .into_iter()
                .flat_map(|tag| (0..4).map(move |ci| (tag, ci)))
                .collect();
            assert_eq!(ids, want, "threads {threads}");
        }
    }

    #[test]
    fn partial_drain_keeps_later_in_flight_errors() {
        // A failure in a *later* still-in-flight batch must not leak into
        // the earlier batch's partial drain, nor be lost by it: each batch
        // reports exactly its own earliest failure.
        let t = Arc::new(Dtcwt::new(1).unwrap());
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads, &mut boxed_scalar);
            submit_inverse_batch(&pool, &t, 0, None);
            submit_inverse_batch(&pool, &t, 1, Some(2));
            let mut outcomes = Vec::new();
            assert_eq!(
                pool.drain_partial(4, &mut outcomes),
                None,
                "threads {threads}: clean batch must not report the later failure"
            );
            assert!(outcomes.iter().all(|o| o.error.is_none()));
            outcomes.clear();
            assert_eq!(
                pool.drain_partial(4, &mut outcomes),
                Some(2),
                "threads {threads}: failing batch reports its own combo"
            );
            assert!(outcomes[2].error.is_some());
        }
    }

    #[test]
    fn partial_drain_of_failing_prefix_reports_and_clears() {
        // The earlier batch fails while a clean batch is still in flight:
        // the partial drain reports the failure, and the follow-up drain of
        // the clean batch sees no stale error.
        let t = Arc::new(Dtcwt::new(1).unwrap());
        let pool = WorkerPool::new(2, &mut boxed_scalar);
        submit_inverse_batch(&pool, &t, 0, Some(1));
        submit_inverse_batch(&pool, &t, 1, None);
        let mut outcomes = Vec::new();
        assert_eq!(pool.drain_partial(4, &mut outcomes), Some(1));
        outcomes.clear();
        assert_eq!(pool.drain(4, &mut outcomes), None);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
    }
}

use std::error::Error;
use std::fmt;

/// Error type for wavelet transforms and filter construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DtcwtError {
    /// The requested image dimensions are unusable (zero-sized, or too small
    /// for the requested decomposition depth).
    BadDimensions {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// The requested number of decomposition levels is invalid for the
    /// input size.
    BadLevels {
        /// Levels requested.
        requested: usize,
        /// Maximum levels supported for the given input.
        max_supported: usize,
    },
    /// A filter bank failed its construction-time validation (e.g. the
    /// perfect-reconstruction half-band condition).
    InvalidFilterBank(String),
    /// A pyramid passed to the inverse transform is structurally
    /// inconsistent (wrong level count, mismatched subband shapes).
    MalformedPyramid(String),
    /// An underlying numerical routine failed.
    Numerics(wavefuse_numerics::NumericsError),
}

impl fmt::Display for DtcwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtcwtError::BadDimensions {
                width,
                height,
                reason,
            } => write!(f, "unusable image dimensions {width}x{height}: {reason}"),
            DtcwtError::BadLevels {
                requested,
                max_supported,
            } => write!(
                f,
                "requested {requested} decomposition levels but input supports at most {max_supported}"
            ),
            DtcwtError::InvalidFilterBank(why) => write!(f, "invalid filter bank: {why}"),
            DtcwtError::MalformedPyramid(why) => write!(f, "malformed pyramid: {why}"),
            DtcwtError::Numerics(e) => write!(f, "numerical routine failed: {e}"),
        }
    }
}

impl Error for DtcwtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DtcwtError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wavefuse_numerics::NumericsError> for DtcwtError {
    fn from(e: wavefuse_numerics::NumericsError) -> Self {
        DtcwtError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtcwtError>();
    }

    #[test]
    fn source_chains_numerics() {
        let e = DtcwtError::from(wavefuse_numerics::NumericsError::SingularMatrix);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));
    }
}

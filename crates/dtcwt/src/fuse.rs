//! Strip-level coefficient-fusion primitives.
//!
//! The fusion phase combines two pyramids' oriented complex subbands pixel
//! by pixel. This module defines the **numerical contract** for that phase:
//! [`fuse_strip_scalar`] fuses one horizontal row strip `[y0, y1)` of a
//! subband pair, and every other implementation — the SIMD kernels in
//! `wavefuse-simd`, the [`crate::workers::Job::FuseStrip`] worker jobs, the
//! full-height serial path in `wavefuse-core` — must reproduce it bit for
//! bit.
//!
//! # Fold-order contract
//!
//! The windowed rules ([`FuseOp::WindowEnergy`], [`FuseOp::ActivityGuided`])
//! use **separable** clamped window sums, O(r) per pixel instead of the
//! naive O((2r+1)²):
//!
//! 1. per source row, the raw energy `E[x] = re[x]*re[x] + im[x]*im[x]`
//!    (for the cross map, `a.re*b.re + a.im*b.im`);
//! 2. a horizontal pass `H[x] = Σ_{dx=-r..=r} E[clamp(x+dx)]`, folded in
//!    **ascending `dx` order starting from the first window element**
//!    (no zero seed);
//! 3. a vertical pass per output pixel `Σ_{dy=-r..=r} H[x, clamp(y+dy)]`,
//!    folded in **ascending `dy` order starting from the first window row**.
//!
//! Each output pixel's vertical fold touches only horizontal sums of source
//! rows in `[clamp(y0-r), clamp(y1-1+r)]`, and the horizontal sums depend
//! only on their own source row — so a strip decomposition of the rows
//! `[0, h)` produces exactly the same bits as one full-height pass, for any
//! strip boundaries. A vectorized implementation keeps the identity by
//! evaluating the same per-lane expression trees in the same fold order
//! (lane `x` of an 8-wide block computes exactly the scalar expression for
//! column `x`); the strict choose rules (`MaxMagnitude`, the window-energy
//! select) copy one source's bits verbatim, so their lane selects are exact
//! by construction.
//!
//! `MaxMagnitude` compares **squared** magnitudes (`re² + im²`), which
//! selects the same coefficient as comparing `hypot` magnitudes but skips
//! the two square roots per pixel.

use crate::error::DtcwtError;
use crate::image::{ComplexImage, Image};

/// A plain-data fusion operator, mirror of `wavefuse-core`'s `FusionRule`
/// without the crate dependency (dtcwt must not depend on core). Jobs carry
/// it by value into the work-stealing ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuseOp {
    /// Keep the coefficient of larger (squared) magnitude.
    MaxMagnitude,
    /// Choose by clamped `(2r+1)²` local energy, computed separably.
    WindowEnergy {
        /// Window radius in coefficients (1 → 3×3).
        radius: usize,
    },
    /// Fixed blend `alpha * A + (1 - alpha) * B`.
    Weighted {
        /// Weight of the first input, in `[0, 1]`.
        alpha: f32,
    },
    /// Burt–Kolczynski salience/match rule: select where the sources
    /// disagree, salience-weighted blend where they agree.
    ActivityGuided {
        /// Window radius for salience and match (1 → 3×3).
        radius: usize,
        /// Match measure below which pure selection is used, in `[0, 1]`.
        match_threshold: f32,
    },
}

/// Reusable intermediates for the windowed rules. The images hold the
/// horizontal window sums for the clamped source-row span of one strip and
/// retain capacity across frames, so steady-state fusion performs no heap
/// allocation. One instance per worker scratch / per engine.
#[derive(Debug, Clone, Default)]
pub struct FuseScratch {
    /// Horizontal window-energy sums of `a`, `w × span` for the strip's
    /// clamped source-row span.
    pub ha: Image,
    /// Horizontal window-energy sums of `b`.
    pub hb: Image,
    /// Horizontal window sums of the cross term (ActivityGuided only).
    pub hx: Image,
    /// Raw per-row energy staging, length `w`.
    pub erow: Vec<f32>,
}

impl FuseScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        FuseScratch::default()
    }
}

/// Validates a strip request against a subband pair, returning `(w, h)`.
///
/// # Errors
///
/// Returns [`DtcwtError::MalformedPyramid`] if the subband shapes differ or
/// the strip rows fall outside the subband.
pub fn check_strip(
    a: &ComplexImage,
    b: &ComplexImage,
    y0: usize,
    y1: usize,
) -> Result<(usize, usize), DtcwtError> {
    if a.dims() != b.dims() {
        return Err(DtcwtError::MalformedPyramid(format!(
            "fusion subband shapes differ: {:?} vs {:?}",
            a.dims(),
            b.dims()
        )));
    }
    let (w, h) = a.dims();
    if y0 >= y1 || y1 > h {
        return Err(DtcwtError::MalformedPyramid(format!(
            "fusion strip rows {y0}..{y1} out of range for height {h}"
        )));
    }
    Ok((w, h))
}

/// Fuses rows `[y0, y1)` of one subband pair into `out_re`/`out_im`
/// (reshaped to `w × (y1 - y0)`; output row `t` is source row `y0 + t`).
///
/// This is the scalar reference implementation of the fold-order contract
/// (see the module docs); [`crate::kernel::FilterKernel::fuse_strip`]
/// defaults to it.
///
/// # Errors
///
/// Returns [`DtcwtError::MalformedPyramid`] if the subband shapes differ or
/// the strip rows fall outside the subband.
#[allow(clippy::too_many_arguments)]
pub fn fuse_strip_scalar(
    a: &ComplexImage,
    b: &ComplexImage,
    y0: usize,
    y1: usize,
    op: FuseOp,
    fs: &mut FuseScratch,
    out_re: &mut Image,
    out_im: &mut Image,
) -> Result<(), DtcwtError> {
    let (w, h) = check_strip(a, b, y0, y1)?;
    out_re.reshape(w, y1 - y0);
    out_im.reshape(w, y1 - y0);
    match op {
        FuseOp::MaxMagnitude => {
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                for x in 0..w {
                    let ma = ar[x] * ar[x] + ai[x] * ai[x];
                    let mb = br[x] * br[x] + bi[x] * bi[x];
                    let pick_a = ma >= mb;
                    ore[x] = if pick_a { ar[x] } else { br[x] };
                    oim[x] = if pick_a { ai[x] } else { bi[x] };
                }
            }
        }
        FuseOp::Weighted { alpha } => {
            let beta = 1.0 - alpha;
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                for x in 0..w {
                    ore[x] = alpha * ar[x] + beta * br[x];
                    oim[x] = alpha * ai[x] + beta * bi[x];
                }
            }
        }
        FuseOp::WindowEnergy { radius } => {
            let (lo, _hi) = strip_source_span(y0, y1, h, radius);
            horizontal_energy(a, y0, y1, h, radius, &mut fs.erow, &mut fs.ha);
            horizontal_energy(b, y0, y1, h, radius, &mut fs.erow, &mut fs.hb);
            let r = radius as isize;
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                for x in 0..w {
                    let (ea, eb) = vertical_sum2(&fs.ha, &fs.hb, x, y, h, r, lo);
                    let pick_a = ea >= eb;
                    ore[x] = if pick_a { ar[x] } else { br[x] };
                    oim[x] = if pick_a { ai[x] } else { bi[x] };
                }
            }
        }
        FuseOp::ActivityGuided {
            radius,
            match_threshold,
        } => {
            let (lo, _hi) = strip_source_span(y0, y1, h, radius);
            horizontal_energy(a, y0, y1, h, radius, &mut fs.erow, &mut fs.ha);
            horizontal_energy(b, y0, y1, h, radius, &mut fs.erow, &mut fs.hb);
            horizontal_cross(a, b, y0, y1, h, radius, &mut fs.erow, &mut fs.hx);
            let r = radius as isize;
            for y in y0..y1 {
                let (ar, ai) = (a.re.row(y), a.im.row(y));
                let (br, bi) = (b.re.row(y), b.im.row(y));
                let ore = out_re.row_mut(y - y0);
                let oim = out_im.row_mut(y - y0);
                for x in 0..w {
                    let (ea, eb) = vertical_sum2(&fs.ha, &fs.hb, x, y, h, r, lo);
                    let cross = vertical_sum(&fs.hx, x, y, h, r, lo);
                    let (w_a, w_b) = activity_weights(ea, eb, cross, match_threshold);
                    ore[x] = w_a * ar[x] + w_b * br[x];
                    oim[x] = w_a * ai[x] + w_b * bi[x];
                }
            }
        }
    }
    Ok(())
}

/// The clamped source-row span `[lo, hi)` a strip's windowed rules read.
pub fn strip_source_span(y0: usize, y1: usize, h: usize, radius: usize) -> (usize, usize) {
    (y0.saturating_sub(radius), (y1 + radius).min(h))
}

/// Burt–Kolczynski salience/match weights for one coefficient — the exact
/// scalar expression tree every implementation evaluates.
#[inline]
pub fn activity_weights(ea: f32, eb: f32, cross: f32, match_threshold: f32) -> (f32, f32) {
    let denom = ea + eb;
    // Match measure in [-1, 1]; 1 = locally identical.
    let m = if denom > 1e-20 {
        2.0 * cross / denom
    } else {
        1.0
    };
    let a_stronger = ea >= eb;
    if m < match_threshold {
        // Sources disagree: pure selection of the stronger.
        if a_stronger {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    } else {
        // Sources agree: salience-weighted blend.
        let w_max = 0.5 + 0.5 * (1.0 - m) / (1.0 - match_threshold).max(1e-6);
        let w_min = 1.0 - w_max;
        if a_stronger {
            (w_max, w_min)
        } else {
            (w_min, w_max)
        }
    }
}

/// Vertical clamped window fold over one horizontal-sum map (ascending
/// `dy`, seeded with the first window row). `lo` is the map's first source
/// row, from [`strip_source_span`].
#[inline]
pub fn vertical_sum(hmap: &Image, x: usize, y: usize, h: usize, r: isize, lo: usize) -> f32 {
    let yy = |dy: isize| ((y as isize + dy).clamp(0, h as isize - 1) as usize) - lo;
    let mut acc = hmap.row(yy(-r))[x];
    let mut dy = -r + 1;
    while dy <= r {
        acc += hmap.row(yy(dy))[x];
        dy += 1;
    }
    acc
}

/// [`vertical_sum`] over two maps at once (the common A/B pair).
#[inline]
fn vertical_sum2(
    ha: &Image,
    hb: &Image,
    x: usize,
    y: usize,
    h: usize,
    r: isize,
    lo: usize,
) -> (f32, f32) {
    (
        vertical_sum(ha, x, y, h, r, lo),
        vertical_sum(hb, x, y, h, r, lo),
    )
}

/// Fills `hmap` (reshaped to `w × span`) with the horizontal clamped
/// window sums of `c`'s per-pixel energy over the strip's source span.
pub fn horizontal_energy(
    c: &ComplexImage,
    y0: usize,
    y1: usize,
    h: usize,
    radius: usize,
    erow: &mut Vec<f32>,
    hmap: &mut Image,
) {
    let (w, _) = c.dims();
    let (lo, hi) = strip_source_span(y0, y1, h, radius);
    hmap.reshape(w, hi - lo);
    if erow.len() != w {
        erow.resize(w, 0.0);
    }
    for yy in lo..hi {
        let (re, im) = (c.re.row(yy), c.im.row(yy));
        for x in 0..w {
            erow[x] = re[x] * re[x] + im[x] * im[x];
        }
        horizontal_window(erow, radius, hmap.row_mut(yy - lo));
    }
}

/// As [`horizontal_energy`] for the cross term `a.re*b.re + a.im*b.im`.
#[allow(clippy::too_many_arguments)]
pub fn horizontal_cross(
    a: &ComplexImage,
    b: &ComplexImage,
    y0: usize,
    y1: usize,
    h: usize,
    radius: usize,
    erow: &mut Vec<f32>,
    hmap: &mut Image,
) {
    let (w, _) = a.dims();
    let (lo, hi) = strip_source_span(y0, y1, h, radius);
    hmap.reshape(w, hi - lo);
    if erow.len() != w {
        erow.resize(w, 0.0);
    }
    for yy in lo..hi {
        let (ar, ai) = (a.re.row(yy), a.im.row(yy));
        let (br, bi) = (b.re.row(yy), b.im.row(yy));
        for x in 0..w {
            erow[x] = ar[x] * br[x] + ai[x] * bi[x];
        }
        horizontal_window(erow, radius, hmap.row_mut(yy - lo));
    }
}

/// Horizontal clamped window fold of one staged energy row (ascending
/// `dx`, seeded with the first window element).
pub fn horizontal_window(erow: &[f32], radius: usize, out: &mut [f32]) {
    let w = erow.len();
    let r = radius as isize;
    let idx = |x: usize, dx: isize| (x as isize + dx).clamp(0, w as isize - 1) as usize;
    for (x, o) in out.iter_mut().enumerate() {
        let mut acc = erow[idx(x, -r)];
        let mut dx = -r + 1;
        while dx <= r {
            acc += erow[idx(x, dx)];
            dx += 1;
        }
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(w: usize, h: usize) -> (ComplexImage, ComplexImage) {
        let mut a = ComplexImage::zeros(w, h);
        let mut b = ComplexImage::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                a.re.set(x, y, ((x * 3 + y * 7) % 13) as f32 - 6.0);
                a.im.set(x, y, ((x + y * 5) % 11) as f32 - 5.0);
                b.re.set(x, y, ((x * 5 + y) % 17) as f32 - 8.0);
                b.im.set(x, y, ((x * 2 + y * 3) % 7) as f32 - 3.0);
            }
        }
        (a, b)
    }

    /// Naive O((2r+1)²) clamped window-energy sum, the pre-separable oracle.
    fn naive_energy(c: &ComplexImage, x: usize, y: usize, r: isize) -> f32 {
        let (w, h) = c.dims();
        let mut acc = 0.0f64;
        for dy in -r..=r {
            for dx in -r..=r {
                let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                let (re, im) = (c.re.get(sx, sy), c.im.get(sx, sy));
                acc += (re * re + im * im) as f64;
            }
        }
        acc as f32
    }

    #[test]
    fn separable_window_matches_naive_window_numerically() {
        let (a, _) = pair(13, 9);
        let (w, h) = a.dims();
        for radius in [1usize, 2, 3] {
            let mut fs = FuseScratch::new();
            let mut erow = Vec::new();
            let mut hmap = Image::zeros(0, 0);
            horizontal_energy(&a, 0, h, h, radius, &mut erow, &mut hmap);
            fs.ha = hmap;
            let r = radius as isize;
            for y in 0..h {
                for x in 0..w {
                    let sep = vertical_sum(&fs.ha, x, y, h, r, 0);
                    let naive = naive_energy(&a, x, y, r);
                    assert!(
                        (sep - naive).abs() <= 1e-3 * naive.abs().max(1.0),
                        "r={radius} ({x},{y}): {sep} vs {naive}"
                    );
                }
            }
        }
    }

    #[test]
    fn strips_reproduce_full_height_bit_for_bit() {
        let (a, b) = pair(17, 14);
        let h = a.dims().1;
        let ops = [
            FuseOp::MaxMagnitude,
            FuseOp::WindowEnergy { radius: 1 },
            FuseOp::WindowEnergy { radius: 3 },
            FuseOp::Weighted { alpha: 0.3 },
            FuseOp::ActivityGuided {
                radius: 2,
                match_threshold: 0.75,
            },
        ];
        for op in ops {
            let mut fs = FuseScratch::new();
            let (mut want_re, mut want_im) = (Image::zeros(0, 0), Image::zeros(0, 0));
            fuse_strip_scalar(&a, &b, 0, h, op, &mut fs, &mut want_re, &mut want_im).unwrap();
            for rows in [1usize, 3, 5, h] {
                let (mut sre, mut sim) = (Image::zeros(0, 0), Image::zeros(0, 0));
                let mut y0 = 0;
                while y0 < h {
                    let y1 = (y0 + rows).min(h);
                    fuse_strip_scalar(&a, &b, y0, y1, op, &mut fs, &mut sre, &mut sim).unwrap();
                    for y in y0..y1 {
                        assert_eq!(sre.row(y - y0), want_re.row(y), "{op:?} rows={rows} y={y}");
                        assert_eq!(sim.row(y - y0), want_im.row(y), "{op:?} rows={rows} y={y}");
                    }
                    y0 = y1;
                }
            }
        }
    }

    #[test]
    fn max_magnitude_copies_source_bits() {
        let (a, b) = pair(9, 6);
        let mut fs = FuseScratch::new();
        let (mut fre, mut fim) = (Image::zeros(0, 0), Image::zeros(0, 0));
        fuse_strip_scalar(
            &a,
            &b,
            0,
            6,
            FuseOp::MaxMagnitude,
            &mut fs,
            &mut fre,
            &mut fim,
        )
        .unwrap();
        for y in 0..6 {
            for x in 0..9 {
                let from_a = fre.get(x, y) == a.re.get(x, y) && fim.get(x, y) == a.im.get(x, y);
                let from_b = fre.get(x, y) == b.re.get(x, y) && fim.get(x, y) == b.im.get(x, y);
                assert!(from_a || from_b, "({x},{y}) not copied verbatim");
            }
        }
    }

    #[test]
    fn bad_strips_are_rejected() {
        let (a, b) = pair(8, 8);
        let mut fs = FuseScratch::new();
        let (mut re, mut im) = (Image::zeros(0, 0), Image::zeros(0, 0));
        for (y0, y1) in [(3, 3), (5, 4), (0, 9)] {
            assert!(matches!(
                fuse_strip_scalar(
                    &a,
                    &b,
                    y0,
                    y1,
                    FuseOp::MaxMagnitude,
                    &mut fs,
                    &mut re,
                    &mut im
                ),
                Err(DtcwtError::MalformedPyramid(_))
            ));
        }
        let c = ComplexImage::zeros(4, 8);
        assert!(matches!(
            fuse_strip_scalar(
                &a,
                &c,
                0,
                8,
                FuseOp::MaxMagnitude,
                &mut fs,
                &mut re,
                &mut im
            ),
            Err(DtcwtError::MalformedPyramid(_))
        ));
    }
}

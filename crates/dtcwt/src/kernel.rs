//! The pluggable inner-loop compute kernel.
//!
//! All decimated filtering in this workspace — the plain DWT, the DT-CWT and
//! the fusion pipeline built on them — funnels through two primitive row
//! operations: a decimating dual-filter *analysis* and an interpolating
//! dual-filter *synthesis*. [`FilterKernel`] abstracts those primitives so
//! that each of the paper's compute engines can provide its own
//! implementation:
//!
//! * [`ScalarKernel`] (here) — the reference ARM-style scalar code.
//! * `SimdKernel` in `wavefuse-simd` — the NEON-style 4-lane vectorized code.
//! * `FpgaKernel` in `wavefuse-zynq` — the simulated PL wavelet engine,
//!   which also accounts bus transfers and pipeline cycles.
//!
//! # Data layout contract
//!
//! Rows are passed *pre-extended*: the caller materializes the circular
//! boundary extension so kernels only ever perform contiguous, in-bounds
//! reads — exactly the access pattern of the paper's shift-register FPGA
//! datapath and of aligned NEON loads.
//!
//! For **analysis**, `ext` holds the extended signal with the original
//! sample `x[i]` at `ext[left + i]`; output `k` is the dot product of the
//! *reversed* filter with the window starting at
//! `left + 2k + phase - (taps - 1)`.
//!
//! For **synthesis**, the decimated `lo`/`hi` channels arrive left-extended
//! and the kernel computes the two polyphase dot products per output sample.
//!
//! # Column passes
//!
//! The separable 2-D transforms also route their **vertical** pass through
//! the kernel ([`FilterKernel::analyze_cols`] /
//! [`FilterKernel::synthesize_cols`]). The default implementations transpose
//! the image and reuse the row primitives — exactly the pre-columnar
//! behavior, so scalar and FPGA kernels work unchanged — while SIMD kernels
//! override them with a transpose-free path that filters adjacent columns in
//! vector lanes.

use crate::dwt1d::{analyze_into, synthesize_into, BankTaps, Phase};
use crate::image::Image;
use crate::scratch::{ColScratch, Scratch1d};
use crate::DtcwtError;

/// Decimating/interpolating dual-filter row kernel.
///
/// Implementations must be numerically equivalent to [`ScalarKernel`] within
/// `f32` rounding; the integration test suite enforces this for every
/// backend.
pub trait FilterKernel {
    /// Human-readable kernel name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Decimating analysis of one row.
    ///
    /// * `ext` — circularly extended input; `x[i]` lives at `ext[left + i]`.
    /// * `left` — extension margin (must be ≥ `h0.len().max(h1.len()) - 1`).
    /// * `h0`, `h1` — analysis lowpass/highpass taps in natural order.
    /// * `phase` — decimation phase (0 or 1); the dual-tree level-1 trees
    ///   differ only in this value.
    /// * `lo`, `hi` — outputs, each of length `n/2` for an original row of
    ///   even length `n`.
    ///
    /// Semantics: `lo[k] = Σ_j h0[j] · x[(2k + phase − j) mod n]`, and the
    /// same for `hi` with `h1`.
    #[allow(clippy::too_many_arguments)]
    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    );

    /// Interpolating synthesis of one row (inverse of [`analyze_row`]).
    ///
    /// * `lo_ext`, `hi_ext` — circularly left-extended decimated channels;
    ///   channel sample `k` lives at index `left + k`.
    /// * `g0`, `g1` — synthesis lowpass/highpass taps in natural order.
    /// * `phase` — must match the analysis phase.
    /// * `out` — output row of length `2 * (channel length)`.
    ///
    /// Semantics: `out[m] = Σ_k g0[m − 2k − phase] · lo[k] + Σ_k g1[m − 2k −
    /// phase] · hi[k]` (circular in `k`). The caller applies the final
    /// delay-compensating rotation.
    ///
    /// [`analyze_row`]: FilterKernel::analyze_row
    #[allow(clippy::too_many_arguments)]
    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    );

    /// Whether this kernel's column passes run transpose-free.
    ///
    /// `false` (the default) means [`FilterKernel::analyze_cols`] and
    /// [`FilterKernel::synthesize_cols`] stage the image through transposes
    /// and the row primitives.
    fn columnar(&self) -> bool {
        false
    }

    /// Enables or disables the transpose-free column path. A no-op for
    /// kernels without one; kernels that have one must default to enabled.
    fn set_columnar(&mut self, _enabled: bool) {}

    /// Decimating analysis of every **column** of `img` (the vertical pass
    /// of one separable 2-D analysis level).
    ///
    /// Writes the vertically decimated lowpass/highpass halves into `lo` and
    /// `hi` (each reshaped to `width` x `height / 2`). Semantics per column
    /// `x`: `lo[x][k] = Σ_j h0[j] · img[x][(2k + phase − j) mod height]`,
    /// exactly [`FilterKernel::analyze_row`] applied to the transposed image
    /// — implementations must be bit-identical to that staging, which the
    /// default implementation performs literally.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadDimensions`] for empty images or odd heights.
    #[allow(clippy::too_many_arguments)]
    fn analyze_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        img: &Image,
        lo: &mut Image,
        hi: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        fallback_analyze_cols(self, taps, phase, img, lo, hi, cs, s1)
    }

    /// Interpolating synthesis of every **column** (inverse of
    /// [`FilterKernel::analyze_cols`]): reconstructs `out` (reshaped to
    /// `width` x `2 * height`) from the decimated channel images `lo` and
    /// `hi`, including the final delay-compensating rotation along the
    /// column axis. Implementations must be bit-identical to transposing,
    /// running [`crate::dwt1d::synthesize_into`] per row, and transposing
    /// back — which the default implementation performs literally.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadDimensions`] if the channel images are empty
    /// or disagree in size.
    #[allow(clippy::too_many_arguments)]
    fn synthesize_cols(
        &mut self,
        taps: &BankTaps,
        phase: Phase,
        lo: &Image,
        hi: &Image,
        out: &mut Image,
        cs: &mut ColScratch,
        s1: &mut Scratch1d,
    ) -> Result<(), DtcwtError> {
        fallback_synthesize_cols(self, taps, phase, lo, hi, out, cs, s1)
    }

    /// Fuses rows `[y0, y1)` of one oriented complex subband pair into
    /// `out_re`/`out_im` (reshaped to `w × (y1 − y0)`; output row `t` is
    /// source row `y0 + t`).
    ///
    /// The default delegates to the scalar reference
    /// [`crate::fuse::fuse_strip_scalar`]; vectorized kernels override it
    /// but must honor the fold-order contract in [`crate::fuse`] so every
    /// implementation is bit-identical for any strip decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::MalformedPyramid`] if the subband shapes
    /// differ or the strip rows fall outside the subband.
    #[allow(clippy::too_many_arguments)]
    fn fuse_strip(
        &mut self,
        a: &crate::image::ComplexImage,
        b: &crate::image::ComplexImage,
        y0: usize,
        y1: usize,
        op: crate::fuse::FuseOp,
        fs: &mut crate::fuse::FuseScratch,
        out_re: &mut Image,
        out_im: &mut Image,
    ) -> Result<(), DtcwtError> {
        crate::fuse::fuse_strip_scalar(a, b, y0, y1, op, fs, out_re, out_im)
    }
}

/// Transpose-based column analysis: the behavior every kernel had before the
/// columnar path existed, kept as the [`FilterKernel::analyze_cols`] default
/// and as the explicit fallback columnar kernels delegate to when disabled.
#[allow(clippy::too_many_arguments)]
pub fn fallback_analyze_cols<K: FilterKernel + ?Sized>(
    kernel: &mut K,
    taps: &BankTaps,
    phase: Phase,
    img: &Image,
    lo: &mut Image,
    hi: &mut Image,
    cs: &mut ColScratch,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    img.transpose_into(&mut cs.ta); // width = original height
    let (w, h) = cs.ta.dims();
    cs.tb.reshape(w / 2, h);
    cs.tc.reshape(w / 2, h);
    for y in 0..h {
        analyze_into(
            kernel,
            taps,
            cs.ta.row(y),
            phase,
            cs.tb.row_mut(y),
            cs.tc.row_mut(y),
            s1,
        )?;
    }
    cs.tb.transpose_into(lo);
    cs.tc.transpose_into(hi);
    Ok(())
}

/// Transpose-based column synthesis: the [`FilterKernel::synthesize_cols`]
/// default, see [`fallback_analyze_cols`].
#[allow(clippy::too_many_arguments)]
pub fn fallback_synthesize_cols<K: FilterKernel + ?Sized>(
    kernel: &mut K,
    taps: &BankTaps,
    phase: Phase,
    lo: &Image,
    hi: &Image,
    out: &mut Image,
    cs: &mut ColScratch,
    s1: &mut Scratch1d,
) -> Result<(), DtcwtError> {
    lo.transpose_into(&mut cs.ta);
    hi.transpose_into(&mut cs.tb);
    let (w, h) = cs.ta.dims();
    cs.tc.reshape(w * 2, h);
    for y in 0..h {
        synthesize_into(
            kernel,
            taps,
            cs.ta.row(y),
            cs.tb.row(y),
            phase,
            cs.tc.row_mut(y),
            s1,
        )?;
    }
    cs.tc.transpose_into(out);
    Ok(())
}

/// Reference scalar implementation, modeling plain ARM Cortex-A9 execution.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::{FilterKernel, ScalarKernel};
///
/// let mut k = ScalarKernel::new();
/// assert_eq!(k.name(), "arm-scalar");
/// // Haar analysis of [1, 3]: lo = (1+3)/sqrt(2), hi = (3-1)/sqrt(2)
/// let h = std::f32::consts::FRAC_1_SQRT_2;
/// let ext = [3.0f32, 1.0, 3.0, 1.0]; // circular extension, left = 1
/// let (mut lo, mut hi) = ([0.0f32], [0.0f32]);
/// k.analyze_row(&ext, 1, &[h, h], &[h, -h], 1, &mut lo, &mut hi);
/// assert!((lo[0] - 4.0 * h).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScalarKernel {
    rev0: Vec<f32>,
    rev1: Vec<f32>,
    key0: Vec<f32>,
    key1: Vec<f32>,
}

/// Returns `true` (and records `taps` as the new key) when `taps` differ
/// from the cached key. Keying by value rather than by pointer makes the
/// cache immune to reallocated-but-identical filter storage, and a transform
/// pass reuses one filter across every row, so derived tap vectors are
/// rebuilt once per pass instead of once per row.
pub fn taps_changed(key: &mut Vec<f32>, taps: &[f32]) -> bool {
    if key.as_slice() == taps {
        return false;
    }
    key.clear();
    key.extend_from_slice(taps);
    true
}

impl ScalarKernel {
    /// Creates a new scalar kernel.
    pub fn new() -> Self {
        ScalarKernel::default()
    }

    fn load_reversed(cache: &mut Vec<f32>, taps: &[f32]) {
        cache.clear();
        cache.extend(taps.iter().rev());
    }
}

impl FilterKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "arm-scalar"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        debug_assert_eq!(lo.len(), hi.len());
        // Reversing once turns each output into a contiguous ascending dot
        // product — the same windowing the FPGA shift register performs.
        if taps_changed(&mut self.key0, h0) {
            Self::load_reversed(&mut self.rev0, h0);
        }
        if taps_changed(&mut self.key1, h1) {
            Self::load_reversed(&mut self.rev1, h1);
        }
        let (l0, l1) = (h0.len(), h1.len());
        for k in 0..lo.len() {
            let center = left + 2 * k + phase;
            let w0 = &ext[center + 1 - l0..=center];
            let mut acc0 = 0.0f32;
            for (c, x) in self.rev0.iter().zip(w0) {
                acc0 += c * x;
            }
            lo[k] = acc0;
            let w1 = &ext[center + 1 - l1..=center];
            let mut acc1 = 0.0f32;
            for (c, x) in self.rev1.iter().zip(w1) {
                acc1 += c * x;
            }
            hi[k] = acc1;
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        for (m, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            // Lowpass branch: taps j with j ≡ (m - phase) (mod 2).
            acc += polyphase_dot(lo_ext, left, g0, m, phase);
            acc += polyphase_dot(hi_ext, left, g1, m, phase);
            *o = acc;
        }
        fn polyphase_dot(ch_ext: &[f32], left: usize, g: &[f32], m: usize, phase: usize) -> f32 {
            // out[m] += Σ_j g[j] ch[(m - phase - j)/2] over j with matching
            // parity; k may go negative, absorbed by the left extension.
            let mp = m as isize - phase as isize;
            let j0 = (mp & 1).unsigned_abs(); // parity of (m - phase)
            let mut acc = 0.0f32;
            let mut j = j0 as isize;
            while (j as usize) < g.len() {
                let k = (mp - j) / 2;
                acc += g[j as usize] * ch_ext[(left as isize + k) as usize];
                j += 2;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_analysis_by_hand() {
        let h = std::f32::consts::FRAC_1_SQRT_2;
        // x = [1, 2, 3, 4], circular ext with left margin 1.
        let ext = [4.0f32, 1.0, 2.0, 3.0, 4.0, 1.0];
        let (mut lo, mut hi) = (vec![0.0f32; 2], vec![0.0f32; 2]);
        let mut k = ScalarKernel::new();
        // phase 1: lo[k] = h*(x[2k+1] + x[2k])
        k.analyze_row(&ext, 1, &[h, h], &[-h, h], 1, &mut lo, &mut hi);
        assert!((lo[0] - h * 3.0).abs() < 1e-6);
        assert!((lo[1] - h * 7.0).abs() < 1e-6);
        // h1 = [-h, h]: hi[k] = h1[0]*x[2k+1] + h1[1]*x[2k] = h*(x[2k] - x[2k+1])
        assert!((hi[0] + h * 1.0).abs() < 1e-6);
        assert!((hi[1] + h * 1.0).abs() < 1e-6);
    }

    #[test]
    fn analysis_phase_zero_wraps() {
        let h = std::f32::consts::FRAC_1_SQRT_2;
        let ext = [4.0f32, 1.0, 2.0, 3.0, 4.0, 1.0];
        let (mut lo, mut hi) = (vec![0.0f32; 2], vec![0.0f32; 2]);
        let mut k = ScalarKernel::new();
        // phase 0: lo[0] = h*(x[0] + x[-1 mod 4]) = h*(1 + 4)
        k.analyze_row(&ext, 1, &[h, h], &[-h, h], 0, &mut lo, &mut hi);
        assert!((lo[0] - h * 5.0).abs() < 1e-6);
    }

    #[test]
    fn tap_cache_tracks_filter_changes_by_value() {
        let h = std::f32::consts::FRAC_1_SQRT_2;
        let ext = [4.0f32, 1.0, 2.0, 3.0, 4.0, 1.0];
        let (mut lo, mut hi) = (vec![0.0f32; 2], vec![0.0f32; 2]);
        let mut cached = ScalarKernel::new();
        // Warm the cache with Haar, then switch filters through the *same*
        // kernel instance; results must match a fresh kernel per filter.
        cached.analyze_row(&ext, 1, &[h, h], &[-h, h], 1, &mut lo, &mut hi);
        for taps in [[0.25f32, 0.75], [h, h], [1.0, 0.0]] {
            let (mut lo_c, mut hi_c) = (vec![0.0f32; 2], vec![0.0f32; 2]);
            cached.analyze_row(&ext, 1, &taps, &[-h, h], 1, &mut lo_c, &mut hi_c);
            let mut fresh = ScalarKernel::new();
            let (mut lo_f, mut hi_f) = (vec![0.0f32; 2], vec![0.0f32; 2]);
            fresh.analyze_row(&ext, 1, &taps, &[-h, h], 1, &mut lo_f, &mut hi_f);
            assert_eq!(lo_c, lo_f, "{taps:?}");
            assert_eq!(hi_c, hi_f, "{taps:?}");
        }
    }

    #[test]
    fn synthesis_reconstructs_haar_by_hand() {
        // Analyze then synthesize a length-4 signal with Haar at phase 1 and
        // verify the raw (unrotated) output is the input delayed by c = 1.
        let h = std::f32::consts::FRAC_1_SQRT_2;
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let ext = [4.0f32, 1.0, 2.0, 3.0, 4.0, 1.0];
        let (mut lo, mut hi) = (vec![0.0f32; 2], vec![0.0f32; 2]);
        let mut k = ScalarKernel::new();
        let (h0, h1) = ([h, h], [-h, h]);
        k.analyze_row(&ext, 1, &h0, &h1, 1, &mut lo, &mut hi);
        // Orthonormal synthesis: g = reversed analysis.
        let g0 = [h, h];
        let g1 = [h, -h];
        // Left-extend channels circularly by 2.
        let lo_ext = [lo[0], lo[1], lo[0], lo[1]];
        let hi_ext = [hi[0], hi[1], hi[0], hi[1]];
        let mut out = vec![0.0f32; 4];
        k.synthesize_row(&lo_ext, &hi_ext, 2, &g0, &g1, 1, &mut out);
        // Delay c = (2 + 2)/2 - 1 = 1: out[m] == x[(m - 1) mod 4].
        for m in 0..4 {
            let expect = x[(m + 4 - 1) % 4];
            assert!(
                (out[m] - expect).abs() < 1e-5,
                "m = {m}: {out:?} vs delayed {x:?}"
            );
        }
    }
}

//! Transform analysis utilities: shift-invariance measurement and
//! equivalent-filter construction.
//!
//! The DT-CWT's selling point over the plain DWT — the reason the paper's
//! fusion algorithm uses it — is *approximate shift invariance*: subband
//! energy barely changes when the input translates. This module quantifies
//! that, and the test suite asserts the DT-CWT beats the DWT on it.

use crate::dtcwt::Dtcwt;
use crate::dwt2d::Dwt2d;
use crate::image::Image;
use crate::DtcwtError;
use wavefuse_numerics::conv::{convolve, upsample2};
use wavefuse_numerics::stats;

/// Circularly shifts an image by `(dx, dy)` pixels (positive = right/down).
pub fn circular_shift(img: &Image, dx: isize, dy: isize) -> Image {
    let (w, h) = img.dims();
    if w == 0 || h == 0 {
        return img.clone();
    }
    Image::from_fn(w, h, |x, y| {
        let sx = (x as isize - dx).rem_euclid(w as isize) as usize;
        let sy = (y as isize - dy).rem_euclid(h as isize) as usize;
        img.get(sx, sy)
    })
}

/// Relative variation (coefficient of variation, std/mean) of per-level
/// subband energy across a set of circular input shifts, for the DT-CWT.
///
/// Lower is better; a perfectly shift-invariant representation scores 0.
///
/// # Errors
///
/// Propagates transform errors (e.g. undersized images).
pub fn dtcwt_shift_energy_variation(
    t: &Dtcwt,
    img: &Image,
    shifts: &[(isize, isize)],
    level: usize,
) -> Result<f64, DtcwtError> {
    let mut energies = Vec::with_capacity(shifts.len());
    for &(dx, dy) in shifts {
        let shifted = circular_shift(img, dx, dy);
        let pyr = t.forward(&shifted)?;
        energies.push(pyr.level_energy(level));
    }
    Ok(coefficient_of_variation(&energies))
}

/// Relative variation of per-level detail-band energy across circular input
/// shifts, for the plain DWT (the comparison baseline).
///
/// # Errors
///
/// Propagates transform errors.
pub fn dwt_shift_energy_variation(
    t: &Dwt2d,
    img: &Image,
    shifts: &[(isize, isize)],
    level: usize,
) -> Result<f64, DtcwtError> {
    let mut energies = Vec::with_capacity(shifts.len());
    for &(dx, dy) in shifts {
        let shifted = circular_shift(img, dx, dy);
        let pyr = t.forward(&shifted)?;
        let d = pyr.detail(level);
        energies.push(d.lh.energy() + d.hl.energy() + d.hh.energy());
    }
    Ok(coefficient_of_variation(&energies))
}

fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = stats::mean(xs);
    if m == 0.0 {
        0.0
    } else {
        stats::std_dev(xs) / m
    }
}

/// Builds the equivalent single-rate (à trous) lowpass filter of `levels`
/// cascaded analysis stages: `h0 * (↑2 h0) * (↑4 h0) * …`.
///
/// Useful for inspecting the effective frequency response of deep pyramid
/// levels.
pub fn equivalent_lowpass(h0: &[f64], levels: usize) -> Vec<f64> {
    let mut acc: Vec<f64> = vec![1.0];
    let mut stage: Vec<f64> = h0.to_vec();
    for _ in 0..levels {
        acc = convolve(&acc, &stage);
        stage = upsample2(&stage);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterBank;

    fn step_image(n: usize) -> Image {
        Image::from_fn(n, n, |x, _| if x < n / 2 { 0.0 } else { 1.0 })
    }

    #[test]
    fn circular_shift_round_trip() {
        let img = Image::from_fn(8, 6, |x, y| (y * 8 + x) as f32);
        let s = circular_shift(&img, 3, -2);
        assert_eq!(s.get(3, 0), img.get(0, 2));
        let back = circular_shift(&s, -3, 2);
        assert_eq!(back, img);
    }

    #[test]
    fn circular_shift_by_zero_is_identity() {
        let img = Image::from_fn(5, 5, |x, y| (x * y) as f32);
        assert_eq!(circular_shift(&img, 0, 0), img);
    }

    #[test]
    fn dtcwt_is_more_shift_invariant_than_dwt() {
        // The headline DT-CWT property (paper §III): subband energy is far
        // more stable under translation than for the decimated DWT.
        let img = step_image(64);
        let shifts: Vec<(isize, isize)> = (0..8).map(|k| (k, 0)).collect();
        let dtcwt = Dtcwt::new(3).unwrap();
        let dwt = Dwt2d::new(FilterBank::near_sym_b().unwrap(), 3).unwrap();
        for level in [1, 2] {
            let v_cwt = dtcwt_shift_energy_variation(&dtcwt, &img, &shifts, level).unwrap();
            let v_dwt = dwt_shift_energy_variation(&dwt, &img, &shifts, level).unwrap();
            assert!(
                v_cwt * 3.0 < v_dwt,
                "level {level}: dtcwt cv {v_cwt:.4} vs dwt cv {v_dwt:.4}"
            );
        }
    }

    #[test]
    fn equivalent_lowpass_grows_geometrically() {
        let h0 = FilterBank::haar().unwrap().h0().to_vec();
        assert_eq!(equivalent_lowpass(&h0, 1).len(), 2);
        assert_eq!(equivalent_lowpass(&h0, 2).len(), 4); // conv(2, up2(2)=3) -> 4
        let eq3 = equivalent_lowpass(&h0, 3);
        assert_eq!(eq3.len(), 8);
        // Haar cascade: flat averaging window, DC gain 2^(3/2).
        let sum: f64 = eq3.iter().sum();
        assert!((sum - 2.0f64.powf(1.5)).abs() < 1e-12);
    }
}

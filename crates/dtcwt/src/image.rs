//! Row-major single-channel image buffers.
//!
//! [`Image`] is the plain `f32` raster all transforms operate on;
//! [`ComplexImage`] holds one oriented DT-CWT subband as separate real and
//! imaginary planes (structure-of-arrays, which the SIMD kernels prefer).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::DtcwtError;

/// Process-wide count of bytes moved by [`Image::transpose_into`]. The
/// columnar kernel path exists precisely to keep this flat in the steady
/// state; the telemetry layer exports deltas as `wavefuse_transpose_bytes`
/// and the allocation tests pin it to zero for the SIMD backends.
static TRANSPOSE_BYTES: AtomicU64 = AtomicU64::new(0);

/// Cumulative bytes copied by transpose operations since process start.
///
/// Monotonic; callers interested in a window (one frame, one bench rep)
/// should subtract two snapshots.
pub fn transpose_bytes_total() -> u64 {
    TRANSPOSE_BYTES.load(Ordering::Relaxed)
}

/// A row-major single-channel `f32` image.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::Image;
///
/// let mut img = Image::zeros(4, 3); // width 4, height 3
/// img.set(1, 2, 0.5);
/// assert_eq!(img.get(1, 2), 0.5);
/// assert_eq!(img.row(2)[1], 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a zero-filled image. Width and height may be zero (an empty
    /// image), which is occasionally useful as a placeholder.
    pub fn zeros(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image filled with a constant value.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Image {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from existing row-major pixel data.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadDimensions`] if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self, DtcwtError> {
        if data.len() != width * height {
            return Err(DtcwtError::BadDimensions {
                width,
                height,
                reason: "pixel buffer length does not match width * height",
            });
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut img = Image::zeros(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image holds no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Borrows row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Borrows row `y` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [f32] {
        assert!(y < self.height, "row out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Borrows the whole pixel buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Borrows the whole pixel buffer mutably (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning the pixel buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Re-dimensions the image in place to `width` x `height`, zero-filling
    /// all pixels. Never shrinks the underlying allocation, so reshaping to
    /// a size seen before performs no heap allocation.
    pub fn reshape(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, 0.0);
    }

    /// Makes `self` a pixel-exact copy of `src`, reusing the existing
    /// allocation when it is large enough.
    pub fn copy_from(&mut self, src: &Image) {
        self.width = src.width;
        self.height = src.height;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Returns the transposed image (width and height swapped).
    pub fn transpose(&self) -> Image {
        let mut out = Image::zeros(self.height, self.width);
        self.transpose_into(&mut out);
        out
    }

    /// Cache-blocked tile edge: 32x32 `f32` tiles are 4 KiB per side, so a
    /// source tile and a destination tile fit in L1 together.
    const TRANSPOSE_TILE: usize = 32;

    /// Writes the transposed image into `out` (reshaped to `height` x
    /// `width`), walking 32x32 tiles so both the row-major reads and the
    /// column-major writes stay cache-resident.
    pub fn transpose_into(&self, out: &mut Image) {
        out.reshape(self.height, self.width);
        let (w, h) = (self.width, self.height);
        TRANSPOSE_BYTES.fetch_add(
            (w * h * std::mem::size_of::<f32>()) as u64,
            Ordering::Relaxed,
        );
        const T: usize = Image::TRANSPOSE_TILE;
        for y0 in (0..h).step_by(T) {
            let y1 = (y0 + T).min(h);
            for x0 in (0..w).step_by(T) {
                let x1 = (x0 + T).min(w);
                for y in y0..y1 {
                    for x in x0..x1 {
                        out.data[x * h + y] = self.data[y * w + x];
                    }
                }
            }
        }
    }

    /// Extracts the sub-image with top-left corner `(x0, y0)` and the given
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, width: usize, height: usize) -> Image {
        assert!(
            x0 + width <= self.width && y0 + height <= self.height,
            "crop window out of bounds"
        );
        let mut out = Image::zeros(width, height);
        self.crop_into(x0, y0, width, height, &mut out);
        out
    }

    /// Writes the sub-image with top-left corner `(x0, y0)` and the given
    /// size into `out` (reshaped to `width` x `height`).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the image bounds.
    pub fn crop_into(&self, x0: usize, y0: usize, width: usize, height: usize, out: &mut Image) {
        assert!(
            x0 + width <= self.width && y0 + height <= self.height,
            "crop window out of bounds"
        );
        out.reshape(width, height);
        for y in 0..height {
            let src = &self.data[(y0 + y) * self.width + x0..][..width];
            out.row_mut(y).copy_from_slice(src);
        }
    }

    /// Pads the image on the right/bottom by edge replication so both
    /// dimensions become even. Returns `self` unchanged if already even.
    pub fn pad_to_even(&self) -> Image {
        let w = self.width + self.width % 2;
        let h = self.height + self.height % 2;
        if (w, h) == (self.width, self.height) {
            return self.clone();
        }
        Image::from_fn(w, h, |x, y| {
            self.get(x.min(self.width - 1), y.min(self.height - 1))
        })
    }

    /// Edge-replicating pad to even dimensions, written into `out`. Unlike
    /// [`Image::pad_to_even`] this also runs for already-even inputs (as a
    /// plain copy), so callers can use `out` unconditionally.
    pub fn pad_to_even_into(&self, out: &mut Image) {
        let w = self.width + self.width % 2;
        let h = self.height + self.height % 2;
        if (w, h) == (self.width, self.height) {
            out.copy_from(self);
            return;
        }
        out.reshape(w, h);
        for y in 0..h {
            let sy = y.min(self.height - 1);
            let src = &self.data[sy * self.width..(sy + 1) * self.width];
            let dst = &mut out.data[y * w..(y + 1) * w];
            dst[..self.width].copy_from_slice(src);
            for v in &mut dst[self.width..] {
                *v = src[self.width - 1];
            }
        }
    }

    /// Sum of squared pixel values.
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Largest absolute pixel difference against another image of identical
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(self.dims(), other.dims(), "image dimensions differ");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Elementwise in-place addition of another image scaled by `k`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled(&mut self, other: &Image, k: f32) {
        assert_eq!(self.dims(), other.dims(), "image dimensions differ");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Multiplies every pixel by `k` in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }
}

impl Default for Image {
    /// An empty 0x0 image; useful as a no-allocation placeholder for
    /// buffers that are reshaped on first use.
    fn default() -> Self {
        Image::zeros(0, 0)
    }
}

/// One oriented complex subband stored as separate real/imaginary planes.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexImage {
    /// Real plane.
    pub re: Image,
    /// Imaginary plane.
    pub im: Image,
}

impl ComplexImage {
    /// Creates a zero-filled complex image.
    pub fn zeros(width: usize, height: usize) -> Self {
        ComplexImage {
            re: Image::zeros(width, height),
            im: Image::zeros(width, height),
        }
    }

    /// Creates a complex image from real and imaginary planes.
    ///
    /// # Errors
    ///
    /// Returns [`DtcwtError::BadDimensions`] if the planes disagree in size.
    pub fn new(re: Image, im: Image) -> Result<Self, DtcwtError> {
        if re.dims() != im.dims() {
            return Err(DtcwtError::BadDimensions {
                width: im.width(),
                height: im.height(),
                reason: "real and imaginary planes have different dimensions",
            });
        }
        Ok(ComplexImage { re, im })
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        self.re.dims()
    }

    /// Re-dimensions both planes in place, zero-filled, reusing their
    /// allocations (see [`Image::reshape`]).
    pub fn reshape(&mut self, width: usize, height: usize) {
        self.re.reshape(width, height);
        self.im.reshape(width, height);
    }

    /// Magnitude `sqrt(re^2 + im^2)` at pixel `(x, y)`.
    #[inline]
    pub fn magnitude_at(&self, x: usize, y: usize) -> f32 {
        self.re.get(x, y).hypot(self.im.get(x, y))
    }

    /// Returns the magnitude plane as a real image.
    pub fn magnitude(&self) -> Image {
        let (w, h) = self.dims();
        Image::from_fn(w, h, |x, y| self.magnitude_at(x, y))
    }

    /// Sum of `re^2 + im^2` over the subband.
    pub fn energy(&self) -> f64 {
        self.re.energy() + self.im.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Image::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = Image::zeros(3, 2);
        img.set(2, 1, 7.0);
        assert_eq!(img.get(2, 1), 7.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn get_out_of_bounds_panics() {
        Image::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn transpose_round_trip() {
        let img = Image::from_fn(5, 3, |x, y| (x * 10 + y) as f32);
        let t = img.transpose();
        assert_eq!(t.dims(), (3, 5));
        assert_eq!(t.get(1, 4), img.get(4, 1));
        assert_eq!(t.transpose(), img);
    }

    #[test]
    fn transpose_into_matches_naive_on_awkward_sizes() {
        // Exercise tile-boundary cases around the 32-pixel block edge plus
        // degenerate shapes; the blocked transpose must equal the naive one.
        for (w, h) in [
            (1, 1),
            (3, 2),
            (31, 33),
            (32, 32),
            (33, 31),
            (35, 35),
            (88, 72),
            (64, 1),
            (1, 64),
        ] {
            let img = Image::from_fn(w, h, |x, y| (x * 131 + y * 17) as f32 * 0.25 - 3.0);
            let mut naive = Image::zeros(h, w);
            for y in 0..h {
                for x in 0..w {
                    naive.set(y, x, img.get(x, y));
                }
            }
            let mut blocked = Image::zeros(0, 0);
            img.transpose_into(&mut blocked);
            assert_eq!(blocked, naive, "{w}x{h}");
        }
    }

    #[test]
    fn reshape_and_copy_from_reuse_capacity() {
        let mut img = Image::zeros(8, 8);
        img.set(3, 3, 1.0);
        img.reshape(4, 4);
        assert_eq!(img.dims(), (4, 4));
        assert_eq!(img.get(3, 3), 0.0); // zeroed, not stale
        let src = Image::from_fn(2, 3, |x, y| (x + 10 * y) as f32);
        img.copy_from(&src);
        assert_eq!(img, src);
    }

    #[test]
    fn pad_to_even_into_matches_allocating_path() {
        for (w, h) in [(3, 3), (4, 3), (3, 4), (4, 4), (1, 1), (35, 35)] {
            let img = Image::from_fn(w, h, |x, y| (y * w + x) as f32);
            let mut out = Image::zeros(0, 0);
            img.pad_to_even_into(&mut out);
            assert_eq!(out, img.pad_to_even(), "{w}x{h}");
        }
    }

    #[test]
    fn crop_into_matches_crop() {
        let img = Image::from_fn(6, 5, |x, y| (y * 6 + x) as f32);
        let mut out = Image::zeros(9, 9);
        img.crop_into(1, 2, 3, 2, &mut out);
        assert_eq!(out, img.crop(1, 2, 3, 2));
    }

    #[test]
    fn crop_extracts_window() {
        let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn pad_to_even_replicates_edges() {
        let img = Image::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        let p = img.pad_to_even();
        assert_eq!(p.dims(), (4, 4));
        assert_eq!(p.get(3, 0), img.get(2, 0));
        assert_eq!(p.get(0, 3), img.get(0, 2));
        assert_eq!(p.get(3, 3), img.get(2, 2));
        // Already-even images come back unchanged.
        let even = Image::zeros(4, 2);
        assert_eq!(even.pad_to_even(), even);
    }

    #[test]
    fn energy_and_diff() {
        let a = Image::filled(2, 2, 2.0);
        let b = Image::filled(2, 2, 1.5);
        assert_eq!(a.energy(), 16.0);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Image::filled(2, 1, 1.0);
        let b = Image::filled(2, 1, 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 2.0]);
        a.scale_in_place(0.25);
        assert_eq!(a.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn complex_image_magnitude() {
        let mut c = ComplexImage::zeros(2, 2);
        c.re.set(0, 0, 3.0);
        c.im.set(0, 0, 4.0);
        assert_eq!(c.magnitude_at(0, 0), 5.0);
        assert_eq!(c.magnitude().get(0, 0), 5.0);
        assert_eq!(c.energy(), 25.0);
    }

    #[test]
    fn complex_image_plane_mismatch_rejected() {
        assert!(ComplexImage::new(Image::zeros(2, 2), Image::zeros(3, 2)).is_err());
    }
}

//! Dual-Tree Complex Wavelet Transform (DT-CWT) and classic DWT substrate.
//!
//! This crate implements the wavelet machinery of the DATE 2016 video-fusion
//! system: validated two-channel filter banks (including Kingsbury's
//! near-symmetric and quarter-shift DT-CWT banks), 1-D and separable 2-D
//! decimated transforms with exact perfect reconstruction, multi-level
//! pyramids, and the dual-tree complex transform with six oriented complex
//! subbands per level.
//!
//! The compute-heavy inner loops are routed through the [`kernel::FilterKernel`]
//! trait so the SIMD engine (`wavefuse-simd`) and the simulated FPGA wavelet
//! engine (`wavefuse-zynq`) can substitute their own implementations — the
//! same mechanism the paper uses to swap NEON and PL execution.
//!
//! # Examples
//!
//! ```
//! use wavefuse_dtcwt::{Dtcwt, Image};
//!
//! let img = Image::from_fn(32, 24, |x, y| ((x + y) % 7) as f32);
//! let transform = Dtcwt::new(2)?;
//! let pyramid = transform.forward(&img)?;
//! assert_eq!(pyramid.levels(), 2);
//! assert_eq!(pyramid.subbands(0).len(), 6); // six orientations
//! let back = transform.inverse(&pyramid)?;
//! assert!(back.max_abs_diff(&img) < 1e-3);
//! # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod denoise;
pub mod design;
pub mod dtcwt;
pub mod dwt1d;
pub mod dwt2d;
pub mod filters;
pub mod fuse;
pub mod image;
pub mod kernel;
pub mod scratch;
pub mod swt;
pub mod workers;

mod error;

pub use dtcwt::{CwtPyramid, Dtcwt, Orientation};
pub use dwt2d::{Dwt2d, DwtPyramid};
pub use error::DtcwtError;
pub use filters::FilterBank;
pub use fuse::{fuse_strip_scalar, FuseOp, FuseScratch};
pub use image::{transpose_bytes_total, ComplexImage, Image};
pub use kernel::{FilterKernel, ScalarKernel};
pub use scratch::{ColScratch, ComboSlot, ComboStore, PoolHandle, PoolStats, Scratch};
pub use workers::{Job, JobOutcome, JobPayload, WorkerPool, WorkerSchedStats, BATCH_SLOTS};

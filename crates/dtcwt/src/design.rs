//! Wavelet filter design.
//!
//! Two designers live here:
//!
//! * [`daubechies`] constructs the orthonormal Daubechies-*N* lowpass filter
//!   by spectral factorization of the maximally flat half-band product
//!   filter (binomial polynomial roots via Durand–Kerner, minimum-phase
//!   zero selection).
//! * [`design_dual_lowpass`] completes a biorthogonal bank: given an
//!   odd-length symmetric analysis lowpass, it solves the linear system of
//!   perfect-reconstruction half-band conditions (plus vanishing-moment
//!   constraints) for the symmetric synthesis lowpass. This is how the
//!   19-tap dual of the Kingsbury 13-tap near-sym filter is produced,
//!   avoiding any reliance on transcribed coefficient tables.
//!
//! Every designed filter is validated by the bank constructors in
//! [`crate::filters`]; the tests at the bottom verify orthonormality and the
//! half-band property directly.

use crate::DtcwtError;
use wavefuse_numerics::complex::Complex64;
use wavefuse_numerics::conv::convolve;
use wavefuse_numerics::linalg::Matrix;
use wavefuse_numerics::poly::Polynomial;

/// Designs the Daubechies orthonormal lowpass filter with `n` vanishing
/// moments (filter length `2n`), normalized so the taps sum to `sqrt(2)`.
///
/// `n = 1` gives the Haar filter.
///
/// # Errors
///
/// Returns [`DtcwtError::InvalidFilterBank`] for `n == 0` or `n > 16`
/// (beyond which double-precision root finding of the binomial polynomial
/// degrades), and propagates root-finding failures.
///
/// # Examples
///
/// ```
/// use wavefuse_dtcwt::design::daubechies;
///
/// let db2 = daubechies(2)?;
/// assert_eq!(db2.len(), 4);
/// let sum: f64 = db2.iter().sum();
/// assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-10);
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
pub fn daubechies(n: usize) -> Result<Vec<f64>, DtcwtError> {
    if n == 0 || n > 16 {
        return Err(DtcwtError::InvalidFilterBank(format!(
            "daubechies order must be in 1..=16, got {n}"
        )));
    }
    if n == 1 {
        let v = std::f64::consts::FRAC_1_SQRT_2;
        return Ok(vec![v, v]);
    }

    // Binomial half-band remainder: Q(y) = sum_{k=0}^{n-1} C(n-1+k, k) y^k.
    let q = Polynomial::new((0..n).map(|k| binomial(n - 1 + k, k)).collect::<Vec<f64>>());

    // Map each root y of Q to the z-plane zero inside the unit circle via
    // y = (2 - z - z^{-1}) / 4  =>  z^2 - (2 - 4y) z + 1 = 0.
    let mut zeros: Vec<Complex64> = Vec::with_capacity(2 * n - 1);
    for y in q.roots()? {
        let b = Complex64::from_real(2.0) - y * 4.0;
        let disc = (b * b - Complex64::from_real(4.0)).sqrt();
        let z1 = (b + disc) / 2.0;
        let z2 = (b - disc) / 2.0;
        zeros.push(if z1.abs() < 1.0 { z1 } else { z2 });
    }
    // n zeros at z = -1 provide the vanishing moments.
    for _ in 0..n {
        zeros.push(Complex64::from_real(-1.0));
    }

    let poly = Polynomial::from_roots(&zeros);
    let taps: Vec<f64> = poly.coeffs().to_vec();
    debug_assert_eq!(taps.len(), 2 * n);

    // Normalize to sum sqrt(2) (equivalently unit energy for orthonormal h).
    let s: f64 = taps.iter().sum();
    Ok(taps
        .iter()
        .map(|t| t * std::f64::consts::SQRT_2 / s)
        .collect())
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Designs the symmetric synthesis (dual) lowpass `g0` of length `dual_len`
/// for a given odd-length symmetric analysis lowpass `h0`, such that
/// `conv(h0, g0)` is a half-band filter (the biorthogonal
/// perfect-reconstruction condition).
///
/// Leftover degrees of freedom beyond the half-band equations are spent on
/// vanishing moments of the dual highpass, i.e. even-order zero conditions
/// of `g0` at `z = -1`.
///
/// The normalization is fixed by demanding a reconstruction gain of exactly
/// one (`conv(h0, g0)[center] = 1`); when `h0` sums to `sqrt(2)` the
/// designed dual also sums to `sqrt(2)`.
///
/// # Errors
///
/// * [`DtcwtError::InvalidFilterBank`] if `h0` or `dual_len` is even-length,
///   if `h0.len() + dual_len` is not a multiple of 4 (the half-band center
///   would land on an even lag), or if `h0` is not symmetric.
/// * [`DtcwtError::Numerics`] if the design system is singular.
pub fn design_dual_lowpass(h0: &[f64], dual_len: usize) -> Result<Vec<f64>, DtcwtError> {
    let lh = h0.len();
    if lh.is_multiple_of(2) || dual_len.is_multiple_of(2) {
        return Err(DtcwtError::InvalidFilterBank(
            "dual design requires odd-length symmetric filters".into(),
        ));
    }
    if !(lh + dual_len).is_multiple_of(4) {
        return Err(DtcwtError::InvalidFilterBank(format!(
            "h0 length {lh} plus dual length {dual_len} must be a multiple of 4"
        )));
    }
    for i in 0..lh / 2 {
        if (h0[i] - h0[lh - 1 - i]).abs() > 1e-9 * h0[i].abs().max(1.0) {
            return Err(DtcwtError::InvalidFilterBank("h0 is not symmetric".into()));
        }
    }

    let m = dual_len.div_ceil(2); // free symmetric coefficients g[0..m], center at m-1
    let center = (lh + dual_len) / 2 - 1; // half-band center lag (odd)
    let k_max = (lh + dual_len - 2 - center) / 2;

    // Build rows: each condition is linear in the m free coefficients.
    // expand(c)[j] maps free coeffs c[0..m] to the full dual filter:
    // g[j] = c[min(j, dual_len-1-j)].
    let coeff_index = |j: usize| -> usize { j.min(dual_len - 1 - j) };

    // Half-band conditions: p[center + 2k] = sum_j h0'[center + 2k - j] g[j].
    // where h0' indexes into h0 (zero outside).
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut rhs: Vec<f64> = Vec::new();
    let h_at = |i: isize| -> f64 {
        if i >= 0 && (i as usize) < lh {
            h0[i as usize]
        } else {
            0.0
        }
    };

    for k in 0..=k_max {
        let lag = center + 2 * k;
        let mut row = vec![0.0; m];
        for j in 0..dual_len {
            row[coeff_index(j)] += h_at(lag as isize - j as isize);
        }
        rows.push(row);
        // The reconstruction gain is exactly p[center]; demanding 1 here
        // fixes the dual's normalization (for h0 summing to sqrt(2), the
        // resulting g0 also sums to sqrt(2)).
        rhs.push(if k == 0 { 1.0 } else { 0.0 });
    }

    // Moment conditions at z = -1 for the remaining freedom: even moments
    // 0, 2, 4, ... of (-1)^n g0[n] vanish.
    let n_moments = m.saturating_sub(k_max + 1);
    let gc = (dual_len - 1) as f64 / 2.0;
    for p in 0..n_moments {
        let mut row = vec![0.0; m];
        for j in 0..dual_len {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            let w = (j as f64 - gc).powi(2 * p as i32);
            row[coeff_index(j)] += sign * w;
        }
        rows.push(row);
        rhs.push(0.0);
    }

    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let a = Matrix::from_rows(&row_refs)?;
    let c = if a.rows() == m {
        a.solve(&rhs)?
    } else {
        a.solve_least_squares(&rhs)?
    };

    // Expand symmetric representation to the full filter.
    Ok((0..dual_len).map(|j| c[coeff_index(j)]).collect())
}

/// Verifies the biorthogonal half-band condition `conv(h0, g0)[center ± 2k] = δ`
/// and returns the maximum violation. Used by the bank constructors and
/// tests.
pub fn halfband_violation(h0: &[f64], g0: &[f64]) -> f64 {
    let p = convolve(h0, g0);
    let center = (h0.len() + g0.len()) / 2 - 1;
    let mut worst = (p[center] - 1.0).abs();
    let mut k = 1;
    loop {
        let hi = center + 2 * k;
        let lo = center as isize - 2 * k as isize;
        let mut any = false;
        if hi < p.len() {
            worst = worst.max(p[hi].abs());
            any = true;
        }
        if lo >= 0 {
            worst = worst.max(p[lo as usize].abs());
            any = true;
        }
        if !any {
            break;
        }
        k += 1;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_numerics::conv::autocorrelation_even_lags;

    fn orthonormality_violation(h: &[f64]) -> f64 {
        let r = autocorrelation_even_lags(h);
        let mut worst = (r[0] - 1.0).abs();
        for v in &r[1..] {
            worst = worst.max(v.abs());
        }
        worst
    }

    #[test]
    fn db1_is_haar() {
        let h = daubechies(1).unwrap();
        assert_eq!(h.len(), 2);
        assert!((h[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
    }

    #[test]
    fn db2_matches_published_coefficients() {
        // Published D4 coefficients (Daubechies 1988).
        let h = daubechies(2).unwrap();
        let s3 = 3.0f64.sqrt();
        let d = 4.0 * std::f64::consts::SQRT_2;
        let expect = [
            (1.0 + s3) / d,
            (3.0 + s3) / d,
            (3.0 - s3) / d,
            (1.0 - s3) / d,
        ];
        // The designer may return the min-phase filter in either time order;
        // accept the published order or its reverse.
        let fwd: f64 = h
            .iter()
            .zip(expect.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let rev: f64 = h
            .iter()
            .rev()
            .zip(expect.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(fwd.min(rev) < 1e-10, "db2 mismatch: {h:?}");
    }

    #[test]
    fn daubechies_family_is_orthonormal() {
        for n in 1..=10 {
            let h = daubechies(n).unwrap();
            assert_eq!(h.len(), 2 * n);
            let viol = orthonormality_violation(&h);
            assert!(viol < 1e-8, "db{n} orthonormality violated by {viol:e}");
            let sum: f64 = h.iter().sum();
            assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-10);
        }
    }

    #[test]
    fn daubechies_vanishing_moments() {
        // The highpass h1[n] = (-1)^n h0[L-1-n] must annihilate polynomials
        // of degree < n: sum (-1)^k k^p h0[L-1-k] = 0 for p < n.
        for n in 2..=6 {
            let h = daubechies(n).unwrap();
            let l = h.len();
            for p in 0..n {
                let m: f64 = (0..l)
                    .map(|k| {
                        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                        sign * (k as f64).powi(p as i32) * h[l - 1 - k]
                    })
                    .sum();
                assert!(m.abs() < 1e-7, "db{n} moment {p} = {m:e}");
            }
        }
    }

    #[test]
    fn daubechies_rejects_bad_orders() {
        assert!(daubechies(0).is_err());
        assert!(daubechies(17).is_err());
    }

    #[test]
    fn dual_of_legall_lowpass_is_halfband() {
        // LeGall 5/3 analysis lowpass (sqrt2 normalization).
        let s = std::f64::consts::SQRT_2;
        let h0: Vec<f64> = [-0.125, 0.25, 0.75, 0.25, -0.125]
            .iter()
            .map(|c| c * s)
            .collect();
        let g0 = design_dual_lowpass(&h0, 3).unwrap();
        // Known dual: [1/2, 1, 1/2] / sqrt(2) * ... => proportional to [0.5, 1.0, 0.5].
        assert!((g0[0] / g0[1] - 0.5).abs() < 1e-12, "{g0:?}");
        assert!(halfband_violation(&h0, &g0) < 1e-12);
    }

    #[test]
    fn dual_design_validates_inputs() {
        assert!(design_dual_lowpass(&[0.5, 0.5], 3).is_err()); // even h0
        assert!(design_dual_lowpass(&[0.25, 0.5, 0.25], 4).is_err()); // even dual
        assert!(design_dual_lowpass(&[0.25, 0.5, 0.25], 3).is_err()); // 3+3 % 4 != 0
        assert!(design_dual_lowpass(&[0.1, 0.5, 0.3], 5).is_err()); // asymmetric
    }

    #[test]
    fn dual_design_longer_filters() {
        // Design a 9/7-like pair from the CDF 9-tap analysis filter and check
        // the half-band property of the result.
        let s = std::f64::consts::SQRT_2;
        let h0: Vec<f64> = [
            0.026748757411,
            -0.016864118443,
            -0.078223266529,
            0.266864118443,
            0.602949018236,
            0.266864118443,
            -0.078223266529,
            -0.016864118443,
            0.026748757411,
        ]
        .iter()
        .map(|c| c * s)
        .collect();
        let g0 = design_dual_lowpass(&h0, 7).unwrap();
        assert!(halfband_violation(&h0, &g0) < 1e-9, "{g0:?}");
        // And it should reproduce the known CDF 9/7 synthesis filter.
        let known: Vec<f64> = [
            -0.091271763114,
            -0.057543526229,
            0.591271763114,
            1.115087052457,
            0.591271763114,
            -0.057543526229,
            -0.091271763114,
        ]
        .iter()
        .map(|c| c / s)
        .collect();
        for (a, b) in g0.iter().zip(&known) {
            assert!((a - b).abs() < 1e-7, "designed {g0:?} vs known {known:?}");
        }
    }
}

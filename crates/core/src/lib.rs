//! # wavefuse-core — the DT-CWT video-fusion system
//!
//! The primary contribution of the reproduced paper: a complete video-fusion
//! engine that decomposes visible and infrared frames with the Dual-Tree
//! Complex Wavelet Transform, combines the coefficients with a fusion rule,
//! reconstructs the fused frame — and runs the compute-heavy transforms on
//! any of three backends with modeled time and energy:
//!
//! * [`Backend::Arm`] — plain scalar code on the Cortex-A9 model;
//! * [`Backend::Neon`] — the 4-lane SIMD engine (`wavefuse-simd`);
//! * [`Backend::Fpga`] — the simulated PL wavelet engine (`wavefuse-zynq`).
//!
//! The headline finding of the paper is implemented in
//! [`adaptive::AdaptiveScheduler`]: the FPGA wins only above a frame-size
//! threshold (between 35x35 and 40x40 for time, between 40x40 and 64x48 for
//! energy), so a run-time selector that switches between NEON and FPGA
//! dominates both fixed choices. The calibrated timing model behind those
//! numbers lives in [`cost`]; per-phase attribution (the paper's Fig. 2) in
//! [`profile`]; comparison baselines (plain-DWT, Laplacian-pyramid, and
//! averaging fusion) in [`baseline`].
//!
//! # Examples
//!
//! ```
//! use wavefuse_core::{Backend, FusionEngine};
//! use wavefuse_dtcwt::Image;
//!
//! let visible = Image::from_fn(88, 72, |x, y| ((x + y) % 13) as f32 / 12.0);
//! let thermal = Image::from_fn(88, 72, |x, y| ((x * y) % 7) as f32 / 6.0);
//! let mut engine = FusionEngine::new(3)?;
//! let out = engine.fuse(&visible, &thermal, Backend::Neon)?;
//! assert_eq!(out.image.dims(), (88, 72));
//! assert!(out.timing.total_seconds() > 0.0);
//! # Ok::<(), wavefuse_core::FusionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod backend;
pub mod baseline;
pub mod cost;
pub mod engine;
pub mod governor;
pub mod hybrid;
pub mod pipeline;
pub mod profile;
pub mod rules;
pub mod serve;

mod error;

pub use backend::{Backend, BackendCounts};
pub use engine::{FusionEngine, FusionOutput};
pub use error::FusionError;
pub use rules::{FusionRule, FusionScratch, LowpassRule};

//! Compute-backend selection.

use wavefuse_power::ExecutionMode;

/// The compute engines the transforms can run on.
///
/// [`Backend::Arm`], [`Backend::Neon`] and [`Backend::Fpga`] are the
/// paper's §VII configurations; [`Backend::Hybrid`] is this reproduction's
/// extension of the paper's §VIII insight — within one transform, short
/// rows (deep pyramid levels) run on the NEON engine and long rows on the
/// FPGA, per-row, so the fixed driver overhead is only ever paid where the
/// FPGA's throughput advantage covers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain scalar execution on the ARM Cortex-A9 model.
    Arm,
    /// The 4-lane NEON SIMD engine.
    Neon,
    /// The PL wavelet engine over the ACP.
    Fpga,
    /// Per-row NEON/FPGA routing (extension; see [`crate::hybrid`]).
    Hybrid,
}

impl Backend {
    /// The paper's three reporting configurations (Figs. 9–10).
    pub const ALL: [Backend; 3] = [Backend::Arm, Backend::Neon, Backend::Fpga];

    /// All backends including the hybrid extension.
    pub const ALL_EXTENDED: [Backend; 4] = [
        Backend::Arm,
        Backend::Neon,
        Backend::Fpga,
        Backend::Hybrid,
    ];

    /// The platform power-model mode this backend runs in.
    ///
    /// The hybrid keeps the PL engine configured and active, so it draws
    /// the ARM+FPGA power (the NEON unit adds nothing measurable, per the
    /// paper).
    pub fn execution_mode(self) -> ExecutionMode {
        match self {
            Backend::Arm => ExecutionMode::ArmOnly,
            Backend::Neon => ExecutionMode::ArmNeon,
            Backend::Fpga | Backend::Hybrid => ExecutionMode::ArmFpga,
        }
    }

    /// Display label (the paper's naming for its three modes).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Hybrid => "Hybrid",
            other => other.execution_mode().label(),
        }
    }

    /// Dense index for per-backend accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Backend::Arm => 0,
            Backend::Neon => 1,
            Backend::Fpga => 2,
            Backend::Hybrid => 3,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_maps_to_power_mode() {
        assert_eq!(Backend::Arm.execution_mode(), ExecutionMode::ArmOnly);
        assert_eq!(Backend::Neon.execution_mode(), ExecutionMode::ArmNeon);
        assert_eq!(Backend::Fpga.execution_mode(), ExecutionMode::ArmFpga);
        assert_eq!(Backend::Hybrid.execution_mode(), ExecutionMode::ArmFpga);
        assert_eq!(Backend::ALL.len(), 3);
        assert_eq!(Backend::ALL_EXTENDED.len(), 4);
        assert_eq!(Backend::Fpga.to_string(), "ARM+FPGA");
        assert_eq!(Backend::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for b in Backend::ALL_EXTENDED {
            assert!(!seen[b.index()]);
            seen[b.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

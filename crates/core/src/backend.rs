//! Compute-backend selection.

use wavefuse_power::ExecutionMode;

/// The compute engines the transforms can run on.
///
/// [`Backend::Arm`], [`Backend::Neon`] and [`Backend::Fpga`] are the
/// paper's §VII configurations; [`Backend::Hybrid`] is this reproduction's
/// extension of the paper's §VIII insight — within one transform, short
/// rows (deep pyramid levels) run on the NEON engine and long rows on the
/// FPGA, per-row, so the fixed driver overhead is only ever paid where the
/// FPGA's throughput advantage covers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain scalar execution on the ARM Cortex-A9 model.
    Arm,
    /// The 4-lane NEON SIMD engine.
    Neon,
    /// The PL wavelet engine over the ACP.
    Fpga,
    /// Per-row NEON/FPGA routing (extension; see [`crate::hybrid`]).
    Hybrid,
}

impl Backend {
    /// Number of backends ([`Backend::ALL_EXTENDED`]'s length) — the size
    /// of per-backend accounting arrays.
    pub const COUNT: usize = 4;

    /// The paper's three reporting configurations (Figs. 9–10).
    pub const ALL: [Backend; 3] = [Backend::Arm, Backend::Neon, Backend::Fpga];

    /// All backends including the hybrid extension.
    pub const ALL_EXTENDED: [Backend; 4] =
        [Backend::Arm, Backend::Neon, Backend::Fpga, Backend::Hybrid];

    /// The platform power-model mode this backend runs in.
    ///
    /// The hybrid keeps the PL engine configured and active, so it draws
    /// the ARM+FPGA power (the NEON unit adds nothing measurable, per the
    /// paper).
    pub fn execution_mode(self) -> ExecutionMode {
        match self {
            Backend::Arm => ExecutionMode::ArmOnly,
            Backend::Neon => ExecutionMode::ArmNeon,
            Backend::Fpga | Backend::Hybrid => ExecutionMode::ArmFpga,
        }
    }

    /// Display label (the paper's naming for its three modes).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Hybrid => "Hybrid",
            other => other.execution_mode().label(),
        }
    }

    /// Dense index for per-backend accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Backend::Arm => 0,
            Backend::Neon => 1,
            Backend::Fpga => 2,
            Backend::Hybrid => 3,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-backend tally, indexed by [`Backend`] instead of by position, so
/// the `[ARM, NEON, FPGA, Hybrid]` ordering cannot silently drift from
/// [`Backend::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounts([u64; Backend::COUNT]);

impl BackendCounts {
    /// All-zero tally.
    pub fn new() -> Self {
        BackendCounts::default()
    }

    /// `(backend, count)` pairs in [`Backend::ALL_EXTENDED`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Backend, u64)> + '_ {
        Backend::ALL_EXTENDED
            .into_iter()
            .map(|b| (b, self.0[b.index()]))
    }

    /// Sum over all backends.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The raw array, in [`Backend::ALL_EXTENDED`] order.
    pub fn as_array(&self) -> [u64; Backend::COUNT] {
        self.0
    }
}

impl std::ops::Index<Backend> for BackendCounts {
    type Output = u64;

    fn index(&self, b: Backend) -> &u64 {
        &self.0[b.index()]
    }
}

impl std::ops::IndexMut<Backend> for BackendCounts {
    fn index_mut(&mut self, b: Backend) -> &mut u64 {
        &mut self.0[b.index()]
    }
}

impl PartialEq<[u64; Backend::COUNT]> for BackendCounts {
    fn eq(&self, other: &[u64; Backend::COUNT]) -> bool {
        self.0 == *other
    }
}

impl From<BackendCounts> for [u64; Backend::COUNT] {
    fn from(c: BackendCounts) -> Self {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_maps_to_power_mode() {
        assert_eq!(Backend::Arm.execution_mode(), ExecutionMode::ArmOnly);
        assert_eq!(Backend::Neon.execution_mode(), ExecutionMode::ArmNeon);
        assert_eq!(Backend::Fpga.execution_mode(), ExecutionMode::ArmFpga);
        assert_eq!(Backend::Hybrid.execution_mode(), ExecutionMode::ArmFpga);
        assert_eq!(Backend::ALL.len(), 3);
        assert_eq!(Backend::ALL_EXTENDED.len(), 4);
        assert_eq!(Backend::Fpga.to_string(), "ARM+FPGA");
        assert_eq!(Backend::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; Backend::COUNT];
        for b in Backend::ALL_EXTENDED {
            assert!(!seen[b.index()]);
            seen[b.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn backend_counts_index_by_backend() {
        let mut c = BackendCounts::new();
        c[Backend::Neon] += 2;
        c[Backend::Fpga] += 1;
        assert_eq!(c[Backend::Neon], 2);
        assert_eq!(c, [0, 2, 1, 0]);
        assert_eq!(c.total(), 3);
        assert_eq!(c.as_array(), [0, 2, 1, 0]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs[1], (Backend::Neon, 2));
    }
}

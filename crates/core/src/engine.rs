//! The fusion engine: decompose → fuse → reconstruct on a chosen backend.

use std::sync::Arc;

use wavefuse_dtcwt::{Dtcwt, FilterKernel, Image, ScalarKernel};
use wavefuse_power::PowerModel;
use wavefuse_simd::SimdKernel;
use wavefuse_trace::Telemetry;
use wavefuse_zynq::FpgaKernel;

use crate::backend::Backend;
use crate::cost::{CostModel, Direction, TransformPlan};
use crate::hybrid::HybridKernel;
use crate::rules::{fuse_pyramids, FusionRule, LowpassRule};
use crate::FusionError;

/// Modeled time of one fused frame, split into the paper's Fig. 2 phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// Forward DT-CWT of both inputs.
    pub forward_s: f64,
    /// Coefficient fusion (always on the PS).
    pub fusion_s: f64,
    /// Inverse DT-CWT of the fused pyramid.
    pub inverse_s: f64,
    /// Capture/conversion/display overhead.
    pub overhead_s: f64,
}

impl PhaseTiming {
    /// Sum of all phases, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.forward_s + self.fusion_s + self.inverse_s + self.overhead_s
    }

    /// Adds another frame's phases into this accumulator.
    pub fn accumulate(&mut self, other: &PhaseTiming) {
        self.forward_s += other.forward_s;
        self.fusion_s += other.fusion_s;
        self.inverse_s += other.inverse_s;
        self.overhead_s += other.overhead_s;
    }
}

/// Result of fusing one frame pair.
#[derive(Debug, Clone)]
pub struct FusionOutput {
    /// The fused frame.
    pub image: Image,
    /// Modeled per-phase time.
    pub timing: PhaseTiming,
    /// Backend that executed the transforms.
    pub backend: Backend,
    /// Modeled energy, millijoules.
    pub energy_mj: f64,
}

/// The complete fusion engine.
///
/// Owns one kernel instance per backend (so the FPGA engine's coefficient
/// registers stay warm across frames, as on the real platform), the
/// transform configuration, the fusion rule, and the calibrated models.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct FusionEngine {
    dtcwt: Dtcwt,
    levels: usize,
    rule: FusionRule,
    lowpass_rule: LowpassRule,
    cost: CostModel,
    power: PowerModel,
    scalar: ScalarKernel,
    simd: SimdKernel,
    fpga: FpgaKernel,
    hybrid: HybridKernel,
    telemetry: Option<Arc<Telemetry>>,
}

/// The four phase names, in timeline order, as they appear in span
/// categories and the `phase` metric label.
pub const PHASE_NAMES: [&str; 4] = ["forward", "fusion", "inverse", "overhead"];

impl PhaseTiming {
    /// `(phase name, seconds)` pairs in [`PHASE_NAMES`] order.
    pub fn phases(&self) -> [(&'static str, f64); 4] {
        [
            ("forward", self.forward_s),
            ("fusion", self.fusion_s),
            ("inverse", self.inverse_s),
            ("overhead", self.overhead_s),
        ]
    }
}

impl FusionEngine {
    /// Creates an engine with the standard configuration: `levels`-deep
    /// DT-CWT, 3x3 window-energy detail rule, averaged lowpass.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for `levels == 0`.
    pub fn new(levels: usize) -> Result<Self, FusionError> {
        FusionEngine::with_rules(
            levels,
            FusionRule::WindowEnergy { radius: 1 },
            LowpassRule::Average,
        )
    }

    /// Creates an engine with explicit fusion rules.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for `levels == 0`.
    pub fn with_rules(
        levels: usize,
        rule: FusionRule,
        lowpass_rule: LowpassRule,
    ) -> Result<Self, FusionError> {
        Ok(FusionEngine {
            dtcwt: Dtcwt::new(levels)?,
            levels,
            rule,
            lowpass_rule,
            cost: CostModel::calibrated(),
            power: PowerModel::zc702(),
            scalar: ScalarKernel::new(),
            simd: SimdKernel::new(),
            fpga: FpgaKernel::new(),
            hybrid: HybridKernel::new(),
            telemetry: None,
        })
    }

    /// Attaches a telemetry handle: every subsequent [`FusionEngine::fuse`]
    /// emits per-phase spans on the modeled clock, phase-latency histograms
    /// and energy counters. The handle is propagated to the FPGA kernels
    /// (pure and hybrid) for DMA/cycle accounting.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_phase_seconds",
            "Modeled per-phase latency of one fused frame, seconds",
        );
        telemetry.metrics().describe(
            "wavefuse_energy_millijoules_total",
            "Modeled energy spent fusing frames, millijoules",
        );
        self.fpga.set_telemetry(Arc::clone(&telemetry));
        self.hybrid.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The detail fusion rule.
    pub fn rule(&self) -> FusionRule {
        self.rule
    }

    /// The calibrated cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The platform power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The DT-CWT this engine runs.
    pub fn transform(&self) -> &Dtcwt {
        &self.dtcwt
    }

    /// Fuses one frame pair on the given backend.
    ///
    /// Functionally, all backends produce the same fused image (within
    /// `f32` rounding); they differ in the modeled time and energy.
    ///
    /// # Errors
    ///
    /// * [`FusionError::DimensionMismatch`] if the frames differ in size.
    /// * [`FusionError::Transform`] if the frames cannot support the
    ///   configured decomposition depth.
    pub fn fuse(
        &mut self,
        a: &Image,
        b: &Image,
        backend: Backend,
    ) -> Result<FusionOutput, FusionError> {
        if a.dims() != b.dims() {
            return Err(FusionError::DimensionMismatch {
                a: a.dims(),
                b: b.dims(),
            });
        }
        let (w, h) = a.dims();
        let plan = TransformPlan::dtcwt(w, h, self.levels)?;

        // Forward both inputs on the selected backend; for the FPGA the
        // cycle-level ledger provides the elapsed time directly.
        let (image, forward_s, inverse_s) = match backend {
            Backend::Arm | Backend::Neon => {
                let kernel: &mut dyn FilterKernel = match backend {
                    Backend::Arm => &mut self.scalar,
                    _ => &mut self.simd,
                };
                let pyr_a = self.dtcwt.forward_with(kernel, a)?;
                let pyr_b = self.dtcwt.forward_with(kernel, b)?;
                let fused = fuse_pyramids(&pyr_a, &pyr_b, self.rule, self.lowpass_rule);
                let image = self.dtcwt.inverse_with(kernel, &fused)?;
                let dir_t = |m: &CostModel, d| match backend {
                    Backend::Arm => m.arm_seconds(&plan, d),
                    _ => m.neon_seconds(&plan, d),
                };
                let fwd = 2.0 * dir_t(&self.cost, Direction::Forward);
                let inv = dir_t(&self.cost, Direction::Inverse);
                (image, fwd, inv)
            }
            Backend::Fpga => {
                self.fpga.reset_ledger();
                let pyr_a = self.dtcwt.forward_with(&mut self.fpga, a)?;
                let pyr_b = self.dtcwt.forward_with(&mut self.fpga, b)?;
                let fwd = self.fpga.ledger().elapsed_seconds;
                let fused = fuse_pyramids(&pyr_a, &pyr_b, self.rule, self.lowpass_rule);
                self.fpga.reset_ledger();
                let image = self.dtcwt.inverse_with(&mut self.fpga, &fused)?;
                let inv = self.fpga.ledger().elapsed_seconds;
                (image, fwd, inv)
            }
            Backend::Hybrid => {
                self.hybrid.reset();
                let pyr_a = self.dtcwt.forward_with(&mut self.hybrid, a)?;
                let pyr_b = self.dtcwt.forward_with(&mut self.hybrid, b)?;
                let fwd = self.hybrid.elapsed_seconds();
                let fused = fuse_pyramids(&pyr_a, &pyr_b, self.rule, self.lowpass_rule);
                self.hybrid.reset();
                let image = self.dtcwt.inverse_with(&mut self.hybrid, &fused)?;
                let inv = self.hybrid.elapsed_seconds();
                (image, fwd, inv)
            }
        };

        let timing = PhaseTiming {
            forward_s,
            fusion_s: self.cost.fusion_seconds(&plan, self.rule),
            inverse_s,
            overhead_s: self.cost.frame_overhead_seconds(&plan),
        };
        let energy_mj = self
            .power
            .energy_mj(backend.execution_mode(), timing.total_seconds());
        if let Some(tel) = &self.telemetry {
            // Lay the four phases out sequentially on the modeled clock
            // (they are sequential on the platform: Fig. 2), then advance
            // it by the frame total — so phase spans tile the enclosing
            // frame span exactly and their durations sum to PhaseTiming.
            let tracer = tel.tracer();
            let mut t = tracer.model_now();
            for (phase, dur) in timing.phases() {
                tracer.complete_span(
                    phase,
                    "phase",
                    t,
                    dur,
                    vec![
                        ("backend".into(), backend.label().into()),
                        ("width".into(), w.into()),
                        ("height".into(), h.into()),
                    ],
                );
                t += dur;
                tel.metrics().observe(
                    "wavefuse_phase_seconds",
                    &[("phase", phase), ("backend", backend.label())],
                    dur,
                );
            }
            tracer.advance_model(timing.total_seconds());
            tel.metrics().counter_add(
                "wavefuse_energy_millijoules_total",
                &[("backend", backend.label())],
                energy_mj,
            );
        }
        Ok(FusionOutput {
            image,
            timing,
            backend,
            energy_mj,
        })
    }

    /// Modeled per-phase time for one fused frame of the given geometry on
    /// a backend, *without* executing the transforms — the prediction the
    /// adaptive scheduler uses. For the FPGA this is the validated analytic
    /// approximation of the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the geometry cannot support
    /// the configured depth.
    pub fn predict(
        &self,
        width: usize,
        height: usize,
        backend: Backend,
    ) -> Result<PhaseTiming, FusionError> {
        let plan = TransformPlan::dtcwt(width, height, self.levels)?;
        let (fwd1, inv1) = match backend {
            Backend::Arm => (
                self.cost.arm_seconds(&plan, Direction::Forward),
                self.cost.arm_seconds(&plan, Direction::Inverse),
            ),
            Backend::Neon => (
                self.cost.neon_seconds(&plan, Direction::Forward),
                self.cost.neon_seconds(&plan, Direction::Inverse),
            ),
            Backend::Fpga => (
                self.cost.fpga_seconds(&plan, Direction::Forward),
                self.cost.fpga_seconds(&plan, Direction::Inverse),
            ),
            Backend::Hybrid => {
                let th = self.cost.hybrid_row_threshold();
                (
                    self.cost.hybrid_seconds(&plan, Direction::Forward, th),
                    self.cost.hybrid_seconds(&plan, Direction::Inverse, th),
                )
            }
        };
        Ok(PhaseTiming {
            forward_s: 2.0 * fwd1,
            fusion_s: self.cost.fusion_seconds(&plan, self.rule),
            inverse_s: inv1,
            overhead_s: self.cost.frame_overhead_seconds(&plan),
        })
    }

    /// Modeled energy (millijoules) for one fused frame on a backend.
    ///
    /// # Errors
    ///
    /// See [`FusionEngine::predict`].
    pub fn predict_energy_mj(
        &self,
        width: usize,
        height: usize,
        backend: Backend,
    ) -> Result<f64, FusionError> {
        let t = self.predict(width, height, backend)?;
        Ok(self
            .power
            .energy_mj(backend.execution_mode(), t.total_seconds()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(w: usize, h: usize) -> (Image, Image) {
        (
            Image::from_fn(w, h, |x, y| ((x * 5 + y * 2) % 17) as f32 / 16.0),
            Image::from_fn(w, h, |x, y| ((x + y * y) % 23) as f32 / 22.0),
        )
    }

    #[test]
    fn all_backends_produce_the_same_image() {
        let (a, b) = inputs(40, 40);
        let mut eng = FusionEngine::new(3).unwrap();
        let arm = eng.fuse(&a, &b, Backend::Arm).unwrap();
        let neon = eng.fuse(&a, &b, Backend::Neon).unwrap();
        let fpga = eng.fuse(&a, &b, Backend::Fpga).unwrap();
        assert!(arm.image.max_abs_diff(&neon.image) < 1e-3);
        assert!(arm.image.max_abs_diff(&fpga.image) < 1e-3);
    }

    #[test]
    fn fused_image_combines_complementary_content() {
        // A carries a left-half feature, B a right-half feature; the fused
        // image must carry both.
        let w = 48;
        let a = Image::from_fn(w, w, |x, y| {
            if x < w / 2 && (x / 3 + y / 3) % 2 == 0 {
                1.0
            } else {
                0.3
            }
        });
        let b = Image::from_fn(w, w, |x, y| {
            if x >= w / 2 && (x / 3 + y / 3) % 2 == 1 {
                1.0
            } else {
                0.3
            }
        });
        let mut eng = FusionEngine::new(2).unwrap();
        let out = eng.fuse(&a, &b, Backend::Neon).unwrap().image;
        // Variance on each half should be comparable to the active source's.
        let var = |img: &Image, x0: usize, x1: usize| -> f64 {
            let vals: Vec<f64> = (x0..x1)
                .flat_map(|x| (0..w).map(move |y| (x, y)))
                .map(|(x, y)| img.get(x, y) as f64)
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64
        };
        assert!(var(&out, 0, w / 2) > 0.5 * var(&a, 0, w / 2));
        assert!(var(&out, w / 2, w) > 0.5 * var(&b, w / 2, w));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (a, _) = inputs(32, 24);
        let (_, b) = inputs(40, 24);
        let mut eng = FusionEngine::new(2).unwrap();
        assert!(matches!(
            eng.fuse(&a, &b, Backend::Arm),
            Err(FusionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn timing_ordering_large_frames() {
        // At the paper's full frame size: FPGA < NEON < ARM total time.
        let (a, b) = inputs(88, 72);
        let mut eng = FusionEngine::new(3).unwrap();
        let t_arm = eng
            .fuse(&a, &b, Backend::Arm)
            .unwrap()
            .timing
            .total_seconds();
        let t_neon = eng
            .fuse(&a, &b, Backend::Neon)
            .unwrap()
            .timing
            .total_seconds();
        let t_fpga = eng
            .fuse(&a, &b, Backend::Fpga)
            .unwrap()
            .timing
            .total_seconds();
        assert!(
            t_fpga < t_neon && t_neon < t_arm,
            "{t_fpga} {t_neon} {t_arm}"
        );
    }

    #[test]
    fn prediction_matches_execution_for_fpga() {
        let (a, b) = inputs(64, 48);
        let mut eng = FusionEngine::new(3).unwrap();
        let measured = eng.fuse(&a, &b, Backend::Fpga).unwrap().timing;
        let predicted = eng.predict(64, 48, Backend::Fpga).unwrap();
        let err = (measured.forward_s - predicted.forward_s).abs() / measured.forward_s;
        assert!(err < 0.05, "forward prediction off by {:.1}%", err * 100.0);
        let err_i = (measured.inverse_s - predicted.inverse_s).abs() / measured.inverse_s;
        assert!(
            err_i < 0.05,
            "inverse prediction off by {:.1}%",
            err_i * 100.0
        );
    }

    #[test]
    fn energy_uses_mode_power() {
        let (a, b) = inputs(64, 48);
        let mut eng = FusionEngine::new(3).unwrap();
        let out = eng.fuse(&a, &b, Backend::Neon).unwrap();
        let expect = eng
            .power_model()
            .energy_mj(Backend::Neon.execution_mode(), out.timing.total_seconds());
        assert!((out.energy_mj - expect).abs() < 1e-12);
    }
}

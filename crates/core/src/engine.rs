//! The fusion engine: decompose → fuse → reconstruct on a chosen backend.

use std::collections::VecDeque;
use std::sync::Arc;

use wavefuse_dtcwt::{
    ComboStore, CwtPyramid, Dtcwt, FilterKernel, FuseOp, Image, Job, JobOutcome, JobPayload,
    PoolHandle, PoolStats, ScalarKernel, Scratch, WorkerPool, WorkerSchedStats, BATCH_SLOTS,
};
use wavefuse_power::PowerModel;
use wavefuse_simd::SimdKernel;
use wavefuse_trace::Telemetry;
use wavefuse_zynq::FpgaKernel;

use crate::backend::Backend;
use crate::cost::{CostModel, Direction, TransformPlan};
use crate::hybrid::HybridKernel;
use crate::rules::{
    fuse_lowpass_into, fuse_pyramids_into, fuse_pyramids_with_kernel, FusionRule, FusionScratch,
    LowpassRule,
};
use crate::FusionError;

/// Modeled time of one fused frame, split into the paper's Fig. 2 phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// Capture/scale of both inputs (sensor hand-off, color conversion,
    /// geometry scaling — before the transforms start).
    pub capture_s: f64,
    /// Forward DT-CWT of both inputs.
    pub forward_s: f64,
    /// Coefficient fusion (always on the PS).
    pub fusion_s: f64,
    /// Inverse DT-CWT of the fused pyramid.
    pub inverse_s: f64,
    /// Residual display/bookkeeping overhead (everything not attributable
    /// to capture or the transform phases).
    pub overhead_s: f64,
}

impl PhaseTiming {
    /// Sum of all phases, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.capture_s + self.forward_s + self.fusion_s + self.inverse_s + self.overhead_s
    }

    /// Adds another frame's phases into this accumulator.
    pub fn accumulate(&mut self, other: &PhaseTiming) {
        self.capture_s += other.capture_s;
        self.forward_s += other.forward_s;
        self.fusion_s += other.fusion_s;
        self.inverse_s += other.inverse_s;
        self.overhead_s += other.overhead_s;
    }
}

/// Result of fusing one frame pair.
#[derive(Debug, Clone)]
pub struct FusionOutput {
    /// The fused frame.
    pub image: Image,
    /// Modeled per-phase time.
    pub timing: PhaseTiming,
    /// Backend that executed the transforms.
    pub backend: Backend,
    /// Modeled energy, millijoules.
    pub energy_mj: f64,
    /// Seconds the PL engine was busy this frame (0 on CPU-only backends);
    /// the flight recorder charges the power model's PL increment over it.
    pub pl_busy_s: f64,
    /// Cost model's predicted total frame seconds for this backend and
    /// geometry — the governor rationale recorded next to the measured
    /// `timing` so prediction error is visible per frame.
    pub predicted_s: f64,
    /// Row-strip fusion jobs this frame fanned out across the worker pool
    /// (0 when fusion ran serially on the dispatcher thread).
    pub fusion_strips: usize,
}

/// An in-flight fusion started by [`FusionEngine::fuse_submit`].
///
/// On the pooled CPU backends the inverse transform is still running on the
/// workers while the caller holds this — overlap capture/render of the next
/// frame with it, then call [`FusionEngine::fuse_finish`] to collect the
/// result. On the serial, FPGA, and hybrid backends everything already
/// completed inside `fuse_submit` and `fuse_finish` only does accounting.
#[derive(Debug)]
pub struct PendingFusion {
    /// Output buffer (the fused image once the inverse lands).
    image: Image,
    backend: Backend,
    dims: (usize, usize),
    /// Whether four inverse combo jobs are still in flight on the pool.
    inverse_in_flight: bool,
    /// Ring slot owning this frame's fused pyramid and inverse buffers
    /// (pooled CPU path only — see [`FusionEngine::set_pipeline_depth`]).
    slot: Option<usize>,
    /// Modeled forward seconds (both inputs).
    forward_s: f64,
    /// Modeled inverse seconds.
    inverse_s: f64,
    /// Measured wall-clock phase seconds so far.
    wall_forward_s: f64,
    wall_fusion_s: f64,
    wall_inverse_s: f64,
    /// PL-busy seconds accumulated across the frame's transforms.
    pl_busy_s: f64,
    /// Strip fusion jobs fanned out for this frame (0 = serial fusion).
    fusion_strips: usize,
}

impl PendingFusion {
    /// Whether the inverse transform is still running on the worker pool —
    /// i.e. whether there is real work to overlap with.
    pub fn inverse_in_flight(&self) -> bool {
        self.inverse_in_flight
    }

    /// The backend executing this frame.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The engine ring slot this frame's in-flight state lives in (`None`
    /// on the serial, FPGA, and hybrid paths, which complete inside
    /// [`FusionEngine::fuse_submit`]).
    pub fn slot(&self) -> Option<usize> {
        self.slot
    }
}

/// One ring slot of the depth-k frame pipeline (see
/// [`FusionEngine::set_pipeline_depth`]). Slots never alias: each owns its
/// frame's fused pyramid, inverse combo buffers, and harvested-outcome
/// stash, so several frames' inverse batches can be outstanding on the
/// worker pool concurrently.
#[derive(Debug)]
struct FrameSlot {
    /// This frame's fused pyramid, `Arc`-shared with the workers while its
    /// inverse batch is in flight (exclusive again once harvested).
    fused: Arc<CwtPyramid>,
    /// Per-combo reconstruction buffers of this slot's pooled inverse.
    inv_bufs: Vec<Image>,
    /// Outcomes harvested ahead of this frame's `fuse_finish` (a later
    /// submit clears the pool's ring prefix before its own full-batch
    /// forward drain), awaiting combo-order accumulation.
    stash: Vec<JobOutcome>,
    /// Whether `stash` holds this slot's four harvested outcomes.
    stashed: bool,
    /// Whether this slot's inverse batch was submitted and not yet retired.
    busy: bool,
}

impl FrameSlot {
    fn new() -> Self {
        FrameSlot {
            fused: Arc::new(CwtPyramid::empty()),
            inv_bufs: Vec::new(),
            stash: Vec::with_capacity(INVERSE_BATCH_JOBS),
            stashed: false,
            busy: false,
        }
    }
}

/// The complete fusion engine.
///
/// Owns one kernel instance per backend (so the FPGA engine's coefficient
/// registers stay warm across frames, as on the real platform), the
/// transform configuration, the fusion rule, the calibrated models — and
/// the steady-state machinery of the zero-allocation hot path: scratch
/// arenas, pyramid/image slots ping-ponged across frames, a cached
/// [`TransformPlan`] per frame geometry, an output buffer pool, and an
/// optional persistent [`WorkerPool`] (see [`FusionEngine::set_threads`]).
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct FusionEngine {
    dtcwt: Arc<Dtcwt>,
    levels: usize,
    rule: FusionRule,
    lowpass_rule: LowpassRule,
    cost: CostModel,
    power: PowerModel,
    scalar: ScalarKernel,
    simd: SimdKernel,
    fpga: FpgaKernel,
    hybrid: HybridKernel,
    telemetry: Option<Arc<Telemetry>>,
    // --- steady-state reusable transform state (the zero-alloc hot path) ---
    /// Per-geometry cost plans, so `fuse` never rebuilds op lists per
    /// frame. Shared (`Arc`) so a fleet owner can hand the same plan to
    /// every same-geometry engine (see [`FusionEngine::adopt_plan`]).
    plans: Vec<Arc<TransformPlan>>,
    /// Serial-path transform scratch (workers own their own).
    scratch: Scratch,
    /// Per-combo forward output staging (input `a`, and the serial paths).
    combos: ComboStore,
    /// Second combo store so both inputs' forwards can be in flight at once
    /// on the pool (input `b`).
    combos_b: ComboStore,
    /// Forward pyramids of the two inputs, `Arc`-shared with the workers
    /// while a frame's fusion strip jobs are in flight (exclusive again at
    /// the next frame's forward — strips are always drained within the
    /// submit that spawned them).
    pyr_a: Arc<CwtPyramid>,
    pyr_b: Arc<CwtPyramid>,
    /// Depth-k in-flight frame ring: one slot per frame whose inverse may
    /// be outstanding on the pool (a single slot at the default depth 1,
    /// reproducing the classic submit/finish overlap).
    slots: Vec<FrameSlot>,
    /// Busy slot indices, oldest submission first (in-order retirement).
    inflight: VecDeque<usize>,
    /// Next ring slot to submit into (round-robin; always idle thanks to
    /// the ring-full backpressure in [`FusionEngine::fuse_submit`]).
    next_slot: usize,
    /// Configured pipelining depth = ring size, `>= 1`.
    depth: usize,
    /// Fused-pyramid staging of the serial CPU, FPGA, and hybrid paths,
    /// which complete inside `fuse_submit` (pooled frames stage in their
    /// ring slot's pyramid instead).
    fused_serial: CwtPyramid,
    /// Input image slots for the pooled forward (same `Arc` discipline).
    img_a: Arc<Image>,
    img_b: Arc<Image>,
    /// Fusion-rule energy-map scratch.
    fusion_scratch: FusionScratch,
    /// Pooled output-row buffers of the strip-parallel fusion path: one
    /// `(re, im)` pair per in-flight strip job, recycled every wave so the
    /// steady state never allocates.
    fuse_bufs: Vec<(Image, Image)>,
    /// Per-wave strip-id → `(level, band)` placement map of the
    /// strip-parallel fusion path (reused across frames).
    fuse_map: Vec<(u32, u32)>,
    /// Worker outcome staging (drained and reused every dispatch).
    outcomes: Vec<JobOutcome>,
    /// Pool the fused output images are drawn from; callers recycle via
    /// [`FusionEngine::recycle`] to keep the steady state allocation-free.
    out_pool: PoolHandle,
    /// Pool counters already reported to telemetry (delta tracking).
    reported_pool: PoolStats,
    /// Transpose-bytes counter value already reported (delta tracking, same
    /// scheme as the pool counters).
    reported_transpose: u64,
    /// Per-worker scheduler counters already reported to telemetry (delta
    /// tracking; sized to the pool's thread count).
    reported_sched: Vec<WorkerSchedStats>,
    /// Whether the CPU kernels run the transpose-free columnar column
    /// passes (the default) or the transpose-staged fallback.
    columnar: bool,
    /// Persistent transform workers; `None` runs the serial in-place path.
    /// Shared (`Arc`) so a fleet of engines can multiplex one pool — see
    /// [`FusionEngine::set_shared_pool`].
    pool: Option<Arc<WorkerPool>>,
    /// Whether `pool` is a fleet-shared pool this engine must not rebuild
    /// (reconfigures like [`FusionEngine::set_columnar`] leave it alone).
    pool_shared: bool,
    /// In-progress packed forward parked between
    /// [`FusionEngine::packed_forward_submit`] and
    /// [`FusionEngine::packed_forward_finish`].
    packed: Option<PackedForward>,
    /// Cumulative measured wall-clock seconds per phase (host time, not the
    /// modeled platform clock) — see [`FusionEngine::wall_phase_totals`].
    wall: PhaseTiming,
}

/// Per-frame state parked between [`FusionEngine::packed_forward_submit`]
/// and [`FusionEngine::packed_forward_finish`] while the eight forward
/// jobs are in flight on the shared pool.
#[derive(Debug)]
struct PackedForward {
    backend: Backend,
    dims: (usize, usize),
    submitted: std::time::Instant,
}

/// What [`FusionEngine::run_backend`] hands back to `fuse_submit`: the
/// modeled phase split plus measured wall-clock times and whether the
/// inverse is still in flight on the pool.
#[derive(Debug, Default)]
struct SubmitSplit {
    inverse_in_flight: bool,
    /// Ring slot the frame's in-flight state was parked in (pooled path).
    slot: Option<usize>,
    forward_s: f64,
    inverse_s: f64,
    wall_forward_s: f64,
    wall_fusion_s: f64,
    wall_inverse_s: f64,
    /// PL engine busy seconds (FPGA/hybrid backends only).
    pl_busy_s: f64,
    /// Strip fusion jobs fanned out (0 = serial fusion).
    fusion_strips: usize,
}

/// Worker kernel-slot index of the scalar (ARM) kernel.
const WORKER_SLOT_SCALAR: usize = 0;
/// Worker kernel-slot index of the SIMD (NEON) kernel.
const WORKER_SLOT_SIMD: usize = 1;
/// Maximum cached cost plans (see [`FusionEngine::ensure_plan`]).
const PLAN_CACHE_SLOTS: usize = 8;
/// Jobs per pooled inverse batch: one per tree combination.
const INVERSE_BATCH_JOBS: usize = 4;

/// The five phase names, in timeline order, as they appear in span
/// categories and the `phase` metric label.
pub const PHASE_NAMES: [&str; 5] = ["capture", "forward", "fusion", "inverse", "overhead"];

impl PhaseTiming {
    /// `(phase name, seconds)` pairs in [`PHASE_NAMES`] order.
    pub fn phases(&self) -> [(&'static str, f64); 5] {
        [
            ("capture", self.capture_s),
            ("forward", self.forward_s),
            ("fusion", self.fusion_s),
            ("inverse", self.inverse_s),
            ("overhead", self.overhead_s),
        ]
    }
}

impl FusionEngine {
    /// Creates an engine with the standard configuration: `levels`-deep
    /// DT-CWT, 3x3 window-energy detail rule, averaged lowpass.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for `levels == 0`.
    pub fn new(levels: usize) -> Result<Self, FusionError> {
        FusionEngine::with_rules(
            levels,
            FusionRule::WindowEnergy { radius: 1 },
            LowpassRule::Average,
        )
    }

    /// Creates an engine with explicit fusion rules.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for `levels == 0`.
    pub fn with_rules(
        levels: usize,
        rule: FusionRule,
        lowpass_rule: LowpassRule,
    ) -> Result<Self, FusionError> {
        Ok(FusionEngine {
            dtcwt: Arc::new(Dtcwt::new(levels)?),
            levels,
            rule,
            lowpass_rule,
            cost: CostModel::calibrated(),
            power: PowerModel::zc702(),
            scalar: ScalarKernel::new(),
            simd: SimdKernel::new(),
            fpga: FpgaKernel::new(),
            hybrid: HybridKernel::new(),
            telemetry: None,
            plans: Vec::new(),
            scratch: Scratch::new(),
            combos: ComboStore::new(),
            combos_b: ComboStore::new(),
            pyr_a: Arc::new(CwtPyramid::empty()),
            pyr_b: Arc::new(CwtPyramid::empty()),
            slots: vec![FrameSlot::new()],
            inflight: VecDeque::with_capacity(1),
            next_slot: 0,
            depth: 1,
            fused_serial: CwtPyramid::empty(),
            img_a: Arc::new(Image::zeros(0, 0)),
            img_b: Arc::new(Image::zeros(0, 0)),
            fusion_scratch: FusionScratch::new(),
            fuse_bufs: Vec::new(),
            fuse_map: Vec::new(),
            outcomes: Vec::with_capacity(8),
            out_pool: PoolHandle::new(),
            reported_pool: PoolStats::default(),
            reported_transpose: wavefuse_dtcwt::transpose_bytes_total(),
            reported_sched: Vec::new(),
            columnar: true,
            pool: None,
            pool_shared: false,
            packed: None,
            wall: PhaseTiming::default(),
        })
    }

    /// Sets the number of transform worker threads. `threads <= 1` runs the
    /// transforms serially on the caller's thread (the default); larger
    /// values spawn a persistent [`WorkerPool`] once and reuse it for every
    /// subsequent CPU-backend [`FusionEngine::fuse`], fanning the four tree
    /// combinations out across workers. The FPGA and hybrid backends always
    /// run serially (the modeled device is a single engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.recover_in_flight();
        self.pool_shared = false;
        if threads <= 1 {
            self.pool = None;
            self.reported_sched.clear();
        } else {
            self.pool = Some(Arc::new(build_worker_pool(threads, self.columnar)));
            // A fresh pool starts its counters at zero.
            self.reported_sched.clear();
            self.reported_sched
                .resize(threads, WorkerSchedStats::default());
        }
    }

    /// Sets the detail-coefficient fusion rule for subsequent frames.
    /// In-flight frames are abandoned first (their fused pyramids were
    /// produced under the old rule, so letting them retire would mix
    /// rules within one benchmark window).
    pub fn set_rule(&mut self, rule: FusionRule) {
        self.recover_in_flight();
        self.rule = rule;
    }

    /// Attaches a fleet-shared [`WorkerPool`] (see [`build_worker_pool`])
    /// instead of spawning a private one. The engine multiplexes its
    /// transform batches onto the shared ring; reconfigures that would
    /// rebuild a private pool ([`FusionEngine::set_columnar`]) leave a
    /// shared pool untouched — the fleet owner picks the workers' kernel
    /// flags at pool construction.
    ///
    /// Call this before any frames are in flight (at stream admission);
    /// attaching mid-flight abandons in-flight frames like
    /// [`FusionEngine::set_threads`], which on a *shared* ring would
    /// harvest other engines' jobs — the fleet owner must retire every
    /// engine's in-flight frames first.
    pub fn set_shared_pool(&mut self, pool: Arc<WorkerPool>) {
        self.recover_in_flight();
        self.reported_sched.clear();
        self.reported_sched
            .resize(pool.threads(), WorkerSchedStats::default());
        self.pool = Some(pool);
        self.pool_shared = true;
    }

    /// Number of transform threads (1 when running serially).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// Sets the frame-pipelining depth: how many frames may have their
    /// inverse transform outstanding on the worker pool at once. Depth 1
    /// (the default) is the classic single-frame submit/finish overlap;
    /// larger depths give every in-flight frame a private ring slot (fused
    /// pyramid, inverse buffers, outcome stash), so `fuse_submit` of frame
    /// N+k-1 runs while frames N..N+k-2 are still synthesizing. Pooled
    /// frames must retire in submission order; submitting onto a full ring
    /// abandons the oldest unfinished frame (backpressure a well-behaved
    /// caller never triggers). Serial, FPGA, and hybrid frames complete
    /// inside `fuse_submit` regardless of depth. Results are bit-identical
    /// at every depth — combos are still accumulated in combo order at
    /// each frame's own `fuse_finish`.
    ///
    /// Any currently in-flight frames are abandoned, as with
    /// [`FusionEngine::set_threads`].
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        let depth = depth.max(1);
        self.recover_in_flight();
        self.slots.resize_with(depth, FrameSlot::new);
        self.inflight.reserve(depth);
        self.next_slot = 0;
        self.depth = depth;
    }

    /// The configured frame-pipelining depth.
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// Pre-sizes every reconfigure-dependent buffer for `width` x `height`
    /// frames, so first frames after a resolution/depth change don't pay
    /// one-time allocations (and `pool_misses` don't spike): the plan
    /// cache, each ring slot's four inverse combo buffers, both forward
    /// combo stores, and `depth + 1` pooled output frames (the frames in
    /// flight plus the one being retired). The output-pool reservation is
    /// O(ring slots), not O(levels x buffers) — per-level staging lives in
    /// the scratch arenas and combo stores, which are grown in place here,
    /// never drawn from the pool.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the geometry cannot support
    /// the configured decomposition depth.
    pub fn reserve_frame_buffers(
        &mut self,
        width: usize,
        height: usize,
    ) -> Result<(), FusionError> {
        self.ensure_plan(width, height)?;
        for slot in &mut self.slots {
            while slot.inv_bufs.len() < INVERSE_BATCH_JOBS {
                slot.inv_bufs.push(Image::zeros(0, 0));
            }
            for buf in &mut slot.inv_bufs {
                if buf.width() * buf.height() < width * height {
                    *buf = Image::zeros(width, height);
                }
            }
        }
        self.combos.reserve(width, height, self.levels);
        self.combos_b.reserve(width, height, self.levels);
        self.out_pool.preallocate(width, height, self.depth + 1);
        Ok(())
    }

    /// Enables or disables the transpose-free columnar column passes on the
    /// SIMD kernels (enabled by default), including the pool workers'
    /// kernels. Disabling routes every column pass through the
    /// transpose-staged fallback — useful for A/B benchmarking, since the
    /// two paths are bit-identical by construction. The scalar, FPGA, and
    /// hybrid kernels always use the fallback either way.
    pub fn set_columnar(&mut self, enabled: bool) {
        self.columnar = enabled;
        self.scalar.set_columnar(enabled);
        self.simd.set_columnar(enabled);
        self.fpga.set_columnar(enabled);
        self.hybrid.set_columnar(enabled);
        if self.pool_shared {
            // A fleet-shared pool's worker kernels are configured once by
            // the fleet owner; rebuilding it here would orphan the other
            // engines multiplexed onto it.
            return;
        }
        if let Some(pool) = &self.pool {
            // Rebuild the pool so worker-owned kernels pick up the flag.
            let threads = pool.threads();
            self.set_threads(threads);
        }
    }

    /// Whether the SIMD kernels run the columnar column passes.
    pub fn columnar(&self) -> bool {
        self.columnar
    }

    /// Name of the filter kernel a backend executes with.
    pub fn kernel_name(&self, backend: Backend) -> &'static str {
        match backend {
            Backend::Arm => self.scalar.name(),
            Backend::Neon => self.simd.name(),
            Backend::Fpga => self.fpga.name(),
            Backend::Hybrid => self.hybrid.name(),
        }
    }

    /// The frame buffer pool fused output images are drawn from. Release
    /// buffers back (or use [`FusionEngine::recycle`]) to keep the steady
    /// state allocation-free; its [`PoolStats`] feed the
    /// `wavefuse_pool_*` metrics when telemetry is attached.
    pub fn buffer_pool(&self) -> &PoolHandle {
        &self.out_pool
    }

    /// Returns a fused output's image buffer to the engine's pool so the
    /// next frame can reuse it instead of allocating.
    pub fn recycle(&self, output: FusionOutput) {
        self.out_pool.release(output.image);
    }

    /// Attaches a telemetry handle: every subsequent [`FusionEngine::fuse`]
    /// emits per-phase spans on the modeled clock, phase-latency histograms
    /// and energy counters. The handle is propagated to the FPGA kernels
    /// (pure and hybrid) for DMA/cycle accounting.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_phase_seconds",
            "Modeled per-phase latency of one fused frame, seconds",
        );
        telemetry.metrics().describe(
            "wavefuse_energy_millijoules_total",
            "Modeled energy spent fusing frames, millijoules",
        );
        telemetry.metrics().describe(
            "wavefuse_pool_hits_total",
            "Frame-buffer acquisitions served from the pool free list",
        );
        telemetry.metrics().describe(
            "wavefuse_pool_misses_total",
            "Frame-buffer acquisitions that allocated a fresh buffer",
        );
        telemetry.metrics().describe(
            "wavefuse_pool_bytes_allocated_total",
            "Bytes allocated by frame-buffer pool misses",
        );
        telemetry.metrics().describe(
            "wavefuse_transpose_bytes",
            "Bytes copied by Image::transpose_into staging (zero in steady \
             state on the columnar SIMD backends)",
        );
        telemetry.metrics().describe(
            "wavefuse_batches_claimed_total",
            "Work-stealing claim chunks taken from the shared cursor, per worker",
        );
        telemetry.metrics().describe(
            "wavefuse_steals_total",
            "Claims that continued a range another worker had been running, \
             per worker",
        );
        telemetry.metrics().describe(
            "wavefuse_worker_parked_seconds_total",
            "Seconds workers spent parked on the idle condvar, per worker",
        );
        self.fpga.set_telemetry(Arc::clone(&telemetry));
        self.hybrid.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The detail fusion rule.
    pub fn rule(&self) -> FusionRule {
        self.rule
    }

    /// The calibrated cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The platform power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The DT-CWT this engine runs.
    pub fn transform(&self) -> &Dtcwt {
        &self.dtcwt
    }

    /// Caches the cost plan for a frame geometry (validating it), so the
    /// hot path never rebuilds per-frame op lists.
    fn ensure_plan(&mut self, w: usize, h: usize) -> Result<(), FusionError> {
        if self.plans.iter().any(|p| p.frame_dims() == (w, h)) {
            return Ok(());
        }
        let plan = TransformPlan::dtcwt(w, h, self.levels)?;
        self.adopt_plan(Arc::new(plan));
        Ok(())
    }

    /// Installs an externally built (typically fleet-shared) cost plan into
    /// the engine's plan cache, so same-geometry engines in a fleet share
    /// one plan instead of each rebuilding it. A plan for the same geometry
    /// already in the cache is kept (first wins); the bounded-cache
    /// eviction of [`FusionEngine::ensure_plan`] applies.
    pub fn adopt_plan(&mut self, plan: Arc<TransformPlan>) {
        if self
            .plans
            .iter()
            .any(|p| p.frame_dims() == plan.frame_dims())
        {
            return;
        }
        // Bound the cache so engines fed many geometries (size sweeps)
        // don't grow it without limit.
        if self.plans.len() == PLAN_CACHE_SLOTS {
            self.plans.remove(0);
        }
        self.plans.push(plan);
    }

    fn cached_plan(&self, w: usize, h: usize) -> &TransformPlan {
        self.plans
            .iter()
            .find(|p| p.frame_dims() == (w, h))
            .expect("ensure_plan caches before use")
            .as_ref()
    }

    /// [`FusionEngine::cached_plan`] as a cheap `Arc` clone, so the strip
    /// dispatch can hold the plan across mutable borrows of other engine
    /// fields.
    fn cached_plan_arc(&self, w: usize, h: usize) -> Arc<TransformPlan> {
        Arc::clone(
            self.plans
                .iter()
                .find(|p| p.frame_dims() == (w, h))
                .expect("ensure_plan caches before use"),
        )
    }

    /// Fuses one frame pair on the given backend.
    ///
    /// Functionally, all backends produce the same fused image (within
    /// `f32` rounding); they differ in the modeled time and energy.
    ///
    /// Equivalent to [`FusionEngine::fuse_submit`] immediately followed by
    /// [`FusionEngine::fuse_finish`] (no overlap).
    ///
    /// # Errors
    ///
    /// * [`FusionError::DimensionMismatch`] if the frames differ in size.
    /// * [`FusionError::Transform`] if the frames cannot support the
    ///   configured decomposition depth.
    pub fn fuse(
        &mut self,
        a: &Image,
        b: &Image,
        backend: Backend,
    ) -> Result<FusionOutput, FusionError> {
        let pending = self.fuse_submit(a, b, backend)?;
        self.fuse_finish(pending)
    }

    /// Starts fusing one frame pair, returning once all work that needs the
    /// input images is done. On the pooled CPU backends the inverse
    /// transform of the fused pyramid is still running on the workers when
    /// this returns — the caller may overlap independent work (capturing
    /// the next frame pair, rendering) before [`FusionEngine::fuse_finish`].
    /// Exactly one `fuse_finish` must follow each successful `fuse_submit`.
    ///
    /// # Errors
    ///
    /// Same as [`FusionEngine::fuse`].
    pub fn fuse_submit(
        &mut self,
        a: &Image,
        b: &Image,
        backend: Backend,
    ) -> Result<PendingFusion, FusionError> {
        // Ring-full backpressure: a well-behaved caller finishes the
        // oldest frame before submitting onto a full ring. If that frame's
        // token was dropped without a finish instead, abandon its batch so
        // the ring (and the pool's slot window behind it) cannot overflow.
        while self.inflight.len() >= self.depth {
            self.abandon_oldest_in_flight();
        }
        if a.dims() != b.dims() {
            return Err(FusionError::DimensionMismatch {
                a: a.dims(),
                b: b.dims(),
            });
        }
        let (w, h) = a.dims();
        self.ensure_plan(w, h)?;

        // The output buffer comes from the pool; recycle it afterwards
        // (see `recycle`) and the steady state never allocates.
        let mut image = self.out_pool.acquire(w, h);
        match self.run_backend(a, b, backend, &mut image) {
            Ok(split) => Ok(PendingFusion {
                image,
                backend,
                dims: (w, h),
                inverse_in_flight: split.inverse_in_flight,
                slot: split.slot,
                forward_s: split.forward_s,
                inverse_s: split.inverse_s,
                wall_forward_s: split.wall_forward_s,
                wall_fusion_s: split.wall_fusion_s,
                wall_inverse_s: split.wall_inverse_s,
                pl_busy_s: split.pl_busy_s,
                fusion_strips: split.fusion_strips,
            }),
            Err(e) => {
                self.out_pool.release(image);
                Err(e)
            }
        }
    }

    /// Stages one frame pair's eight forward DT-CWT jobs into the worker
    /// pool **without draining them** — the packing half of cross-stream
    /// batch coalescing. A fleet owner calls this for several engines in a
    /// row so every stream's forwards land in the shared ring together,
    /// then calls [`FusionEngine::packed_forward_finish`] on each engine in
    /// the same order.
    ///
    /// Unlike [`FusionEngine::fuse_submit`] this never abandons frames as
    /// ring backpressure (an abandon drains the *globally* oldest jobs,
    /// which on a shared ring may belong to another stream) — the caller
    /// must retire or stash this engine's oldest frame first when the ring
    /// is full.
    ///
    /// # Errors
    ///
    /// * [`FusionError::DimensionMismatch`] if the frames differ in size.
    /// * [`FusionError::Transform`] if the frames cannot support the
    ///   configured decomposition depth.
    ///
    /// # Panics
    ///
    /// If the engine has no worker pool, `backend` is not a CPU backend, a
    /// packed forward is already staged, or the frame ring is full.
    pub fn packed_forward_submit(
        &mut self,
        a: &Image,
        b: &Image,
        backend: Backend,
    ) -> Result<(), FusionError> {
        assert!(
            self.packed.is_none(),
            "one packed forward per engine at a time"
        );
        assert!(
            matches!(backend, Backend::Arm | Backend::Neon),
            "packed forwards run on the pooled CPU backends"
        );
        assert!(
            self.inflight.len() < self.depth,
            "packed submit onto a full frame ring: retire the oldest frame first"
        );
        if a.dims() != b.dims() {
            return Err(FusionError::DimensionMismatch {
                a: a.dims(),
                b: b.dims(),
            });
        }
        let (w, h) = a.dims();
        self.ensure_plan(w, h)?;
        let kslot = match backend {
            Backend::Arm => WORKER_SLOT_SCALAR,
            _ => WORKER_SLOT_SIMD,
        };
        stage_image(&mut self.img_a, a);
        stage_image(&mut self.img_b, b);
        let pool = self
            .pool
            .as_ref()
            .expect("packed forwards need a worker pool");
        self.dtcwt.forward_pooled_pair_submit(
            pool,
            kslot,
            &self.img_a,
            &mut self.combos,
            &self.img_b,
            &mut self.combos_b,
        )?;
        self.packed = Some(PackedForward {
            backend,
            dims: (w, h),
            submitted: std::time::Instant::now(),
        });
        Ok(())
    }

    /// Harvests the packed forwards staged by
    /// [`FusionEngine::packed_forward_submit`] (which must be the oldest
    /// jobs left in the ring — collects run in submit order across the
    /// fleet), fuses the pyramids, and leaves the inverse batch in flight,
    /// exactly like the pooled path of [`FusionEngine::fuse_submit`].
    /// Retire with [`FusionEngine::fuse_finish`].
    ///
    /// # Errors
    ///
    /// Propagates worker errors from the forward jobs, earliest-submitted
    /// first.
    ///
    /// # Panics
    ///
    /// If no packed forward is staged.
    pub fn packed_forward_finish(&mut self) -> Result<PendingFusion, FusionError> {
        let PackedForward {
            backend,
            dims: (w, h),
            submitted,
        } = self.packed.take().expect("no packed forward staged");
        let kslot = match backend {
            Backend::Arm => WORKER_SLOT_SCALAR,
            _ => WORKER_SLOT_SIMD,
        };
        let pool = Arc::clone(
            self.pool
                .as_ref()
                .expect("packed forwards need a worker pool"),
        );
        let image = self.out_pool.acquire(w, h);
        if let Err(e) = self.dtcwt.forward_pooled_pair_collect(
            &pool,
            (w, h),
            &mut self.combos,
            exclusive_pyramid(&mut self.pyr_a),
            &mut self.combos_b,
            exclusive_pyramid(&mut self.pyr_b),
            &mut self.outcomes,
        ) {
            self.out_pool.release(image);
            return Err(e.into());
        }
        let t1 = std::time::Instant::now();
        let si = self.next_slot;
        let plan = self.cached_plan_arc(w, h);
        let fusion_strips = if self.pool_shared {
            // Strip jobs would drain other streams' jobs on a fleet-shared
            // ring; fuse on the dispatcher with the backend's vectorized
            // kernel instead (bit-identical by the fold-order contract).
            let fslot = &mut self.slots[si];
            let fused = exclusive_pyramid(&mut fslot.fused);
            let kernel: &mut dyn FilterKernel = match backend {
                Backend::Arm => &mut self.scalar,
                _ => &mut self.simd,
            };
            fuse_pyramids_with_kernel(
                kernel,
                &self.pyr_a,
                &self.pyr_b,
                self.rule,
                self.lowpass_rule,
                &mut self.fusion_scratch,
                fused,
            );
            0
        } else {
            // Private pool: the stash/collect protocol left the ring
            // empty, so fan the fusion out as row-strip jobs.
            let fslot = &mut self.slots[si];
            let fused = exclusive_pyramid(&mut fslot.fused);
            match fuse_strips_pooled(
                &pool,
                kslot,
                si as u32,
                &self.pyr_a,
                &self.pyr_b,
                self.rule.to_op(),
                self.lowpass_rule,
                &plan,
                &mut self.fuse_map,
                &mut self.fuse_bufs,
                &mut self.outcomes,
                fused,
            ) {
                Ok(n) => n,
                Err(e) => {
                    self.out_pool.release(image);
                    return Err(e.into());
                }
            }
        };
        let t2 = std::time::Instant::now();
        let fslot = &mut self.slots[si];
        if let Err(e) = self.dtcwt.inverse_pooled_submit(
            &pool,
            kslot,
            &fslot.fused,
            &mut fslot.inv_bufs,
            si as u32,
        ) {
            self.out_pool.release(image);
            return Err(e.into());
        }
        fslot.busy = true;
        fslot.stashed = false;
        self.inflight.push_back(si);
        self.next_slot = (si + 1) % self.depth;
        let plan = self.cached_plan(w, h);
        let dir_t = |d| match backend {
            Backend::Arm => self.cost.arm_seconds(plan, d),
            _ => self.cost.neon_seconds(plan, d),
        };
        Ok(PendingFusion {
            image,
            backend,
            dims: (w, h),
            inverse_in_flight: true,
            slot: Some(si),
            forward_s: 2.0 * dir_t(Direction::Forward),
            inverse_s: dir_t(Direction::Inverse),
            wall_forward_s: (t1 - submitted).as_secs_f64(),
            wall_fusion_s: (t2 - t1).as_secs_f64(),
            wall_inverse_s: 0.0,
            pl_busy_s: 0.0,
            fusion_strips,
        })
    }

    /// Completes an in-flight fusion: collects the pooled inverse (if one
    /// is still running), computes the modeled timing/energy, and emits
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Propagates worker errors from the in-flight inverse transform.
    pub fn fuse_finish(&mut self, pending: PendingFusion) -> Result<FusionOutput, FusionError> {
        let PendingFusion {
            mut image,
            backend,
            dims: (w, h),
            inverse_in_flight,
            slot,
            forward_s,
            inverse_s,
            wall_forward_s,
            wall_fusion_s,
            mut wall_inverse_s,
            pl_busy_s,
            fusion_strips,
        } = pending;
        if inverse_in_flight {
            let si = slot.expect("pooled frames carry their ring slot");
            let t0 = std::time::Instant::now();
            let result = if self.slots[si].busy {
                // In-order retirement: pooled frames finish in submission
                // order (the pipeline's own ring guarantees this).
                let front = self.inflight.front().copied();
                assert_eq!(
                    front,
                    Some(si),
                    "fuse_finish out of submission order: slot {si}, oldest in flight {front:?}"
                );
                self.inflight.pop_front();
                if !self.slots[si].stashed {
                    if let Some(pool) = &self.pool {
                        let fslot = &mut self.slots[si];
                        fslot.stash.clear();
                        pool.drain_partial(INVERSE_BATCH_JOBS, &mut fslot.stash);
                        fslot.stashed = true;
                    }
                }
                let fslot = &mut self.slots[si];
                fslot.busy = false;
                fslot.stashed = false;
                self.dtcwt.inverse_collect_outcomes(
                    &mut fslot.stash,
                    &mut fslot.inv_bufs,
                    &mut image,
                )
            } else {
                // The pool vanished (or was rebuilt) under the pending
                // frame — the reconfigure already abandoned its batch —
                // but the fused pyramid is still staged in the slot, so
                // recover with a serial inverse on the backend's kernel.
                let fused = Arc::clone(&self.slots[si].fused);
                let kernel: &mut dyn FilterKernel = match backend {
                    Backend::Arm => &mut self.scalar,
                    _ => &mut self.simd,
                };
                self.dtcwt
                    .inverse_into(kernel, &fused, &mut self.scratch, &mut image)
            };
            if let Err(e) = result {
                self.out_pool.release(image);
                return Err(e.into());
            }
            wall_inverse_s += t0.elapsed().as_secs_f64();
        }
        self.wall.forward_s += wall_forward_s;
        self.wall.fusion_s += wall_fusion_s;
        self.wall.inverse_s += wall_inverse_s;

        let plan = self.cached_plan(w, h);
        let timing = PhaseTiming {
            capture_s: self.cost.capture_seconds(plan),
            forward_s,
            fusion_s: self.cost.fusion_seconds(plan, self.rule),
            inverse_s,
            overhead_s: self.cost.frame_overhead_seconds(plan),
        };
        let predicted_s = self.predict_with_plan(plan, backend).total_seconds();
        let energy_mj = self
            .power
            .energy_mj(backend.execution_mode(), timing.total_seconds());
        if let Some(tel) = &self.telemetry {
            // Lay the five phases out sequentially on the modeled clock
            // (they are sequential on the platform: Fig. 2), then advance
            // it by the frame total — so phase spans tile the enclosing
            // frame span exactly and their durations sum to PhaseTiming.
            let tracer = tel.tracer();
            let mut t = tracer.model_now();
            for (phase, dur) in timing.phases() {
                tracer.complete_span(
                    phase,
                    "phase",
                    t,
                    dur,
                    vec![
                        ("backend".into(), backend.label().into()),
                        ("width".into(), w.into()),
                        ("height".into(), h.into()),
                    ],
                );
                t += dur;
                tel.metrics().observe(
                    "wavefuse_phase_seconds",
                    &[("phase", phase), ("backend", backend.label())],
                    dur,
                );
            }
            tracer.advance_model(timing.total_seconds());
            tel.metrics().counter_add(
                "wavefuse_energy_millijoules_total",
                &[("backend", backend.label())],
                energy_mj,
            );
            // Report frame-pool activity as counter deltas since the last
            // report, so restarts of the exporter see monotone counters.
            let stats = self.out_pool.stats();
            let prev = self.reported_pool;
            if stats != prev {
                let m = tel.metrics();
                m.counter_add(
                    "wavefuse_pool_hits_total",
                    &[],
                    (stats.hits - prev.hits) as f64,
                );
                m.counter_add(
                    "wavefuse_pool_misses_total",
                    &[],
                    (stats.misses - prev.misses) as f64,
                );
                m.counter_add(
                    "wavefuse_pool_bytes_allocated_total",
                    &[],
                    (stats.bytes_allocated - prev.bytes_allocated) as f64,
                );
                self.reported_pool = stats;
            }
            let transposed = wavefuse_dtcwt::transpose_bytes_total();
            if transposed != self.reported_transpose {
                tel.metrics().counter_add(
                    "wavefuse_transpose_bytes",
                    &[("backend", backend.label())],
                    (transposed - self.reported_transpose) as f64,
                );
                self.reported_transpose = transposed;
            }
            // Scheduler counters, per worker, as deltas since the last
            // report (same monotone-counter scheme as the pool stats).
            if let Some(pool) = &self.pool {
                for worker in 0..pool.threads().min(self.reported_sched.len()) {
                    let cur = pool.sched_stats(worker);
                    let prev = self.reported_sched[worker];
                    if cur == prev {
                        continue;
                    }
                    let label = worker_label(worker);
                    let m = tel.metrics();
                    m.counter_add(
                        "wavefuse_batches_claimed_total",
                        &[("worker", label)],
                        (cur.batches_claimed - prev.batches_claimed) as f64,
                    );
                    m.counter_add(
                        "wavefuse_steals_total",
                        &[("worker", label)],
                        (cur.steals - prev.steals) as f64,
                    );
                    m.counter_add(
                        "wavefuse_worker_parked_seconds_total",
                        &[("worker", label)],
                        (cur.parked_ns - prev.parked_ns) as f64 * 1e-9,
                    );
                    self.reported_sched[worker] = cur;
                }
            }
        }
        Ok(FusionOutput {
            image,
            timing,
            backend,
            energy_mj,
            pl_busy_s,
            predicted_s,
            fusion_strips,
        })
    }

    /// Summed scheduler counters of the worker pool (zeros when running
    /// serially). Allocation-free; the pipeline's flight recorder charges
    /// per-frame deltas of this.
    pub fn sched_totals(&self) -> WorkerSchedStats {
        self.pool
            .as_ref()
            .map(|p| p.sched_totals())
            .unwrap_or_default()
    }

    /// Harvests the engine's **oldest unstashed** in-flight inverse batch
    /// from the pool into its ring slot's outcome stash, returning whether
    /// a batch was stashed. The frame itself stays pending — its
    /// [`FusionEngine::fuse_finish`] later accumulates the stash without
    /// touching the pool.
    ///
    /// This is the fleet hand-off primitive: `drain_partial` harvests the
    /// *globally* oldest jobs in the shared ring, so a fleet owner
    /// multiplexing engines over one pool must call this across its
    /// engines in global submission order to empty the ring before packing
    /// the next round of batches into it.
    pub fn stash_oldest_in_flight(&mut self) -> bool {
        let Some(pool) = &self.pool else {
            return false;
        };
        for idx in 0..self.inflight.len() {
            let si = self.inflight[idx];
            let fslot = &mut self.slots[si];
            if !fslot.stashed {
                fslot.stash.clear();
                pool.drain_partial(INVERSE_BATCH_JOBS, &mut fslot.stash);
                fslot.stashed = true;
                return true;
            }
        }
        false
    }

    /// Frames currently in flight on this engine's ring.
    pub fn frames_in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Abandons the oldest in-flight pooled frame (a [`PendingFusion`]
    /// dropped without [`FusionEngine::fuse_finish`], or ring-full
    /// backpressure): harvests its four outcomes if they are still on the
    /// pool and recycles the buffers, leaving the slot idle. Errors are
    /// discarded.
    fn abandon_oldest_in_flight(&mut self) {
        let Some(si) = self.inflight.pop_front() else {
            return;
        };
        let fslot = &mut self.slots[si];
        if !fslot.stashed {
            if let Some(pool) = &self.pool {
                fslot.stash.clear();
                pool.drain_partial(INVERSE_BATCH_JOBS, &mut fslot.stash);
            }
        }
        Dtcwt::recycle_inverse_outcomes(&mut fslot.stash, &mut fslot.inv_bufs);
        fslot.stashed = false;
        fslot.busy = false;
    }

    /// Abandons every in-flight pooled frame, oldest first (see
    /// [`FusionEngine::abandon_oldest_in_flight`]), so the pool is
    /// quiescent for a reconfigure.
    fn recover_in_flight(&mut self) {
        while !self.inflight.is_empty() {
            self.abandon_oldest_in_flight();
        }
    }

    /// Cumulative measured **wall-clock** seconds the engine has spent in
    /// each transform phase (forward / fusion / inverse), across all frames
    /// and backends. Unlike [`PhaseTiming`] results from
    /// [`FusionEngine::fuse`] — which model the paper's platform — these are
    /// host times, so they reflect worker-pool parallelism and overlap; the
    /// bench harness reports their per-run deltas. `capture_s` and
    /// `overhead_s` are always zero (capture/render happen outside the
    /// engine).
    pub fn wall_phase_totals(&self) -> PhaseTiming {
        self.wall
    }

    /// Runs forward x2 → fuse → inverse on the chosen backend, writing the
    /// fused frame into `out` (except on the pooled CPU path, where the
    /// inverse is left in flight for [`FusionEngine::fuse_finish`] to
    /// collect). Returns the modeled `(forward, inverse)` seconds — from
    /// the cycle-level ledgers for the FPGA and hybrid backends, from the
    /// cached plan for the CPU backends — plus measured wall-clock phase
    /// times.
    fn run_backend(
        &mut self,
        a: &Image,
        b: &Image,
        backend: Backend,
        out: &mut Image,
    ) -> Result<SubmitSplit, FusionError> {
        let (w, h) = a.dims();
        match backend {
            Backend::Arm | Backend::Neon => {
                let slot = match backend {
                    Backend::Arm => WORKER_SLOT_SCALAR,
                    _ => WORKER_SLOT_SIMD,
                };
                let mut split = SubmitSplit::default();
                if let Some(pool) = &self.pool {
                    stage_image(&mut self.img_a, a);
                    stage_image(&mut self.img_b, b);
                    // Harvest older frames' in-flight inverse outcomes into
                    // their slots first (oldest first), so the full-batch
                    // drain inside the forward below only waits on its own
                    // eight jobs. Workers run the ring in submission order
                    // either way, so stashing early costs no overlap — the
                    // combo-order accumulation still happens at each
                    // frame's own `fuse_finish`.
                    for idx in 0..self.inflight.len() {
                        let fslot = &mut self.slots[self.inflight[idx]];
                        if !fslot.stashed {
                            fslot.stash.clear();
                            pool.drain_partial(INVERSE_BATCH_JOBS, &mut fslot.stash);
                            fslot.stashed = true;
                        }
                    }
                    // Both inputs' forwards go out as one eight-job batch:
                    // the streams are data-independent, so all four workers
                    // stay busy instead of idling through two four-job
                    // waves.
                    let t0 = std::time::Instant::now();
                    self.dtcwt.forward_pooled_pair(
                        pool,
                        slot,
                        &self.img_a,
                        &mut self.combos,
                        exclusive_pyramid(&mut self.pyr_a),
                        &self.img_b,
                        &mut self.combos_b,
                        exclusive_pyramid(&mut self.pyr_b),
                        &mut self.outcomes,
                    )?;
                    let t1 = std::time::Instant::now();
                    let si = self.next_slot;
                    let plan = self.cached_plan_arc(w, h);
                    if self.pool_shared {
                        // Strip jobs would drain other streams' jobs on a
                        // fleet-shared ring; fuse on the dispatcher with
                        // the backend's vectorized kernel instead
                        // (bit-identical by the fold-order contract).
                        let fslot = &mut self.slots[si];
                        let fused = exclusive_pyramid(&mut fslot.fused);
                        let kernel: &mut dyn FilterKernel = match backend {
                            Backend::Arm => &mut self.scalar,
                            _ => &mut self.simd,
                        };
                        fuse_pyramids_with_kernel(
                            kernel,
                            &self.pyr_a,
                            &self.pyr_b,
                            self.rule,
                            self.lowpass_rule,
                            &mut self.fusion_scratch,
                            fused,
                        );
                    } else {
                        // Private pool: the stash loop and the full-batch
                        // forward drain above left the ring empty, so fan
                        // the fusion out as row-strip jobs — the lowpass
                        // fuses serially on this thread while the workers
                        // chew the detail strips.
                        let fslot = &mut self.slots[si];
                        let fused = exclusive_pyramid(&mut fslot.fused);
                        split.fusion_strips = fuse_strips_pooled(
                            pool,
                            slot,
                            si as u32,
                            &self.pyr_a,
                            &self.pyr_b,
                            self.rule.to_op(),
                            self.lowpass_rule,
                            &plan,
                            &mut self.fuse_map,
                            &mut self.fuse_bufs,
                            &mut self.outcomes,
                            fused,
                        )?;
                    }
                    let t2 = std::time::Instant::now();
                    let fslot = &mut self.slots[si];
                    // Leave the inverse running on the workers; the caller
                    // overlaps capture/render with it until `fuse_finish`.
                    self.dtcwt.inverse_pooled_submit(
                        pool,
                        slot,
                        &fslot.fused,
                        &mut fslot.inv_bufs,
                        si as u32,
                    )?;
                    fslot.busy = true;
                    fslot.stashed = false;
                    self.inflight.push_back(si);
                    self.next_slot = (si + 1) % self.depth;
                    split.slot = Some(si);
                    split.inverse_in_flight = true;
                    split.wall_forward_s = (t1 - t0).as_secs_f64();
                    split.wall_fusion_s = (t2 - t1).as_secs_f64();
                } else {
                    let kernel: &mut dyn FilterKernel = match backend {
                        Backend::Arm => &mut self.scalar,
                        _ => &mut self.simd,
                    };
                    let t0 = std::time::Instant::now();
                    self.dtcwt.forward_into(
                        kernel,
                        a,
                        &mut self.combos,
                        &mut self.scratch,
                        exclusive_pyramid(&mut self.pyr_a),
                    )?;
                    self.dtcwt.forward_into(
                        kernel,
                        b,
                        &mut self.combos,
                        &mut self.scratch,
                        exclusive_pyramid(&mut self.pyr_b),
                    )?;
                    let t1 = std::time::Instant::now();
                    let fused = &mut self.fused_serial;
                    // The kernel path vectorizes fusion on the NEON
                    // backend (separable sliding-window energies, 8-lane
                    // compare/select) and falls back to the scalar
                    // reference on ARM — bit-identical either way.
                    fuse_pyramids_with_kernel(
                        kernel,
                        &self.pyr_a,
                        &self.pyr_b,
                        self.rule,
                        self.lowpass_rule,
                        &mut self.fusion_scratch,
                        fused,
                    );
                    let t2 = std::time::Instant::now();
                    self.dtcwt
                        .inverse_into(kernel, fused, &mut self.scratch, out)?;
                    split.wall_forward_s = (t1 - t0).as_secs_f64();
                    split.wall_fusion_s = (t2 - t1).as_secs_f64();
                    split.wall_inverse_s = t2.elapsed().as_secs_f64();
                }
                let plan = self.cached_plan(w, h);
                let dir_t = |d| match backend {
                    Backend::Arm => self.cost.arm_seconds(plan, d),
                    _ => self.cost.neon_seconds(plan, d),
                };
                split.forward_s = 2.0 * dir_t(Direction::Forward);
                split.inverse_s = dir_t(Direction::Inverse);
                Ok(split)
            }
            Backend::Fpga => {
                let mut split = SubmitSplit::default();
                self.fpga.reset_ledger();
                let t0 = std::time::Instant::now();
                self.dtcwt.forward_into(
                    &mut self.fpga,
                    a,
                    &mut self.combos,
                    &mut self.scratch,
                    exclusive_pyramid(&mut self.pyr_a),
                )?;
                self.dtcwt.forward_into(
                    &mut self.fpga,
                    b,
                    &mut self.combos,
                    &mut self.scratch,
                    exclusive_pyramid(&mut self.pyr_b),
                )?;
                let t1 = std::time::Instant::now();
                split.forward_s = self.fpga.ledger().elapsed_seconds;
                // The ledger resets between phases, so PL-busy time must be
                // sampled per phase and summed.
                split.pl_busy_s = self.fpga.ledger().pl_busy_seconds(self.fpga.config());
                let fused = &mut self.fused_serial;
                fuse_pyramids_into(
                    &self.pyr_a,
                    &self.pyr_b,
                    self.rule,
                    self.lowpass_rule,
                    &mut self.fusion_scratch,
                    fused,
                );
                let t2 = std::time::Instant::now();
                self.fpga.reset_ledger();
                self.dtcwt
                    .inverse_into(&mut self.fpga, fused, &mut self.scratch, out)?;
                split.inverse_s = self.fpga.ledger().elapsed_seconds;
                split.pl_busy_s += self.fpga.ledger().pl_busy_seconds(self.fpga.config());
                split.wall_forward_s = (t1 - t0).as_secs_f64();
                split.wall_fusion_s = (t2 - t1).as_secs_f64();
                split.wall_inverse_s = t2.elapsed().as_secs_f64();
                Ok(split)
            }
            Backend::Hybrid => {
                let mut split = SubmitSplit::default();
                self.hybrid.reset();
                let t0 = std::time::Instant::now();
                self.dtcwt.forward_into(
                    &mut self.hybrid,
                    a,
                    &mut self.combos,
                    &mut self.scratch,
                    exclusive_pyramid(&mut self.pyr_a),
                )?;
                self.dtcwt.forward_into(
                    &mut self.hybrid,
                    b,
                    &mut self.combos,
                    &mut self.scratch,
                    exclusive_pyramid(&mut self.pyr_b),
                )?;
                let t1 = std::time::Instant::now();
                split.forward_s = self.hybrid.elapsed_seconds();
                split.pl_busy_s = self.hybrid.pl_busy_seconds();
                let fused = &mut self.fused_serial;
                fuse_pyramids_into(
                    &self.pyr_a,
                    &self.pyr_b,
                    self.rule,
                    self.lowpass_rule,
                    &mut self.fusion_scratch,
                    fused,
                );
                let t2 = std::time::Instant::now();
                self.hybrid.reset();
                self.dtcwt
                    .inverse_into(&mut self.hybrid, fused, &mut self.scratch, out)?;
                split.inverse_s = self.hybrid.elapsed_seconds();
                split.pl_busy_s += self.hybrid.pl_busy_seconds();
                split.wall_forward_s = (t1 - t0).as_secs_f64();
                split.wall_fusion_s = (t2 - t1).as_secs_f64();
                split.wall_inverse_s = t2.elapsed().as_secs_f64();
                Ok(split)
            }
        }
    }

    /// Modeled per-phase time for one fused frame of the given geometry on
    /// a backend, *without* executing the transforms — the prediction the
    /// adaptive scheduler uses. For the FPGA this is the validated analytic
    /// approximation of the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the geometry cannot support
    /// the configured depth.
    pub fn predict(
        &self,
        width: usize,
        height: usize,
        backend: Backend,
    ) -> Result<PhaseTiming, FusionError> {
        let plan = TransformPlan::dtcwt(width, height, self.levels)?;
        Ok(self.predict_with_plan(&plan, backend))
    }

    /// [`FusionEngine::predict`] against an already-built plan — pure cost
    /// arithmetic, so the hot path can record the governor's predicted
    /// frame cost without allocating.
    fn predict_with_plan(&self, plan: &TransformPlan, backend: Backend) -> PhaseTiming {
        let (fwd1, inv1) = match backend {
            Backend::Arm => (
                self.cost.arm_seconds(plan, Direction::Forward),
                self.cost.arm_seconds(plan, Direction::Inverse),
            ),
            Backend::Neon => (
                self.cost.neon_seconds(plan, Direction::Forward),
                self.cost.neon_seconds(plan, Direction::Inverse),
            ),
            Backend::Fpga => (
                self.cost.fpga_seconds(plan, Direction::Forward),
                self.cost.fpga_seconds(plan, Direction::Inverse),
            ),
            Backend::Hybrid => {
                let th = self.cost.hybrid_row_threshold();
                (
                    self.cost.hybrid_seconds(plan, Direction::Forward, th),
                    self.cost.hybrid_seconds(plan, Direction::Inverse, th),
                )
            }
        };
        PhaseTiming {
            capture_s: self.cost.capture_seconds(plan),
            forward_s: 2.0 * fwd1,
            fusion_s: self.cost.fusion_seconds(plan, self.rule),
            inverse_s: inv1,
            overhead_s: self.cost.frame_overhead_seconds(plan),
        }
    }

    /// Modeled energy (millijoules) for one fused frame on a backend.
    ///
    /// # Errors
    ///
    /// See [`FusionEngine::predict`].
    pub fn predict_energy_mj(
        &self,
        width: usize,
        height: usize,
        backend: Backend,
    ) -> Result<f64, FusionError> {
        let t = self.predict(width, height, backend)?;
        Ok(self
            .power
            .energy_mj(backend.execution_mode(), t.total_seconds()))
    }
}

/// Builds the standard transform [`WorkerPool`]: `threads` workers, each
/// owning a scalar (ARM) kernel in slot 0 and a SIMD (NEON) kernel in slot
/// 1 with the given columnar setting — the pool layout every
/// [`FusionEngine`] expects. [`FusionEngine::set_threads`] builds one
/// privately; a fleet owner builds one here and attaches it to many
/// engines via [`FusionEngine::set_shared_pool`].
pub fn build_worker_pool(threads: usize, columnar: bool) -> WorkerPool {
    WorkerPool::new(threads, &mut |_| {
        let mut simd = SimdKernel::new();
        simd.set_columnar(columnar);
        vec![
            Box::new(ScalarKernel::new()) as Box<dyn FilterKernel + Send>,
            Box::new(simd) as Box<dyn FilterKernel + Send>,
        ]
    })
}

/// Static label strings for per-worker metric series, so per-frame delta
/// reporting never formats. Pools larger than the table fold the excess
/// workers into the last label.
fn worker_label(worker: usize) -> &'static str {
    const LABELS: [&str; 8] = ["0", "1", "2", "3", "4", "5", "6", "7"];
    LABELS[worker.min(LABELS.len() - 1)]
}

/// Copies `src` into a shared input slot. In steady state the engine holds
/// the only reference (workers drop theirs when their job completes), so
/// this is a straight buffer reuse; the clone fallback only fires if a
/// caller retained the `Arc` (which the engine API never exposes).
fn stage_image(slot: &mut Arc<Image>, src: &Image) {
    match Arc::get_mut(slot) {
        Some(img) => img.copy_from(src),
        None => *slot = Arc::new(src.clone()),
    }
}

/// Regains exclusive access to the shared fused-pyramid slot, replacing it
/// with a fresh one in the (steady-state impossible) case that a worker
/// still holds a reference.
fn exclusive_pyramid(slot: &mut Arc<CwtPyramid>) -> &mut CwtPyramid {
    if Arc::get_mut(slot).is_none() {
        *slot = Arc::new(CwtPyramid::empty());
    }
    Arc::get_mut(slot).expect("freshly created Arc is unique")
}

/// Fans one frame's coefficient fusion out across the worker pool as
/// row-strip [`Job::FuseStrip`] jobs, reassembling the fused subbands into
/// `fused`. Strips are sized by the plan's cache-budget heuristic
/// ([`TransformPlan::fuse_strip_rows`]) and submitted in waves of at most
/// [`BATCH_SLOTS`]; the lowpass residual fuses serially on this thread
/// while the first wave runs, so the dispatcher is never idle. Requires an
/// empty ring (the pooled submit paths guarantee it) and is bit-identical
/// to the serial reference by the fold-order contract — each strip job
/// reads the shared source pyramids and computes exactly the scalar
/// expression tree for its rows.
///
/// Returns the number of strip jobs dispatched. On a worker error the
/// earliest error is returned after the whole wave has been harvested
/// (buffers recycled), leaving the ring empty.
#[allow(clippy::too_many_arguments)]
fn fuse_strips_pooled(
    pool: &WorkerPool,
    kslot: usize,
    tag: u32,
    a: &Arc<CwtPyramid>,
    b: &Arc<CwtPyramid>,
    op: FuseOp,
    lowpass_rule: LowpassRule,
    plan: &TransformPlan,
    map: &mut Vec<(u32, u32)>,
    bufs: &mut Vec<(Image, Image)>,
    outcomes: &mut Vec<JobOutcome>,
    fused: &mut CwtPyramid,
) -> Result<usize, wavefuse_dtcwt::DtcwtError> {
    fused.reshape_like(a);
    let mut total = 0usize;
    let mut inflight = 0usize;
    let mut lowpass_done = false;
    map.clear();
    for level in 0..a.levels() {
        let rows = plan.fuse_strip_rows(level);
        for band in 0..a.subbands(level).len() {
            let h = a.subbands(level)[band].re.height();
            let mut y0 = 0;
            while y0 < h {
                let y1 = (y0 + rows).min(h);
                if inflight == BATCH_SLOTS {
                    // Ring full: overlap the serial lowpass with the wave
                    // in flight, then harvest it to free the slots.
                    if !lowpass_done {
                        for (o, (la, lb)) in fused
                            .lowpass_mut()
                            .iter_mut()
                            .zip(a.lowpass().iter().zip(b.lowpass()))
                        {
                            fuse_lowpass_into(la, lb, lowpass_rule, o);
                        }
                        lowpass_done = true;
                    }
                    harvest_fuse_wave(pool, inflight, outcomes, map, fused, bufs)?;
                    inflight = 0;
                    map.clear();
                }
                let (re, im) = bufs
                    .pop()
                    .unwrap_or_else(|| (Image::zeros(0, 0), Image::zeros(0, 0)));
                pool.submit(Job::FuseStrip {
                    a: Arc::clone(a),
                    b: Arc::clone(b),
                    tag,
                    strip: map.len(),
                    level,
                    band,
                    kernel: kslot,
                    y0,
                    y1,
                    op,
                    re,
                    im,
                });
                map.push((level as u32, band as u32));
                inflight += 1;
                total += 1;
                y0 = y1;
            }
        }
    }
    if !lowpass_done {
        for (o, (la, lb)) in fused
            .lowpass_mut()
            .iter_mut()
            .zip(a.lowpass().iter().zip(b.lowpass()))
        {
            fuse_lowpass_into(la, lb, lowpass_rule, o);
        }
    }
    if inflight > 0 {
        harvest_fuse_wave(pool, inflight, outcomes, map, fused, bufs)?;
    }
    Ok(total)
}

/// Drains one wave of strip fusion jobs, copies each strip's rows into its
/// subband slot in `fused`, and recycles the output buffers. Failed jobs'
/// buffers are recycled without copying; the earliest error (in submission
/// order, as reported by [`WorkerPool::drain`]) is returned after the
/// whole wave is accounted for.
fn harvest_fuse_wave(
    pool: &WorkerPool,
    n: usize,
    outcomes: &mut Vec<JobOutcome>,
    map: &[(u32, u32)],
    fused: &mut CwtPyramid,
    bufs: &mut Vec<(Image, Image)>,
) -> Result<(), wavefuse_dtcwt::DtcwtError> {
    outcomes.clear();
    let err_at = pool.drain(n, outcomes);
    let mut first_err = err_at.and_then(|i| outcomes[i].error.take());
    for (j, o) in outcomes.drain(..).enumerate() {
        let JobPayload::FuseStrip { y0, re, im } = o.payload else {
            continue;
        };
        if o.error.is_none() && err_at != Some(j) {
            let (level, band) = map[o.combo];
            let sb = &mut fused.subbands_mut(level as usize)[band as usize];
            for yy in 0..re.height() {
                sb.re.row_mut(y0 + yy).copy_from_slice(re.row(yy));
                sb.im.row_mut(y0 + yy).copy_from_slice(im.row(yy));
            }
        } else if first_err.is_none() {
            first_err = o.error;
        }
        bufs.push((re, im));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(w: usize, h: usize) -> (Image, Image) {
        (
            Image::from_fn(w, h, |x, y| ((x * 5 + y * 2) % 17) as f32 / 16.0),
            Image::from_fn(w, h, |x, y| ((x + y * y) % 23) as f32 / 22.0),
        )
    }

    #[test]
    fn all_backends_produce_the_same_image() {
        let (a, b) = inputs(40, 40);
        let mut eng = FusionEngine::new(3).unwrap();
        let arm = eng.fuse(&a, &b, Backend::Arm).unwrap();
        let neon = eng.fuse(&a, &b, Backend::Neon).unwrap();
        let fpga = eng.fuse(&a, &b, Backend::Fpga).unwrap();
        assert!(arm.image.max_abs_diff(&neon.image) < 1e-3);
        assert!(arm.image.max_abs_diff(&fpga.image) < 1e-3);
    }

    #[test]
    fn fused_image_combines_complementary_content() {
        // A carries a left-half feature, B a right-half feature; the fused
        // image must carry both.
        let w = 48;
        let a = Image::from_fn(w, w, |x, y| {
            if x < w / 2 && (x / 3 + y / 3) % 2 == 0 {
                1.0
            } else {
                0.3
            }
        });
        let b = Image::from_fn(w, w, |x, y| {
            if x >= w / 2 && (x / 3 + y / 3) % 2 == 1 {
                1.0
            } else {
                0.3
            }
        });
        let mut eng = FusionEngine::new(2).unwrap();
        let out = eng.fuse(&a, &b, Backend::Neon).unwrap().image;
        // Variance on each half should be comparable to the active source's.
        let var = |img: &Image, x0: usize, x1: usize| -> f64 {
            let vals: Vec<f64> = (x0..x1)
                .flat_map(|x| (0..w).map(move |y| (x, y)))
                .map(|(x, y)| img.get(x, y) as f64)
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64
        };
        assert!(var(&out, 0, w / 2) > 0.5 * var(&a, 0, w / 2));
        assert!(var(&out, w / 2, w) > 0.5 * var(&b, w / 2, w));
    }

    #[test]
    fn worker_pool_fusion_is_bit_identical() {
        // The pooled path must reproduce the serial path exactly, at any
        // thread count, for both CPU backends — and stay exact when the
        // engine alternates frame sizes (exercising the plan cache and
        // scratch reshaping).
        let mut serial = FusionEngine::new(3).unwrap();
        for threads in [2, 3, 5] {
            let mut eng = FusionEngine::new(3).unwrap();
            eng.set_threads(threads);
            assert_eq!(eng.threads(), threads);
            for (w, h) in [(88, 72), (40, 40), (88, 72)] {
                let (a, b) = inputs(w, h);
                for backend in [Backend::Neon, Backend::Arm] {
                    let want = serial.fuse(&a, &b, backend).unwrap();
                    let got = eng.fuse(&a, &b, backend).unwrap();
                    assert_eq!(
                        got.image, want.image,
                        "threads={threads} {w}x{h} {backend:?}"
                    );
                    assert_eq!(got.timing, want.timing);
                }
            }
        }
    }

    #[test]
    fn depth_k_pipelined_fusion_is_bit_identical() {
        // With k frames in flight the combo accumulation still happens per
        // frame in combo order, so every depth must reproduce the serial
        // engine exactly — images and modeled timing both.
        let mut serial = FusionEngine::new(3).unwrap();
        for depth in [2usize, 3] {
            let mut eng = FusionEngine::new(3).unwrap();
            eng.set_threads(2);
            eng.set_pipeline_depth(depth);
            assert_eq!(eng.pipeline_depth(), depth);
            let frames: Vec<(Image, Image)> = (0..6)
                .map(|i| {
                    (
                        Image::from_fn(88, 72, move |x, y| {
                            ((x * 5 + y * 2 + i) % 17) as f32 / 16.0
                        }),
                        Image::from_fn(88, 72, move |x, y| {
                            ((x + y * y + 3 * i) % 23) as f32 / 22.0
                        }),
                    )
                })
                .collect();
            let mut pending = VecDeque::new();
            let mut got = Vec::new();
            for (a, b) in &frames {
                if pending.len() == depth {
                    got.push(eng.fuse_finish(pending.pop_front().unwrap()).unwrap());
                }
                pending.push_back(eng.fuse_submit(a, b, Backend::Neon).unwrap());
            }
            while let Some(p) = pending.pop_front() {
                got.push(eng.fuse_finish(p).unwrap());
            }
            assert_eq!(got.len(), frames.len());
            for ((a, b), out) in frames.iter().zip(&got) {
                let want = serial.fuse(a, b, Backend::Neon).unwrap();
                assert_eq!(out.image, want.image, "depth {depth}");
                assert_eq!(out.timing, want.timing, "depth {depth}");
            }
        }
    }

    #[test]
    fn ring_full_submit_abandons_dropped_oldest() {
        let (a, b) = inputs(40, 40);
        let mut serial = FusionEngine::new(3).unwrap();
        let want = serial.fuse(&a, &b, Backend::Neon).unwrap();
        let mut eng = FusionEngine::new(3).unwrap();
        eng.set_threads(2);
        eng.set_pipeline_depth(2);
        // Drop the first token without finishing it: the third submit
        // fills the ring and must reclaim that abandoned slot instead of
        // overflowing; the surviving frames still retire in order.
        let p0 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        drop(p0);
        let p1 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        let p2 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        let out1 = eng.fuse_finish(p1).unwrap();
        let out2 = eng.fuse_finish(p2).unwrap();
        assert_eq!(out1.image, want.image);
        assert_eq!(out2.image, want.image);
    }

    #[test]
    fn reconfigure_mid_flight_recovers_serially() {
        let (a, b) = inputs(40, 40);
        let mut serial = FusionEngine::new(3).unwrap();
        let want = serial.fuse(&a, &b, Backend::Neon).unwrap();
        let mut eng = FusionEngine::new(3).unwrap();
        eng.set_threads(2);
        eng.set_pipeline_depth(2);
        let p0 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        let p1 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        // Dropping the pool abandons both in-flight batches; the staged
        // per-slot pyramids still let the tokens finish (serial inverse).
        eng.set_threads(1);
        let out0 = eng.fuse_finish(p0).unwrap();
        let out1 = eng.fuse_finish(p1).unwrap();
        assert_eq!(out0.image, want.image);
        assert_eq!(out1.image, want.image);
    }

    #[test]
    fn reserved_buffers_keep_first_frame_pool_misses_flat() {
        let (a, b) = inputs(96, 80);
        let mut eng = FusionEngine::new(3).unwrap();
        eng.set_threads(2);
        eng.set_pipeline_depth(2);
        eng.reserve_frame_buffers(96, 80).unwrap();
        let stats0 = eng.buffer_pool().stats();
        assert_eq!(
            (stats0.hits, stats0.misses),
            (0, 0),
            "reservation must charge neither hits nor misses"
        );
        let p0 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        let p1 = eng.fuse_submit(&a, &b, Backend::Neon).unwrap();
        let o0 = eng.fuse_finish(p0).unwrap();
        let o1 = eng.fuse_finish(p1).unwrap();
        let stats = eng.buffer_pool().stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (2, 0),
            "depth-2 first frames must be served from the reservation"
        );
        eng.recycle(o0);
        eng.recycle(o1);
    }

    #[test]
    fn reservation_is_per_slot_not_per_level_at_1080p() {
        // The output-pool reservation scales with the ring (depth + 1
        // frames), not with levels x buffers — checked at the full-HD
        // geometry without running a fusion.
        let mut eng = FusionEngine::new(3).unwrap();
        eng.set_pipeline_depth(3);
        eng.reserve_frame_buffers(1920, 1080).unwrap();
        assert_eq!(eng.buffer_pool().free_buffers(), 4);
        let s = eng.buffer_pool().stats();
        assert_eq!((s.hits, s.misses, s.bytes_allocated), (0, 0, 0));
        // Re-reserving the same geometry is idempotent.
        eng.reserve_frame_buffers(1920, 1080).unwrap();
        assert_eq!(eng.buffer_pool().free_buffers(), 4);
    }

    #[test]
    fn columnar_toggle_is_bit_identical_and_propagates() {
        let (a, b) = inputs(40, 40);
        let mut on = FusionEngine::new(3).unwrap();
        let mut off = FusionEngine::new(3).unwrap();
        off.set_columnar(false);
        assert!(on.columnar() && !off.columnar());
        for backend in [Backend::Neon, Backend::Arm] {
            let x = on.fuse(&a, &b, backend).unwrap();
            let y = off.fuse(&a, &b, backend).unwrap();
            assert_eq!(x.image, y.image, "{backend:?}");
        }
        // Pool workers pick the flag up through the rebuilt kernel factory.
        off.set_threads(2);
        let pooled_off = off.fuse(&a, &b, Backend::Neon).unwrap();
        off.set_columnar(true);
        let pooled_on = off.fuse(&a, &b, Backend::Neon).unwrap();
        let serial_on = on.fuse(&a, &b, Backend::Neon).unwrap();
        assert_eq!(pooled_off.image, serial_on.image);
        assert_eq!(pooled_on.image, serial_on.image);
    }

    #[test]
    fn kernel_names_per_backend() {
        let eng = FusionEngine::new(2).unwrap();
        assert_eq!(eng.kernel_name(Backend::Arm), "arm-scalar");
        assert_eq!(eng.kernel_name(Backend::Neon), "neon-simd");
        assert_eq!(eng.kernel_name(Backend::Fpga), "zynq-fpga");
        assert_eq!(eng.kernel_name(Backend::Hybrid), "hybrid-neon-fpga");
    }

    #[test]
    fn repeated_fusion_is_deterministic() {
        // Scratch/pyramid reuse across frames must not change results.
        let (a, b) = inputs(35, 35);
        let mut eng = FusionEngine::new(2).unwrap();
        let first = eng.fuse(&a, &b, Backend::Neon).unwrap().image;
        let second = eng.fuse(&a, &b, Backend::Neon).unwrap().image;
        assert_eq!(first, second);
    }

    #[test]
    fn recycled_outputs_make_the_pool_hit() {
        let (a, b) = inputs(48, 40);
        let mut eng = FusionEngine::new(3).unwrap();
        let first = eng.fuse(&a, &b, Backend::Neon).unwrap();
        eng.recycle(first);
        let _second = eng.fuse(&a, &b, Backend::Neon).unwrap();
        let stats = eng.buffer_pool().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.bytes_allocated, 48 * 40 * 4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (a, _) = inputs(32, 24);
        let (_, b) = inputs(40, 24);
        let mut eng = FusionEngine::new(2).unwrap();
        assert!(matches!(
            eng.fuse(&a, &b, Backend::Arm),
            Err(FusionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn timing_ordering_large_frames() {
        // At the paper's full frame size: FPGA < NEON < ARM total time.
        let (a, b) = inputs(88, 72);
        let mut eng = FusionEngine::new(3).unwrap();
        let t_arm = eng
            .fuse(&a, &b, Backend::Arm)
            .unwrap()
            .timing
            .total_seconds();
        let t_neon = eng
            .fuse(&a, &b, Backend::Neon)
            .unwrap()
            .timing
            .total_seconds();
        let t_fpga = eng
            .fuse(&a, &b, Backend::Fpga)
            .unwrap()
            .timing
            .total_seconds();
        assert!(
            t_fpga < t_neon && t_neon < t_arm,
            "{t_fpga} {t_neon} {t_arm}"
        );
    }

    #[test]
    fn prediction_matches_execution_for_fpga() {
        let (a, b) = inputs(64, 48);
        let mut eng = FusionEngine::new(3).unwrap();
        let measured = eng.fuse(&a, &b, Backend::Fpga).unwrap().timing;
        let predicted = eng.predict(64, 48, Backend::Fpga).unwrap();
        let err = (measured.forward_s - predicted.forward_s).abs() / measured.forward_s;
        assert!(err < 0.05, "forward prediction off by {:.1}%", err * 100.0);
        let err_i = (measured.inverse_s - predicted.inverse_s).abs() / measured.inverse_s;
        assert!(
            err_i < 0.05,
            "inverse prediction off by {:.1}%",
            err_i * 100.0
        );
    }

    #[test]
    fn energy_uses_mode_power() {
        let (a, b) = inputs(64, 48);
        let mut eng = FusionEngine::new(3).unwrap();
        let out = eng.fuse(&a, &b, Backend::Neon).unwrap();
        let expect = eng
            .power_model()
            .energy_mj(Backend::Neon.execution_mode(), out.timing.total_seconds());
        assert!((out.energy_mj - expect).abs() < 1e-12);
    }
}

//! Execution profiling (the paper's Fig. 2).
//!
//! The paper profiles the fusion of two input images and finds the forward
//! and inverse DT-CWT to be the most compute- and energy-intensive phases —
//! the justification for accelerating exactly those. [`profile_fusion`]
//! reproduces that measurement on the modeled platform, splitting one fused
//! frame into the same functional phases.

use wavefuse_dtcwt::Image;

use crate::backend::Backend;
use crate::engine::FusionEngine;
use crate::FusionError;

/// A per-phase time attribution for one fused frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    phases: Vec<(&'static str, f64)>,
}

impl ProfileReport {
    /// Phase names and seconds, in pipeline order.
    pub fn phases(&self) -> &[(&'static str, f64)] {
        &self.phases
    }

    /// Total profiled time, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Phase shares as percentages (the y-axis of Fig. 2).
    pub fn percentages(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_seconds();
        self.phases
            .iter()
            .map(|&(name, s)| (name, if total > 0.0 { 100.0 * s / total } else { 0.0 }))
            .collect()
    }

    /// The most expensive phase.
    pub fn dominant(&self) -> (&'static str, f64) {
        self.phases
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
            .expect("report has phases")
    }
}

/// Profiles the fusion of two input images on a backend, phase by phase.
///
/// # Errors
///
/// Propagates [`FusionEngine::fuse`] errors.
pub fn profile_fusion(
    engine: &mut FusionEngine,
    a: &Image,
    b: &Image,
    backend: Backend,
) -> Result<ProfileReport, FusionError> {
    let out = engine.fuse(a, b, backend)?;
    let t = out.timing;
    Ok(ProfileReport {
        phases: vec![
            ("capture & decode", t.capture_s),
            ("forward dt-cwt", t.forward_s),
            ("fusion rule", t.fusion_s),
            ("inverse dt-cwt", t.inverse_s),
            ("display & misc", t.overhead_s),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> (Image, Image) {
        (
            Image::from_fn(88, 72, |x, y| ((x + y) % 9) as f32 / 8.0),
            Image::from_fn(88, 72, |x, y| ((x * y) % 11) as f32 / 10.0),
        )
    }

    #[test]
    fn transforms_dominate_on_arm() {
        // The paper's Fig. 2 finding: forward + inverse DT-CWT are the most
        // compute-intensive tasks (together well over half the time).
        let (a, b) = inputs();
        let mut eng = FusionEngine::new(3).unwrap();
        let rep = profile_fusion(&mut eng, &a, &b, Backend::Arm).unwrap();
        let pct = rep.percentages();
        let get = |name: &str| {
            pct.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| *p)
                .expect("phase present")
        };
        let fwd = get("forward dt-cwt");
        let inv = get("inverse dt-cwt");
        assert!(fwd + inv > 60.0, "transforms only {:.1}%", fwd + inv);
        assert!(fwd > 30.0 && fwd < 60.0, "forward {fwd:.1}%");
        assert_eq!(rep.dominant().0, "forward dt-cwt");
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let (a, b) = inputs();
        let mut eng = FusionEngine::new(3).unwrap();
        let rep = profile_fusion(&mut eng, &a, &b, Backend::Neon).unwrap();
        let sum: f64 = rep.percentages().iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(rep.phases().len(), 5);
    }

    #[test]
    fn acceleration_shrinks_transform_share() {
        let (a, b) = inputs();
        let mut eng = FusionEngine::new(3).unwrap();
        let arm = profile_fusion(&mut eng, &a, &b, Backend::Arm).unwrap();
        let fpga = profile_fusion(&mut eng, &a, &b, Backend::Fpga).unwrap();
        let share = |r: &ProfileReport| {
            let p = r.percentages();
            p.iter()
                .filter(|(n, _)| n.contains("dt-cwt"))
                .map(|(_, v)| v)
                .sum::<f64>()
        };
        assert!(share(&fpga) < share(&arm));
    }
}

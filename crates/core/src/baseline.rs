//! Comparison fusion baselines.
//!
//! The paper positions DT-CWT fusion against simpler schemes: plain-DWT
//! fusion (its reference \[12\] compares the two), Laplacian-pyramid fusion
//! (the FPGA systems of its references \[6\]\[8\]), and naive averaging. All
//! three are implemented here so the quality claims can be measured with
//! `wavefuse-metrics` (see the `quality_comparison` example and the
//! integration tests).

use wavefuse_dtcwt::swt::Swt2d;
use wavefuse_dtcwt::{Dwt2d, FilterBank, Image};
use wavefuse_video::scaler::resize_bilinear;

use crate::FusionError;

/// Pixel averaging — the weakest baseline.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn average_fusion(a: &Image, b: &Image) -> Image {
    assert_eq!(a.dims(), b.dims(), "inputs must share dimensions");
    let (w, h) = a.dims();
    Image::from_fn(w, h, |x, y| 0.5 * (a.get(x, y) + b.get(x, y)))
}

/// Plain decimated-DWT fusion: per-subband choose-max-absolute detail
/// coefficients, averaged approximation band.
///
/// # Errors
///
/// Returns [`FusionError::DimensionMismatch`] for unequal inputs and
/// propagates transform errors for unsupported depths.
pub fn dwt_fusion(
    a: &Image,
    b: &Image,
    bank: FilterBank,
    levels: usize,
) -> Result<Image, FusionError> {
    if a.dims() != b.dims() {
        return Err(FusionError::DimensionMismatch {
            a: a.dims(),
            b: b.dims(),
        });
    }
    let dwt = Dwt2d::new(bank, levels)?;
    let pa = dwt.forward(a)?;
    let pb = dwt.forward(b)?;
    let mut fused = pa.clone();
    for level in 0..levels {
        let da = pa.detail(level);
        let db = pb.detail(level);
        let df = fused.detail_mut(level);
        for (out, (ia, ib)) in [&mut df.lh, &mut df.hl, &mut df.hh].into_iter().zip([
            (&da.lh, &db.lh),
            (&da.hl, &db.hl),
            (&da.hh, &db.hh),
        ]) {
            let (w, h) = ia.dims();
            *out = Image::from_fn(w, h, |x, y| {
                let (va, vb) = (ia.get(x, y), ib.get(x, y));
                if va.abs() >= vb.abs() {
                    va
                } else {
                    vb
                }
            });
        }
    }
    let (w, h) = pa.ll().dims();
    *fused.ll_mut() = Image::from_fn(w, h, |x, y| 0.5 * (pa.ll().get(x, y) + pb.ll().get(x, y)));
    Ok(dwt.inverse(&fused)?)
}

/// Stationary-wavelet (undecimated) fusion: the exactly shift-invariant
/// transform baseline — better temporal stability than the decimated DWT
/// but several times the compute of the DT-CWT (see
/// [`wavefuse_dtcwt::swt::Swt2d::forward_macs`]).
///
/// # Errors
///
/// Returns [`FusionError::DimensionMismatch`] for unequal inputs and
/// propagates transform errors.
pub fn swt_fusion(
    a: &Image,
    b: &Image,
    bank: FilterBank,
    levels: usize,
) -> Result<Image, FusionError> {
    if a.dims() != b.dims() {
        return Err(FusionError::DimensionMismatch {
            a: a.dims(),
            b: b.dims(),
        });
    }
    let swt = Swt2d::new(bank, levels)?;
    let pa = swt.forward(a);
    let pb = swt.forward(b);
    let mut fused = pa.clone();
    let max_abs = |ia: &Image, ib: &Image| {
        let (w, h) = ia.dims();
        Image::from_fn(w, h, |x, y| {
            let (va, vb) = (ia.get(x, y), ib.get(x, y));
            if va.abs() >= vb.abs() {
                va
            } else {
                vb
            }
        })
    };
    for level in 0..levels {
        let da = pa.detail(level);
        let db = pb.detail(level);
        let df = fused.detail_mut(level);
        df.dh = max_abs(&da.dh, &db.dh);
        df.dv = max_abs(&da.dv, &db.dv);
        df.dd = max_abs(&da.dd, &db.dd);
    }
    let (w, h) = pa.approx().dims();
    *fused.approx_mut() = Image::from_fn(w, h, |x, y| {
        0.5 * (pa.approx().get(x, y) + pb.approx().get(x, y))
    });
    Ok(swt.inverse(&fused)?)
}

/// One REDUCE step of the Gaussian pyramid: 5-tap binomial blur then 2x
/// decimation (edges clamped).
fn reduce(img: &Image) -> Image {
    const K: [f32; 5] = [0.0625, 0.25, 0.375, 0.25, 0.0625];
    let (w, h) = img.dims();
    // Horizontal blur.
    let hx = Image::from_fn(w, h, |x, y| {
        K.iter()
            .enumerate()
            .map(|(i, &k)| {
                let sx = (x as isize + i as isize - 2).clamp(0, w as isize - 1) as usize;
                k * img.get(sx, y)
            })
            .sum()
    });
    // Vertical blur.
    let blurred = Image::from_fn(w, h, |x, y| {
        K.iter()
            .enumerate()
            .map(|(i, &k)| {
                let sy = (y as isize + i as isize - 2).clamp(0, h as isize - 1) as usize;
                k * hx.get(x, sy)
            })
            .sum()
    });
    Image::from_fn(w.div_ceil(2), h.div_ceil(2), |x, y| {
        blurred.get((2 * x).min(w - 1), (2 * y).min(h - 1))
    })
}

/// Laplacian-pyramid fusion (Burt–Adelson style): choose-max-absolute on
/// the band-pass levels, averaged base level.
///
/// # Errors
///
/// Returns [`FusionError::DimensionMismatch`] for unequal inputs and
/// [`FusionError::Video`] if a pyramid level degenerates to zero size.
pub fn laplacian_fusion(a: &Image, b: &Image, levels: usize) -> Result<Image, FusionError> {
    if a.dims() != b.dims() {
        return Err(FusionError::DimensionMismatch {
            a: a.dims(),
            b: b.dims(),
        });
    }
    let lap_a = build_laplacian(a, levels)?;
    let lap_b = build_laplacian(b, levels)?;

    // Fuse: max-abs on band-pass levels, average on the base.
    let mut fused: Vec<Image> = Vec::with_capacity(levels + 1);
    for (la, lb) in lap_a.iter().zip(&lap_b).take(levels) {
        let (w, h) = la.dims();
        fused.push(Image::from_fn(w, h, |x, y| {
            let (va, vb) = (la.get(x, y), lb.get(x, y));
            if va.abs() >= vb.abs() {
                va
            } else {
                vb
            }
        }));
    }
    let base_a = &lap_a[levels];
    let base_b = &lap_b[levels];
    let (bw, bh) = base_a.dims();
    fused.push(Image::from_fn(bw, bh, |x, y| {
        0.5 * (base_a.get(x, y) + base_b.get(x, y))
    }));

    // Collapse.
    let mut cur = fused.pop().expect("base level present");
    while let Some(band) = fused.pop() {
        let (w, h) = band.dims();
        let mut up = resize_bilinear(&cur, w, h)?;
        up.add_scaled(&band, 1.0);
        cur = up;
    }
    Ok(cur)
}

/// Builds `levels` band-pass images plus the final base (lowest) level.
fn build_laplacian(img: &Image, levels: usize) -> Result<Vec<Image>, FusionError> {
    let mut out = Vec::with_capacity(levels + 1);
    let mut cur = img.clone();
    for _ in 0..levels {
        let next = reduce(&cur);
        let (w, h) = cur.dims();
        let up = resize_bilinear(&next, w, h)?;
        let mut band = cur.clone();
        band.add_scaled(&up, -1.0);
        out.push(band);
        cur = next;
    }
    out.push(cur);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(w: usize, h: usize) -> (Image, Image) {
        (
            Image::from_fn(
                w,
                h,
                |x, y| if (x / 4 + y / 4) % 2 == 0 { 0.9 } else { 0.1 },
            ),
            Image::from_fn(w, h, |x, y| ((x + 2 * y) % 16) as f32 / 15.0),
        )
    }

    #[test]
    fn average_fusion_is_the_mean() {
        let (a, b) = inputs(16, 16);
        let f = average_fusion(&a, &b);
        assert!((f.get(3, 5) - 0.5 * (a.get(3, 5) + b.get(3, 5))).abs() < 1e-6);
    }

    #[test]
    fn dwt_fusion_of_identical_inputs_is_identity() {
        let (a, _) = inputs(32, 32);
        let f = dwt_fusion(&a, &a, FilterBank::cdf_9_7().unwrap(), 3).unwrap();
        assert!(f.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn laplacian_fusion_of_identical_inputs_is_identity() {
        let (a, _) = inputs(32, 32);
        let f = laplacian_fusion(&a, &a, 3).unwrap();
        assert!(f.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn swt_fusion_of_identical_inputs_is_identity() {
        let (a, _) = inputs(32, 32);
        let f = swt_fusion(&a, &a, FilterBank::cdf_9_7().unwrap(), 3).unwrap();
        assert!(f.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn swt_fusion_is_exactly_shift_consistent() {
        // Fusing circularly shifted inputs and unshifting reproduces the
        // unshifted fusion bit-for-bit-close — the SWT's defining property.
        use wavefuse_dtcwt::analysis::circular_shift;
        let (a, b) = inputs(32, 32);
        let base = swt_fusion(&a, &b, FilterBank::cdf_9_7().unwrap(), 2).unwrap();
        let sa = circular_shift(&a, 5, 3);
        let sb = circular_shift(&b, 5, 3);
        let fused = swt_fusion(&sa, &sb, FilterBank::cdf_9_7().unwrap(), 2).unwrap();
        let unshifted = circular_shift(&fused, -5, -3);
        assert!(unshifted.max_abs_diff(&base) < 1e-4);
    }

    #[test]
    fn reduce_halves_dimensions() {
        let img = Image::filled(9, 6, 1.0);
        let r = reduce(&img);
        assert_eq!(r.dims(), (5, 3));
        for &v in r.as_slice() {
            assert!((v - 1.0).abs() < 1e-5, "constant preserved, got {v}");
        }
    }

    #[test]
    fn fusions_keep_strong_features_from_both() {
        // Source A has high contrast on the left, B on the right; any
        // sensible detail-selecting fusion beats averaging in spatial
        // frequency on both halves.
        let w = 64;
        let a = Image::from_fn(w, w, |x, y| {
            if x < w / 2 {
                if (x / 2 + y / 2) % 2 == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                0.5
            }
        });
        let b = Image::from_fn(w, w, |x, y| {
            if x >= w / 2 {
                if (x / 2 + y / 2) % 2 == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                0.5
            }
        });
        let avg = average_fusion(&a, &b);
        let dwt = dwt_fusion(&a, &b, FilterBank::cdf_9_7().unwrap(), 3).unwrap();
        let lap = laplacian_fusion(&a, &b, 3).unwrap();
        let activity = |img: &Image| -> f64 {
            let mut acc = 0.0;
            for y in 0..w {
                for x in 1..w {
                    acc += (img.get(x, y) - img.get(x - 1, y)).abs() as f64;
                }
            }
            acc
        };
        assert!(activity(&dwt) > 1.3 * activity(&avg));
        assert!(activity(&lap) > 1.3 * activity(&avg));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (a, _) = inputs(16, 16);
        let (_, b) = inputs(16, 18);
        assert!(matches!(
            dwt_fusion(&a, &b, FilterBank::haar().unwrap(), 2),
            Err(FusionError::DimensionMismatch { .. })
        ));
        assert!(laplacian_fusion(&a, &b, 2).is_err());
    }
}

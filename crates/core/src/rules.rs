//! Pixel-level fusion rules on DT-CWT pyramids.
//!
//! The paper's algorithm (§I, §III) applies the forward DT-CWT to both
//! frames, "combines the obtained coefficients using a fusion rule", and
//! inverse-transforms the result. The standard rules from the DT-CWT fusion
//! literature are implemented on the complex coefficients:
//!
//! * [`FusionRule::MaxMagnitude`] — per coefficient, keep the complex
//!   coefficient with the larger magnitude (the classic choose-max rule);
//! * [`FusionRule::WindowEnergy`] — choose by local energy in a
//!   `(2r+1)²` window, more robust to sensor noise;
//! * [`FusionRule::Weighted`] — a fixed linear blend (degenerates to
//!   averaging at `alpha = 0.5`), the conservative baseline;
//! * [`FusionRule::ActivityGuided`] — the Burt–Kolczynski salience/match
//!   rule: select where the sources disagree, blend where they agree.
//!
//! The lowpass residuals are fused separately ([`LowpassRule`]), averaging
//! by default as is standard for DT-CWT fusion.

use wavefuse_dtcwt::{ComplexImage, CwtPyramid, Image};

/// Rule for combining oriented complex detail coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionRule {
    /// Keep the coefficient of larger magnitude.
    MaxMagnitude,
    /// Keep the coefficient whose `(2*radius+1)²` neighborhood has more
    /// energy.
    WindowEnergy {
        /// Window radius in coefficients (1 → 3x3).
        radius: usize,
    },
    /// Fixed blend `alpha * A + (1 - alpha) * B`.
    Weighted {
        /// Weight of the first input, in `[0, 1]`.
        alpha: f32,
    },
    /// Burt–Kolczynski salience/match fusion: where the sources disagree
    /// (low local match measure) select the locally stronger one; where
    /// they agree, blend with salience-dependent weights. More robust than
    /// pure selection on correlated content.
    ActivityGuided {
        /// Window radius for salience and match (1 → 3x3).
        radius: usize,
        /// Match measure below which pure selection is used, in `[0, 1]`.
        match_threshold: f32,
    },
}

/// Rule for combining the lowpass residuals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LowpassRule {
    /// Mean of both inputs (the standard choice).
    Average,
    /// Keep the larger-magnitude sample.
    MaxAbs,
    /// Fixed blend with the given weight of the first input.
    Weighted {
        /// Weight of the first input, in `[0, 1]`.
        alpha: f32,
    },
}

/// Reusable window-energy intermediates for [`fuse_subband_into`]. One
/// instance per engine; its images retain capacity across frames so
/// steady-state fusion performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct FusionScratch {
    ea: Image,
    eb: Image,
    cross: Image,
}

impl FusionScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        FusionScratch::default()
    }
}

/// Fuses two DT-CWT pyramids coefficient-wise.
///
/// The pyramids must come from equal-sized inputs and the same transform
/// configuration.
///
/// # Panics
///
/// Panics if the pyramids disagree in level count or subband shapes (they
/// always agree when produced by the same [`wavefuse_dtcwt::Dtcwt`] on
/// equal-sized frames; the engine validates inputs before transforming).
pub fn fuse_pyramids(
    a: &CwtPyramid,
    b: &CwtPyramid,
    rule: FusionRule,
    lowpass: LowpassRule,
) -> CwtPyramid {
    let mut out = CwtPyramid::empty();
    let mut scratch = FusionScratch::new();
    fuse_pyramids_into(a, b, rule, lowpass, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`fuse_pyramids`]: writes the fused pyramid
/// into `out` (reshaped to match `a`, reusing its buffers) using `scratch`
/// for window-energy intermediates. Produces bit-identical results to
/// [`fuse_pyramids`].
///
/// # Panics
///
/// As [`fuse_pyramids`].
pub fn fuse_pyramids_into(
    a: &CwtPyramid,
    b: &CwtPyramid,
    rule: FusionRule,
    lowpass: LowpassRule,
    scratch: &mut FusionScratch,
    out: &mut CwtPyramid,
) {
    assert_eq!(a.levels(), b.levels(), "pyramid depths differ");
    out.reshape_like(a);
    for level in 0..a.levels() {
        let sa = a.subbands(level);
        let sb = b.subbands(level);
        let so = out.subbands_mut(level);
        for (o, (ca, cb)) in so.iter_mut().zip(sa.iter().zip(sb)) {
            fuse_subband_into(ca, cb, rule, scratch, o);
        }
    }
    for (o, (la, lb)) in out
        .lowpass_mut()
        .iter_mut()
        .zip(a.lowpass().iter().zip(b.lowpass()))
    {
        fuse_lowpass_into(la, lb, lowpass, o);
    }
}

/// Fuses one oriented complex subband.
pub fn fuse_subband(a: &ComplexImage, b: &ComplexImage, rule: FusionRule) -> ComplexImage {
    let mut out = ComplexImage::zeros(0, 0);
    fuse_subband_into(a, b, rule, &mut FusionScratch::new(), &mut out);
    out
}

/// Allocation-free variant of [`fuse_subband`]: writes into `out`
/// (reshaped), using `scratch` for local-energy maps.
pub fn fuse_subband_into(
    a: &ComplexImage,
    b: &ComplexImage,
    rule: FusionRule,
    scratch: &mut FusionScratch,
    out: &mut ComplexImage,
) {
    assert_eq!(a.dims(), b.dims(), "subband shapes differ");
    let (w, h) = a.dims();
    out.reshape(w, h);
    match rule {
        FusionRule::MaxMagnitude => {
            for y in 0..h {
                for x in 0..w {
                    let (src_re, src_im) = if a.magnitude_at(x, y) >= b.magnitude_at(x, y) {
                        (a.re.get(x, y), a.im.get(x, y))
                    } else {
                        (b.re.get(x, y), b.im.get(x, y))
                    };
                    out.re.set(x, y, src_re);
                    out.im.set(x, y, src_im);
                }
            }
        }
        FusionRule::WindowEnergy { radius } => {
            local_energy_into(a, radius, &mut scratch.ea);
            local_energy_into(b, radius, &mut scratch.eb);
            let (ea, eb) = (&scratch.ea, &scratch.eb);
            for y in 0..h {
                for x in 0..w {
                    let pick_a = ea.get(x, y) >= eb.get(x, y);
                    let (src_re, src_im) = if pick_a {
                        (a.re.get(x, y), a.im.get(x, y))
                    } else {
                        (b.re.get(x, y), b.im.get(x, y))
                    };
                    out.re.set(x, y, src_re);
                    out.im.set(x, y, src_im);
                }
            }
        }
        FusionRule::Weighted { alpha } => {
            let beta = 1.0 - alpha;
            for y in 0..h {
                for x in 0..w {
                    out.re
                        .set(x, y, alpha * a.re.get(x, y) + beta * b.re.get(x, y));
                    out.im
                        .set(x, y, alpha * a.im.get(x, y) + beta * b.im.get(x, y));
                }
            }
        }
        FusionRule::ActivityGuided {
            radius,
            match_threshold,
        } => {
            local_energy_into(a, radius, &mut scratch.ea);
            local_energy_into(b, radius, &mut scratch.eb);
            local_cross_energy_into(a, b, radius, &mut scratch.cross);
            let (sa, sb, cross) = (&scratch.ea, &scratch.eb, &scratch.cross);
            for y in 0..h {
                for x in 0..w {
                    let (ea, eb) = (sa.get(x, y), sb.get(x, y));
                    let denom = ea + eb;
                    // Match measure in [-1, 1]; 1 = locally identical.
                    let m = if denom > 1e-20 {
                        2.0 * cross.get(x, y) / denom
                    } else {
                        1.0
                    };
                    let a_stronger = ea >= eb;
                    let (w_a, w_b) = if m < match_threshold {
                        // Sources disagree: pure selection of the stronger.
                        if a_stronger {
                            (1.0, 0.0)
                        } else {
                            (0.0, 1.0)
                        }
                    } else {
                        // Sources agree: salience-weighted blend.
                        let w_max = 0.5 + 0.5 * (1.0 - m) / (1.0 - match_threshold).max(1e-6);
                        let w_min = 1.0 - w_max;
                        if a_stronger {
                            (w_max, w_min)
                        } else {
                            (w_min, w_max)
                        }
                    };
                    out.re
                        .set(x, y, w_a * a.re.get(x, y) + w_b * b.re.get(x, y));
                    out.im
                        .set(x, y, w_a * a.im.get(x, y) + w_b * b.im.get(x, y));
                }
            }
        }
    }
}

/// Fuses one lowpass residual image.
pub fn fuse_lowpass(a: &Image, b: &Image, rule: LowpassRule) -> Image {
    let mut out = Image::zeros(0, 0);
    fuse_lowpass_into(a, b, rule, &mut out);
    out
}

/// Allocation-free variant of [`fuse_lowpass`]: writes into `out`
/// (reshaped).
pub fn fuse_lowpass_into(a: &Image, b: &Image, rule: LowpassRule, out: &mut Image) {
    assert_eq!(a.dims(), b.dims(), "lowpass shapes differ");
    let (w, h) = a.dims();
    out.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let (va, vb) = (a.get(x, y), b.get(x, y));
            let v = match rule {
                LowpassRule::Average => 0.5 * (va + vb),
                LowpassRule::MaxAbs => {
                    if va.abs() >= vb.abs() {
                        va
                    } else {
                        vb
                    }
                }
                LowpassRule::Weighted { alpha } => alpha * va + (1.0 - alpha) * vb,
            };
            out.set(x, y, v);
        }
    }
}

/// Clamped local cross-energy `Σ (a·b̄).re` over a `(2r+1)²` window — the
/// numerator of the Burt–Kolczynski match measure.
fn local_cross_energy_into(a: &ComplexImage, b: &ComplexImage, radius: usize, out: &mut Image) {
    let (w, h) = a.dims();
    let r = radius as isize;
    out.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for dy in -r..=r {
                for dx in -r..=r {
                    let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                    let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                    acc +=
                        a.re.get(sx, sy) * b.re.get(sx, sy) + a.im.get(sx, sy) * b.im.get(sx, sy);
                }
            }
            out.set(x, y, acc);
        }
    }
}

/// Clamped local energy sum over a `(2r+1)²` window.
fn local_energy_into(c: &ComplexImage, radius: usize, out: &mut Image) {
    let (w, h) = c.dims();
    let r = radius as isize;
    out.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for dy in -r..=r {
                for dx in -r..=r {
                    let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                    let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                    let re = c.re.get(sx, sy);
                    let im = c.im.get(sx, sy);
                    acc += re * re + im * im;
                }
            }
            out.set(x, y, acc);
        }
    }
}

/// Approximate size-proportional work of applying a rule to one coefficient
/// (used by the cost model; MAC-equivalent units).
pub fn rule_macs_per_coefficient(rule: FusionRule) -> u64 {
    match rule {
        FusionRule::MaxMagnitude => 4,
        FusionRule::WindowEnergy { radius } => {
            let side = 2 * radius as u64 + 1;
            2 * side * side + 2
        }
        FusionRule::Weighted { .. } => 4,
        FusionRule::ActivityGuided { radius, .. } => {
            let side = 2 * radius as u64 + 1;
            // Two salience windows plus the cross-energy window.
            3 * side * side + 6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::Dtcwt;

    fn pyramids() -> (CwtPyramid, CwtPyramid) {
        let t = Dtcwt::new(2).unwrap();
        let a = Image::from_fn(32, 24, |x, y| ((x * 3 + y) % 11) as f32);
        let b = Image::from_fn(32, 24, |x, y| ((x + 7 * y) % 13) as f32);
        (t.forward(&a).unwrap(), t.forward(&b).unwrap())
    }

    #[test]
    fn scratch_fusion_matches_allocating_fusion_exactly() {
        // One FusionScratch/output pyramid reused across every rule must
        // reproduce the allocating API bit for bit — earlier iterations
        // leave the scratch energy maps dirty on purpose.
        let (pa, pb) = pyramids();
        let mut scratch = FusionScratch::new();
        let mut out = CwtPyramid::empty();
        for rule in [
            FusionRule::MaxMagnitude,
            FusionRule::WindowEnergy { radius: 1 },
            FusionRule::WindowEnergy { radius: 2 },
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
            FusionRule::Weighted { alpha: 0.25 },
        ] {
            for lowpass in [LowpassRule::Average, LowpassRule::MaxAbs] {
                let want = fuse_pyramids(&pa, &pb, rule, lowpass);
                fuse_pyramids_into(&pa, &pb, rule, lowpass, &mut scratch, &mut out);
                for level in 0..want.levels() {
                    for (w, g) in want.subbands(level).iter().zip(out.subbands(level)) {
                        assert_eq!(w.re, g.re, "{rule:?} {lowpass:?}");
                        assert_eq!(w.im, g.im, "{rule:?} {lowpass:?}");
                    }
                }
                assert_eq!(want.lowpass(), out.lowpass());
            }
        }
    }

    #[test]
    fn max_magnitude_picks_stronger_source() {
        let mut a = ComplexImage::zeros(2, 1);
        let mut b = ComplexImage::zeros(2, 1);
        a.re.set(0, 0, 3.0); // |a| = 3 at (0,0)
        b.im.set(0, 0, 1.0); // |b| = 1
        a.re.set(1, 0, 0.5);
        b.re.set(1, 0, -2.0); // |b| = 2 at (1,0)
        let f = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        assert_eq!(f.re.get(0, 0), 3.0);
        assert_eq!(f.re.get(1, 0), -2.0);
    }

    #[test]
    fn weighted_half_is_average() {
        let (pa, pb) = pyramids();
        let f = fuse_pyramids(
            &pa,
            &pb,
            FusionRule::Weighted { alpha: 0.5 },
            LowpassRule::Average,
        );
        let s = f.subbands(0)[0].re.get(3, 3);
        let expect = 0.5 * (pa.subbands(0)[0].re.get(3, 3) + pb.subbands(0)[0].re.get(3, 3));
        assert!((s - expect).abs() < 1e-6);
    }

    #[test]
    fn fusing_identical_pyramids_is_identity() {
        let (pa, _) = pyramids();
        for rule in [
            FusionRule::MaxMagnitude,
            FusionRule::WindowEnergy { radius: 1 },
            FusionRule::Weighted { alpha: 0.5 },
        ] {
            let f = fuse_pyramids(&pa, &pa, rule, LowpassRule::Average);
            for level in 0..pa.levels() {
                for (x, y) in pa.subbands(level).iter().zip(f.subbands(level)) {
                    assert!(x.re.max_abs_diff(&y.re) < 1e-6);
                    assert!(x.im.max_abs_diff(&y.im) < 1e-6);
                }
            }
            for (x, y) in pa.lowpass().iter().zip(f.lowpass()) {
                assert!(x.max_abs_diff(y) < 1e-6);
            }
        }
    }

    #[test]
    fn window_energy_is_noise_robust() {
        // A single spurious strong coefficient in B amid strong A region:
        // the 3x3 energy rule should still choose A there.
        let mut a = ComplexImage::zeros(5, 5);
        let mut b = ComplexImage::zeros(5, 5);
        for y in 0..5 {
            for x in 0..5 {
                a.re.set(x, y, 2.0);
            }
        }
        b.re.set(2, 2, 3.0); // isolated spike
        let point = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        assert_eq!(point.re.get(2, 2), 3.0, "point rule takes the spike");
        let windowed = fuse_subband(&a, &b, FusionRule::WindowEnergy { radius: 1 });
        assert_eq!(windowed.re.get(2, 2), 2.0, "window rule rejects it");
    }

    #[test]
    fn activity_guided_selects_on_disagreement() {
        // Disjoint content (zero match): behaves like window-energy select.
        let mut a = ComplexImage::zeros(6, 6);
        let mut b = ComplexImage::zeros(6, 6);
        for y in 0..6 {
            for x in 0..3 {
                a.re.set(x, y, 2.0);
            }
            for x in 3..6 {
                b.im.set(x, y, 1.5);
            }
        }
        let f = fuse_subband(
            &a,
            &b,
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
        );
        assert_eq!(f.re.get(0, 3), 2.0, "A side keeps A");
        assert_eq!(f.im.get(5, 3), 1.5, "B side keeps B");
    }

    #[test]
    fn activity_guided_blends_on_agreement() {
        // Identical content (match = 1): the blend must reproduce it.
        let mut a = ComplexImage::zeros(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                a.re.set(x, y, 1.0 + (x + y) as f32 * 0.1);
            }
        }
        let f = fuse_subband(
            &a,
            &a,
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
        );
        assert!(f.re.max_abs_diff(&a.re) < 1e-5);
        assert!(f.im.max_abs_diff(&a.im) < 1e-5);
    }

    #[test]
    fn lowpass_rules() {
        let a = Image::filled(2, 2, 1.0);
        let b = Image::filled(2, 2, -3.0);
        assert_eq!(fuse_lowpass(&a, &b, LowpassRule::Average).get(0, 0), -1.0);
        assert_eq!(fuse_lowpass(&a, &b, LowpassRule::MaxAbs).get(0, 0), -3.0);
        assert_eq!(
            fuse_lowpass(&a, &b, LowpassRule::Weighted { alpha: 0.75 }).get(0, 0),
            0.75 - 0.75
        );
    }

    #[test]
    fn rule_cost_ordering() {
        assert!(
            rule_macs_per_coefficient(FusionRule::WindowEnergy { radius: 1 })
                > rule_macs_per_coefficient(FusionRule::MaxMagnitude)
        );
    }
}

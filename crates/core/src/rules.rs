//! Pixel-level fusion rules on DT-CWT pyramids.
//!
//! The paper's algorithm (§I, §III) applies the forward DT-CWT to both
//! frames, "combines the obtained coefficients using a fusion rule", and
//! inverse-transforms the result. The standard rules from the DT-CWT fusion
//! literature are implemented on the complex coefficients:
//!
//! * [`FusionRule::MaxMagnitude`] — per coefficient, keep the complex
//!   coefficient with the larger magnitude (the classic choose-max rule);
//! * [`FusionRule::WindowEnergy`] — choose by local energy in a
//!   `(2r+1)²` window, more robust to sensor noise;
//! * [`FusionRule::Weighted`] — a fixed linear blend (degenerates to
//!   averaging at `alpha = 0.5`), the conservative baseline;
//! * [`FusionRule::ActivityGuided`] — the Burt–Kolczynski salience/match
//!   rule: select where the sources disagree, blend where they agree.
//!
//! The lowpass residuals are fused separately ([`LowpassRule`]), averaging
//! by default as is standard for DT-CWT fusion.
//!
//! Since the fusion phase became a first-class parallel stage, the actual
//! per-coefficient arithmetic lives in [`wavefuse_dtcwt::fuse`] (the scalar
//! strip reference with its separable O(r) window sums and fold-order
//! contract); this module maps [`FusionRule`] onto [`FuseOp`] and fuses
//! whole pyramids — serially here, or vectorized via
//! [`fuse_pyramids_with_kernel`], or strip-parallel through the worker ring
//! in the engine. All paths are bit-identical.

use wavefuse_dtcwt::fuse::{fuse_strip_scalar, FuseOp, FuseScratch};
use wavefuse_dtcwt::{ComplexImage, CwtPyramid, FilterKernel, Image};

/// Rule for combining oriented complex detail coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionRule {
    /// Keep the coefficient of larger magnitude.
    MaxMagnitude,
    /// Keep the coefficient whose `(2*radius+1)²` neighborhood has more
    /// energy.
    WindowEnergy {
        /// Window radius in coefficients (1 → 3x3).
        radius: usize,
    },
    /// Fixed blend `alpha * A + (1 - alpha) * B`.
    Weighted {
        /// Weight of the first input, in `[0, 1]`.
        alpha: f32,
    },
    /// Burt–Kolczynski salience/match fusion: where the sources disagree
    /// (low local match measure) select the locally stronger one; where
    /// they agree, blend with salience-dependent weights. More robust than
    /// pure selection on correlated content.
    ActivityGuided {
        /// Window radius for salience and match (1 → 3x3).
        radius: usize,
        /// Match measure below which pure selection is used, in `[0, 1]`.
        match_threshold: f32,
    },
}

impl FusionRule {
    /// The plain-data operator this rule maps to in the dtcwt fusion layer
    /// (what worker strip jobs carry by value).
    pub fn to_op(self) -> FuseOp {
        match self {
            FusionRule::MaxMagnitude => FuseOp::MaxMagnitude,
            FusionRule::WindowEnergy { radius } => FuseOp::WindowEnergy { radius },
            FusionRule::Weighted { alpha } => FuseOp::Weighted { alpha },
            FusionRule::ActivityGuided {
                radius,
                match_threshold,
            } => FuseOp::ActivityGuided {
                radius,
                match_threshold,
            },
        }
    }
}

/// Rule for combining the lowpass residuals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LowpassRule {
    /// Mean of both inputs (the standard choice).
    Average,
    /// Keep the larger-magnitude sample.
    MaxAbs,
    /// Fixed blend with the given weight of the first input.
    Weighted {
        /// Weight of the first input, in `[0, 1]`.
        alpha: f32,
    },
}

/// Reusable window-energy intermediates for [`fuse_subband_into`]. One
/// instance per engine; its buffers retain capacity across frames so
/// steady-state fusion performs no heap allocation. (Worker strip jobs use
/// the [`FuseScratch`] inside each worker's transform scratch instead.)
#[derive(Debug, Clone, Default)]
pub struct FusionScratch {
    pub(crate) fuse: FuseScratch,
}

impl FusionScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        FusionScratch::default()
    }
}

/// Fuses two DT-CWT pyramids coefficient-wise.
///
/// The pyramids must come from equal-sized inputs and the same transform
/// configuration.
///
/// # Panics
///
/// Panics if the pyramids disagree in level count or subband shapes (they
/// always agree when produced by the same [`wavefuse_dtcwt::Dtcwt`] on
/// equal-sized frames; the engine validates inputs before transforming).
pub fn fuse_pyramids(
    a: &CwtPyramid,
    b: &CwtPyramid,
    rule: FusionRule,
    lowpass: LowpassRule,
) -> CwtPyramid {
    let mut out = CwtPyramid::empty();
    let mut scratch = FusionScratch::new();
    fuse_pyramids_into(a, b, rule, lowpass, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`fuse_pyramids`]: writes the fused pyramid
/// into `out` (reshaped to match `a`, reusing its buffers) using `scratch`
/// for window-energy intermediates. Produces bit-identical results to
/// [`fuse_pyramids`].
///
/// # Panics
///
/// As [`fuse_pyramids`].
pub fn fuse_pyramids_into(
    a: &CwtPyramid,
    b: &CwtPyramid,
    rule: FusionRule,
    lowpass: LowpassRule,
    scratch: &mut FusionScratch,
    out: &mut CwtPyramid,
) {
    assert_eq!(a.levels(), b.levels(), "pyramid depths differ");
    out.reshape_like(a);
    for level in 0..a.levels() {
        let sa = a.subbands(level);
        let sb = b.subbands(level);
        let so = out.subbands_mut(level);
        for (o, (ca, cb)) in so.iter_mut().zip(sa.iter().zip(sb)) {
            fuse_subband_into(ca, cb, rule, scratch, o);
        }
    }
    for (o, (la, lb)) in out
        .lowpass_mut()
        .iter_mut()
        .zip(a.lowpass().iter().zip(b.lowpass()))
    {
        fuse_lowpass_into(la, lb, lowpass, o);
    }
}

/// Fuses one oriented complex subband.
pub fn fuse_subband(a: &ComplexImage, b: &ComplexImage, rule: FusionRule) -> ComplexImage {
    let mut out = ComplexImage::zeros(0, 0);
    fuse_subband_into(a, b, rule, &mut FusionScratch::new(), &mut out);
    out
}

/// Allocation-free variant of [`fuse_subband`]: writes into `out`
/// (reshaped), using `scratch` for the window-energy maps. Delegates to
/// the scalar strip reference [`wavefuse_dtcwt::fuse`] at full height.
pub fn fuse_subband_into(
    a: &ComplexImage,
    b: &ComplexImage,
    rule: FusionRule,
    scratch: &mut FusionScratch,
    out: &mut ComplexImage,
) {
    assert_eq!(a.dims(), b.dims(), "subband shapes differ");
    let (w, h) = a.dims();
    out.reshape(w, h);
    if h == 0 {
        return;
    }
    fuse_strip_scalar(
        a,
        b,
        0,
        h,
        rule.to_op(),
        &mut scratch.fuse,
        &mut out.re,
        &mut out.im,
    )
    .expect("equal-shaped subbands and full-height strip are always valid");
}

/// As [`fuse_pyramids_into`], but routing every subband through a
/// [`FilterKernel`]'s [`FilterKernel::fuse_strip`] at full height — the
/// dispatcher-side vectorized path (SIMD kernels override `fuse_strip`;
/// the scalar kernel's default is exactly [`fuse_pyramids_into`]). Bit-
/// identical to the scalar reference by the dtcwt fold-order contract.
///
/// # Panics
///
/// As [`fuse_pyramids`].
pub fn fuse_pyramids_with_kernel(
    kernel: &mut dyn FilterKernel,
    a: &CwtPyramid,
    b: &CwtPyramid,
    rule: FusionRule,
    lowpass: LowpassRule,
    scratch: &mut FusionScratch,
    out: &mut CwtPyramid,
) {
    assert_eq!(a.levels(), b.levels(), "pyramid depths differ");
    out.reshape_like(a);
    let op = rule.to_op();
    for level in 0..a.levels() {
        let sa = a.subbands(level);
        let sb = b.subbands(level);
        for (band, o) in out.subbands_mut(level).iter_mut().enumerate() {
            let (w, h) = sa[band].dims();
            assert_eq!(sa[band].dims(), sb[band].dims(), "subband shapes differ");
            o.reshape(w, h);
            if h == 0 {
                continue;
            }
            kernel
                .fuse_strip(
                    &sa[band],
                    &sb[band],
                    0,
                    h,
                    op,
                    &mut scratch.fuse,
                    &mut o.re,
                    &mut o.im,
                )
                .expect("equal-shaped subbands and full-height strip are always valid");
        }
    }
    for (o, (la, lb)) in out
        .lowpass_mut()
        .iter_mut()
        .zip(a.lowpass().iter().zip(b.lowpass()))
    {
        fuse_lowpass_into(la, lb, lowpass, o);
    }
}

/// Fuses one lowpass residual image.
pub fn fuse_lowpass(a: &Image, b: &Image, rule: LowpassRule) -> Image {
    let mut out = Image::zeros(0, 0);
    fuse_lowpass_into(a, b, rule, &mut out);
    out
}

/// Allocation-free variant of [`fuse_lowpass`]: writes into `out`
/// (reshaped).
pub fn fuse_lowpass_into(a: &Image, b: &Image, rule: LowpassRule, out: &mut Image) {
    assert_eq!(a.dims(), b.dims(), "lowpass shapes differ");
    let (w, h) = a.dims();
    out.reshape(w, h);
    for y in 0..h {
        for x in 0..w {
            let (va, vb) = (a.get(x, y), b.get(x, y));
            let v = match rule {
                LowpassRule::Average => 0.5 * (va + vb),
                LowpassRule::MaxAbs => {
                    if va.abs() >= vb.abs() {
                        va
                    } else {
                        vb
                    }
                }
                LowpassRule::Weighted { alpha } => alpha * va + (1.0 - alpha) * vb,
            };
            out.set(x, y, v);
        }
    }
}

/// Approximate size-proportional work of applying a rule to one coefficient
/// (used by the cost model; MAC-equivalent units). Calibrated to the
/// **separable** window implementation in [`wavefuse_dtcwt::fuse`]: each
/// window map costs 2 MACs of raw energy plus `2r` horizontal and `2r`
/// vertical adds per pixel — O(r), not O((2r+1)²).
pub fn rule_macs_per_coefficient(rule: FusionRule) -> u64 {
    match rule {
        // Two squared magnitudes plus the compare/select.
        FusionRule::MaxMagnitude => 4,
        // Two separable window maps plus the compare/select.
        FusionRule::WindowEnergy { radius } => 8 * radius as u64 + 6,
        FusionRule::Weighted { .. } => 4,
        // Two salience maps plus the cross map, plus the match/blend math.
        FusionRule::ActivityGuided { radius, .. } => 12 * radius as u64 + 14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::Dtcwt;

    fn pyramids() -> (CwtPyramid, CwtPyramid) {
        let t = Dtcwt::new(2).unwrap();
        let a = Image::from_fn(32, 24, |x, y| ((x * 3 + y) % 11) as f32);
        let b = Image::from_fn(32, 24, |x, y| ((x + 7 * y) % 13) as f32);
        (t.forward(&a).unwrap(), t.forward(&b).unwrap())
    }

    #[test]
    fn scratch_fusion_matches_allocating_fusion_exactly() {
        // One FusionScratch/output pyramid reused across every rule must
        // reproduce the allocating API bit for bit — earlier iterations
        // leave the scratch energy maps dirty on purpose.
        let (pa, pb) = pyramids();
        let mut scratch = FusionScratch::new();
        let mut out = CwtPyramid::empty();
        for rule in [
            FusionRule::MaxMagnitude,
            FusionRule::WindowEnergy { radius: 1 },
            FusionRule::WindowEnergy { radius: 2 },
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
            FusionRule::Weighted { alpha: 0.25 },
        ] {
            for lowpass in [LowpassRule::Average, LowpassRule::MaxAbs] {
                let want = fuse_pyramids(&pa, &pb, rule, lowpass);
                fuse_pyramids_into(&pa, &pb, rule, lowpass, &mut scratch, &mut out);
                for level in 0..want.levels() {
                    for (w, g) in want.subbands(level).iter().zip(out.subbands(level)) {
                        assert_eq!(w.re, g.re, "{rule:?} {lowpass:?}");
                        assert_eq!(w.im, g.im, "{rule:?} {lowpass:?}");
                    }
                }
                assert_eq!(want.lowpass(), out.lowpass());
            }
        }
    }

    #[test]
    fn kernel_fusion_matches_scalar_reference_exactly() {
        // The dispatcher-side kernel path — scalar default and both SIMD
        // overrides — must reproduce fuse_pyramids_into bit for bit for
        // every rule (the fold-order contract, exercised at the pyramid
        // level).
        use wavefuse_dtcwt::ScalarKernel;
        use wavefuse_simd::{AutoVecKernel, SimdKernel};
        let (pa, pb) = pyramids();
        let mut scratch = FusionScratch::new();
        let mut want = CwtPyramid::empty();
        let mut got = CwtPyramid::empty();
        for rule in [
            FusionRule::MaxMagnitude,
            FusionRule::WindowEnergy { radius: 1 },
            FusionRule::WindowEnergy { radius: 3 },
            FusionRule::Weighted { alpha: 0.25 },
            FusionRule::ActivityGuided {
                radius: 2,
                match_threshold: 0.75,
            },
        ] {
            fuse_pyramids_into(
                &pa,
                &pb,
                rule,
                LowpassRule::Average,
                &mut scratch,
                &mut want,
            );
            let mut kernels: [&mut dyn FilterKernel; 3] = [
                &mut ScalarKernel::new(),
                &mut SimdKernel::new(),
                &mut AutoVecKernel::new(),
            ];
            for k in kernels.iter_mut() {
                fuse_pyramids_with_kernel(
                    *k,
                    &pa,
                    &pb,
                    rule,
                    LowpassRule::Average,
                    &mut scratch,
                    &mut got,
                );
                for level in 0..want.levels() {
                    for (w, g) in want.subbands(level).iter().zip(got.subbands(level)) {
                        assert_eq!(w.re, g.re, "{rule:?} {}", k.name());
                        assert_eq!(w.im, g.im, "{rule:?} {}", k.name());
                    }
                }
                assert_eq!(want.lowpass(), got.lowpass(), "{rule:?} {}", k.name());
            }
        }
    }

    #[test]
    fn max_magnitude_picks_stronger_source() {
        let mut a = ComplexImage::zeros(2, 1);
        let mut b = ComplexImage::zeros(2, 1);
        a.re.set(0, 0, 3.0); // |a| = 3 at (0,0)
        b.im.set(0, 0, 1.0); // |b| = 1
        a.re.set(1, 0, 0.5);
        b.re.set(1, 0, -2.0); // |b| = 2 at (1,0)
        let f = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        assert_eq!(f.re.get(0, 0), 3.0);
        assert_eq!(f.re.get(1, 0), -2.0);
    }

    #[test]
    fn weighted_half_is_average() {
        let (pa, pb) = pyramids();
        let f = fuse_pyramids(
            &pa,
            &pb,
            FusionRule::Weighted { alpha: 0.5 },
            LowpassRule::Average,
        );
        let s = f.subbands(0)[0].re.get(3, 3);
        let expect = 0.5 * (pa.subbands(0)[0].re.get(3, 3) + pb.subbands(0)[0].re.get(3, 3));
        assert!((s - expect).abs() < 1e-6);
    }

    #[test]
    fn fusing_identical_pyramids_is_identity() {
        let (pa, _) = pyramids();
        for rule in [
            FusionRule::MaxMagnitude,
            FusionRule::WindowEnergy { radius: 1 },
            FusionRule::Weighted { alpha: 0.5 },
        ] {
            let f = fuse_pyramids(&pa, &pa, rule, LowpassRule::Average);
            for level in 0..pa.levels() {
                for (x, y) in pa.subbands(level).iter().zip(f.subbands(level)) {
                    assert!(x.re.max_abs_diff(&y.re) < 1e-6);
                    assert!(x.im.max_abs_diff(&y.im) < 1e-6);
                }
            }
            for (x, y) in pa.lowpass().iter().zip(f.lowpass()) {
                assert!(x.max_abs_diff(y) < 1e-6);
            }
        }
    }

    #[test]
    fn window_energy_is_noise_robust() {
        // A single spurious strong coefficient in B amid strong A region:
        // the 3x3 energy rule should still choose A there.
        let mut a = ComplexImage::zeros(5, 5);
        let mut b = ComplexImage::zeros(5, 5);
        for y in 0..5 {
            for x in 0..5 {
                a.re.set(x, y, 2.0);
            }
        }
        b.re.set(2, 2, 3.0); // isolated spike
        let point = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        assert_eq!(point.re.get(2, 2), 3.0, "point rule takes the spike");
        let windowed = fuse_subband(&a, &b, FusionRule::WindowEnergy { radius: 1 });
        assert_eq!(windowed.re.get(2, 2), 2.0, "window rule rejects it");
    }

    #[test]
    fn activity_guided_selects_on_disagreement() {
        // Disjoint content (zero match): behaves like window-energy select.
        let mut a = ComplexImage::zeros(6, 6);
        let mut b = ComplexImage::zeros(6, 6);
        for y in 0..6 {
            for x in 0..3 {
                a.re.set(x, y, 2.0);
            }
            for x in 3..6 {
                b.im.set(x, y, 1.5);
            }
        }
        let f = fuse_subband(
            &a,
            &b,
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
        );
        assert_eq!(f.re.get(0, 3), 2.0, "A side keeps A");
        assert_eq!(f.im.get(5, 3), 1.5, "B side keeps B");
    }

    #[test]
    fn activity_guided_blends_on_agreement() {
        // Identical content (match = 1): the blend must reproduce it.
        let mut a = ComplexImage::zeros(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                a.re.set(x, y, 1.0 + (x + y) as f32 * 0.1);
            }
        }
        let f = fuse_subband(
            &a,
            &a,
            FusionRule::ActivityGuided {
                radius: 1,
                match_threshold: 0.75,
            },
        );
        assert!(f.re.max_abs_diff(&a.re) < 1e-5);
        assert!(f.im.max_abs_diff(&a.im) < 1e-5);
    }

    #[test]
    fn lowpass_rules() {
        let a = Image::filled(2, 2, 1.0);
        let b = Image::filled(2, 2, -3.0);
        assert_eq!(fuse_lowpass(&a, &b, LowpassRule::Average).get(0, 0), -1.0);
        assert_eq!(fuse_lowpass(&a, &b, LowpassRule::MaxAbs).get(0, 0), -3.0);
        assert_eq!(
            fuse_lowpass(&a, &b, LowpassRule::Weighted { alpha: 0.75 }).get(0, 0),
            0.75 - 0.75
        );
    }

    #[test]
    fn rule_cost_ordering() {
        assert!(
            rule_macs_per_coefficient(FusionRule::WindowEnergy { radius: 1 })
                > rule_macs_per_coefficient(FusionRule::MaxMagnitude)
        );
    }
}

use std::error::Error;
use std::fmt;

/// Error type for the fusion engine and pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum FusionError {
    /// The two input frames have different dimensions.
    DimensionMismatch {
        /// Dimensions of the first input.
        a: (usize, usize),
        /// Dimensions of the second input.
        b: (usize, usize),
    },
    /// A wavelet transform failed.
    Transform(wavefuse_dtcwt::DtcwtError),
    /// A capture-path component failed.
    Video(wavefuse_video::VideoError),
    /// The simulated platform rejected an operation.
    Platform(wavefuse_zynq::ZynqError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::DimensionMismatch { a, b } => write!(
                f,
                "input frames differ in size: {}x{} vs {}x{}",
                a.0, a.1, b.0, b.1
            ),
            FusionError::Transform(e) => write!(f, "wavelet transform failed: {e}"),
            FusionError::Video(e) => write!(f, "capture path failed: {e}"),
            FusionError::Platform(e) => write!(f, "platform rejected operation: {e}"),
        }
    }
}

impl Error for FusionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FusionError::Transform(e) => Some(e),
            FusionError::Video(e) => Some(e),
            FusionError::Platform(e) => Some(e),
            FusionError::DimensionMismatch { .. } => None,
        }
    }
}

impl From<wavefuse_dtcwt::DtcwtError> for FusionError {
    fn from(e: wavefuse_dtcwt::DtcwtError) -> Self {
        FusionError::Transform(e)
    }
}

impl From<wavefuse_video::VideoError> for FusionError {
    fn from(e: wavefuse_video::VideoError) -> Self {
        FusionError::Video(e)
    }
}

impl From<wavefuse_zynq::ZynqError> for FusionError {
    fn from(e: wavefuse_zynq::ZynqError) -> Self {
        FusionError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_chains() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FusionError>();
        let e = FusionError::from(wavefuse_dtcwt::DtcwtError::BadLevels {
            requested: 9,
            max_supported: 3,
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("transform"));
    }
}

//! Multi-stream fusion serving: N independent streams over one shared
//! worker fleet.
//!
//! The paper's platform fuses one visible+thermal pair per device; a
//! production deployment serves many concurrent streams. This module adds
//! that layer on top of [`FusionEngine`]: a [`StreamManager`] owns N
//! streams — each with its own geometry, decomposition depth, scene seed,
//! pipelining depth, and deadline — all multiplexed onto **one** shared
//! [`WorkerPool`], so the fleet scales with host cores instead of
//! spawning a pool (and paying its warm-up) per stream.
//!
//! Three mechanics make the sharing pay:
//!
//! * **Cross-stream batch packing.** Up to [`PACK_STREAMS`] streams'
//!   forward DT-CWTs are staged into the work-stealing ring *together*
//!   ([`FusionEngine::packed_forward_submit`]) before any are drained —
//!   8 frame pairs x 8 jobs fills the ring's 64 slots exactly — so
//!   workers always see a deep queue instead of draining one stream at a
//!   time. Harvests run in submission order (the ring's `drain_partial`
//!   contract), coordinated by the manager's global FIFO.
//! * **Shared plan cache.** [`TransformPlan`]s are cached fleet-wide,
//!   keyed by `(geometry, levels)` (columnar is a fleet-wide setting), and
//!   handed to same-shape engines via [`FusionEngine::adopt_plan`] — 64
//!   identical streams build one plan, not 64.
//! * **Fleet-level QoS.** The [`QosGovernor`] picks each `Auto` stream's
//!   operating point (deepest feasible levels, minimum-energy CPU backend)
//!   at admission, and the engine's oldest-frame retirement doubles as
//!   cross-stream backpressure: a fleet-wide in-flight cap drops the
//!   globally oldest pending frame, charged to its own stream's counters.
//!
//! Results are bit-identical to running each stream alone: packing changes
//! only job interleaving in the ring, and every stream's combo-order
//! accumulation still happens at its own retirement (see
//! [`solo_digest`] and `tests/serve_identity.rs`).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use wavefuse_dtcwt::{Image, WorkerPool, BATCH_SLOTS};
use wavefuse_trace::{LogHistogram, Telemetry};
use wavefuse_video::camera::{ThermalCamera, WebCamera};
use wavefuse_video::scene::ScenePair;
use wavefuse_video::Frame;

use crate::backend::Backend;
use crate::cost::TransformPlan;
use crate::engine::{build_worker_pool, FusionEngine, PendingFusion};
use crate::governor::QosGovernor;
use crate::FusionError;

/// Streams per packed round: 8 frame pairs x 8 forward jobs fills the
/// pool's [`BATCH_SLOTS`]-slot ring exactly (the submit-side capacity
/// check admits the 64th job at 63 outstanding). Larger fleets are packed
/// in chunks of this size, with the ring drained between chunks.
pub const PACK_STREAMS: usize = BATCH_SLOTS / 8;

/// How a stream's backend (and decomposition depth) is chosen at
/// admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamBackend {
    /// Pin the stream to one pooled CPU backend ([`Backend::Arm`] or
    /// [`Backend::Neon`]; the FPGA/hybrid paths are serial by
    /// construction and cannot be packed into the shared ring).
    Fixed(Backend),
    /// Let the fleet's [`QosGovernor`] pick: deepest feasible levels, then
    /// the minimum-energy CPU backend meeting `1 / target_fps`. Falls back
    /// to NEON at the configured levels when no operating point is
    /// feasible (counted in [`ServeReport::qos_infeasible`]).
    Auto {
        /// The stream's real-time throughput target.
        target_fps: f64,
    },
}

/// One stream's admission parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Frame geometry of this stream's cameras.
    pub frame_size: (usize, usize),
    /// Requested DT-CWT decomposition levels (an `Auto` backend may pick
    /// fewer).
    pub levels: usize,
    /// Scene seed — streams with different seeds carry different content.
    pub scene_seed: u64,
    /// Frame-pipelining depth: how many of this stream's frames may be
    /// pending retirement at once (1 = retire before the next capture).
    pub depth: usize,
    /// Backend selection policy.
    pub backend: StreamBackend,
    /// Per-frame latency budget in seconds; slower retirements count as
    /// deadline misses. The default is the 30 fps camera period.
    pub deadline_s: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            frame_size: (88, 72),
            levels: 3,
            scene_seed: 2016,
            depth: 1,
            backend: StreamBackend::Fixed(Backend::Neon),
            deadline_s: 1.0 / 30.0,
        }
    }
}

/// Fleet-wide configuration of a [`StreamManager`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads of the shared pool (>= 1).
    pub threads: usize,
    /// Whether the fleet's SIMD kernels run the transpose-free columnar
    /// column passes. Fleet-wide: the shared workers' kernels are built
    /// once.
    pub columnar: bool,
    /// Cap on frames pending retirement across the whole fleet. Admitting
    /// a frame past the cap **drops** the globally oldest pending frame
    /// (cross-stream backpressure, charged to that frame's own stream).
    /// `None` disables the cap (each stream is still bounded by its own
    /// `depth`).
    pub max_in_flight: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            threads: 2,
            columnar: true,
            max_in_flight: None,
        }
    }
}

/// A frame pending retirement: the engine token plus its capture time
/// (the latency clock).
#[derive(Debug)]
struct PendingFrame {
    pending: PendingFusion,
    captured: Instant,
}

/// One admitted stream: its engine (sharing the fleet pool), deterministic
/// cameras, pending-frame queue, and per-stream accounting.
#[derive(Debug)]
struct Stream {
    engine: FusionEngine,
    backend: Backend,
    levels: usize,
    depth: usize,
    deadline_s: f64,
    frame_size: (usize, usize),
    web: WebCamera,
    thermal: ThermalCamera,
    visible: Frame,
    field: Frame,
    captured: Instant,
    pending: VecDeque<PendingFrame>,
    latency: LogHistogram,
    frames: u64,
    drops: u64,
    deadline_misses: u64,
    energy_mj: f64,
    digest: u64,
}

impl Stream {
    /// Captures the next visible/thermal pair into the reusable frame
    /// slots and starts the frame's latency clock.
    fn capture(&mut self) -> Result<(), FusionError> {
        self.thermal.capture_into(&mut self.field)?;
        self.web.capture_into(&mut self.visible);
        self.captured = Instant::now();
        Ok(())
    }
}

/// Per-stream slice of a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream index (admission order).
    pub stream: usize,
    /// Executing backend label.
    pub backend: &'static str,
    /// Decomposition levels actually running (an `Auto` stream may run
    /// fewer than requested).
    pub levels: usize,
    /// Frame-pipelining depth.
    pub depth: usize,
    /// Frame geometry.
    pub frame_size: (usize, usize),
    /// Frames delivered during the measured window.
    pub frames: u64,
    /// Frames dropped by fleet backpressure during the window.
    pub drops: u64,
    /// Delivered frames that missed the stream's deadline.
    pub deadline_misses: u64,
    /// Delivered frames per second over the window's wall clock.
    pub fps: f64,
    /// Median capture-to-retire latency, seconds (cumulative since the
    /// last [`StreamManager::reset_latency_stats`]).
    pub p50_latency_s: f64,
    /// 99th-percentile capture-to-retire latency, seconds.
    pub p99_latency_s: f64,
    /// Modeled energy per delivered frame, millijoules.
    pub energy_mj_per_frame: f64,
}

/// What one [`StreamManager::run`] window measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Streams admitted.
    pub streams: usize,
    /// Worker threads of the shared pool.
    pub threads: usize,
    /// Whether the fleet ran the columnar column passes.
    pub columnar: bool,
    /// Wall-clock seconds of the window.
    pub wall_s: f64,
    /// Frames delivered across all streams.
    pub total_frames: u64,
    /// Frames dropped by fleet backpressure.
    pub total_drops: u64,
    /// Delivered frames per second, fleet-wide.
    pub aggregate_fps: f64,
    /// min/max per-stream fps ratio (1.0 = perfectly fair; only streams
    /// that delivered frames count).
    pub fairness: f64,
    /// Mean modeled energy per delivered frame, millijoules.
    pub energy_mj_per_frame: f64,
    /// Distinct `(geometry, levels)` plans built for the whole fleet.
    pub plan_cache_entries: usize,
    /// Admissions served from the shared plan cache instead of building.
    pub plan_cache_hits: u64,
    /// `Auto` admissions whose deadline no operating point could meet
    /// (they fall back to NEON at the requested levels).
    pub qos_infeasible: u64,
    /// One entry per stream, admission order.
    pub per_stream: Vec<StreamReport>,
}

/// Per-stream counters snapshotted at a window boundary.
#[derive(Debug, Clone, Copy, Default)]
struct StreamSnapshot {
    frames: u64,
    drops: u64,
    deadline_misses: u64,
    energy_mj: f64,
}

/// The multi-tenant serving layer: owns the shared [`WorkerPool`], the
/// fleet plan cache, the admitted streams, and the cross-stream packing /
/// retirement protocol. See the module docs for the architecture.
#[derive(Debug)]
pub struct StreamManager {
    pool: Arc<WorkerPool>,
    threads: usize,
    columnar: bool,
    max_in_flight: Option<usize>,
    streams: Vec<Stream>,
    /// Fleet plan cache: `(levels, plan)`, matched on `frame_dims()` too.
    plans: Vec<(usize, Arc<TransformPlan>)>,
    plan_hits: u64,
    qos_infeasible: u64,
    /// Stream ids of pending frames in pool-submission order — the global
    /// retirement FIFO backpressure drops pop from.
    retire_fifo: VecDeque<usize>,
    /// Stream ids whose newest inverse batch is still (unstashed) in the
    /// shared ring, in submission order — the stash walk empties this
    /// before each packed chunk.
    unstashed: VecDeque<usize>,
    in_flight: usize,
    digests: bool,
    telemetry: Option<Arc<Telemetry>>,
}

impl StreamManager {
    /// Builds a manager with its shared worker fleet (no streams yet).
    pub fn new(fleet: FleetConfig) -> Self {
        let threads = fleet.threads.max(1);
        StreamManager {
            pool: Arc::new(build_worker_pool(threads, fleet.columnar)),
            threads,
            columnar: fleet.columnar,
            max_in_flight: fleet.max_in_flight,
            streams: Vec::new(),
            plans: Vec::new(),
            plan_hits: 0,
            qos_infeasible: 0,
            retire_fifo: VecDeque::new(),
            unstashed: VecDeque::new(),
            in_flight: 0,
            digests: false,
            telemetry: None,
        }
    }

    /// Enables per-stream output digesting: every delivered frame's pixel
    /// bits are folded into the stream's FNV-1a digest (see
    /// [`StreamManager::stream_digest`]). Off by default — hashing every
    /// output is bit-identity-test machinery, not serving work.
    pub fn set_digests(&mut self, enabled: bool) {
        self.digests = enabled;
    }

    /// Attaches telemetry: per-stream labeled counters are emitted at each
    /// retirement and the per-stream latency histograms are published at
    /// each [`StreamManager::run`] boundary. Stream labels come from
    /// [`stream_label`] (cardinality-capped). The streams' engines stay
    /// un-instrumented — the shared pool's counters are fleet-global and
    /// per-engine delta reporting would double-count them.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        let m = telemetry.metrics();
        m.describe(
            "wavefuse_stream_frames_total",
            "Frames delivered, by serving stream",
        );
        m.describe(
            "wavefuse_stream_drops_total",
            "Frames dropped by fleet backpressure, by serving stream",
        );
        m.describe(
            "wavefuse_frame_latency_seconds",
            "Capture-to-retire frame latency",
        );
        self.telemetry = Some(telemetry);
    }

    /// Admits one stream into the fleet: resolves its operating point
    /// (governor for `Auto`), builds its engine on the shared pool,
    /// installs the fleet-cached plan, pre-sizes every steady-state
    /// buffer, and constructs its deterministic cameras. Returns the
    /// stream id.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the geometry cannot support
    /// even one decomposition level.
    pub fn admit(&mut self, cfg: StreamConfig) -> Result<usize, FusionError> {
        let (w, h) = cfg.frame_size;
        let (backend, levels) = self.resolve_operating_point(&cfg)?;
        let depth = cfg.depth.max(1);
        let mut engine = FusionEngine::new(levels)?;
        engine.set_shared_pool(Arc::clone(&self.pool));
        engine.set_columnar(self.columnar);
        engine.set_pipeline_depth(depth);
        engine.adopt_plan(self.fleet_plan(w, h, levels)?);
        engine.reserve_frame_buffers(w, h)?;
        let scene = ScenePair::new(cfg.scene_seed);
        let mut stream = Stream {
            engine,
            backend,
            levels,
            depth,
            deadline_s: cfg.deadline_s,
            frame_size: (w, h),
            web: WebCamera::new(scene.clone(), w, h),
            thermal: ThermalCamera::new(scene, w, h),
            visible: Frame::new(Image::zeros(0, 0), 0),
            field: Frame::new(Image::zeros(0, 0), 0),
            captured: Instant::now(),
            pending: VecDeque::with_capacity(depth),
            latency: LogHistogram::with_defaults(),
            frames: 0,
            drops: 0,
            deadline_misses: 0,
            energy_mj: 0.0,
            digest: FNV_OFFSET,
        };
        // Warm the capture path so the first packed round is already in
        // the zero-allocation steady state, then rebuild the cameras so
        // the delivered content sequence still starts at frame 0 (the
        // fleet must stay bit-identical to a solo run — `solo_digest`).
        stream.capture()?;
        let scene = ScenePair::new(cfg.scene_seed);
        stream.web = WebCamera::new(scene.clone(), w, h);
        stream.thermal = ThermalCamera::new(scene, w, h);
        let id = self.streams.len();
        self.streams.push(stream);
        self.retire_fifo.reserve(depth);
        self.unstashed.reserve(depth);
        Ok(id)
    }

    /// Resolves a stream's `(backend, levels)` operating point — the
    /// governor's pick for `Auto`, validated pass-through for `Fixed`.
    fn resolve_operating_point(
        &mut self,
        cfg: &StreamConfig,
    ) -> Result<(Backend, usize), FusionError> {
        match cfg.backend {
            StreamBackend::Fixed(b) => {
                assert!(
                    matches!(b, Backend::Arm | Backend::Neon),
                    "serving packs streams onto the pooled CPU backends"
                );
                Ok((b, cfg.levels))
            }
            StreamBackend::Auto { target_fps } => {
                let (w, h) = cfg.frame_size;
                // Admission is off the hot path, so a per-stream governor
                // (capped at the stream's requested levels, CPU candidates
                // only — those are what the ring can pack) is fine.
                let governor =
                    QosGovernor::new(cfg.levels).with_candidates(&[Backend::Neon, Backend::Arm]);
                match governor.decide(w, h, target_fps)? {
                    Some(d) => Ok((d.backend, d.levels)),
                    None => {
                        self.qos_infeasible += 1;
                        Ok((Backend::Neon, cfg.levels))
                    }
                }
            }
        }
    }

    /// Looks up (or builds and caches) the fleet-shared plan for a
    /// geometry/levels pair.
    fn fleet_plan(
        &mut self,
        w: usize,
        h: usize,
        levels: usize,
    ) -> Result<Arc<TransformPlan>, FusionError> {
        if let Some((_, plan)) = self
            .plans
            .iter()
            .find(|(l, p)| *l == levels && p.frame_dims() == (w, h))
        {
            self.plan_hits += 1;
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(TransformPlan::dtcwt(w, h, levels)?);
        self.plans.push((levels, Arc::clone(&plan)));
        Ok(plan)
    }

    /// Admitted streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Worker threads of the shared pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// FNV-1a digest over the pixel bits of every frame a stream has
    /// delivered — byte-identical streams produce equal digests (see
    /// [`solo_digest`]). Stays at the FNV offset basis unless
    /// [`StreamManager::set_digests`] enabled digesting.
    pub fn stream_digest(&self, stream: usize) -> u64 {
        self.streams[stream].digest
    }

    /// Frames a stream has delivered (drops excluded).
    pub fn stream_frames(&self, stream: usize) -> u64 {
        self.streams[stream].frames
    }

    /// Frames dropped from a stream by fleet backpressure.
    pub fn stream_drops(&self, stream: usize) -> u64 {
        self.streams[stream].drops
    }

    /// The backend a stream was admitted on.
    pub fn stream_backend(&self, stream: usize) -> Backend {
        self.streams[stream].backend
    }

    /// The decomposition levels a stream actually runs.
    pub fn stream_levels(&self, stream: usize) -> usize {
        self.streams[stream].levels
    }

    /// Distinct plans in the fleet cache.
    pub fn plan_cache_entries(&self) -> usize {
        self.plans.len()
    }

    /// Admissions served from the fleet plan cache.
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_hits
    }

    /// Replaces every stream's latency histogram (they are cumulative and
    /// cannot be snapshotted differentially) — call between a warm-up
    /// window and the measured window.
    pub fn reset_latency_stats(&mut self) {
        for s in &mut self.streams {
            s.latency = LogHistogram::with_defaults();
        }
    }

    /// Drives every stream for `frames_per_stream` rounds (one capture per
    /// stream per round), retires everything still pending, and reports
    /// the window: aggregate and per-stream throughput, latency quantiles,
    /// fairness, energy, drops, and plan-cache effectiveness.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error (none occur for supported
    /// geometries).
    pub fn run(&mut self, frames_per_stream: usize) -> Result<ServeReport, FusionError> {
        let before: Vec<StreamSnapshot> = self
            .streams
            .iter()
            .map(|s| StreamSnapshot {
                frames: s.frames,
                drops: s.drops,
                deadline_misses: s.deadline_misses,
                energy_mj: s.energy_mj,
            })
            .collect();
        let t0 = Instant::now();
        for _ in 0..frames_per_stream {
            self.round()?;
        }
        self.drain()?;
        let wall_s = t0.elapsed().as_secs_f64();
        self.publish_histograms();
        Ok(self.report(wall_s, &before))
    }

    /// One packed round: every stream captures and fuses one frame, packed
    /// into the shared ring in chunks of [`PACK_STREAMS`].
    fn round(&mut self) -> Result<(), FusionError> {
        let n = self.streams.len();
        let mut start = 0;
        while start < n {
            let end = (start + PACK_STREAMS).min(n);
            // Empty the shared ring: stash every in-flight inverse batch,
            // walking the global FIFO so `drain_partial`'s oldest-first
            // harvests land in the right engines' slots.
            self.stash_all();
            // Phase A — pack the chunk: one capture + eight forward jobs
            // per stream, no drains, so the ring fills with up to 64
            // cross-stream jobs. Backpressure retires/drops first.
            for i in start..end {
                self.admit_frame(i)?;
            }
            // Phase B — collect in the same order: each stream harvests
            // its own (oldest-remaining) forwards, fuses, and leaves its
            // four inverse jobs in flight behind the later streams'
            // forwards.
            for i in start..end {
                let pending = self.streams[i].engine.packed_forward_finish()?;
                let captured = self.streams[i].captured;
                self.streams[i]
                    .pending
                    .push_back(PendingFrame { pending, captured });
                self.retire_fifo.push_back(i);
                self.unstashed.push_back(i);
                self.in_flight += 1;
            }
            start = end;
        }
        Ok(())
    }

    /// Retires every pending frame (deliveries, not drops), leaving the
    /// ring and every stream idle.
    fn drain(&mut self) -> Result<(), FusionError> {
        self.stash_all();
        while let Some(&i) = self.retire_fifo.front() {
            self.retire(i, false)?;
        }
        Ok(())
    }

    /// Harvests every unstashed inverse batch from the shared ring into
    /// its engine's slot stash, in global submission order — the only
    /// order `drain_partial`'s oldest-first contract allows.
    fn stash_all(&mut self) {
        while let Some(i) = self.unstashed.pop_front() {
            let stashed = self.streams[i].engine.stash_oldest_in_flight();
            debug_assert!(stashed, "FIFO entry without an unstashed batch");
        }
    }

    /// Backpressure + capture + packed submit for one stream's next frame.
    fn admit_frame(&mut self, i: usize) -> Result<(), FusionError> {
        // Per-stream depth: retire this stream's oldest before exceeding
        // its pipelining depth.
        while self.streams[i].pending.len() >= self.streams[i].depth {
            self.retire(i, false)?;
        }
        // Fleet cap: drop the globally oldest pending frame, whichever
        // stream owns it (cross-stream backpressure).
        while let Some(cap) = self.max_in_flight {
            if self.in_flight < cap {
                break;
            }
            let victim = *self
                .retire_fifo
                .front()
                .expect("frames in flight imply FIFO entries");
            self.retire(victim, true)?;
        }
        let st = &mut self.streams[i];
        st.capture()?;
        let backend = st.backend;
        st.engine
            .packed_forward_submit(st.visible.image(), st.field.image(), backend)
    }

    /// Retires stream `i`'s oldest pending frame. `dropped` frames are
    /// discarded and charged to the stream's drop counter instead of its
    /// delivery stats. The frame must already be stashed (the pool is not
    /// touched), so retirement order across streams is free.
    fn retire(&mut self, i: usize, dropped: bool) -> Result<(), FusionError> {
        let pf = self.streams[i]
            .pending
            .pop_front()
            .expect("retire without a pending frame");
        remove_first(&mut self.retire_fifo, i);
        self.in_flight -= 1;
        let st = &mut self.streams[i];
        let out = st.engine.fuse_finish(pf.pending)?;
        let latency_s = pf.captured.elapsed().as_secs_f64();
        if dropped {
            st.drops += 1;
        } else {
            st.frames += 1;
            st.energy_mj += out.energy_mj;
            if latency_s > st.deadline_s {
                st.deadline_misses += 1;
            }
            st.latency.observe(latency_s);
            if self.digests {
                st.digest = fnv1a_image(st.digest, &out.image);
            }
        }
        st.engine.recycle(out);
        if let Some(tel) = &self.telemetry {
            let m = tel.metrics();
            let label = stream_label(i);
            if dropped {
                m.counter_add("wavefuse_stream_drops_total", &[("stream", label)], 1.0);
            } else {
                m.counter_add("wavefuse_stream_frames_total", &[("stream", label)], 1.0);
            }
        }
        Ok(())
    }

    /// Publishes every stream's latency histogram under its
    /// (cardinality-capped) stream label.
    fn publish_histograms(&self) {
        let Some(tel) = &self.telemetry else {
            return;
        };
        let m = tel.metrics();
        for (i, s) in self.streams.iter().enumerate() {
            m.set_histogram(
                "wavefuse_frame_latency_seconds",
                &[("stream", stream_label(i))],
                s.latency.snapshot(),
            );
        }
    }

    /// Builds the window report from the per-stream deltas.
    fn report(&self, wall_s: f64, before: &[StreamSnapshot]) -> ServeReport {
        let wall = wall_s.max(1e-12);
        let mut per_stream = Vec::with_capacity(self.streams.len());
        let mut total_frames = 0u64;
        let mut total_drops = 0u64;
        let mut total_energy = 0.0;
        let mut min_fps = f64::INFINITY;
        let mut max_fps: f64 = 0.0;
        for (i, s) in self.streams.iter().enumerate() {
            let frames = s.frames - before[i].frames;
            let drops = s.drops - before[i].drops;
            let energy = s.energy_mj - before[i].energy_mj;
            let fps = frames as f64 / wall;
            if frames > 0 {
                min_fps = min_fps.min(fps);
                max_fps = max_fps.max(fps);
            }
            total_frames += frames;
            total_drops += drops;
            total_energy += energy;
            per_stream.push(StreamReport {
                stream: i,
                backend: s.backend.label(),
                levels: s.levels,
                depth: s.depth,
                frame_size: s.frame_size,
                frames,
                drops,
                deadline_misses: s.deadline_misses - before[i].deadline_misses,
                fps,
                p50_latency_s: s.latency.quantile(0.50),
                p99_latency_s: s.latency.quantile(0.99),
                energy_mj_per_frame: energy / (frames.max(1) as f64),
            });
        }
        ServeReport {
            streams: self.streams.len(),
            threads: self.threads,
            columnar: self.columnar,
            wall_s,
            total_frames,
            total_drops,
            aggregate_fps: total_frames as f64 / wall,
            fairness: if max_fps > 0.0 && min_fps.is_finite() {
                min_fps / max_fps
            } else {
                0.0
            },
            energy_mj_per_frame: total_energy / (total_frames.max(1) as f64),
            plan_cache_entries: self.plans.len(),
            plan_cache_hits: self.plan_hits,
            qos_infeasible: self.qos_infeasible,
            per_stream,
        }
    }
}

/// Static label strings for per-stream metric series: streams 0..=15 get
/// their own label, everything beyond folds into one `"overflow"` bucket
/// so fleet size cannot blow up exporter cardinality.
pub fn stream_label(stream: usize) -> &'static str {
    const LABELS: [&str; 16] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    LABELS.get(stream).copied().unwrap_or("overflow")
}

/// Fuses `frames` frames of a stream's deterministic source **serially**
/// (no pool, depth 1) and returns the FNV-1a digest of the delivered pixel
/// stream — the bit-identity reference the fleet path must reproduce.
///
/// `Auto` backends resolve to NEON here (the governor's CPU candidates are
/// bit-identical, so identity tests should pin the backend).
///
/// # Errors
///
/// Same as [`StreamManager::admit`].
pub fn solo_digest(cfg: &StreamConfig, columnar: bool, frames: usize) -> Result<u64, FusionError> {
    let (w, h) = cfg.frame_size;
    let backend = match cfg.backend {
        StreamBackend::Fixed(b) => b,
        StreamBackend::Auto { .. } => Backend::Neon,
    };
    let mut engine = FusionEngine::new(cfg.levels)?;
    engine.set_columnar(columnar);
    let scene = ScenePair::new(cfg.scene_seed);
    let mut web = WebCamera::new(scene.clone(), w, h);
    let mut thermal = ThermalCamera::new(scene, w, h);
    let mut visible = Frame::new(Image::zeros(0, 0), 0);
    let mut field = Frame::new(Image::zeros(0, 0), 0);
    let mut digest = FNV_OFFSET;
    for _ in 0..frames {
        thermal.capture_into(&mut field)?;
        web.capture_into(&mut visible);
        let out = engine.fuse(visible.image(), field.image(), backend)?;
        digest = fnv1a_image(digest, &out.image);
        engine.recycle(out);
    }
    Ok(digest)
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds an image's pixel bits into an FNV-1a 64 digest (allocation-free).
fn fnv1a_image(mut hash: u64, img: &Image) -> u64 {
    for &px in img.as_slice() {
        for byte in px.to_bits().to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Removes the earliest occurrence of `value` from the FIFO.
fn remove_first(fifo: &mut VecDeque<usize>, value: usize) {
    let pos = fifo
        .iter()
        .position(|&v| v == value)
        .expect("retired stream has a FIFO entry");
    fifo.remove(pos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_streams_share_one_plan() {
        let mut mgr = StreamManager::new(FleetConfig {
            threads: 2,
            ..FleetConfig::default()
        });
        for _ in 0..4 {
            mgr.admit(StreamConfig::default()).unwrap();
        }
        assert_eq!(mgr.plan_cache_entries(), 1);
        assert_eq!(mgr.plan_cache_hits(), 3);
        // A different geometry (or level count) builds a second plan.
        mgr.admit(StreamConfig {
            frame_size: (64, 48),
            ..StreamConfig::default()
        })
        .unwrap();
        mgr.admit(StreamConfig {
            levels: 2,
            ..StreamConfig::default()
        })
        .unwrap();
        assert_eq!(mgr.plan_cache_entries(), 3);
    }

    #[test]
    fn fleet_delivers_every_streams_frame_budget() {
        let mut mgr = StreamManager::new(FleetConfig {
            threads: 2,
            ..FleetConfig::default()
        });
        mgr.set_digests(true);
        for seed in 0..3 {
            mgr.admit(StreamConfig {
                scene_seed: 100 + seed,
                ..StreamConfig::default()
            })
            .unwrap();
        }
        let report = mgr.run(5).unwrap();
        assert_eq!(report.total_frames, 15);
        assert_eq!(report.total_drops, 0);
        assert!(report.aggregate_fps > 0.0);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        for (i, s) in report.per_stream.iter().enumerate() {
            assert_eq!(s.frames, 5, "stream {i}");
            assert_ne!(mgr.stream_digest(i), FNV_OFFSET, "stream {i} digested");
        }
        // Different seeds produce different content.
        assert_ne!(mgr.stream_digest(0), mgr.stream_digest(1));
    }

    #[test]
    fn auto_streams_take_governor_operating_points() {
        let mut mgr = StreamManager::new(FleetConfig::default());
        // Loose deadline: the governor picks a deep, feasible CPU point.
        let relaxed = mgr
            .admit(StreamConfig {
                backend: StreamBackend::Auto { target_fps: 1.0 },
                ..StreamConfig::default()
            })
            .unwrap();
        assert!(matches!(
            mgr.stream_backend(relaxed),
            Backend::Arm | Backend::Neon
        ));
        assert!(mgr.stream_levels(relaxed) >= 1);
        // Impossible deadline: infeasible, falls back to NEON as requested.
        let strict = mgr
            .admit(StreamConfig {
                backend: StreamBackend::Auto { target_fps: 1e9 },
                ..StreamConfig::default()
            })
            .unwrap();
        assert_eq!(mgr.stream_backend(strict), Backend::Neon);
        let report = mgr.run(2).unwrap();
        assert_eq!(report.qos_infeasible, 1);
    }

    #[test]
    fn fleet_cap_drops_are_charged_to_the_owning_stream() {
        // Two streams at depth 2 with a fleet cap of 2: each round packs
        // two new frames on top of two pending, so the cap evicts the
        // globally oldest pending frames — and every delivery/drop must
        // land on the right stream's counters.
        let mut mgr = StreamManager::new(FleetConfig {
            threads: 2,
            max_in_flight: Some(2),
            ..FleetConfig::default()
        });
        for seed in 0..2 {
            mgr.admit(StreamConfig {
                depth: 2,
                scene_seed: seed,
                ..StreamConfig::default()
            })
            .unwrap();
        }
        let rounds = 6;
        let report = mgr.run(rounds).unwrap();
        assert!(report.total_drops > 0, "cap must force drops");
        for s in &report.per_stream {
            assert_eq!(
                s.frames + s.drops,
                rounds as u64,
                "stream {}: every captured frame is delivered or dropped",
                s.stream
            );
        }
    }

    #[test]
    fn stream_labels_cap_cardinality() {
        assert_eq!(stream_label(0), "0");
        assert_eq!(stream_label(15), "15");
        assert_eq!(stream_label(16), "overflow");
        assert_eq!(stream_label(5000), "overflow");
    }

    #[test]
    fn mixed_geometry_fleet_runs() {
        let mut mgr = StreamManager::new(FleetConfig {
            threads: 2,
            ..FleetConfig::default()
        });
        for (i, size) in [(88, 72), (64, 48), (88, 72), (48, 40)].iter().enumerate() {
            mgr.admit(StreamConfig {
                frame_size: *size,
                scene_seed: i as u64,
                ..StreamConfig::default()
            })
            .unwrap();
        }
        let report = mgr.run(3).unwrap();
        assert_eq!(report.total_frames, 12);
        assert_eq!(report.plan_cache_entries, 3);
        assert_eq!(report.plan_cache_hits, 1);
    }
}

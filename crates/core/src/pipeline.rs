//! The end-to-end video-fusion pipeline (paper §VI, Fig. 7).
//!
//! Couples the two camera models to the fusion engine: the visible stream
//! arrives through the USB/PS path, the thermal stream through the BT.656
//! decode → scale path, both gated through the depth-1 frame gate (the
//! paper's output FIFO), then fused frame by frame on a fixed or
//! adaptively chosen backend, accumulating modeled time and energy.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wavefuse_dtcwt::{Image, PoolStats, WorkerSchedStats};
use wavefuse_trace::{FlightRecorder, FrameRecord, LogHistogram, Telemetry};
use wavefuse_video::camera::{ThermalCamera, WebCamera};
use wavefuse_video::fifo::FrameGate;
use wavefuse_video::scene::ScenePair;
use wavefuse_video::Frame;

use crate::adaptive::{AdaptiveScheduler, Objective, Policy};
use crate::backend::{Backend, BackendCounts};
use crate::engine::{FusionEngine, FusionOutput, PendingFusion, PhaseTiming, PHASE_NAMES};
use crate::FusionError;

/// Frames the always-on flight recorder retains (the paper profiles runs
/// of tens of frames; 1024 covers every harness in this workspace without
/// wrapping while still bounding memory at ~300 KiB).
pub const FLIGHT_CAPACITY: usize = 1024;

/// How the pipeline picks a backend per frame.
#[derive(Debug)]
pub enum BackendChoice {
    /// Always the same backend.
    Fixed(Backend),
    /// Per-frame decision by an [`AdaptiveScheduler`] (with observation
    /// feedback for the online policy).
    Adaptive(Box<AdaptiveScheduler>),
}

/// Pipeline configuration.
#[derive(Debug)]
pub struct PipelineConfig {
    /// Fused frame geometry (both streams are delivered at this size).
    pub frame_size: (usize, usize),
    /// DT-CWT decomposition depth.
    pub levels: usize,
    /// Backend selection.
    pub backend: BackendChoice,
    /// Scene seed (reproducibility).
    pub scene_seed: u64,
    /// Transform worker threads (1 = serial on the caller's thread). Values
    /// above 1 spawn a persistent [`wavefuse_dtcwt::WorkerPool`] in the
    /// engine, reused for every frame.
    pub threads: usize,
    /// Software-pipelining depth: how many frames may be in flight at
    /// once (1 = the classic schedule with single-frame capture overlap).
    /// Depth > 1 takes effect only on the pooled CPU backends
    /// (`Fixed(Arm|Neon)` with `threads > 1`); any other configuration
    /// silently degrades to 1 so the depth-1 schedule stays bit-for-bit
    /// unchanged.
    pub depth: usize,
}

impl Default for PipelineConfig {
    /// The paper's evaluation default: 88x72 frames, 3 levels, fixed NEON,
    /// serial transforms.
    fn default() -> Self {
        PipelineConfig {
            frame_size: (88, 72),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 1,
            threads: 1,
            depth: 1,
        }
    }
}

/// One frame submitted to the engine but not yet retired: everything the
/// retirement step needs to finish it and write its flight record.
#[derive(Debug)]
struct InFlightFrame {
    pending: PendingFusion,
    backend: Backend,
    wall_start: Duration,
}

/// Accumulated statistics of a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Fused frames produced.
    pub frames: u64,
    /// Accumulated per-phase modeled time.
    pub timing: PhaseTiming,
    /// Accumulated modeled energy, millijoules.
    pub energy_mj: f64,
    /// Frames executed per backend, indexable by [`Backend`].
    pub backend_usage: BackendCounts,
    /// Thermal frames dropped at the frame gate.
    pub gate_drops: u64,
}

/// The dual-camera fusion pipeline.
///
/// # Examples
///
/// ```
/// use wavefuse_core::pipeline::{PipelineConfig, VideoFusionPipeline};
///
/// let mut pipe = VideoFusionPipeline::new(PipelineConfig::default())?;
/// let fused = pipe.step()?;
/// assert_eq!(fused.image.dims(), (88, 72));
/// assert_eq!(pipe.stats().frames, 1);
/// # Ok::<(), wavefuse_core::FusionError>(())
/// ```
#[derive(Debug)]
pub struct VideoFusionPipeline {
    engine: FusionEngine,
    web: WebCamera,
    thermal: ThermalCamera,
    gate: FrameGate<Frame>,
    backend: BackendChoice,
    stats: PipelineStats,
    telemetry: Option<Arc<Telemetry>>,
    /// Reusable visible-capture slot (the webcam writes into it in place).
    visible: Frame,
    /// Free list of thermal frame buffers ping-ponged through the gate, so
    /// the double-buffered steady state captures without allocating.
    thermal_free: Vec<Frame>,
    /// Whether the next frame's captures already ran, overlapped with the
    /// previous frame's in-flight inverse transform (software pipelining;
    /// only set when the engine runs a worker pool at depth 1).
    prefetched: bool,
    /// Effective pipelining depth (after the degrade rule in
    /// [`PipelineConfig::depth`]); 1 = the classic schedule.
    depth: usize,
    /// Frames submitted but not yet retired, oldest first (depth > 1).
    /// In-order retirement: `step` always finishes the front.
    in_flight: VecDeque<InFlightFrame>,
    /// Always-on per-frame flight recorder (ring of the last
    /// [`FLIGHT_CAPACITY`] frames; recording is allocation-free).
    flight: FlightRecorder,
    /// Host wall-clock origin for flight-record timestamps.
    wall_origin: Instant,
    /// Cumulative wall-clock seconds spent capturing/scaling frame pairs
    /// (webcam + thermal capture and gating), across all steps — the
    /// capture-side companion of the engine's `wall_phase_totals`; the
    /// bench harness reports per-run deltas.
    wall_capture_s: f64,
    /// Engine scheduler totals already charged to flight records.
    last_sched: WorkerSchedStats,
    /// Buffer-pool counters already charged to flight records.
    last_pool: PoolStats,
    /// Always-on sharded histogram of modeled frame latency, seconds.
    hist_frame_s: LogHistogram,
    /// Always-on sharded histogram of modeled frame energy, mJ.
    hist_energy_mj: LogHistogram,
    /// Per-phase latency histograms, index-aligned with
    /// [`PHASE_NAMES`](crate::engine::PHASE_NAMES).
    hist_phase_s: [LogHistogram; 5],
}

impl VideoFusionPipeline {
    /// Builds the pipeline: scene, cameras, engine.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the configured geometry cannot
    /// support the decomposition depth.
    pub fn new(config: PipelineConfig) -> Result<Self, FusionError> {
        let (w, h) = config.frame_size;
        let scene = ScenePair::new(config.scene_seed);
        let mut engine = FusionEngine::new(config.levels)?;
        engine.set_threads(config.threads);
        // Depth > 1 needs the worker-pool submit/finish split and a fixed
        // CPU backend; everything else degrades to the depth-1 schedule.
        let depth = match &config.backend {
            BackendChoice::Fixed(Backend::Arm | Backend::Neon) if config.threads > 1 => {
                config.depth.max(1)
            }
            _ => 1,
        };
        engine.set_pipeline_depth(depth);
        if depth > 1 {
            // Pre-reserve per-slot combo stores and the output pool from
            // the plan, so first frames at large sizes don't miss-spike.
            engine.reserve_frame_buffers(w, h)?;
        }
        Ok(VideoFusionPipeline {
            engine,
            web: WebCamera::new(scene.clone(), w, h),
            thermal: ThermalCamera::new(scene, w, h),
            gate: FrameGate::new(),
            backend: config.backend,
            stats: PipelineStats::default(),
            telemetry: None,
            visible: Frame::new(Image::zeros(0, 0), 0),
            thermal_free: Vec::with_capacity(4 + depth),
            prefetched: false,
            depth,
            in_flight: VecDeque::with_capacity(depth),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
            wall_origin: Instant::now(),
            wall_capture_s: 0.0,
            last_sched: WorkerSchedStats::default(),
            last_pool: PoolStats::default(),
            hist_frame_s: LogHistogram::with_defaults(),
            hist_energy_mj: LogHistogram::with_defaults(),
            hist_phase_s: [
                LogHistogram::with_defaults(),
                LogHistogram::with_defaults(),
                LogHistogram::with_defaults(),
                LogHistogram::with_defaults(),
                LogHistogram::with_defaults(),
            ],
        })
    }

    /// Attaches a telemetry handle to the pipeline and every component
    /// beneath it (engine, accelerator kernels, adaptive scheduler).
    ///
    /// Each [`step`](Self::step) then records a `frame` span on the modeled
    /// timeline (enclosing the engine's per-phase spans), per-backend frame
    /// counters, a frame-latency histogram, gate-drop counters, and energy
    /// totals.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_frames_total",
            "Fused frames produced, by executing backend",
        );
        telemetry.metrics().describe(
            "wavefuse_gate_drops_total",
            "Thermal fields dropped at the depth-1 frame gate",
        );
        telemetry.metrics().describe(
            "wavefuse_frame_seconds",
            "Modeled end-to-end latency per fused frame, seconds",
        );
        telemetry.metrics().describe(
            "wavefuse_pipeline_energy_millijoules",
            "Accumulated modeled energy over the pipeline run",
        );
        telemetry.metrics().describe(
            "wavefuse_frame_latency_seconds",
            "Sharded histogram of modeled frame latency across all backends",
        );
        telemetry.metrics().describe(
            "wavefuse_frame_energy_millijoules",
            "Sharded histogram of modeled per-frame energy",
        );
        telemetry.metrics().describe(
            "wavefuse_phase_latency_seconds",
            "Sharded histogram of modeled per-phase latency",
        );
        self.engine.set_telemetry(Arc::clone(&telemetry));
        if let BackendChoice::Adaptive(s) = &mut self.backend {
            s.set_telemetry(Arc::clone(&telemetry));
        }
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Captures one frame pair and fuses it.
    ///
    /// The thermal path models the paper's FIFO gating: the camera offers
    /// its field to the gate; the fusion step takes it. (At one offer per
    /// step nothing drops — drops appear when the producer outpaces the
    /// consumer, see [`VideoFusionPipeline::step_with_burst`].)
    ///
    /// # Errors
    ///
    /// Propagates capture and transform errors.
    pub fn step(&mut self) -> Result<FusionOutput, FusionError> {
        self.step_with_burst(1)
    }

    /// Like [`step`](Self::step), but the thermal camera produces `burst`
    /// fields while only one is consumed — excess fields drop at the gate
    /// exactly as in the paper's hardware FIFO.
    ///
    /// When the engine runs a worker pool, the step is software-pipelined:
    /// after the frame's transforms are submitted, the *next* frame's
    /// captures run while the inverse transform is still in flight on the
    /// workers, and the following step skips the captures it already has.
    /// The capture sequence (and hence every fused frame and statistic) is
    /// identical to the serial schedule — only the wall-clock overlap
    /// differs.
    ///
    /// At depth > 1 (see [`PipelineConfig::depth`]) the step runs the
    /// depth-k schedule instead: the first call fills the ring by
    /// capturing and submitting k frames, and every call thereafter
    /// captures + submits frame `i+k-1` and retires frame `i` — so the
    /// capture of a new frame overlaps the in-flight transforms of the
    /// k-1 frames ahead of it. Captures keep their serial order, so the
    /// fused frames and statistics are bit-identical to depth 1; `burst`
    /// applies to each capture performed during the call (capture-time
    /// semantics). Dropping or reconfiguring the pipeline abandons the
    /// k-1 captured-but-unretired frames.
    ///
    /// # Errors
    ///
    /// Propagates capture and transform errors.
    pub fn step_with_burst(&mut self, burst: usize) -> Result<FusionOutput, FusionError> {
        if self.depth > 1 {
            return self.step_pipelined(burst);
        }
        let wall_start = self.wall_origin.elapsed();
        // One thermal field and the visible frame may already be captured,
        // overlapped with the previous step's in-flight inverse.
        let t_cap = Instant::now();
        let prefetched = std::mem::take(&mut self.prefetched);
        for _ in 0..burst.max(1) - usize::from(prefetched) {
            self.capture_thermal_field()?;
        }
        let thermal = self.gate.take().expect("gate holds at least one field");
        if !prefetched {
            self.web.capture_into(&mut self.visible);
        }
        self.wall_capture_s += t_cap.elapsed().as_secs_f64();

        let (w, h) = self.visible.image().dims();
        let backend = match &mut self.backend {
            BackendChoice::Fixed(b) => *b,
            BackendChoice::Adaptive(s) => s.choose(w, h)?,
        };
        let (out, slot) = {
            // The frame span stays open across the fusion, so the engine's
            // per-phase spans nest under it and its modeled duration is
            // exactly the clock advance (= the frame's PhaseTiming total).
            let _frame = self.telemetry.as_ref().map(|tel| {
                let mut span = tel.tracer().span("frame", "pipeline");
                span.attr("frame", self.stats.frames)
                    .attr("backend", backend.label())
                    .attr("width", w)
                    .attr("height", h);
                span
            });
            let pending =
                self.engine
                    .fuse_submit(self.visible.image(), thermal.image(), backend)?;
            if pending.inverse_in_flight() {
                // Software pipelining: the inverse of this frame runs on
                // the workers while we capture the next frame pair here.
                // (A capture error abandons the pending frame; the engine
                // recovers the stray batch on its next submission.)
                // Inlined thermal capture: the open telemetry span borrows
                // `self.telemetry`, so only disjoint fields are touched.
                let t_cap = Instant::now();
                let mut field = self
                    .thermal_free
                    .pop()
                    .unwrap_or_else(|| Frame::new(Image::zeros(0, 0), 0));
                self.thermal.capture_into(&mut field)?;
                if let Some(rejected) = self.gate.offer_reclaiming(field) {
                    self.thermal_free.push(rejected);
                }
                self.web.capture_into(&mut self.visible);
                self.prefetched = true;
                self.wall_capture_s += t_cap.elapsed().as_secs_f64();
            }
            let slot = pending.slot();
            (self.engine.fuse_finish(pending)?, slot)
        };
        // The consumed thermal frame's buffer goes back to the free list
        // for the next capture.
        self.thermal_free.push(thermal);
        if let BackendChoice::Adaptive(s) = &mut self.backend {
            s.observe(w, h, backend, out.timing.total_seconds(), out.energy_mj);
        }
        self.record_frame(&out, backend, wall_start, slot);
        Ok(out)
    }

    /// Runs one depth-k schedule step: fill the in-flight ring to k
    /// frames (one capture+submit in steady state, k of them on the first
    /// call), then retire the oldest. See
    /// [`step_with_burst`](Self::step_with_burst).
    fn step_pipelined(&mut self, burst: usize) -> Result<FusionOutput, FusionError> {
        while self.in_flight.len() < self.depth {
            self.capture_and_submit(burst)?;
        }
        let frame = self.in_flight.pop_front().expect("ring was just filled");
        let slot = frame.pending.slot();
        let out = self.engine.fuse_finish(frame.pending)?;
        self.record_frame(&out, frame.backend, frame.wall_start, slot);
        Ok(out)
    }

    /// Captures one frame pair (thermal through the gate, `burst` fields
    /// offered) and submits it to the engine, pushing the pending frame
    /// onto the in-flight ring. Depth-k path only.
    fn capture_and_submit(&mut self, burst: usize) -> Result<(), FusionError> {
        let wall_start = self.wall_origin.elapsed();
        let t_cap = Instant::now();
        for _ in 0..burst.max(1) {
            self.capture_thermal_field()?;
        }
        let thermal = self.gate.take().expect("gate holds at least one field");
        self.web.capture_into(&mut self.visible);
        self.wall_capture_s += t_cap.elapsed().as_secs_f64();
        let backend = match &self.backend {
            BackendChoice::Fixed(b) => *b,
            // The constructor degrades adaptive configurations to depth 1.
            BackendChoice::Adaptive(_) => unreachable!("depth > 1 requires a fixed backend"),
        };
        let pending = self
            .engine
            .fuse_submit(self.visible.image(), thermal.image(), backend)?;
        // The forward + fuse phases ran inside the submit; only the
        // inverse is still in flight, so both capture buffers are free.
        self.thermal_free.push(thermal);
        self.in_flight.push_back(InFlightFrame {
            pending,
            backend,
            wall_start,
        });
        Ok(())
    }

    /// Accumulates statistics, histograms, the flight record and telemetry
    /// for one retired frame (shared by the serial and depth-k paths).
    fn record_frame(
        &mut self,
        out: &FusionOutput,
        backend: Backend,
        wall_start: Duration,
        slot: Option<usize>,
    ) {
        let drops_before = self.stats.gate_drops;
        let frame_index = self.stats.frames;
        // Modeled clock position of this frame = everything fused so far.
        let model_start_s = self.stats.timing.total_seconds();
        self.stats.frames += 1;
        self.stats.timing.accumulate(&out.timing);
        self.stats.energy_mj += out.energy_mj;
        self.stats.backend_usage[backend] += 1;
        self.stats.gate_drops = self.gate.dropped();

        // --- flight record + histograms (always on, allocation-free) ---
        let model_dur_s = out.timing.total_seconds();
        self.hist_frame_s.observe(model_dur_s);
        self.hist_energy_mj.observe(out.energy_mj);
        let power_w = self.engine.power_model().power_w(backend.execution_mode());
        let mut phase_s = [0.0; 5];
        let mut phase_mj = [0.0; 5];
        for (i, (_, dur)) in out.timing.phases().iter().enumerate() {
            phase_s[i] = *dur;
            phase_mj[i] = power_w * dur * 1e3;
            self.hist_phase_s[i].observe(*dur);
        }
        // PS/PL energy split: the PL increment is charged only over the PL
        // engine's busy window (from the cycle ledger / DMA timeline); the
        // PS share absorbs the rest, including the PL idle/static part of
        // the mode's rail power, so ps_mj + pl_mj == energy_mj exactly.
        let pl_mj =
            (self.engine.power_model().pl_increment_w() * out.pl_busy_s * 1e3).min(out.energy_mj);
        let ps_mj = out.energy_mj - pl_mj;
        let decision = match &self.backend {
            BackendChoice::Fixed(_) => "fixed",
            BackendChoice::Adaptive(s) => match s.policy() {
                Policy::Threshold { .. } => "threshold",
                Policy::Model(Objective::Time) => "model-time",
                Policy::Model(Objective::Energy) => "model-energy",
                Policy::Online(Objective::Time) => "online-time",
                Policy::Online(Objective::Energy) => "online-energy",
            },
        };
        // Per-frame deltas of cumulative engine counters. `saturating_sub`
        // because an `engine_mut()` reconfiguration (set_threads /
        // set_columnar) swaps in a fresh pool with zeroed counters mid-run.
        let sched = self.engine.sched_totals();
        let steals = sched.steals.saturating_sub(self.last_sched.steals);
        let batches_claimed = sched
            .batches_claimed
            .saturating_sub(self.last_sched.batches_claimed);
        let parked_ns = sched.parked_ns.saturating_sub(self.last_sched.parked_ns);
        self.last_sched = sched;
        let pool_stats = self.engine.buffer_pool().stats();
        let pool_hit = pool_stats.hits > self.last_pool.hits;
        self.last_pool = pool_stats;
        let wall_end = self.wall_origin.elapsed();
        self.flight.record(FrameRecord {
            frame: frame_index,
            stream: -1,
            backend: backend.label(),
            kernel: self.engine.kernel_name(backend),
            decision,
            columnar: self.engine.columnar(),
            threads: self.engine.threads() as u64,
            depth: self.depth as u64,
            slot: slot.map_or(-1, |s| s as i64),
            wall_start_us: wall_start.as_secs_f64() * 1e6,
            wall_dur_us: (wall_end - wall_start).as_secs_f64() * 1e6,
            model_start_s,
            model_dur_s,
            phase_s,
            phase_mj,
            energy_mj: out.energy_mj,
            ps_mj,
            pl_mj,
            pl_busy_s: out.pl_busy_s,
            predicted_s: out.predicted_s,
            fusion_strips: out.fusion_strips as u64,
            deadline_s: 1.0 / self.web.fps(),
            pool_hit,
            gate_drops: self.stats.gate_drops - drops_before,
            batches_claimed,
            steals,
            parked_ns,
        });

        if let Some(tel) = &self.telemetry {
            let m = tel.metrics();
            m.counter_add(
                "wavefuse_frames_total",
                &[("backend", backend.label())],
                1.0,
            );
            m.observe(
                "wavefuse_frame_seconds",
                &[("backend", backend.label())],
                out.timing.total_seconds(),
            );
            m.gauge_set(
                "wavefuse_pipeline_energy_millijoules",
                &[],
                self.stats.energy_mj,
            );
            let dropped_now = self.stats.gate_drops - drops_before;
            if dropped_now > 0 {
                m.counter_add("wavefuse_gate_drops_total", &[], dropped_now as f64);
                tel.tracer().instant(
                    "gate_drop",
                    "pipeline",
                    vec![("dropped".into(), dropped_now.into())],
                );
            }
            // Publish the sharded histograms into the registry so the
            // Prometheus exporter sees them. (Snapshotting allocates, which
            // is fine here: the telemetry path is outside the
            // zero-allocation guarantee; the histograms themselves are not.)
            m.set_histogram(
                "wavefuse_frame_latency_seconds",
                &[],
                self.hist_frame_s.snapshot(),
            );
            m.set_histogram(
                "wavefuse_frame_energy_millijoules",
                &[],
                self.hist_energy_mj.snapshot(),
            );
            for (i, phase) in PHASE_NAMES.iter().enumerate() {
                m.set_histogram(
                    "wavefuse_phase_latency_seconds",
                    &[("phase", phase)],
                    self.hist_phase_s[i].snapshot(),
                );
            }
        }
    }

    /// Runs `n` fused frames (the paper profiles runs of 10), recycling
    /// each output buffer back into the engine's pool — the steady state of
    /// a run performs no heap allocation on the CPU backends.
    ///
    /// # Errors
    ///
    /// Propagates the first frame error encountered.
    pub fn run(&mut self, n: usize) -> Result<PipelineStats, FusionError> {
        for _ in 0..n {
            let out = self.step()?;
            self.engine.recycle(out);
        }
        Ok(self.stats)
    }

    /// Returns a stepped-out fused frame's buffer to the engine's pool so
    /// the next [`step`](Self::step) reuses it instead of allocating.
    pub fn recycle(&self, output: FusionOutput) {
        self.engine.recycle(output);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Cumulative measured wall-clock seconds spent capturing/scaling
    /// frame pairs (webcam + thermal capture and gating) — the
    /// capture-side companion of
    /// [`FusionEngine::wall_phase_totals`]; the bench harness reports
    /// per-run deltas.
    pub fn wall_capture_seconds(&self) -> f64 {
        self.wall_capture_s
    }

    /// Effective pipelining depth: the configured
    /// [`PipelineConfig::depth`] after the degrade rule (1 unless a fixed
    /// CPU backend runs on a worker pool).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The always-on per-frame flight recorder (the last
    /// [`FLIGHT_CAPACITY`] frames, oldest overwritten first).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Estimated `q`-quantile of modeled frame latency, seconds, from the
    /// always-on sharded histogram. Allocation-free.
    pub fn frame_latency_quantile(&self, q: f64) -> f64 {
        self.hist_frame_s.quantile(q)
    }

    /// Estimated `q`-quantile of modeled per-frame energy, mJ, from the
    /// always-on sharded histogram. Allocation-free.
    pub fn frame_energy_quantile(&self, q: f64) -> f64 {
        self.hist_energy_mj.quantile(q)
    }

    /// The engine (e.g. for prediction queries).
    pub fn engine(&self) -> &FusionEngine {
        &self.engine
    }

    /// Mutable engine access (e.g. to toggle the columnar column passes
    /// or reconfigure telemetry between runs).
    pub fn engine_mut(&mut self) -> &mut FusionEngine {
        &mut self.engine
    }

    /// Captures one thermal field into a free-list buffer and offers it to
    /// the gate, reclaiming the buffer immediately if the occupied gate
    /// rejects it (the paper's depth-1 FIFO drop).
    fn capture_thermal_field(&mut self) -> Result<(), FusionError> {
        let mut field = self
            .thermal_free
            .pop()
            .unwrap_or_else(|| Frame::new(Image::zeros(0, 0), 0));
        self.thermal.capture_into(&mut field)?;
        if let Some(rejected) = self.gate.offer_reclaiming(field) {
            self.thermal_free.push(rejected);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{Objective, Policy};

    #[test]
    fn ten_frame_run_accumulates() {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 3,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        let stats = pipe.run(10).unwrap();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.backend_usage, [0, 10, 0, 0]);
        assert!(stats.timing.total_seconds() > 0.0);
        assert!(stats.energy_mj > 0.0);
        assert_eq!(stats.gate_drops, 0);
    }

    #[test]
    fn threaded_pipeline_matches_serial_exactly() {
        // The worker-pool pipeline must produce bit-identical fused frames
        // and stats to the serial one, frame after frame.
        let config = |threads| PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 7,
            threads,
            depth: 1,
        };
        let mut serial = VideoFusionPipeline::new(config(1)).unwrap();
        let mut pooled = VideoFusionPipeline::new(config(3)).unwrap();
        for _ in 0..3 {
            let a = serial.step().unwrap();
            let b = pooled.step().unwrap();
            assert_eq!(a.image, b.image);
            serial.recycle(a);
            pooled.recycle(b);
        }
        assert_eq!(serial.stats(), pooled.stats());
        // Bursty thermal production must also be schedule-invariant: the
        // software-pipelined prefetch accounts for the field it already
        // offered, so gate drops and fused frames stay identical.
        for burst in [2, 1, 3] {
            let a = serial.step_with_burst(burst).unwrap();
            let b = pooled.step_with_burst(burst).unwrap();
            assert_eq!(a.image, b.image, "burst {burst}");
            serial.recycle(a);
            pooled.recycle(b);
        }
        assert_eq!(serial.stats(), pooled.stats());
    }

    #[test]
    fn depth_k_pipeline_matches_serial_exactly() {
        // The depth-k schedule reorders only wall-clock overlap: the
        // capture sequence, fused frames, statistics and flight-recorded
        // modeled quantities are all identical to the serial pipeline.
        let config = |threads, depth| PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 13,
            threads,
            depth,
        };
        let mut serial = VideoFusionPipeline::new(config(1, 1)).unwrap();
        for depth in [2usize, 3] {
            let mut piped = VideoFusionPipeline::new(config(2, depth)).unwrap();
            for i in 0..6 {
                let a = serial.step().unwrap();
                let b = piped.step().unwrap();
                assert_eq!(a.image, b.image, "depth {depth} frame {i}");
                assert_eq!(a.timing, b.timing, "depth {depth} frame {i}");
                serial.recycle(a);
                piped.recycle(b);
            }
            let rec = piped.flight_recorder();
            assert_eq!(rec.len(), 6);
            for r in rec.iter() {
                assert_eq!(r.depth, depth as u64);
                assert!(r.slot >= 0 && (r.slot as usize) < depth, "slot {}", r.slot);
            }
            assert_eq!(serial.stats(), piped.stats(), "depth {depth}");
            serial = VideoFusionPipeline::new(config(1, 1)).unwrap();
        }
    }

    #[test]
    fn depth_degrades_to_one_without_a_pool_or_fixed_cpu_backend() {
        // Serial threads: depth silently degrades; the flight recorder
        // shows the classic schedule.
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 3,
            threads: 1,
            depth: 3,
        })
        .unwrap();
        pipe.run(2).unwrap();
        assert!(pipe.flight_recorder().iter().all(|r| r.depth == 1));
        // FPGA backend: also degrades, even on a pool.
        let mut fpga = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Fpga),
            scene_seed: 3,
            threads: 2,
            depth: 3,
        })
        .unwrap();
        fpga.run(2).unwrap();
        assert!(fpga.flight_recorder().iter().all(|r| r.depth == 1));
    }

    #[test]
    fn steady_state_run_reuses_pooled_buffers() {
        // After the first frame warms the pool, `run` recycles the output
        // buffer each step: exactly one miss, the rest hits.
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 3,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        pipe.run(6).unwrap();
        let stats = pipe.engine().buffer_pool().stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 5, "{stats:?}");
    }

    #[test]
    fn bursty_thermal_source_drops_at_gate() {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (32, 24),
            levels: 2,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 1,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        pipe.step_with_burst(3).unwrap();
        assert_eq!(pipe.stats().gate_drops, 2);
    }

    #[test]
    fn adaptive_pipeline_uses_both_accelerators() {
        // Large frames: the model policy must route to the FPGA.
        let mut big = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (88, 72),
            levels: 3,
            backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
                Policy::Model(Objective::Time),
                3,
            ))),
            scene_seed: 5,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        big.run(2).unwrap();
        assert_eq!(
            big.stats().backend_usage[Backend::Fpga],
            2,
            "large frames -> FPGA"
        );

        let mut small = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (32, 24),
            levels: 3,
            backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
                Policy::Model(Objective::Time),
                3,
            ))),
            scene_seed: 5,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        small.run(2).unwrap();
        assert_eq!(
            small.stats().backend_usage[Backend::Neon],
            2,
            "small frames -> NEON"
        );
    }

    #[test]
    fn flight_recorder_reconciles_with_stats() {
        for backend in Backend::ALL_EXTENDED {
            let mut pipe = VideoFusionPipeline::new(PipelineConfig {
                frame_size: (48, 40),
                levels: 3,
                backend: BackendChoice::Fixed(backend),
                scene_seed: 11,
                threads: 1,
                depth: 1,
            })
            .unwrap();
            pipe.run(6).unwrap();
            let rec = pipe.flight_recorder();
            assert_eq!(rec.len(), 6);
            assert!(!rec.wrapped());
            // Per-frame energy sums back to the aggregate stat exactly
            // (each record copies the frame's energy verbatim), and the
            // PS/PL split partitions it.
            let sum: f64 = rec.iter().map(|r| r.energy_mj).sum();
            let stats = pipe.stats();
            assert!(
                (sum - stats.energy_mj).abs() <= 1e-9 * stats.energy_mj,
                "{backend:?}: recorder {sum} vs stats {}",
                stats.energy_mj
            );
            for r in rec.iter() {
                assert_eq!(r.backend, backend.label());
                assert_eq!(r.decision, "fixed");
                assert!((r.ps_mj + r.pl_mj - r.energy_mj).abs() < 1e-12);
                assert!(r.predicted_s > 0.0);
                assert!((r.deadline_s - 1.0 / 30.0).abs() < 1e-12);
                match backend {
                    // The accelerator backends must charge PL-busy time...
                    Backend::Fpga | Backend::Hybrid => {
                        assert!(r.pl_busy_s > 0.0, "{backend:?}: no PL busy time");
                        assert!(r.pl_mj > 0.0);
                    }
                    // ...and the CPU ones must not.
                    _ => {
                        assert_eq!(r.pl_busy_s, 0.0);
                        assert_eq!(r.pl_mj, 0.0);
                    }
                }
            }
            // Frame indices are recorded in order.
            let frames: Vec<u64> = rec.iter().map(|r| r.frame).collect();
            assert_eq!(frames, [0, 1, 2, 3, 4, 5]);
            // The always-on histograms saw every frame.
            assert!(pipe.frame_latency_quantile(0.5) > 0.0);
            assert!(pipe.frame_energy_quantile(0.99) > 0.0);
        }
    }

    #[test]
    fn fpga_predictions_track_measured_frame_cost() {
        // The analytic FPGA prediction is validated against the simulator
        // elsewhere at 2%; the flight record carries both sides.
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (88, 72),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Fpga),
            scene_seed: 2016,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        pipe.run(3).unwrap();
        for r in pipe.flight_recorder().iter() {
            let err = (r.predicted_s - r.model_dur_s).abs() / r.model_dur_s;
            assert!(
                err < 0.05,
                "frame {}: predicted {} vs measured {}",
                r.frame,
                r.predicted_s,
                r.model_dur_s
            );
        }
    }

    #[test]
    fn fused_output_keeps_thermal_hotspots_and_visible_texture() {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (64, 48),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 9,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        let out = pipe.step().unwrap();
        // The lamp (hot in thermal, dim in visible) must be present in the
        // fused frame: compare the lamp spot against the image mean.
        let img = &out.image;
        let lamp = img.get((0.72 * 64.0) as usize, (0.22 * 48.0) as usize);
        let mean: f32 = img.as_slice().iter().sum::<f32>() / img.len() as f32;
        assert!(lamp > mean, "lamp {lamp} vs mean {mean}");
    }
}

//! Deadline-and-energy governor (extension).
//!
//! The paper's adaptive conclusion picks a *backend* for a given frame
//! size. A deployed fusion camera has one more degree of freedom the paper
//! itself points at ("different frame sizes and decomposition levels",
//! §VIII): the decomposition depth trades fusion quality against time.
//! [`QosGovernor`] closes the loop: given a frame geometry and a target
//! frame rate, it selects the **deepest decomposition that still meets the
//! deadline**, and for that depth the **most energy-efficient backend** —
//! quality first, energy second, deadline always.

use std::sync::Arc;

use crate::adaptive::Objective;
use crate::backend::Backend;
use crate::cost::{CostModel, TransformPlan};
use crate::rules::FusionRule;
use crate::FusionError;
use wavefuse_dtcwt::Dwt2d;
use wavefuse_power::PowerModel;
use wavefuse_trace::Telemetry;

/// One feasible operating point chosen by the governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosDecision {
    /// Backend to execute on.
    pub backend: Backend,
    /// Decomposition depth to configure.
    pub levels: usize,
    /// Predicted seconds per fused frame.
    pub predicted_seconds: f64,
    /// Predicted energy per fused frame, millijoules.
    pub predicted_energy_mj: f64,
}

/// The deadline/energy governor.
///
/// # Examples
///
/// ```
/// use wavefuse_core::governor::QosGovernor;
///
/// let gov = QosGovernor::new(4);
/// // A relaxed 5 fps target at full frames affords the full 4-level
/// // decomposition; a hard 15 fps target forces a shallower transform.
/// let relaxed = gov.decide(88, 72, 5.0)?.expect("feasible");
/// let tight = gov.decide(88, 72, 15.0)?.expect("feasible");
/// assert!(relaxed.levels >= tight.levels);
/// # Ok::<(), wavefuse_core::FusionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QosGovernor {
    cost: CostModel,
    power: PowerModel,
    rule: FusionRule,
    max_levels: usize,
    candidates: Vec<Backend>,
    telemetry: Option<Arc<Telemetry>>,
}

impl QosGovernor {
    /// Creates a governor that considers depths `1..=max_levels` and the
    /// NEON, FPGA and hybrid backends.
    pub fn new(max_levels: usize) -> Self {
        QosGovernor {
            cost: CostModel::calibrated(),
            power: PowerModel::zc702(),
            rule: FusionRule::WindowEnergy { radius: 1 },
            max_levels: max_levels.max(1),
            candidates: vec![Backend::Neon, Backend::Fpga, Backend::Hybrid],
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle: every [`QosGovernor::decide`] emits a
    /// `qos_decision` event (or `qos_infeasible` when no operating point
    /// meets the deadline) and a per-backend counter.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_qos_decisions_total",
            "Operating points selected by the QoS governor",
        );
        self.telemetry = Some(telemetry);
    }

    /// Restricts the candidate backends (e.g. exclude the hybrid to model
    /// the paper's platform exactly).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn with_candidates(mut self, candidates: &[Backend]) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        self.candidates = candidates.to_vec();
        self
    }

    /// Per-frame cost of one operating point.
    fn operating_point(
        &self,
        w: usize,
        h: usize,
        levels: usize,
        backend: Backend,
    ) -> Result<QosDecision, FusionError> {
        let plan = TransformPlan::dtcwt(w, h, levels)?;
        let seconds = self.cost.frame_seconds(&plan, self.rule, backend);
        Ok(QosDecision {
            backend,
            levels,
            predicted_seconds: seconds,
            predicted_energy_mj: self.power.energy_mj(backend.execution_mode(), seconds),
        })
    }

    /// Chooses the operating point for a stream of `w`-by-`h` frames at
    /// `target_fps`: the deepest feasible decomposition, then the
    /// minimum-energy backend at that depth. Returns `None` if no
    /// combination meets the deadline.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] only if even a single level is
    /// unsupported for the geometry.
    pub fn decide(
        &self,
        w: usize,
        h: usize,
        target_fps: f64,
    ) -> Result<Option<QosDecision>, FusionError> {
        let deadline = 1.0 / target_fps.max(1e-9);
        let depth_cap = self.max_levels.min(Dwt2d::max_levels(w, h));
        if depth_cap == 0 {
            return Err(FusionError::Transform(
                wavefuse_dtcwt::DtcwtError::BadLevels {
                    requested: 1,
                    max_supported: 0,
                },
            ));
        }
        // Deepest level first; within a level, minimum energy among the
        // deadline-meeting backends.
        for levels in (1..=depth_cap).rev() {
            let mut best: Option<QosDecision> = None;
            for &backend in &self.candidates {
                let point = self.operating_point(w, h, levels, backend)?;
                if point.predicted_seconds <= deadline {
                    let better = match &best {
                        None => true,
                        Some(b) => point.predicted_energy_mj < b.predicted_energy_mj,
                    };
                    if better {
                        best = Some(point);
                    }
                }
            }
            if let Some(d) = best {
                if let Some(tel) = &self.telemetry {
                    tel.metrics().counter_add(
                        "wavefuse_qos_decisions_total",
                        &[("backend", d.backend.label())],
                        1.0,
                    );
                    tel.tracer().instant(
                        "qos_decision",
                        "governor",
                        vec![
                            ("backend".into(), d.backend.label().into()),
                            ("levels".into(), d.levels.into()),
                            ("width".into(), w.into()),
                            ("height".into(), h.into()),
                            ("target_fps".into(), target_fps.into()),
                            ("predicted_s".into(), d.predicted_seconds.into()),
                            ("predicted_mj".into(), d.predicted_energy_mj.into()),
                        ],
                    );
                }
                return Ok(Some(d));
            }
        }
        if let Some(tel) = &self.telemetry {
            tel.tracer().instant(
                "qos_infeasible",
                "governor",
                vec![
                    ("width".into(), w.into()),
                    ("height".into(), h.into()),
                    ("target_fps".into(), target_fps.into()),
                ],
            );
        }
        Ok(None)
    }

    /// The highest sustainable frame rate at a geometry for a given
    /// objective: the best backend at one decomposition level.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for unsupported geometries.
    pub fn max_fps(&self, w: usize, h: usize, objective: Objective) -> Result<f64, FusionError> {
        let mut best = f64::MAX;
        for &backend in &self.candidates {
            let p = self.operating_point(w, h, 1, backend)?;
            let key = match objective {
                Objective::Time => p.predicted_seconds,
                Objective::Energy => p.predicted_energy_mj,
            };
            if key < best {
                best = key;
            }
        }
        Ok(match objective {
            Objective::Time => 1.0 / best,
            // For the energy objective the "rate" is frames per joule.
            Objective::Energy => 1e3 / best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_deadline_buys_depth() {
        let gov = QosGovernor::new(5);
        let relaxed = gov.decide(88, 72, 2.0).unwrap().expect("feasible");
        // ~16 fps is the platform's ceiling at 88x72 (hybrid, one level).
        let tight = gov.decide(88, 72, 15.0).unwrap().expect("feasible");
        assert!(relaxed.levels > tight.levels, "{relaxed:?} vs {tight:?}");
        assert_eq!(relaxed.levels, 5, "relaxed deadline affords full depth");
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let gov = QosGovernor::new(3);
        assert_eq!(gov.decide(88, 72, 100_000.0).unwrap(), None);
    }

    #[test]
    fn decisions_meet_their_deadline() {
        let gov = QosGovernor::new(4);
        for fps in [5.0, 10.0, 20.0, 40.0] {
            if let Some(d) = gov.decide(64, 48, fps).unwrap() {
                assert!(d.predicted_seconds <= 1.0 / fps + 1e-12, "{fps} fps: {d:?}");
            }
        }
    }

    #[test]
    fn governor_prefers_energy_within_a_depth() {
        // At full frames with a loose deadline every backend is feasible at
        // the chosen depth; the winner must be the min-energy one.
        let gov = QosGovernor::new(3);
        let d = gov.decide(88, 72, 3.0).unwrap().expect("feasible");
        for backend in [Backend::Neon, Backend::Fpga, Backend::Hybrid] {
            let p = gov.operating_point(88, 72, d.levels, backend).unwrap();
            assert!(d.predicted_energy_mj <= p.predicted_energy_mj + 1e-12);
        }
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let gov = QosGovernor::new(3).with_candidates(&[Backend::Neon]);
        let d = gov.decide(88, 72, 5.0).unwrap().expect("feasible");
        assert_eq!(d.backend, Backend::Neon);
    }

    #[test]
    fn max_fps_orders_by_size() {
        let gov = QosGovernor::new(3);
        let small = gov.max_fps(32, 24, Objective::Time).unwrap();
        let large = gov.max_fps(88, 72, Objective::Time).unwrap();
        assert!(small > large);
        assert!(large > 5.0, "full frames sustain more than 5 fps: {large}");
    }

    #[test]
    fn unsupported_geometry_errors() {
        let gov = QosGovernor::new(3);
        assert!(gov.decide(1, 1, 10.0).is_err());
    }
}

//! The hybrid per-row NEON/FPGA kernel (extension).
//!
//! The paper's breaking-point finding says the FPGA only pays off when the
//! row is long enough to amortize the fixed driver/command overhead — and
//! a multi-level wavelet transform *always* contains short rows: every
//! decomposition level halves the frame, so by level 3 even the paper's
//! full 88x72 frame is down to 22x18. The paper selects one engine per
//! whole transform (§VIII); this kernel pushes the decision to its natural
//! granularity and routes **each row** to whichever engine is faster for
//! its length. Long level-1 rows stream through the PL engine, short deep
//! rows run on the SIMD unit while the FPGA path would still be stuck in
//! `ioctl`.
//!
//! The result (see the `hybrid` experiment in `wavefuse-bench`) is a
//! backend that matches NEON on small frames, matches the FPGA on huge
//! ones, and beats both in between and at the paper's own 88x72.

use wavefuse_dtcwt::FilterKernel;
use wavefuse_simd::SimdKernel;
use wavefuse_zynq::FpgaKernel;

use crate::cost::{CostModel, Direction, RowOp};

/// A [`FilterKernel`] that routes each row to the NEON or FPGA engine by
/// output-row length.
///
/// Time accounting: FPGA-routed rows accumulate in the wrapped
/// [`FpgaKernel`]'s cycle ledger; SIMD-routed rows accumulate modeled NEON
/// time from the calibrated cost model. The wrapped kernel runs with the
/// async DMA overlap enabled, so [`HybridKernel::elapsed_seconds`] is the
/// end of the combined PS/PL timeline — SIMD rows and driver work overlap
/// in-flight PL engine runs instead of summing serially.
///
/// # Examples
///
/// ```
/// use wavefuse_core::hybrid::HybridKernel;
/// use wavefuse_dtcwt::{Dtcwt, Image};
///
/// let img = Image::from_fn(88, 72, |x, y| (x + y) as f32);
/// let t = Dtcwt::new(3)?;
/// let mut k = HybridKernel::new();
/// let pyr = t.forward_with(&mut k, &img)?;
/// assert!(k.elapsed_seconds() > 0.0);
/// assert!(k.rows_on_simd() > 0 && k.rows_on_fpga() > 0, "both engines used");
/// let back = t.inverse_with(&mut k, &pyr)?;
/// assert!(back.max_abs_diff(&img) < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HybridKernel {
    simd: SimdKernel,
    fpga: FpgaKernel,
    cost: CostModel,
    threshold: usize,
    simd_seconds: f64,
    rows_simd: u64,
    rows_fpga: u64,
}

impl HybridKernel {
    /// Creates a hybrid kernel with the calibrated default row threshold
    /// (the per-row breaking point implied by the cost model).
    pub fn new() -> Self {
        let cost = CostModel::calibrated();
        let threshold = cost.hybrid_row_threshold();
        HybridKernel::with_threshold(threshold)
    }

    /// Creates a hybrid kernel routing rows shorter than `threshold`
    /// output samples to the SIMD engine.
    pub fn with_threshold(threshold: usize) -> Self {
        let mut fpga = FpgaKernel::new();
        // The hybrid schedule is exactly the async-overlap scenario: the PS
        // runs SIMD rows (and driver/copy work) while the PL engine owns
        // long rows in flight, so enable the double-buffered DMA timeline.
        fpga.set_dma_overlap(true);
        HybridKernel {
            simd: SimdKernel::new(),
            fpga,
            cost: CostModel::calibrated(),
            threshold,
            simd_seconds: 0.0,
            rows_simd: 0,
            rows_fpga: 0,
        }
    }

    /// The row-length routing threshold (output samples).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Attaches a telemetry handle to the wrapped FPGA kernel (and its
    /// driver model) for DMA/cycle accounting of the FPGA-routed rows.
    pub fn set_telemetry(&mut self, telemetry: std::sync::Arc<wavefuse_trace::Telemetry>) {
        self.fpga.set_telemetry(telemetry);
    }

    /// Total modeled elapsed seconds since the last reset.
    ///
    /// With the async DMA overlap enabled (the default), this is the end of
    /// the combined PS/PL timeline: SIMD rows, driver overhead and user
    /// copies advance the PS lane while engine runs retire on the PL lane,
    /// so host compute in flight with the engine is not double-charged.
    /// Without overlap it degrades to the serial sum (FPGA ledger plus
    /// modeled SIMD time).
    pub fn elapsed_seconds(&self) -> f64 {
        match self.fpga.dma_timeline() {
            Some(tl) => tl.elapsed_seconds(),
            None => self.fpga.ledger().elapsed_seconds + self.simd_seconds,
        }
    }

    /// Seconds the PL engine spent busy since the last reset — the
    /// FPGA-routed rows' DMA/pipeline/MAC cycles on the PL clock. The
    /// power model charges its PL increment over this window; SIMD rows
    /// never touch it.
    pub fn pl_busy_seconds(&self) -> f64 {
        self.fpga.ledger().pl_busy_seconds(self.fpga.config())
    }

    /// Rows routed to the SIMD engine since the last reset.
    pub fn rows_on_simd(&self) -> u64 {
        self.rows_simd
    }

    /// Rows routed to the FPGA engine since the last reset.
    pub fn rows_on_fpga(&self) -> u64 {
        self.rows_fpga
    }

    /// Resets all accounting.
    pub fn reset(&mut self) {
        self.fpga.reset_ledger();
        self.simd_seconds = 0.0;
        self.rows_simd = 0;
        self.rows_fpga = 0;
    }
}

impl Default for HybridKernel {
    fn default() -> Self {
        HybridKernel::new()
    }
}

impl FilterKernel for HybridKernel {
    fn name(&self) -> &'static str {
        "hybrid-neon-fpga"
    }

    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        let row_len = lo.len() * 2;
        if row_len < self.threshold {
            self.simd.analyze_row(ext, left, h0, h1, phase, lo, hi);
            let macs = lo.len() as u64 * (h0.len() + h1.len()) as u64;
            let s = self.cost.neon_row_seconds(macs, Direction::Forward);
            self.simd_seconds += s;
            self.fpga.push_host_seconds(s);
            self.rows_simd += 1;
        } else {
            self.fpga.analyze_row(ext, left, h0, h1, phase, lo, hi);
            self.rows_fpga += 1;
        }
    }

    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        if out.len() < self.threshold {
            self.simd
                .synthesize_row(lo_ext, hi_ext, left, g0, g1, phase, out);
            let macs = (out.len() as u64 * (g0.len() + g1.len()) as u64).div_ceil(2);
            let s = self.cost.neon_row_seconds(macs, Direction::Inverse);
            self.simd_seconds += s;
            self.fpga.push_host_seconds(s);
            self.rows_simd += 1;
        } else {
            self.fpga
                .synthesize_row(lo_ext, hi_ext, left, g0, g1, phase, out);
            self.rows_fpga += 1;
        }
    }
}

/// Re-exported for the cost model's hybrid estimate (same routing rule).
pub fn routes_to_simd(op: &RowOp, threshold: usize) -> bool {
    op.words_out < threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::{Dtcwt, Image, ScalarKernel};

    fn image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| ((x * 3 + y * 11) % 23) as f32 * 0.4)
    }

    #[test]
    fn hybrid_matches_scalar_functionally() {
        let img = image(88, 72);
        let t = Dtcwt::new(3).unwrap();
        let p_ref = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_hyb = t.forward_with(&mut HybridKernel::new(), &img).unwrap();
        for level in 0..3 {
            for (a, b) in p_ref.subbands(level).iter().zip(p_hyb.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-3);
                assert!(a.im.max_abs_diff(&b.im) < 1e-3);
            }
        }
    }

    #[test]
    fn threshold_routes_by_row_length() {
        let t = Dtcwt::new(3).unwrap();
        // All rows long: everything on the FPGA.
        let mut all_fpga = HybridKernel::with_threshold(2);
        let _ = t.forward_with(&mut all_fpga, &image(64, 48)).unwrap();
        assert_eq!(all_fpga.rows_on_simd(), 0);
        assert!(all_fpga.rows_on_fpga() > 0);
        // All rows short: everything on SIMD.
        let mut all_simd = HybridKernel::with_threshold(4096);
        let _ = t.forward_with(&mut all_simd, &image(64, 48)).unwrap();
        assert_eq!(all_simd.rows_on_fpga(), 0);
        assert!(all_simd.rows_on_simd() > 0);
    }

    #[test]
    fn default_threshold_is_physically_sensible() {
        let th = CostModel::calibrated().hybrid_row_threshold();
        // The per-row breaking point sits well below the paper's 88-sample
        // level-1 rows and above trivial row lengths.
        assert!((10..80).contains(&th), "threshold {th}");
    }

    #[test]
    fn hybrid_beats_pure_fpga_at_the_paper_frame_size() {
        // At 88x72 the deep-level rows are short; routing them to SIMD must
        // strictly reduce elapsed time versus the pure FPGA backend.
        let img = image(88, 72);
        let t = Dtcwt::new(3).unwrap();
        let mut fpga = FpgaKernel::new();
        let _ = t.forward_with(&mut fpga, &img).unwrap();
        let pure = fpga.ledger().elapsed_seconds;
        let mut hybrid = HybridKernel::new();
        let _ = t.forward_with(&mut hybrid, &img).unwrap();
        let mixed = hybrid.elapsed_seconds();
        assert!(
            mixed < pure,
            "hybrid {mixed:.6} s must beat pure FPGA {pure:.6} s"
        );
        assert!(hybrid.rows_on_simd() > 0 && hybrid.rows_on_fpga() > 0);
    }

    #[test]
    fn reset_clears_accounting() {
        let img = image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let mut k = HybridKernel::new();
        let _ = t.forward_with(&mut k, &img).unwrap();
        assert!(k.elapsed_seconds() > 0.0);
        k.reset();
        assert_eq!(k.elapsed_seconds(), 0.0);
        assert_eq!(k.rows_on_simd() + k.rows_on_fpga(), 0);
    }

    #[test]
    fn analytic_hybrid_estimate_tracks_execution() {
        let model = CostModel::calibrated();
        let plan = crate::cost::TransformPlan::dtcwt(88, 72, 3).unwrap();
        let th = model.hybrid_row_threshold();
        let analytic = model.hybrid_seconds(&plan, Direction::Forward, th);
        let img = image(88, 72);
        let t = Dtcwt::new(3).unwrap();
        let mut k = HybridKernel::new();
        let _ = t.forward_with(&mut k, &img).unwrap();
        let measured = k.elapsed_seconds();
        let err = (analytic - measured).abs() / measured;
        assert!(
            err < 0.06,
            "analytic {analytic:.6} vs measured {measured:.6}"
        );
    }
}

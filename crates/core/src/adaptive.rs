//! Run-time backend selection — the paper's headline finding and its
//! stated future work, implemented.
//!
//! §VII shows that neither accelerator dominates: the FPGA wins above a
//! frame-size threshold, the NEON engine below it, because the FPGA's
//! per-row driver/command overhead is fixed while its computational
//! advantage scales with the row length. §VIII proposes a system that
//! "automatically chooses the resources (NEON or FPGA) to execute when
//! fusing with different frame sizes and decomposition levels" — this
//! module provides three such policies:
//!
//! * [`Policy::Threshold`] — the simple rule suggested by Fig. 9: pick the
//!   FPGA when the frame has at least `min_pixels` pixels.
//! * [`Policy::Model`] — evaluate the calibrated cost model for both
//!   accelerators at the frame's geometry and pick the winner, optimizing
//!   either time or energy.
//! * [`Policy::Online`] — measure: try each accelerator once per frame
//!   geometry, then exploit the faster (or more frugal) one, continually
//!   refreshed by an exponential moving average of observations.

use std::collections::HashMap;
use std::sync::Arc;

use wavefuse_trace::Telemetry;

use crate::backend::{Backend, BackendCounts};
use crate::cost::{CostModel, TransformPlan};
use crate::rules::FusionRule;
use crate::FusionError;
use wavefuse_power::PowerModel;

/// What the scheduler optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize modeled wall-clock time per fused frame.
    Time,
    /// Minimize modeled energy per fused frame.
    Energy,
}

/// Backend-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// FPGA at or above a pixel-count threshold, NEON below.
    Threshold {
        /// Minimum `width * height` for the FPGA to be selected.
        min_pixels: usize,
    },
    /// Cost-model-driven argmin over {NEON, FPGA}.
    Model(Objective),
    /// Measurement-driven argmin with explore-then-exploit.
    Online(Objective),
}

/// The adaptive scheduler.
///
/// # Examples
///
/// ```
/// use wavefuse_core::adaptive::{AdaptiveScheduler, Objective, Policy};
/// use wavefuse_core::Backend;
///
/// let mut sched = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3);
/// // Small frames run on NEON, the paper's full frames on the FPGA.
/// assert_eq!(sched.choose(32, 24)?, Backend::Neon);
/// assert_eq!(sched.choose(88, 72)?, Backend::Fpga);
/// # Ok::<(), wavefuse_core::FusionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    policy: Policy,
    levels: usize,
    rule: FusionRule,
    cost: CostModel,
    power: PowerModel,
    /// EMA of observed per-frame cost (seconds or millijoules) per geometry
    /// and backend, for the online policy.
    observations: HashMap<(usize, usize), [Option<f64>; 4]>,
    /// Decisions made per backend (for reports).
    decisions: BackendCounts,
    /// Backends the scheduler chooses among.
    candidates: Vec<Backend>,
    telemetry: Option<Arc<Telemetry>>,
}

/// Smoothing factor of the online EMA (weight of the newest observation).
const EMA_ALPHA: f64 = 0.3;

/// The accelerators the scheduler considers by default, in exploration
/// order (the ARM is never optimal, matching the paper's future-work
/// framing of "NEON or FPGA").
pub const DEFAULT_CANDIDATES: [Backend; 2] = [Backend::Neon, Backend::Fpga];

impl AdaptiveScheduler {
    /// Creates a scheduler with the standard fusion rule at the given
    /// decomposition depth.
    pub fn new(policy: Policy, levels: usize) -> Self {
        AdaptiveScheduler {
            policy,
            levels,
            rule: FusionRule::WindowEnergy { radius: 1 },
            cost: CostModel::calibrated(),
            power: PowerModel::zc702(),
            observations: HashMap::new(),
            decisions: BackendCounts::new(),
            candidates: DEFAULT_CANDIDATES.to_vec(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle: every decision emits a
    /// `scheduler_decision` event and a per-backend counter, and every
    /// online observation a `scheduler_observe` event carrying the
    /// predicted-vs-observed error.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_scheduler_decisions_total",
            "Backend selections made by the adaptive scheduler",
        );
        telemetry.metrics().describe(
            "wavefuse_scheduler_prediction_error",
            "Relative error of the cost model vs observed frame cost",
        );
        self.telemetry = Some(telemetry);
    }

    fn policy_label(&self) -> &'static str {
        match self.policy {
            Policy::Threshold { .. } => "threshold",
            Policy::Model(Objective::Time) => "model_time",
            Policy::Model(Objective::Energy) => "model_energy",
            Policy::Online(Objective::Time) => "online_time",
            Policy::Online(Objective::Energy) => "online_energy",
        }
    }

    /// Restricts or extends the candidate set (e.g. include
    /// [`Backend::Hybrid`] to let the scheduler pick the per-row-routed
    /// backend).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn with_candidates(mut self, candidates: &[Backend]) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        self.candidates = candidates.to_vec();
        self
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// How many times each backend has been chosen.
    pub fn decision_counts(&self) -> BackendCounts {
        self.decisions
    }

    /// Chooses the backend for the next frame of the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] if the geometry cannot support
    /// the configured decomposition depth.
    pub fn choose(&mut self, width: usize, height: usize) -> Result<Backend, FusionError> {
        let backend = match self.policy {
            Policy::Threshold { min_pixels } => {
                if width * height >= min_pixels {
                    Backend::Fpga
                } else {
                    Backend::Neon
                }
            }
            Policy::Model(objective) => self.model_choice(width, height, objective)?,
            Policy::Online(objective) => {
                let obs = self
                    .observations
                    .entry((width, height))
                    .or_insert([None; 4]);
                // Explore each candidate once, then exploit the best EMA.
                match self
                    .candidates
                    .iter()
                    .find(|b| obs[Self::index(**b)].is_none())
                {
                    Some(&unexplored) => unexplored,
                    None => {
                        let mut best = self.candidates[0];
                        for &b in &self.candidates[1..] {
                            let cur = obs[Self::index(b)].expect("explored");
                            let best_v = obs[Self::index(best)].expect("explored");
                            if cur < best_v {
                                best = b;
                            }
                        }
                        let _ = objective; // objective chooses what observe() records
                        best
                    }
                }
            }
        };
        self.decisions[backend] += 1;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_scheduler_decisions_total",
                &[("backend", backend.label())],
                1.0,
            );
            tel.tracer().instant(
                "scheduler_decision",
                "scheduler",
                vec![
                    ("backend".into(), backend.label().into()),
                    ("policy".into(), self.policy_label().into()),
                    ("width".into(), width.into()),
                    ("height".into(), height.into()),
                ],
            );
        }
        Ok(backend)
    }

    /// Feeds a measurement back to the online policy: the time and energy of
    /// one fused frame of this geometry on this backend. No-op under other
    /// policies.
    pub fn observe(
        &mut self,
        width: usize,
        height: usize,
        backend: Backend,
        seconds: f64,
        energy_mj: f64,
    ) {
        if let Some(tel) = &self.telemetry {
            // Predicted-vs-observed: useful feedback under every policy, so
            // emit it before the online-only bookkeeping below.
            let mut attrs = vec![
                ("backend".into(), backend.label().into()),
                ("width".into(), width.into()),
                ("height".into(), height.into()),
                ("observed_s".into(), seconds.into()),
                ("observed_mj".into(), energy_mj.into()),
            ];
            if let Ok(pred_s) = self.predicted_cost(width, height, backend, Objective::Time) {
                let err = if seconds > 0.0 {
                    (pred_s - seconds).abs() / seconds
                } else {
                    0.0
                };
                attrs.push(("predicted_s".into(), pred_s.into()));
                attrs.push(("error_ratio".into(), err.into()));
                tel.metrics().observe_log2(
                    "wavefuse_scheduler_prediction_error",
                    &[("backend", backend.label())],
                    err,
                    1e-4,
                    16,
                );
            }
            tel.tracer()
                .instant("scheduler_observe", "scheduler", attrs);
        }
        let Policy::Online(objective) = self.policy else {
            return;
        };
        let value = match objective {
            Objective::Time => seconds,
            Objective::Energy => energy_mj,
        };
        let slot = &mut self
            .observations
            .entry((width, height))
            .or_insert([None; 4])[Self::index(backend)];
        *slot = Some(match *slot {
            None => value,
            Some(prev) => prev * (1.0 - EMA_ALPHA) + value * EMA_ALPHA,
        });
    }

    /// The cost-model prediction (per-frame seconds or millijoules) for a
    /// geometry and backend.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::Transform`] for unsupported geometries.
    pub fn predicted_cost(
        &self,
        width: usize,
        height: usize,
        backend: Backend,
        objective: Objective,
    ) -> Result<f64, FusionError> {
        let plan = TransformPlan::dtcwt(width, height, self.levels)?;
        let seconds = self.cost.frame_seconds(&plan, self.rule, backend);
        Ok(match objective {
            Objective::Time => seconds,
            Objective::Energy => self.power.energy_mj(backend.execution_mode(), seconds),
        })
    }

    fn model_choice(
        &self,
        width: usize,
        height: usize,
        objective: Objective,
    ) -> Result<Backend, FusionError> {
        let mut best = self.candidates[0];
        let mut best_v = self.predicted_cost(width, height, best, objective)?;
        for &b in &self.candidates[1..] {
            let v = self.predicted_cost(width, height, b, objective)?;
            if v < best_v {
                best = b;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Finds the square frame edge at which the FPGA starts beating NEON
    /// under the given objective (the paper's "breaking point"), scanning
    /// `lo..=hi`.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors for unsupported geometries.
    pub fn crossover_edge(
        &self,
        objective: Objective,
        lo: usize,
        hi: usize,
    ) -> Result<Option<usize>, FusionError> {
        for edge in lo..=hi {
            let fpga = self.predicted_cost(edge, edge, Backend::Fpga, objective)?;
            let neon = self.predicted_cost(edge, edge, Backend::Neon, objective)?;
            if fpga < neon {
                return Ok(Some(edge));
            }
        }
        Ok(None)
    }

    fn index(b: Backend) -> usize {
        b.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_policy_is_a_step_function() {
        let mut s = AdaptiveScheduler::new(
            Policy::Threshold {
                min_pixels: 40 * 40,
            },
            3,
        );
        assert_eq!(s.choose(35, 35).unwrap(), Backend::Neon);
        assert_eq!(s.choose(40, 40).unwrap(), Backend::Fpga);
        assert_eq!(s.decision_counts(), [0, 1, 1, 0]);
    }

    #[test]
    fn model_policy_reproduces_paper_extremes() {
        let mut s = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3);
        assert_eq!(s.choose(32, 24).unwrap(), Backend::Neon);
        assert_eq!(s.choose(88, 72).unwrap(), Backend::Fpga);
        let mut e = AdaptiveScheduler::new(Policy::Model(Objective::Energy), 3);
        assert_eq!(e.choose(32, 24).unwrap(), Backend::Neon);
        assert_eq!(e.choose(88, 72).unwrap(), Backend::Fpga);
    }

    #[test]
    fn energy_crossover_is_at_or_above_time_crossover() {
        // The FPGA must win on time before it can win on energy (it draws
        // strictly more power).
        let s = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3);
        let t = s.crossover_edge(Objective::Time, 24, 96).unwrap().unwrap();
        let e = s
            .crossover_edge(Objective::Energy, 24, 96)
            .unwrap()
            .unwrap();
        assert!(e >= t, "energy crossover {e} vs time crossover {t}");
    }

    #[test]
    fn online_policy_explores_then_exploits() {
        let mut s = AdaptiveScheduler::new(Policy::Online(Objective::Time), 3);
        // First two decisions explore NEON then FPGA (with feedback).
        let first = s.choose(64, 48).unwrap();
        assert_eq!(first, Backend::Neon);
        s.observe(64, 48, Backend::Neon, 0.010, 5.3);
        let second = s.choose(64, 48).unwrap();
        assert_eq!(second, Backend::Fpga);
        s.observe(64, 48, Backend::Fpga, 0.006, 3.4);
        // Now it exploits the faster one.
        assert_eq!(s.choose(64, 48).unwrap(), Backend::Fpga);
        // New geometry triggers fresh exploration.
        assert_eq!(s.choose(16, 16).unwrap(), Backend::Neon);
    }

    #[test]
    fn online_ema_adapts_to_drift() {
        let mut s = AdaptiveScheduler::new(Policy::Online(Objective::Time), 3);
        s.observe(32, 32, Backend::Neon, 0.004, 2.0);
        s.observe(32, 32, Backend::Fpga, 0.003, 1.7);
        assert_eq!(s.choose(32, 32).unwrap(), Backend::Fpga);
        // The FPGA path degrades (e.g. bus contention): repeated slow
        // observations flip the decision.
        for _ in 0..12 {
            s.observe(32, 32, Backend::Fpga, 0.009, 5.0);
        }
        assert_eq!(s.choose(32, 32).unwrap(), Backend::Neon);
    }

    #[test]
    fn observe_is_noop_for_model_policy() {
        let mut s = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3);
        s.observe(64, 48, Backend::Neon, 1.0, 1.0);
        assert!(s.observations.is_empty());
    }

    #[test]
    fn hybrid_candidate_wins_everywhere_under_the_model() {
        let mut s = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3).with_candidates(&[
            Backend::Neon,
            Backend::Fpga,
            Backend::Hybrid,
        ]);
        for (w, h) in [(32, 24), (40, 40), (88, 72)] {
            assert_eq!(s.choose(w, h).unwrap(), Backend::Hybrid, "{w}x{h}");
        }
    }

    #[test]
    fn unsupported_geometry_propagates() {
        let mut s = AdaptiveScheduler::new(Policy::Model(Objective::Time), 6);
        assert!(s.choose(8, 8).is_err());
    }
}

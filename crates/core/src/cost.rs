//! The calibrated timing model for the three compute engines.
//!
//! The authors measured wall-clock time on a ZC702 board; this reproduction
//! models it. The model has one mechanistic core — an exact enumeration of
//! the row operations and multiply-accumulates a DT-CWT of a given geometry
//! performs ([`TransformPlan`]) — and a small set of calibration constants
//! ([`CostModel`]), each tied in its documentation to the paper observation
//! it was fitted against. The `paper_shape` integration test asserts the
//! emergent ratios and crossovers match the paper.
//!
//! Engine models:
//!
//! * **ARM**: `time = MACs x cycles_per_mac / 533 MHz`. The effective
//!   cycles-per-MAC is high (~22) because it stands for the authors'
//!   unoptimized C++ (loads/stores, loop and call overhead included) —
//!   their measured ≈0.85 s for the ten-frame 88x72 forward phase (two
//!   transforms per fused frame) implies it.
//! * **NEON**: Amdahl's law over the ARM time. Only the filter inner loops
//!   vectorize; the measured 10 % (forward) / 16 % (inverse) gains imply
//!   vectorizable fractions of ~13 % / ~21 % at the 4-lane ideal speedup.
//! * **FPGA**: per row, a driver/command round-trip (PS cycles) plus
//!   `max(user memcpy, DMA + II=1 pipeline)` under the paper's Fig. 5
//!   double-buffer overlap — evaluated with the same `ZynqConfig` constants
//!   the cycle-level simulator uses, and cross-checked against the
//!   simulator's ledger in the tests.

use wavefuse_dtcwt::dwt1d::BankTaps;
use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank};
use wavefuse_zynq::bus::acp_burst_pl_cycles;
use wavefuse_zynq::ZynqConfig;

use crate::rules::{rule_macs_per_coefficient, FusionRule};

/// One aggregated batch of identical row operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowOp {
    /// Number of identical rows in this batch.
    pub count: u64,
    /// Samples entering the engine (extended row or combined channels).
    pub words_in: usize,
    /// Samples leaving the engine.
    pub words_out: usize,
    /// Pipeline iterations (decimated outputs for analysis, full-rate
    /// outputs for synthesis).
    pub iterations: usize,
    /// MACs per row in the software implementation.
    pub macs: u64,
}

/// Exact work enumeration of one DT-CWT (forward + inverse) on one frame.
///
/// # Examples
///
/// ```
/// use wavefuse_core::cost::TransformPlan;
///
/// let plan = TransformPlan::dtcwt(88, 72, 3)?;
/// assert!(plan.forward_macs() > 500_000); // four trees, three levels
/// assert_eq!(plan.forward_macs(), plan.inverse_macs());
/// # Ok::<(), wavefuse_dtcwt::DtcwtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPlan {
    width: usize,
    height: usize,
    levels: usize,
    forward_ops: Vec<RowOp>,
    inverse_ops: Vec<RowOp>,
    detail_coefficients: u64,
    lowpass_samples: u64,
    /// Approximate engine coefficient reloads per direction (bank switches
    /// between level-1/q-shift and tree A/B filters).
    coeff_loads: u64,
}

impl TransformPlan {
    /// Builds the plan for the standard DT-CWT (near-sym-b level 1,
    /// qshift-b beyond) at the given geometry.
    ///
    /// # Errors
    ///
    /// Propagates filter-bank construction errors and
    /// [`wavefuse_dtcwt::DtcwtError::BadLevels`] for unsupported depths.
    pub fn dtcwt(
        width: usize,
        height: usize,
        levels: usize,
    ) -> Result<Self, wavefuse_dtcwt::DtcwtError> {
        let max = Dwt2d::max_levels(width, height);
        if levels == 0 || levels > max {
            return Err(wavefuse_dtcwt::DtcwtError::BadLevels {
                requested: levels,
                max_supported: max,
            });
        }
        let level1 = BankTaps::new(&FilterBank::near_sym_b()?);
        let qshift = BankTaps::new(&FilterBank::qshift_b()?);

        let mut forward_ops = Vec::new();
        let mut inverse_ops = Vec::new();
        let mut detail_coefficients = 0u64;

        // All four tree combinations perform identical-shape work (tree B
        // banks are time reversals, same lengths), so enumerate one and
        // scale counts by 4.
        let (mut w, mut h) = (width, height);
        for level in 0..levels {
            w += w % 2;
            h += h % 2;
            let taps = if level == 0 { &level1 } else { &qshift };
            let aleft = taps.h0.len().max(taps.h1.len());
            let sleft = taps.g0.len().max(taps.g1.len()) / 2 + 5;
            let analysis_macs_per_out = (taps.h0.len() + taps.h1.len()) as u64;
            let synthesis_macs_per_out = ((taps.g0.len() + taps.g1.len()) as u64).div_ceil(2);

            // Row pass: h rows of width w; column pass: 2 images of w/2
            // transposed rows of length h.
            for (rows, len) in [(h as u64, w), (2 * (w / 2) as u64, h)] {
                forward_ops.push(RowOp {
                    count: 4 * rows,
                    words_in: len + 2 * aleft,
                    words_out: len, // interleaved lo+hi
                    iterations: len / 2,
                    macs: (len as u64 / 2) * analysis_macs_per_out,
                });
                inverse_ops.push(RowOp {
                    count: 4 * rows,
                    words_in: 2 * (len / 2 + sleft),
                    words_out: len,
                    iterations: len,
                    macs: len as u64 * synthesis_macs_per_out,
                });
            }
            detail_coefficients += 6 * (w as u64 / 2) * (h as u64 / 2);
            w /= 2;
            h /= 2;
        }

        Ok(TransformPlan {
            width,
            height,
            levels,
            forward_ops,
            inverse_ops,
            detail_coefficients,
            lowpass_samples: 4 * (w as u64) * (h as u64),
            // One level-1 load plus up to two q-shift loads (fwd/rev) per
            // combination and direction.
            coeff_loads: 4 * (1 + 2 * (levels as u64 - 1).min(2)),
        })
    }

    /// Frame geometry `(width, height)`.
    pub fn frame_dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total forward-transform MACs (all four trees).
    pub fn forward_macs(&self) -> u64 {
        self.forward_ops.iter().map(|op| op.count * op.macs).sum()
    }

    /// Total inverse-transform MACs.
    pub fn inverse_macs(&self) -> u64 {
        self.inverse_ops.iter().map(|op| op.count * op.macs).sum()
    }

    /// Complex detail coefficients per frame (all levels, six orientations).
    pub fn detail_coefficients(&self) -> u64 {
        self.detail_coefficients
    }

    /// Lowpass residual samples per frame (all four trees).
    pub fn lowpass_samples(&self) -> u64 {
        self.lowpass_samples
    }

    /// Engine row invocations per forward transform.
    pub fn forward_calls(&self) -> u64 {
        self.forward_ops.iter().map(|op| op.count).sum()
    }

    /// Engine row invocations per inverse transform.
    pub fn inverse_calls(&self) -> u64 {
        self.inverse_ops.iter().map(|op| op.count).sum()
    }

    /// Row-operation batches of the forward transform.
    pub fn forward_ops(&self) -> &[RowOp] {
        &self.forward_ops
    }

    /// Row-operation batches of the inverse transform.
    pub fn inverse_ops(&self) -> &[RowOp] {
        &self.inverse_ops
    }

    /// Enumerates the columnar scheduling of the column passes: per level
    /// and channel image, vertical strips of `lanes` whole columns (plus
    /// one ragged remainder strip per image when the width doesn't divide).
    /// This is the job shape `Job::ColumnStrip` parallelizes over.
    ///
    /// Purely additive over the row-op enumeration: the strips of a level
    /// cover exactly the columns of its column-pass [`RowOp`] batch (the
    /// transposed-row entries), so total MACs are identical — pinned by a
    /// test. The row-op batches themselves are unchanged and remain the
    /// FPGA/hybrid models' input.
    pub fn column_strips(&self, lanes: usize, dir: Direction) -> Vec<ColStripOp> {
        let lanes = lanes.max(1);
        (0..self.levels)
            .flat_map(|level| self.level_column_strips(level, lanes, dir))
            .collect()
    }

    /// The column-pass [`RowOp`] of one level (the odd entries: each level
    /// pushes a row pass then a column pass), with the derived per-image
    /// column count and per-column row geometry.
    fn column_pass(&self, level: usize, dir: Direction) -> (&RowOp, usize, usize, usize) {
        let ops = match dir {
            Direction::Forward => &self.forward_ops,
            Direction::Inverse => &self.inverse_ops,
        };
        // Each batch spans 8 channel images (4 tree combinations x 2
        // row-filtered channels) of equal width.
        let op = &ops[2 * level + 1];
        let cols_per_image = (op.count / 8) as usize;
        let (rows_in, rows_out) = match dir {
            Direction::Forward => (op.words_out, op.iterations),
            Direction::Inverse => (op.words_out / 2, op.words_out),
        };
        (op, cols_per_image, rows_in, rows_out)
    }

    /// Strip enumeration of one level at an explicit strip width.
    fn level_column_strips(&self, level: usize, lanes: usize, dir: Direction) -> Vec<ColStripOp> {
        let (op, cols_per_image, rows_in, rows_out) = self.column_pass(level, dir);
        let mut strips = Vec::new();
        let full = cols_per_image / lanes;
        let rem = cols_per_image % lanes;
        if full > 0 {
            strips.push(ColStripOp {
                count: 8 * full as u64,
                cols: lanes,
                rows_in,
                rows_out,
                macs: lanes as u64 * op.macs,
            });
        }
        if rem > 0 {
            strips.push(ColStripOp {
                count: 8,
                cols: rem,
                rows_in,
                rows_out,
                macs: rem as u64 * op.macs,
            });
        }
        strips
    }

    /// Cache-blocked strip width (columns) for one level's column pass:
    /// the widest strip whose working set — every input row the strip
    /// convolves over plus the output rows it produces, f32 each — fits
    /// the [`STRIP_CACHE_BUDGET_BYTES`] budget. Rounded down to a multiple
    /// of 8 (a whole number of 8-lane SIMD groups), floored at 8, and
    /// capped at the level's per-image column count, so small frames keep
    /// full-width strips while tall frames (1080p level 1) narrow to the
    /// lane-group minimum. Derived from the plan geometry, never
    /// hardcoded per frame size.
    pub fn strip_width(&self, level: usize, dir: Direction) -> usize {
        let (_, cols_per_image, rows_in, rows_out) = self.column_pass(level, dir);
        let bytes_per_col = 4 * (rows_in + rows_out).max(1);
        let fitting = STRIP_CACHE_BUDGET_BYTES / bytes_per_col;
        let lanes = (fitting / 8 * 8).max(8);
        lanes.min(cols_per_image.max(1))
    }

    /// The columnar schedule the plan recommends: every level split at its
    /// own cache-blocked [`strip_width`](Self::strip_width). A pure
    /// re-tiling of the column passes — total MACs and columns are
    /// conserved exactly (pinned by the strip-conservation test).
    pub fn column_strips_planned(&self, dir: Direction) -> Vec<ColStripOp> {
        (0..self.levels)
            .flat_map(|level| self.level_column_strips(level, self.strip_width(level, dir), dir))
            .collect()
    }

    /// Subband geometry `(width, height)` at one decomposition level,
    /// following the same pad-then-halve recurrence as the plan's row-op
    /// enumeration (and as the transform itself).
    pub fn subband_dims(&self, level: usize) -> (usize, usize) {
        let (mut w, mut h) = (self.width, self.height);
        for _ in 0..level {
            w = (w + w % 2) / 2;
            h = (h + h % 2) / 2;
        }
        ((w + w % 2) / 2, (h + h % 2) / 2)
    }

    /// Cache-blocked strip height (rows) for one level's fusion pass: the
    /// tallest row strip whose working set — six f32 rows per output row
    /// (two complex sources plus the complex output) — fits the
    /// [`STRIP_CACHE_BUDGET_BYTES`] budget. Floored at 8 rows so strips
    /// amortize job dispatch, and capped at the subband height so shallow
    /// levels stay single-strip. Mirrors
    /// [`strip_width`](Self::strip_width) for the transform passes.
    pub fn fuse_strip_rows(&self, level: usize) -> usize {
        let (sub_w, sub_h) = self.subband_dims(level);
        let bytes_per_row = 4 * 6 * sub_w.max(1);
        let fitting = STRIP_CACHE_BUDGET_BYTES / bytes_per_row;
        fitting.max(8).min(sub_h.max(1))
    }
}

/// Cache budget for one column strip's working set (input window plus
/// produced rows): half a typical 64 KiB L1d, leaving room for taps,
/// scratch indices and the stack.
pub const STRIP_CACHE_BUDGET_BYTES: usize = 32 * 1024;

/// One batch of identical column-strip operations of the columnar path
/// (see [`TransformPlan::column_strips`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColStripOp {
    /// Number of identical strips in this batch.
    pub count: u64,
    /// Columns per strip (one SIMD lane group, or the ragged remainder).
    pub cols: usize,
    /// Input rows each column convolves over.
    pub rows_in: usize,
    /// Output rows each column produces.
    pub rows_out: usize,
    /// MACs per strip.
    pub macs: u64,
}

/// Transform direction, for model parameters that differ between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward (analysis) transform.
    Forward,
    /// Inverse (synthesis) transform.
    Inverse,
}

/// The calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// PS clock (533 MHz, as in the paper).
    pub ps_clk_hz: f64,
    /// Effective PS cycles per software MAC in the authors' C++
    /// implementation. The forward phase of one fused frame runs *two*
    /// transforms (both inputs); calibrated so the ten-frame 88x72 forward
    /// phase takes ≈0.85 s on the ARM (Fig. 9a's top curve).
    pub arm_cycles_per_mac: f64,
    /// The inverse transform's per-MAC cost relative to the forward's
    /// (≈1.5): the inverse phase runs only one transform per fused frame
    /// yet Fig. 9c shows ≈0.75x the forward phase's time, implying the
    /// authors' synthesis loop is slower per MAC (scattered polyphase
    /// addressing).
    pub arm_inverse_mac_factor: f64,
    /// Fraction of forward-transform time that the NEON engine vectorizes
    /// at the ideal 4-lane speedup. 0.133 reproduces the paper's measured
    /// 10 % forward enhancement via Amdahl's law.
    pub neon_vectorizable_forward: f64,
    /// Same for the inverse; 0.213 reproduces the paper's 16 %.
    pub neon_vectorizable_inverse: f64,
    /// Per-frame capture-side cost (sensor read-out handling, color
    /// conversion, scaling to the working geometry) in PS cycles per
    /// pixel. Split out from the residual overhead so the capture/scale
    /// phase can be timed and energy-accounted on its own.
    pub capture_cycles_per_pixel: f64,
    /// Per-frame residual non-transform overhead (display hand-off,
    /// bookkeeping, buffer management) in PS cycles per pixel.
    pub frame_overhead_cycles_per_pixel: f64,
    /// Platform constants shared with the cycle-level simulator.
    pub zynq: ZynqConfig,
}

impl CostModel {
    /// The default model, calibrated to the paper (see field docs).
    pub fn calibrated() -> Self {
        CostModel {
            ps_clk_hz: 533_000_000.0,
            arm_cycles_per_mac: 22.0,
            arm_inverse_mac_factor: 1.5,
            neon_vectorizable_forward: 0.133,
            neon_vectorizable_inverse: 0.213,
            // Together these reproduce the original 1000 cycles/pixel
            // combined overhead (fits the 1.75 s Fig. 9b gap); the 60/40
            // split matches the paper's profile breakdown where capture
            // and colour conversion dominate the non-transform time.
            capture_cycles_per_pixel: 600.0,
            frame_overhead_cycles_per_pixel: 400.0,
            zynq: ZynqConfig::default(),
        }
    }

    /// Seconds for one forward transform on the plain ARM.
    pub fn arm_seconds(&self, plan: &TransformPlan, dir: Direction) -> f64 {
        let (macs, factor) = match dir {
            Direction::Forward => (plan.forward_macs(), 1.0),
            Direction::Inverse => (plan.inverse_macs(), self.arm_inverse_mac_factor),
        };
        macs as f64 * self.arm_cycles_per_mac * factor / self.ps_clk_hz
    }

    /// Seconds for one transform on ARM+NEON (Amdahl over the ARM time).
    pub fn neon_seconds(&self, plan: &TransformPlan, dir: Direction) -> f64 {
        let f = match dir {
            Direction::Forward => self.neon_vectorizable_forward,
            Direction::Inverse => self.neon_vectorizable_inverse,
        };
        self.arm_seconds(plan, dir) * (1.0 - f + f / wavefuse_simd::LANES as f64)
    }

    /// Seconds for one transform on the FPGA path (analytic; the simulator's
    /// ledger is the ground truth this is validated against).
    pub fn fpga_seconds(&self, plan: &TransformPlan, dir: Direction) -> f64 {
        let ops = match dir {
            Direction::Forward => &plan.forward_ops,
            Direction::Inverse => &plan.inverse_ops,
        };
        let mut total = 0.0f64;
        for op in ops.iter() {
            total += op.count as f64 * self.fpga_row_seconds(op, dir);
        }
        // Coefficient reloads: 2 x max_taps register writes each.
        let load_ps = (2 * self.zynq.max_taps as u64 + 1) * self.zynq.axil_write_ps_cycles;
        total += plan.coeff_loads as f64 * load_ps as f64 / self.zynq.ps_clk_hz;
        total
    }

    /// Seconds to apply a fusion rule to one frame's coefficients (always
    /// on the PS, as in the paper — only the transforms are offloaded).
    pub fn fusion_seconds(&self, plan: &TransformPlan, rule: FusionRule) -> f64 {
        let detail = plan.detail_coefficients() * rule_macs_per_coefficient(rule);
        let lowpass = plan.lowpass_samples() * 2;
        (detail + lowpass) as f64 * self.arm_cycles_per_mac / self.ps_clk_hz
    }

    /// Per-frame capture/scale phase, seconds (sensor hand-off, color
    /// conversion, geometry scaling — before the transforms start).
    pub fn capture_seconds(&self, plan: &TransformPlan) -> f64 {
        let (w, h) = plan.frame_dims();
        (w * h) as f64 * self.capture_cycles_per_pixel / self.ps_clk_hz
    }

    /// Per-frame residual overhead, seconds (display hand-off and
    /// bookkeeping not attributable to capture or the transform phases).
    pub fn frame_overhead_seconds(&self, plan: &TransformPlan) -> f64 {
        let (w, h) = plan.frame_dims();
        (w * h) as f64 * self.frame_overhead_cycles_per_pixel / self.ps_clk_hz
    }

    /// Modeled NEON seconds for one row operation with the given MAC count
    /// (used by the hybrid kernel to account its SIMD-routed rows).
    pub fn neon_row_seconds(&self, macs: u64, dir: Direction) -> f64 {
        let f = match dir {
            Direction::Forward => self.neon_vectorizable_forward,
            Direction::Inverse => self.neon_vectorizable_inverse,
        };
        let factor = match dir {
            Direction::Forward => 1.0,
            Direction::Inverse => self.arm_inverse_mac_factor,
        };
        macs as f64 * self.arm_cycles_per_mac * factor / self.ps_clk_hz
            * (1.0 - f + f / wavefuse_simd::LANES as f64)
    }

    /// Modeled FPGA seconds for one row operation (driver overhead plus
    /// the overlapped copy/engine critical path).
    pub fn fpga_row_seconds(&self, op: &RowOp, dir: Direction) -> f64 {
        let overhead = match dir {
            Direction::Forward => self.zynq.call_overhead_ps_cycles_forward,
            Direction::Inverse => self.zynq.call_overhead_ps_cycles_inverse,
        };
        let ps_t = 1.0 / self.zynq.ps_clk_hz;
        let pl_t = 1.0 / self.zynq.pl_clk_hz;
        let copy_words = op.words_in + op.words_out;
        let copy_s = copy_words as f64 * self.zynq.user_memcpy_ps_cycles_per_word * ps_t;
        let pl = acp_burst_pl_cycles(op.words_in, &self.zynq)
            + self.zynq.pipeline_flush_pl_cycles
            + op.iterations as u64
            + acp_burst_pl_cycles(op.words_out, &self.zynq);
        (overhead + 6 * self.zynq.axil_write_ps_cycles) as f64 * ps_t + copy_s.max(pl as f64 * pl_t)
    }

    /// Seconds for one transform on the hybrid backend: each row runs on
    /// whichever engine the row-length threshold selects (short rows on the
    /// NEON engine, long rows on the FPGA), as the [`crate::hybrid`] kernel
    /// executes it — under the async DMA overlap model. The PS timeline
    /// carries the SIMD rows plus the FPGA path's driver overhead and user
    /// copies; the PL timeline carries the engine runs; elapsed time is the
    /// longer of the two (double buffering keeps the PL fed whenever it is
    /// the bottleneck).
    pub fn hybrid_seconds(&self, plan: &TransformPlan, dir: Direction, threshold: usize) -> f64 {
        let ops = match dir {
            Direction::Forward => &plan.forward_ops,
            Direction::Inverse => &plan.inverse_ops,
        };
        let overhead = match dir {
            Direction::Forward => self.zynq.call_overhead_ps_cycles_forward,
            Direction::Inverse => self.zynq.call_overhead_ps_cycles_inverse,
        };
        let ps_t = 1.0 / self.zynq.ps_clk_hz;
        let pl_t = 1.0 / self.zynq.pl_clk_hz;
        let mut ps = 0.0f64;
        let mut pl = 0.0f64;
        for op in ops.iter() {
            if op.words_out < threshold {
                ps += op.count as f64 * self.neon_row_seconds(op.macs, dir);
            } else {
                let copy_s = (op.words_in + op.words_out) as f64
                    * self.zynq.user_memcpy_ps_cycles_per_word
                    * ps_t;
                ps += op.count as f64
                    * ((overhead + 6 * self.zynq.axil_write_ps_cycles) as f64 * ps_t + copy_s);
                let pl_cycles = acp_burst_pl_cycles(op.words_in, &self.zynq)
                    + self.zynq.pipeline_flush_pl_cycles
                    + op.iterations as u64
                    + acp_burst_pl_cycles(op.words_out, &self.zynq);
                pl += op.count as f64 * pl_cycles as f64 * pl_t;
            }
        }
        // Coefficient reloads run on the PS lane, as in `fpga_seconds`.
        let load_ps = (2 * self.zynq.max_taps as u64 + 1) * self.zynq.axil_write_ps_cycles;
        ps += plan.coeff_loads as f64 * load_ps as f64 / self.zynq.ps_clk_hz;
        ps.max(pl)
    }

    /// The smallest output row length (samples) at which the FPGA beats the
    /// NEON engine *per row* — the hybrid kernel's default routing
    /// threshold, derived from the same calibrated constants.
    pub fn hybrid_row_threshold(&self) -> usize {
        // Representative level-1 analysis geometry: 32 taps total, extended
        // input of len + 38.
        (8..512)
            .step_by(2)
            .find(|&len| {
                let op = RowOp {
                    count: 1,
                    words_in: len + 38,
                    words_out: len,
                    iterations: len / 2,
                    macs: (len as u64 / 2) * 32,
                };
                self.fpga_row_seconds(&op, Direction::Forward)
                    < self.neon_row_seconds(op.macs, Direction::Forward)
            })
            .unwrap_or(512)
    }

    /// Total modeled seconds for one fused frame (two forward transforms,
    /// fusion, one inverse, frame overhead) on a backend.
    pub fn frame_seconds(
        &self,
        plan: &TransformPlan,
        rule: FusionRule,
        backend: crate::backend::Backend,
    ) -> f64 {
        use crate::backend::Backend;
        let (fwd, inv) = match backend {
            Backend::Arm => (
                self.arm_seconds(plan, Direction::Forward),
                self.arm_seconds(plan, Direction::Inverse),
            ),
            Backend::Neon => (
                self.neon_seconds(plan, Direction::Forward),
                self.neon_seconds(plan, Direction::Inverse),
            ),
            Backend::Fpga => (
                self.fpga_seconds(plan, Direction::Forward),
                self.fpga_seconds(plan, Direction::Inverse),
            ),
            Backend::Hybrid => {
                let th = self.hybrid_row_threshold();
                (
                    self.hybrid_seconds(plan, Direction::Forward, th),
                    self.hybrid_seconds(plan, Direction::Inverse, th),
                )
            }
        };
        2.0 * fwd
            + inv
            + self.fusion_seconds(plan, rule)
            + self.capture_seconds(plan)
            + self.frame_overhead_seconds(plan)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Convenience: builds the standard transform used throughout the
/// evaluation (the same banks the plan assumes).
///
/// # Errors
///
/// Propagates construction errors for invalid depths.
pub fn standard_dtcwt(levels: usize) -> Result<Dtcwt, wavefuse_dtcwt::DtcwtError> {
    Dtcwt::new(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::Image;
    use wavefuse_zynq::FpgaKernel;

    #[test]
    fn plan_scales_with_area() {
        let small = TransformPlan::dtcwt(32, 24, 3).unwrap();
        let large = TransformPlan::dtcwt(88, 72, 3).unwrap();
        let ratio = large.forward_macs() as f64 / small.forward_macs() as f64;
        let area_ratio = (88.0 * 72.0) / (32.0 * 24.0);
        assert!(
            (ratio / area_ratio - 1.0).abs() < 0.2,
            "MACs should track area: {ratio} vs {area_ratio}"
        );
    }

    #[test]
    fn plan_rejects_bad_levels() {
        assert!(TransformPlan::dtcwt(8, 8, 0).is_err());
        assert!(TransformPlan::dtcwt(8, 8, 9).is_err());
    }

    #[test]
    fn arm_anchors_match_paper() {
        // Ten fused 88x72 frames = 20 forward transforms: Fig. 9a shows
        // ≈0.85 s; the inverse phase (10 transforms) shows ≈0.65 s (Fig 9c).
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(88, 72, 3).unwrap();
        let fwd10 = 20.0 * m.arm_seconds(&plan, Direction::Forward);
        assert!(
            (0.6..1.1).contains(&fwd10),
            "10-frame ARM forward {fwd10} s"
        );
        let inv10 = 10.0 * m.arm_seconds(&plan, Direction::Inverse);
        assert!(
            (0.45..0.9).contains(&inv10),
            "10-frame ARM inverse {inv10} s"
        );
    }

    #[test]
    fn neon_gains_match_paper() {
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(88, 72, 3).unwrap();
        let fwd_gain = 1.0
            - m.neon_seconds(&plan, Direction::Forward) / m.arm_seconds(&plan, Direction::Forward);
        let inv_gain = 1.0
            - m.neon_seconds(&plan, Direction::Inverse) / m.arm_seconds(&plan, Direction::Inverse);
        assert!((fwd_gain - 0.10).abs() < 0.01, "forward gain {fwd_gain}");
        assert!((inv_gain - 0.16).abs() < 0.01, "inverse gain {inv_gain}");
    }

    #[test]
    fn analytic_fpga_time_tracks_simulator_ledger() {
        // The analytic model and the cycle-level simulator must agree:
        // run a real forward transform through the FpgaKernel and compare.
        let m = CostModel::calibrated();
        for (w, h) in [(32, 24), (64, 48)] {
            let plan = TransformPlan::dtcwt(w, h, 3).unwrap();
            let analytic = m.fpga_seconds(&plan, Direction::Forward);
            let t = standard_dtcwt(3).unwrap();
            let img = Image::from_fn(w, h, |x, y| ((x + y) % 9) as f32);
            let mut fpga = FpgaKernel::new();
            let _ = t.forward_with(&mut fpga, &img).unwrap();
            let measured = fpga.ledger().elapsed_seconds;
            let err = (analytic - measured).abs() / measured;
            assert!(
                err < 0.05,
                "{w}x{h}: analytic {analytic:.6} vs ledger {measured:.6} ({:.1} %)",
                err * 100.0
            );
        }
    }

    #[test]
    fn fpga_per_call_overhead_dominates_small_frames() {
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(32, 24, 3).unwrap();
        let t = m.fpga_seconds(&plan, Direction::Forward);
        let overhead = plan.forward_calls() as f64 * m.zynq.call_overhead_ps_cycles_forward as f64
            / m.zynq.ps_clk_hz;
        assert!(overhead / t > 0.7, "overhead fraction {:.2}", overhead / t);
    }

    #[test]
    fn fusion_cost_scales_with_rule_window() {
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(64, 48, 3).unwrap();
        let cheap = m.fusion_seconds(&plan, FusionRule::MaxMagnitude);
        let rich = m.fusion_seconds(&plan, FusionRule::WindowEnergy { radius: 2 });
        assert!(rich > 3.0 * cheap);
    }

    #[test]
    fn fuse_strip_rows_track_subband_geometry() {
        // subband_dims must match the real transform's pyramid, and the
        // strip height must respect the cache budget (unless floored).
        let plan = TransformPlan::dtcwt(90, 62, 3).unwrap();
        let t = standard_dtcwt(3).unwrap();
        let img = Image::from_fn(90, 62, |x, y| (x * 7 + y) as f32);
        let pyr = t.forward(&img).unwrap();
        for level in 0..3 {
            let (w, h) = plan.subband_dims(level);
            let sb = &pyr.subbands(level)[0];
            assert_eq!((sb.re.width(), sb.re.height()), (w, h), "level {level}");
            let rows = plan.fuse_strip_rows(level);
            assert!(rows >= 1 && rows <= h.max(8), "level {level}: {rows}");
            if rows > 8 {
                assert!(rows * 6 * 4 * w <= STRIP_CACHE_BUDGET_BYTES);
            }
        }
        // A wide frame's level-0 subband exceeds the per-row budget and
        // floors at the 8-row dispatch minimum.
        let wide = TransformPlan::dtcwt(1920, 1080, 3).unwrap();
        assert_eq!(wide.fuse_strip_rows(0), 8);
    }

    #[test]
    fn capture_and_overhead_split_preserves_combined_cost() {
        // The capture/overhead split must keep the original 1000
        // cycles/pixel combined non-transform cost that the Fig. 9b
        // calibration pinned.
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(88, 72, 3).unwrap();
        let combined = m.capture_seconds(&plan) + m.frame_overhead_seconds(&plan);
        let want = (88.0 * 72.0) * 1000.0 / m.ps_clk_hz;
        assert!((combined - want).abs() < 1e-12);
        assert!(m.capture_seconds(&plan) > m.frame_overhead_seconds(&plan));
    }

    #[test]
    fn column_strips_conserve_column_pass_macs() {
        // The strip enumeration is a re-tiling of the column-pass row ops:
        // strip MACs must sum to exactly the column-pass MAC total, and
        // strip columns to the column count, for dividing and non-dividing
        // widths and both lane widths.
        for (w, h) in [(88usize, 72usize), (40, 36), (34, 28)] {
            let plan = TransformPlan::dtcwt(w, h, 3).unwrap();
            for dir in [Direction::Forward, Direction::Inverse] {
                let ops = match dir {
                    Direction::Forward => plan.forward_ops(),
                    Direction::Inverse => plan.inverse_ops(),
                };
                let col_macs: u64 = ops
                    .iter()
                    .skip(1)
                    .step_by(2)
                    .map(|op| op.count * op.macs)
                    .sum();
                let col_cols: u64 = ops.iter().skip(1).step_by(2).map(|op| op.count).sum();
                for lanes in [4usize, 8] {
                    let strips = plan.column_strips(lanes, dir);
                    let strip_macs: u64 = strips.iter().map(|s| s.count * s.macs).sum();
                    let strip_cols: u64 = strips.iter().map(|s| s.count * s.cols as u64).sum();
                    assert_eq!(strip_macs, col_macs, "{w}x{h} {dir:?} lanes={lanes}");
                    assert_eq!(strip_cols, col_cols, "{w}x{h} {dir:?} lanes={lanes}");
                    assert!(strips.iter().all(|s| s.cols <= lanes && s.cols > 0));
                    assert!(strips.iter().all(|s| s.rows_out > 0 && s.rows_in > 0));
                }
                // The cache-blocked schedule is the same re-tiling at
                // per-level widths: conservation must hold there too.
                let planned = plan.column_strips_planned(dir);
                let planned_macs: u64 = planned.iter().map(|s| s.count * s.macs).sum();
                let planned_cols: u64 = planned.iter().map(|s| s.count * s.cols as u64).sum();
                assert_eq!(planned_macs, col_macs, "{w}x{h} {dir:?} planned");
                assert_eq!(planned_cols, col_cols, "{w}x{h} {dir:?} planned");
            }
        }
    }

    #[test]
    fn strip_width_narrows_with_frame_height_and_widens_per_level() {
        // Tall frames must narrow to the 8-lane minimum at the full-height
        // levels; small frames keep full-width strips; and because each
        // level halves the rows, the budgeted width never shrinks as the
        // level index grows (until the image itself runs out of columns).
        let hd = TransformPlan::dtcwt(1920, 1080, 3).unwrap();
        assert_eq!(hd.strip_width(0, Direction::Forward), 8);
        assert_eq!(hd.strip_width(0, Direction::Inverse), 8);

        let small = TransformPlan::dtcwt(88, 72, 3).unwrap();
        let cols0 = small.forward_ops()[1].count as usize / 8;
        assert_eq!(small.strip_width(0, Direction::Forward), cols0);

        for (w, h) in [(640usize, 480usize), (1920, 1080), (88, 72)] {
            let plan = TransformPlan::dtcwt(w, h, 3).unwrap();
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut prev_unclamped = 0usize;
                for level in 0..3 {
                    let ops = match dir {
                        Direction::Forward => plan.forward_ops(),
                        Direction::Inverse => plan.inverse_ops(),
                    };
                    let cols = ops[2 * level + 1].count as usize / 8;
                    let width = plan.strip_width(level, dir);
                    assert!(width >= 8.min(cols.max(1)), "{w}x{h} L{level}");
                    assert!(width <= cols.max(1), "{w}x{h} L{level}");
                    assert!(
                        width.is_multiple_of(8) || width == cols,
                        "{w}x{h} {dir:?} L{level}: width {width} is neither a lane \
                         multiple nor the full image width {cols}"
                    );
                    // Re-derive the pre-clamp width to check monotonicity
                    // independent of the per-level column clamp.
                    let rows = match dir {
                        Direction::Forward => {
                            ops[2 * level + 1].words_out + ops[2 * level + 1].iterations
                        }
                        Direction::Inverse => {
                            ops[2 * level + 1].words_out / 2 + ops[2 * level + 1].words_out
                        }
                    };
                    let unclamped = (STRIP_CACHE_BUDGET_BYTES / (4 * rows) / 8 * 8).max(8);
                    assert!(unclamped >= prev_unclamped, "{w}x{h} {dir:?} L{level}");
                    prev_unclamped = unclamped;
                }
            }
        }
    }

    #[test]
    fn forward_and_inverse_macs_are_symmetric() {
        let plan = TransformPlan::dtcwt(40, 40, 3).unwrap();
        assert_eq!(plan.forward_macs(), plan.inverse_macs());
        assert_eq!(plan.forward_calls(), plan.inverse_calls());
    }
}

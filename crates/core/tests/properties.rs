//! Property-based tests for fusion rules and the cost model.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_core::cost::{CostModel, Direction, TransformPlan};
use wavefuse_core::rules::{fuse_lowpass, fuse_subband, FusionRule, LowpassRule};
use wavefuse_dtcwt::{ComplexImage, Image};

fn arb_complex_pair() -> impl Strategy<Value = (ComplexImage, ComplexImage)> {
    (2usize..=12, 2usize..=12).prop_flat_map(|(w, h)| {
        let plane = proptest::collection::vec(-10.0f32..10.0, w * h);
        (plane.clone(), plane.clone(), plane.clone(), plane).prop_map(move |(ar, ai, br, bi)| {
            let mk = |v: Vec<f32>| Image::from_vec(w, h, v).expect("sized");
            (
                ComplexImage::new(mk(ar), mk(ai)).expect("same dims"),
                ComplexImage::new(mk(br), mk(bi)).expect("same dims"),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn max_magnitude_output_never_weaker_than_either_input(
        (a, b) in arb_complex_pair()
    ) {
        let f = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        let (w, h) = a.dims();
        for y in 0..h {
            for x in 0..w {
                let m = f.magnitude_at(x, y);
                prop_assert!(m + 1e-5 >= a.magnitude_at(x, y).min(b.magnitude_at(x, y)));
                prop_assert!(m + 1e-5 >= a.magnitude_at(x, y).max(b.magnitude_at(x, y)) - 1e-5);
            }
        }
    }

    #[test]
    fn selection_rules_pick_existing_coefficients(
        (a, b) in arb_complex_pair()
    ) {
        for rule in [FusionRule::MaxMagnitude, FusionRule::WindowEnergy { radius: 1 }] {
            let f = fuse_subband(&a, &b, rule);
            let (w, h) = a.dims();
            for y in 0..h {
                for x in 0..w {
                    let from_a = (f.re.get(x, y) - a.re.get(x, y)).abs() < 1e-6
                        && (f.im.get(x, y) - a.im.get(x, y)).abs() < 1e-6;
                    let from_b = (f.re.get(x, y) - b.re.get(x, y)).abs() < 1e-6
                        && (f.im.get(x, y) - b.im.get(x, y)).abs() < 1e-6;
                    prop_assert!(from_a || from_b, "coefficient invented at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn fusion_rules_are_symmetric_up_to_ties(
        (a, b) in arb_complex_pair()
    ) {
        // Swapping inputs leaves the fused magnitude unchanged for the
        // selection rules (which coefficient wins ties may differ).
        let fab = fuse_subband(&a, &b, FusionRule::MaxMagnitude);
        let fba = fuse_subband(&b, &a, FusionRule::MaxMagnitude);
        let (w, h) = a.dims();
        for y in 0..h {
            for x in 0..w {
                prop_assert!((fab.magnitude_at(x, y) - fba.magnitude_at(x, y)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn weighted_rule_is_convex(
        (a, b) in arb_complex_pair(),
        alpha in 0.0f32..=1.0,
    ) {
        let f = fuse_subband(&a, &b, FusionRule::Weighted { alpha });
        let (w, h) = a.dims();
        for y in 0..h {
            for x in 0..w {
                let lo = a.re.get(x, y).min(b.re.get(x, y));
                let hi = a.re.get(x, y).max(b.re.get(x, y));
                let v = f.re.get(x, y);
                prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn lowpass_average_midpoint(
        data_a in proptest::collection::vec(-5.0f32..5.0, 16),
        data_b in proptest::collection::vec(-5.0f32..5.0, 16),
    ) {
        let a = Image::from_vec(4, 4, data_a).unwrap();
        let b = Image::from_vec(4, 4, data_b).unwrap();
        let f = fuse_lowpass(&a, &b, LowpassRule::Average);
        for y in 0..4 {
            for x in 0..4 {
                let expect = 0.5 * (a.get(x, y) + b.get(x, y));
                prop_assert!((f.get(x, y) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cost_model_is_monotone_in_frame_size(
        e1 in 12usize..=60,
        grow in 2usize..=40,
    ) {
        let m = CostModel::calibrated();
        let small = TransformPlan::dtcwt(e1, e1, 2).unwrap();
        let large = TransformPlan::dtcwt(e1 + grow, e1 + grow, 2).unwrap();
        for dir in [Direction::Forward, Direction::Inverse] {
            prop_assert!(m.arm_seconds(&large, dir) > m.arm_seconds(&small, dir));
            prop_assert!(m.neon_seconds(&large, dir) > m.neon_seconds(&small, dir));
            prop_assert!(m.fpga_seconds(&large, dir) > m.fpga_seconds(&small, dir));
        }
    }

    #[test]
    fn neon_never_slower_than_arm_and_never_better_than_ideal(
        edge in 12usize..=96,
    ) {
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(edge, edge, 2).unwrap();
        for dir in [Direction::Forward, Direction::Inverse] {
            let arm = m.arm_seconds(&plan, dir);
            let neon = m.neon_seconds(&plan, dir);
            prop_assert!(neon <= arm);
            prop_assert!(neon >= arm / 4.0, "cannot beat the 4-lane ideal");
        }
    }

    #[test]
    fn hybrid_estimate_never_exceeds_both_pure_backends(
        edge in 16usize..=96,
    ) {
        let m = CostModel::calibrated();
        let plan = TransformPlan::dtcwt(edge, edge, 3).unwrap();
        let th = m.hybrid_row_threshold();
        for dir in [Direction::Forward, Direction::Inverse] {
            let hybrid = m.hybrid_seconds(&plan, dir, th);
            let neon = m.neon_seconds(&plan, dir);
            let fpga = m.fpga_seconds(&plan, dir);
            // The hybrid routes each row to the per-row argmin, so it can
            // be at most marginally above the better pure backend (the
            // coefficient-load term is charged to the pure FPGA only).
            prop_assert!(hybrid <= neon * 1.001 + 1e-9, "{hybrid} vs neon {neon}");
            prop_assert!(hybrid <= fpga * 1.02 + 1e-9, "{hybrid} vs fpga {fpga}");
        }
    }
}

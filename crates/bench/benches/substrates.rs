//! Criterion benches for the substrates the system is built on: the BT.656
//! codec and scaler of the capture path (Fig. 7), the filter designers, the
//! FFT, and the quality metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavefuse_dtcwt::design::{daubechies, design_dual_lowpass};
use wavefuse_dtcwt::{FilterBank, Image};
use wavefuse_numerics::complex::Complex64;
use wavefuse_numerics::fft::{fft, Direction};
use wavefuse_video::scaler::resize_bilinear;
use wavefuse_video::scene::ScenePair;
use wavefuse_video::{bt656, PixelFormat, RawFrame};

fn bench_bt656(c: &mut Criterion) {
    let mut group = c.benchmark_group("bt656");
    let bytes: Vec<u8> = (0..720 * 243 * 2)
        .map(|i| 1 + (i * 7 % 253) as u8)
        .collect();
    let frame = RawFrame::new(PixelFormat::Yuv422, 720, 243, bytes).expect("frame");
    let stream = bt656::encode(&frame);
    group.bench_function("encode_720x243", |b| {
        b.iter(|| black_box(bt656::encode(black_box(&frame))));
    });
    group.bench_function("decode_720x243", |b| {
        b.iter(|| black_box(bt656::decode(black_box(&stream), 720, 243).unwrap()));
    });
    group.finish();
}

fn bench_scaler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaler");
    let field = Image::from_fn(720, 243, |x, y| ((x ^ y) % 251) as f32 / 250.0);
    group.bench_function("720x243_to_640x480", |b| {
        b.iter(|| black_box(resize_bilinear(black_box(&field), 640, 480).unwrap()));
    });
    group.bench_function("640x480_to_88x72", |b| {
        let big = resize_bilinear(&field, 640, 480).expect("upscale");
        b.iter(|| black_box(resize_bilinear(black_box(&big), 88, 72).unwrap()));
    });
    group.finish();
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_design");
    group.bench_function("daubechies_8", |b| {
        b.iter(|| black_box(daubechies(black_box(8)).unwrap()));
    });
    group.bench_function("near_sym_b_dual", |b| {
        let bank = FilterBank::near_sym_b().expect("bank");
        let h0 = bank.h0().to_vec();
        b.iter(|| black_box(design_dual_lowpass(black_box(&h0), 19).unwrap()));
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 720] {
        let data: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_function(format!("fft_{n}"), |b| {
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d, Direction::Forward).unwrap();
                black_box(d[0])
            });
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    let scene = ScenePair::new(7);
    let a = scene.render_visible(88, 72, 0.0);
    let b = scene.render_thermal(88, 72, 0.0);
    group.bench_function("qabf_88x72", |bch| {
        bch.iter(|| black_box(wavefuse_metrics::petrovic_qabf(&a, &b, &a)));
    });
    group.bench_function("mutual_information_88x72", |bch| {
        bch.iter(|| black_box(wavefuse_metrics::mutual_information(&a, &b)));
    });
    group.bench_function("ssim_88x72", |bch| {
        bch.iter(|| black_box(wavefuse_metrics::ssim(&a, &b)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bt656,
    bench_scaler,
    bench_design,
    bench_fft,
    bench_metrics
);
criterion_main!(benches);

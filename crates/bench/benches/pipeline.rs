//! Criterion benches for Figs. 9b/10 and Fig. 2: the full fused-frame
//! pipeline per backend and size (host wall time of the complete
//! decompose → fuse → reconstruct cycle, including the platform simulation
//! on the FPGA path), plus the fusion-rule costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wavefuse_core::rules::{fuse_pyramids, FusionRule, LowpassRule};
use wavefuse_core::{Backend, FusionEngine};
use wavefuse_dtcwt::{Dtcwt, Image};

const SIZES: [(usize, usize); 5] = [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)];

fn inputs(w: usize, h: usize) -> (Image, Image) {
    (
        Image::from_fn(w, h, |x, y| ((x * 13 + y * 7) % 101) as f32 / 100.0),
        Image::from_fn(w, h, |x, y| ((x * 5 + y * 29) % 97) as f32 / 96.0),
    )
}

fn bench_full_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_full_frame");
    group.sample_size(20);
    for (w, h) in SIZES {
        let (a, b) = inputs(w, h);
        let label = format!("{w}x{h}");
        for backend in [Backend::Arm, Backend::Neon, Backend::Fpga, Backend::Hybrid] {
            let name = match backend {
                Backend::Arm => "arm",
                Backend::Neon => "neon",
                Backend::Fpga => "fpga_sim",
                Backend::Hybrid => "hybrid",
            };
            group.bench_with_input(
                BenchmarkId::new(name, &label),
                &(a.clone(), b.clone()),
                |bch, (a, b)| {
                    let mut engine = FusionEngine::new(3).expect("engine");
                    bch.iter(|| {
                        black_box(engine.fuse(black_box(a), black_box(b), backend).unwrap())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_fusion_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_rules");
    let t = Dtcwt::new(3).expect("transform");
    let (a, b) = inputs(88, 72);
    let pa = t.forward(&a).expect("forward a");
    let pb = t.forward(&b).expect("forward b");
    for (name, rule) in [
        ("max_magnitude", FusionRule::MaxMagnitude),
        ("window_energy_3x3", FusionRule::WindowEnergy { radius: 1 }),
        ("window_energy_5x5", FusionRule::WindowEnergy { radius: 2 }),
        ("weighted", FusionRule::Weighted { alpha: 0.5 }),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                black_box(fuse_pyramids(
                    black_box(&pa),
                    black_box(&pb),
                    rule,
                    LowpassRule::Average,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_frame, bench_fusion_rules);
criterion_main!(benches);

//! End-user tests of the `repro` binary's bench regression gate and
//! flight-recorder export.

use std::path::PathBuf;
use std::process::Command;

use wavefuse_trace::JsonValue;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("repro-gate-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).expect("temp dir");
    p
}

fn run_bench(out_path: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = repro();
    cmd.args([
        "bench",
        "--frames",
        "2",
        "--threads",
        "2",
        "--bench-out",
        out_path.to_str().unwrap(),
    ]);
    cmd.args(extra);
    cmd.output().expect("spawn repro bench")
}

#[test]
fn bench_rows_carry_energy_and_quantile_columns() {
    let dir = tmp_dir("columns");
    let path = dir.join("bench.json");
    let out = run_bench(&path, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid json");
    let rows = doc.get("rows").and_then(JsonValue::as_arr).expect("rows");
    assert!(!rows.is_empty());
    for row in rows {
        let backend = row.get("backend").and_then(JsonValue::as_str).unwrap();
        for key in [
            "energy_mj_per_frame",
            "fps_per_watt",
            "p50_ns_per_frame",
            "p99_ns_per_frame",
        ] {
            let v = row
                .get(key)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("{backend} row missing {key}"));
            assert!(v.is_finite() && v > 0.0, "{backend} {key} = {v}");
        }
        let p50 = row.get("p50_ns_per_frame").and_then(JsonValue::as_f64);
        let p99 = row.get("p99_ns_per_frame").and_then(JsonValue::as_f64);
        assert!(p50 <= p99, "{backend}: p50 {p50:?} > p99 {p99:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_passes_against_own_baseline_and_fails_inflated_one() {
    let dir = tmp_dir("gate");
    let baseline = dir.join("baseline.json");
    let out = run_bench(&baseline, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Self-check with a generous tolerance: run-to-run wall-clock noise
    // must not trip the gate.
    let out = run_bench(
        &dir.join("rerun.json"),
        &[
            "--check",
            baseline.to_str().unwrap(),
            "--tolerance",
            "10000",
        ],
    );
    assert!(
        out.status.success(),
        "self-check failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Bench regression gate"), "{stdout}");
    assert!(stdout.contains("gate: PASS"), "{stdout}");

    // Inflate the baseline's fps 100x: the fresh run must now regress.
    let mut doc = JsonValue::parse(&std::fs::read_to_string(&baseline).unwrap()).unwrap();
    if let JsonValue::Obj(pairs) = &mut doc {
        let rows = pairs.iter_mut().find(|(k, _)| k == "rows").unwrap();
        if let JsonValue::Arr(rows) = &mut rows.1 {
            for row in rows {
                if let JsonValue::Obj(fields) = row {
                    let fps = fields
                        .iter_mut()
                        .find(|(k, _)| k == "frames_per_second")
                        .unwrap();
                    let inflated = fps.1.as_f64().unwrap() * 100.0;
                    fps.1 = JsonValue::Num(inflated);
                }
            }
        }
    }
    let inflated = dir.join("inflated.json");
    std::fs::write(&inflated, doc.render()).unwrap();
    let out = run_bench(
        &dir.join("rerun2.json"),
        &["--check", inflated.to_str().unwrap(), "--tolerance", "25"],
    );
    assert!(
        !out.status.success(),
        "gate must exit non-zero against the inflated baseline"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regression gate failed"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_with_unreadable_baseline_degrades_to_a_warning() {
    // A missing, empty, or truncated baseline must not hard-fail the run
    // (a fresh checkout has no history to gate against): the gate warns
    // and every row degrades to a warning instead of a verdict.
    let dir = tmp_dir("nobase");
    let out = run_bench(
        &dir.join("bench.json"),
        &["--check", dir.join("missing.json").to_str().unwrap()],
    );
    assert!(
        out.status.success(),
        "missing baseline must degrade, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("gate degrades to warnings"),
        "expected a degradation warning on stderr:\n{stderr}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("gate: PASS"),
        "an unreadable baseline leaves nothing to regress against"
    );

    // Truncated JSON degrades the same way.
    let truncated = dir.join("truncated.json");
    std::fs::write(&truncated, "{\"rows\":[{\"backend\":").unwrap();
    let out = run_bench(
        &dir.join("bench2.json"),
        &["--check", truncated.to_str().unwrap()],
    );
    assert!(
        out.status.success(),
        "truncated baseline must degrade, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("gate degrades to warnings"),
        "expected a degradation warning for truncated JSON"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_flight_record_round_trips() {
    let dir = tmp_dir("flight");
    let jsonl = dir.join("flight.jsonl");
    let frames = 6;
    let out = repro()
        .args([
            "eval",
            "--frames",
            &frames.to_string(),
            "--flight-record",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .expect("spawn repro eval");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flight recorder"), "{stdout}");

    // The JSONL has one record per frame, each a flat object with the
    // energy split and phase timings.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), frames);
    let mut energy_sum = 0.0;
    for (i, line) in lines.iter().enumerate() {
        let rec = JsonValue::parse(line).expect("valid record");
        assert_eq!(
            rec.get("frame").and_then(JsonValue::as_f64),
            Some(i as f64),
            "records are oldest-first"
        );
        for key in ["energy_mj", "ps_mj", "pl_mj", "forward_s", "decision"] {
            assert!(rec.get(key).is_some(), "record {i} missing {key}");
        }
        energy_sum += rec.get("energy_mj").and_then(JsonValue::as_f64).unwrap();
    }
    assert!(energy_sum > 0.0);

    // The companion Chrome trace parses and has frame + phase spans.
    let trace_path = dir.join("flight.jsonl.trace.json");
    let trace = JsonValue::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents");
    // One metadata event + per frame one span + five phase spans.
    assert_eq!(events.len(), 1 + frames * 6);
    std::fs::remove_dir_all(&dir).ok();
}

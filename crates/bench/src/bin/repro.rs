//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p wavefuse-bench --bin repro --release -- all
//! cargo run -p wavefuse-bench --bin repro --release -- fig9a fig10
//! ```
//!
//! Subcommands: `fig2`, `table1`, `fig9a`, `fig9b`, `fig9c`, `fig10`,
//! `crossover`, `adaptive`, `ablation`, `quality`, `hybrid`, `levels`, `throughput`, `timeline`, `all`.

use std::process::ExitCode;

use wavefuse_bench::experiments::{self, Quantity};
use wavefuse_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: repro [fig2|table1|fig9a|fig9b|fig9c|fig10|crossover|adaptive|ablation|quality|hybrid|levels|throughput|timeline|all]..."
        );
        return ExitCode::from(2);
    }

    let wants = |name: &str| args.iter().any(|a| a == name || a == "all");
    let needs_matrix = ["fig9a", "fig9b", "fig9c", "fig10", "all"]
        .iter()
        .any(|n| args.iter().any(|a| a == n));

    let run = || -> Result<(), Box<dyn std::error::Error>> {
        if wants("fig2") {
            let phases = experiments::fig2_profile()?;
            println!("{}", report::render_profile(&phases));
        }
        if wants("table1") {
            let t12 = experiments::table1_resources(12);
            let t20 = experiments::table1_resources(20);
            println!("{}", report::render_table1(&t12, &t20));
        }
        if needs_matrix {
            eprintln!("collecting evaluation matrix (5 sizes x 3 backends x 10 frames)...");
            let matrix = experiments::collect_matrix()?;
            if wants("fig9a") {
                let s = experiments::fig9_series(&matrix, Quantity::Forward);
                println!(
                    "{}",
                    report::render_series("Fig. 9a — forward DT-CWT time", "seconds", &s)
                );
            }
            if wants("fig9b") {
                let s = experiments::fig9_series(&matrix, Quantity::Total);
                println!(
                    "{}",
                    report::render_series("Fig. 9b — total time taken", "seconds", &s)
                );
            }
            if wants("fig9c") {
                let s = experiments::fig9_series(&matrix, Quantity::Inverse);
                println!(
                    "{}",
                    report::render_series("Fig. 9c — inverse DT-CWT time", "seconds", &s)
                );
            }
            if wants("fig10") {
                let s = experiments::fig9_series(&matrix, Quantity::Energy);
                println!(
                    "{}",
                    report::render_series("Fig. 10 — total energy used", "millijoules", &s)
                );
            }
        }
        if wants("crossover") {
            let c = experiments::crossover_report()?;
            println!("{}", report::render_crossovers(&c));
        }
        if wants("adaptive") {
            eprintln!("running adaptive-policy comparison (6 policies x 20 frames)...");
            let a = experiments::adaptive_comparison()?;
            println!("{}", report::render_adaptive(&a));
        }
        if wants("ablation") {
            let rows = experiments::ablation_report()?;
            println!("{}", report::render_ablation(&rows));
        }
        if wants("hybrid") {
            eprintln!("running hybrid routing study...");
            let rows = experiments::hybrid_comparison()?;
            println!("{}", report::render_hybrid(&rows));
        }
        if wants("levels") {
            eprintln!("running decomposition-level sweep...");
            let rows = experiments::levels_sweep()?;
            println!("{}", report::render_levels(&rows));
        }
        if wants("throughput") {
            eprintln!("running throughput report...");
            let rows = experiments::throughput_report()?;
            println!("{}", report::render_throughput(&rows));
        }
        if wants("timeline") {
            use wavefuse_zynq::{timeline, ZynqConfig};
            let cfg = ZynqConfig::default();
            println!("## PS/PL activity, five 88-sample rows through the double-buffered path (Fig. 5)");
            let events = timeline::double_buffer_timeline(5, 88, &cfg);
            println!("{}", timeline::render_ascii(&events, 100));
        }
        if wants("quality") {
            eprintln!("running fusion-quality comparison...");
            let rows = experiments::quality_comparison(88, 72)?;
            println!("{}", report::render_quality(&rows));
        }
        Ok(())
    };

    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro failed: {e}");
            ExitCode::FAILURE
        }
    }
}
